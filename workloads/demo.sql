-- Checked-in SQL demo script: ranking + window queries over the CSV
-- tables in this directory. CI runs `repro sql workloads/demo.sql` and
-- diffs the printed bounds against workloads/demo.golden.

-- Top-2 cheapest products (AU-DB top-k: rank ranges + ℕ³ certainty).
SELECT * FROM products ORDER BY price AS rank LIMIT 2;

-- Certainly-cheap products only, through a range-literal predicate.
SELECT sku, price FROM products WHERE price < RANGE(9, 9, 16) ORDER BY price;

-- Generalized projection: a derived column rides into the sort.
SELECT sku, price * 2 AS doubled FROM products ORDER BY doubled LIMIT 3;

-- Rolling per-site temperature sum over the time order.
SELECT *, SUM(temp) OVER (PARTITION BY site ORDER BY t
    ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) AS rolling
FROM readings;

-- Windowed min over a subquery that pre-filters possible outliers.
SELECT t, site, MIN(temp) OVER (ORDER BY t ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS low
FROM (SELECT * FROM readings WHERE temp <= 30);

-- A binding error is reported per statement, without aborting the script.
SELECT nope FROM products;
