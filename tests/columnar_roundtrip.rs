//! Property tests pinning the columnar storage layer ([`AuColumns`]) to
//! the row representation it mirrors:
//!
//! * `AuRelation ↔ AuColumns` round-trips are **exact**: the same row
//!   sequence (hence bag equality) and the same normalized flag, through
//!   both the bulk transposition and the incremental `push_row` path;
//! * the columnar `normalize()` (whole-row sort keys encoded straight
//!   from column slices) produces exactly the canonical row sequence
//!   `AuRelation::normalize` produces;
//! * the vectorized expression kernels (`eval_batch` / `truth_batch` /
//!   `eval_batch_at`) agree with per-row `eval` / `truth` on every row,
//!   every batch size, and every expression shape — including the
//!   predicate-in-arithmetic and comparison-of-predicates corners the
//!   `ColVals` lowering special-cases.

use audb::core::{AuColumns, AuRelation, AuTuple, Mult3, RangeExpr, RangeValue};
use audb::rel::{CmpOp, Schema, Value};
use proptest::prelude::*;

/// Mixed-type values (the columnar layout is type-agnostic per cell).
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-5i64..5).prop_map(Value::Int),
        (-8i64..8).prop_map(|i| Value::Float(i as f64 / 2.0)),
        proptest::bool::ANY.prop_map(Value::Bool),
        (0u8..3).prop_map(|c| Value::str(["", "a", "bb"][c as usize])),
    ]
}

/// Range values biased toward certainty so certain-collapsed columns and
/// mid-column promotion both occur.
fn rv_strategy() -> impl Strategy<Value = RangeValue> {
    prop_oneof![
        value_strategy().prop_map(RangeValue::certain),
        value_strategy().prop_map(RangeValue::certain),
        (0i64..8, 0i64..4, 0i64..4)
            .prop_map(|(lb, d1, d2)| { RangeValue::new(lb, lb + d1.min(d2), lb + d1.max(d2)) }),
    ]
}

fn mult_strategy() -> impl Strategy<Value = Mult3> {
    prop_oneof![
        Just(Mult3::ONE),
        Just(Mult3::ZERO),
        Just(Mult3::new(0, 1, 1)),
        Just(Mult3::new(1, 2, 4)),
        Just(Mult3::new(0, 0, 2)),
    ]
}

fn au_relation(max_rows: usize) -> impl Strategy<Value = AuRelation> {
    proptest::collection::vec(
        (
            (rv_strategy(), rv_strategy(), rv_strategy()),
            mult_strategy(),
        ),
        0..=max_rows,
    )
    .prop_map(|rows| {
        AuRelation::from_rows(
            Schema::new(["a", "b", "c"]),
            rows.into_iter()
                .map(|((a, b, c), m)| (AuTuple::new([a, b, c]), m)),
        )
    })
}

/// Numeric-only relations for expression parity (arithmetic over
/// mixed-type values has partial semantics either way; the kernels must
/// agree wherever the row path is defined).
fn numeric_au_relation(max_rows: usize) -> impl Strategy<Value = AuRelation> {
    fn num_rv() -> impl Strategy<Value = RangeValue> {
        (0i64..9, 0i64..4, 0i64..4)
            .prop_map(|(lb, d1, d2)| RangeValue::new(lb, lb + d1.min(d2), lb + d1.max(d2)))
    }
    proptest::collection::vec(
        (
            (
                prop_oneof![
                    (-5i64..5).prop_map(RangeValue::certain),
                    (-5i64..5).prop_map(RangeValue::certain),
                    num_rv(),
                ],
                num_rv(),
            ),
            mult_strategy(),
        ),
        0..=max_rows,
    )
    .prop_map(|rows| {
        AuRelation::from_rows(
            Schema::new(["a", "b"]),
            rows.into_iter()
                .map(|((a, b), m)| (AuTuple::new([a, b]), m)),
        )
    })
}

/// Expression shapes covering every `RangeExpr` node, including the
/// lowering corners: predicates under arithmetic and comparisons of
/// predicates.
fn exprs() -> Vec<RangeExpr> {
    let col = RangeExpr::col;
    let lit = RangeExpr::lit;
    vec![
        col(0),
        lit(3),
        RangeExpr::Add(Box::new(col(0)), Box::new(col(1))),
        RangeExpr::Sub(Box::new(col(1)), Box::new(lit(2))),
        RangeExpr::Mul(Box::new(col(0)), Box::new(col(1))),
        RangeExpr::Neg(Box::new(col(1))),
        col(0).lt(col(1)),
        col(0).le(lit(4)),
        col(0).eq(col(1)),
        col(0).cmp(CmpOp::Ne, lit(2)),
        col(0).cmp(CmpOp::Gt, col(1)),
        col(0).cmp(CmpOp::Ge, lit(1)),
        col(0).lt(col(1)).and(col(0).le(lit(5))),
        RangeExpr::Or(Box::new(col(0).eq(lit(1))), Box::new(col(1).lt(lit(3)))),
        RangeExpr::Not(Box::new(col(0).le(col(1)))),
        // Predicate under arithmetic: booleans boxed into values.
        RangeExpr::Add(Box::new(col(0).lt(col(1))), Box::new(lit(1))),
        // Comparison of predicates: both sides materialize from truths.
        col(0).lt(col(1)).eq(col(1).lt(col(0))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Round-trip exactness: same rows, same flag — for raw and
    /// normalized inputs (the satellite's bag-equality pin is implied by
    /// row equality).
    #[test]
    fn columns_roundtrip_rows_and_normalized_flag(rel in au_relation(10)) {
        let cols = rel.to_columns();
        prop_assert_eq!(cols.len(), rel.len());
        prop_assert_eq!(cols.is_normalized(), rel.is_normalized());
        let back = cols.to_rows();
        prop_assert_eq!(back.rows(), rel.rows());
        prop_assert_eq!(back.is_normalized(), rel.is_normalized());
        prop_assert!(back.bag_eq(&rel));

        // A canonicalized relation keeps its flag through the round-trip.
        let norm = rel.clone().normalize();
        let back = norm.to_columns().to_rows();
        prop_assert!(back.is_normalized());
        prop_assert_eq!(back.rows(), norm.rows());

        // The incremental builder stores the same bag.
        let mut pushed = AuColumns::empty(rel.schema.clone());
        for row in rel.rows() {
            pushed.push_row(&row.tuple, row.mult);
        }
        prop_assert_eq!(pushed.to_rows().rows(), rel.rows());
    }

    /// Columnar normalize ≡ row normalize, exactly (row order included),
    /// and the result is flagged canonical on both sides.
    #[test]
    fn columnar_normalize_matches_row_normalize(rel in au_relation(10)) {
        let via_cols = rel.to_columns().normalize();
        let via_rows = rel.normalize();
        prop_assert!(via_cols.is_normalized());
        prop_assert_eq!(via_cols.to_rows().rows(), via_rows.rows());
    }

    /// Vectorized ≡ per-row expression evaluation, across batch sizes and
    /// a selection-restricted sweep.
    #[test]
    fn batch_kernels_match_row_kernels(
        rel in numeric_au_relation(9),
        batch_size in prop_oneof![Just(1usize), Just(2), Just(7), Just(1024)],
    ) {
        let cols = rel.to_columns();
        for e in exprs() {
            let mut row_cursor = 0;
            for b in cols.batches(batch_size) {
                let vals = e.eval_batch(&b);
                let truths = e.truth_batch(&b);
                prop_assert_eq!(vals.len(), b.len());
                prop_assert_eq!(truths.len(), b.len());
                for i in 0..b.len() {
                    let tuple = &rel.rows()[row_cursor + i].tuple;
                    prop_assert_eq!(&vals[i], &e.eval(tuple), "expr {:?} row {}", e, i);
                    prop_assert_eq!(truths[i], e.truth(tuple), "expr {:?} row {}", e, i);
                }
                // The selection-restricted sweep (every other row) agrees
                // with the full sweep at the selected positions.
                let idxs: Vec<usize> = (0..b.len()).step_by(2).collect();
                let at = e.eval_batch_at(&b, &idxs);
                let t_at = e.truth_batch_at(&b, &idxs);
                for (k, &i) in idxs.iter().enumerate() {
                    prop_assert_eq!(&at[k], &vals[i]);
                    prop_assert_eq!(t_at[k], truths[i]);
                }
                row_cursor += b.len();
            }
        }
    }
}
