//! Cross-implementation agreement: the one-pass native algorithms (Sec. 8)
//! and the SQL rewrites (Sec. 7) must produce **exactly** the bounds of the
//! quadratic reference semantics (Defs. 2 and 3) under interval-lex
//! comparison — on arbitrary inputs, including multiplicities > 1 for
//! sorting and unit multiplicities for windows (where the duplicate
//! treatments provably coincide; see DESIGN.md §3.4).

use audb::core::{
    sort_ref, topk_ref, window_ref, AuRelation, AuTuple, AuWindowSpec, CmpSemantics, Mult3,
    RangeValue, WinAgg,
};
use audb::engine::{Agg, Engine, Plan, Query, WindowSpec};
use audb::native::{sort_native, topk_native, window_native};
use audb::rel::Schema;
use audb::rewrite::{rewr_sort, rewr_topk, rewr_window, JoinStrategy};
use proptest::prelude::*;

/// Random range value over a small domain.
fn rv_strategy() -> impl Strategy<Value = RangeValue> {
    (0i64..10, 0i64..5, 0i64..5)
        .prop_map(|(lb, d1, d2)| RangeValue::new(lb, lb + d1.min(d2), lb + d1.max(d2)))
}

fn mult_strategy() -> impl Strategy<Value = Mult3> {
    prop_oneof![
        Just(Mult3::ONE),
        Just(Mult3::new(0, 1, 1)),
        Just(Mult3::new(0, 0, 1)),
        Just(Mult3::new(1, 1, 2)),
        Just(Mult3::new(1, 2, 3)),
    ]
}

fn au_relation(max_rows: usize, unit_mults: bool) -> impl Strategy<Value = AuRelation> {
    let mult = if unit_mults {
        prop_oneof![
            Just(Mult3::ONE),
            Just(Mult3::new(0, 1, 1)),
            Just(Mult3::new(0, 0, 1))
        ]
        .boxed()
    } else {
        mult_strategy().boxed()
    };
    proptest::collection::vec(((rv_strategy(), rv_strategy()), mult), 1..=max_rows).prop_map(
        |rows| {
            AuRelation::from_rows(
                Schema::new(["a", "b"]),
                rows.into_iter()
                    .map(|((a, b), m)| (AuTuple::new([a, b]), m)),
            )
        },
    )
}

/// A random logical plan over a random relation, exercised through the
/// unified engine API: sort / top-k plans over arbitrary multiplicities
/// (optionally behind a selection), window plans over unit multiplicities
/// (matching the coverage of the direct-operator tests below).
fn plan_strategy() -> impl Strategy<Value = Plan> {
    let maybe_k = prop_oneof![Just(None), (0u64..6).prop_map(Some),];
    let sortish = (
        au_relation(8, false),
        0usize..2,
        maybe_k,
        proptest::bool::ANY,
    )
        .prop_map(|(rel, col, k, with_select)| {
            let q = Query::scan(rel);
            let q = if with_select {
                // σ(a ≤ 6): exercises the shared selection operator ahead
                // of the backend-specific sort.
                q.select(audb::core::RangeExpr::col(0).le(audb::core::RangeExpr::lit(6)))
            } else {
                q
            };
            let q = q.sort_by_as([col], "tau");
            match k {
                Some(k) => q.topk(k),
                None => q,
            }
            .build()
            .expect("generated sort plan is valid")
        });
    let windowish = (
        au_relation(7, true),
        prop_oneof![
            Just((0i64, 0i64)),
            Just((-1, 0)),
            Just((-2, 0)),
            Just((-1, 1))
        ],
        prop_oneof![
            Just(WinAgg::Sum(1)),
            Just(WinAgg::Count),
            Just(WinAgg::Min(1)),
            Just(WinAgg::Max(1)),
            Just(WinAgg::Avg(1)),
        ],
    )
        .prop_map(|(rel, (l, u), agg)| {
            Query::scan(rel)
                .window(
                    WindowSpec::rows(l, u)
                        .order_by(["a"])
                        .aggregate(Agg::from(agg))
                        .output("x"),
                )
                .build()
                .expect("generated window plan is valid")
        });
    prop_oneof![sortish, windowish]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The unified-API agreement property: for random plans built through
    /// `Query`, `run_all` executes the reference, native and rewrite
    /// backends and asserts their bounds are bag-identical — so one
    /// assertion covers the whole backend matrix, including the engine's
    /// fallback rules (e.g. native windows on duplicate multiplicities).
    #[test]
    fn engine_backends_agree_on_random_plans(plan in plan_strategy()) {
        let all = Engine::native().run_all(&plan).expect("backends agree");
        // The agreed output is exactly the single-backend result.
        let native = Engine::native().execute(&plan).expect("native executes");
        prop_assert!(all.output.bag_eq(&native));
        prop_assert!(all.output.schema.cols().last().is_some_and(|c| c == "tau" || c == "x"));
    }

    /// Native sort ≡ reference sort ≡ rewrite sort, arbitrary multiplicities.
    #[test]
    fn sort_implementations_agree(rel in au_relation(8, false)) {
        let reference = sort_ref(&rel, &[0], "pos", CmpSemantics::IntervalLex);
        let native = sort_native(&rel, &[0], "pos");
        prop_assert!(native.bag_eq(&reference), "native:\n{native}\nref:\n{reference}");
        let rewrite = rewr_sort(&rel, &[0], "pos");
        prop_assert!(rewrite.bag_eq(&reference), "rewr:\n{rewrite}\nref:\n{reference}");
    }

    /// Top-k agreement (positions capped at k on both sides, as in the
    /// paper's Algorithm 1 emit step).
    #[test]
    fn topk_implementations_agree(rel in au_relation(8, false), k in 0u64..6) {
        let mut reference = topk_ref(&rel, &[0], k, CmpSemantics::IntervalLex);
        let pos_col = reference.schema.arity() - 1;
        for row in reference.rows_mut() {
            let (lb, sg, ub) = row.tuple.0[pos_col].as_i64_triple();
            row.tuple.0[pos_col] =
                RangeValue::from_i64s(lb, sg.min(k as i64), ub.min(k as i64));
        }
        let native = topk_native(&rel, &[0], k, "pos");
        prop_assert!(native.bag_eq(&reference), "k={k}\nnative:\n{native}\nref:\n{reference}");

        // The rewrite keeps reference (uncapped) semantics.
        let rewrite = rewr_topk(&rel, &[0], k, "pos");
        let reference_raw = topk_ref(&rel, &[0], k, CmpSemantics::IntervalLex);
        prop_assert!(rewrite.bag_eq(&reference_raw));
    }

    /// Native window ≡ reference window ≡ both rewrite variants on
    /// unit-multiplicity inputs, across aggregates and window shapes.
    #[test]
    fn window_implementations_agree(
        rel in au_relation(7, true),
        lu in prop_oneof![Just((0i64, 0i64)), Just((-1, 0)), Just((-2, 0)), Just((-1, 1))],
        agg in prop_oneof![
            Just(WinAgg::Sum(1)),
            Just(WinAgg::Count),
            Just(WinAgg::Min(1)),
            Just(WinAgg::Max(1)),
            Just(WinAgg::Avg(1)),
        ],
    ) {
        let (l, u) = lu;
        let spec = AuWindowSpec::rows(vec![0], l, u);
        let reference = window_ref(&rel, &spec, agg, "x", CmpSemantics::IntervalLex);
        let native = window_native(&rel, &spec, agg, "x");
        prop_assert!(
            native.bag_eq(&reference),
            "agg={agg:?} l={l} u={u}\nnative:\n{native}\nref:\n{reference}"
        );
        for strategy in [JoinStrategy::NestedLoop, JoinStrategy::IntervalIndex] {
            let rewrite = rewr_window(&rel, &spec, agg, "x", strategy);
            prop_assert!(
                rewrite.bag_eq(&reference),
                "{strategy:?} agg={agg:?}\nrewr:\n{rewrite}\nref:\n{reference}"
            );
        }
    }

    /// For multiplicities > 1 the native window (duplicate position
    /// offsets) and the reference (expand-first, which collapses duplicate
    /// positions) produce *incomparable but individually sound* bounds:
    /// offsets are tighter on positions, expansion retains more duplicate
    /// correlation. Verify both against a grid of worlds realized from the
    /// AU relation (corner/sg values × extreme multiplicities).
    #[test]
    fn native_and_reference_windows_sound_on_duplicates(rel in au_relation(4, false)) {
        let spec = AuWindowSpec::rows(vec![0], -1, 0);
        let reference = window_ref(&rel, &spec, WinAgg::Sum(1), "x", CmpSemantics::IntervalLex);
        let native = window_native(&rel, &spec, WinAgg::Sum(1), "x");
        // Realize worlds: per row pick a corner (lb/sg/ub tuple) and an
        // extreme multiplicity (lb or ub).
        let n = rel.rows().len();
        let mut choice = vec![0usize; n];
        loop {
            let mut world = audb::rel::Relation::empty(rel.schema.clone());
            for (row, &c) in rel.rows().iter().zip(&choice) {
                let tuple = match c % 3 {
                    0 => row.tuple.lb_tuple(),
                    1 => row.tuple.sg_tuple(),
                    _ => row.tuple.ub_tuple(),
                };
                let mult = if c < 3 { row.mult.lb } else { row.mult.ub };
                if mult > 0 {
                    world.push(tuple, mult);
                }
            }
            let det = audb::rel::window_rows(
                &world,
                &audb::rel::WindowSpec::rows(vec![0], -1, 0),
                audb::rel::AggFunc::Sum(1),
                "x",
            );
            prop_assert!(
                audb::worlds::bounds_world(&native, &det),
                "native unsound on world {det}\nnative:\n{native}"
            );
            prop_assert!(
                audb::worlds::bounds_world(&reference, &det),
                "reference unsound on world {det}\nref:\n{reference}"
            );
            // Next choice vector (base-6 counter).
            let mut i = 0;
            loop {
                if i == n {
                    break;
                }
                choice[i] += 1;
                if choice[i] < 6 {
                    break;
                }
                choice[i] = 0;
                i += 1;
            }
            if i == n {
                break;
            }
        }
        let _ = RangeValue::certain(0i64);
    }
}
