//! Concurrency stress: many sessions over one `SharedCatalog` and one
//! `PlanCache`, racing queries against catalog publications, must return
//! exactly what a single-threaded session returns.
//!
//! The invariant under test is the service layer's snapshot rule: a query
//! binds against the snapshot current when it starts and finishes on that
//! snapshot, so concurrent re-registrations of *identical* table contents
//! (which bump the catalog version and invalidate the plan cache, but not
//! the semantics) can never change any result. Every result from every
//! thread is checked bag-equal to the single-threaded reference.

use audb::core::AuRelation;
use audb::engine::{Engine, Session};
use audb::workloads::csvload;
use audb::{PlanCache, SharedCatalog};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const THREADS: usize = 8;
const ITERS: usize = 40;

/// The mixed workload: ranking, filters, windows, subqueries — the same
/// statement shapes the demo script exercises.
const QUERIES: &[&str] = &[
    "SELECT * FROM products ORDER BY price AS rank LIMIT 2",
    "SELECT sku, price FROM products WHERE price < RANGE(9, 9, 16) ORDER BY price",
    "SELECT sku, price * 2 AS doubled FROM products ORDER BY doubled LIMIT 3",
    "SELECT *, SUM(temp) OVER (PARTITION BY site ORDER BY t \
     ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) AS rolling FROM readings",
    "SELECT t, site, MIN(temp) OVER (ORDER BY t ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS low \
     FROM (SELECT * FROM readings WHERE temp <= 30)",
    "SELECT site, temp FROM readings WHERE site < 2 ORDER BY temp LIMIT 4",
];

fn load_catalog() -> (SharedCatalog, Arc<AuRelation>, Arc<AuRelation>) {
    let products = Arc::new(csvload::load_au_csv("workloads/products.csv").unwrap());
    let readings = Arc::new(csvload::load_au_csv("workloads/readings.csv").unwrap());
    let catalog = SharedCatalog::new();
    catalog.register("products", Arc::clone(&products));
    catalog.register("readings", Arc::clone(&readings));
    (catalog, products, readings)
}

#[test]
fn concurrent_sessions_match_single_threaded_reference() {
    let (catalog, products, readings) = load_catalog();
    let cache = Arc::new(PlanCache::new(32));

    // Single-threaded reference, computed up front on a private session.
    let reference: Vec<AuRelation> = {
        let session = Session::with_catalog(Engine::native(), catalog.clone());
        QUERIES
            .iter()
            .map(|q| session.sql(q).unwrap().normalize())
            .collect()
    };

    let stop = Arc::new(AtomicBool::new(false));
    let checked = Arc::new(AtomicU64::new(0));

    // A publisher thread churns the catalog the whole time: re-registers
    // the same table contents (version bumps, cache invalidation) and
    // registers/deregisters a scratch table queries never touch.
    let publisher = {
        let catalog = catalog.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut round = 0u64;
            while !stop.load(Ordering::Relaxed) {
                catalog.register("products", Arc::clone(&products));
                catalog.register("readings", Arc::clone(&readings));
                catalog.register(format!("scratch_{}", round % 4), Arc::clone(&products));
                catalog.deregister(&format!("scratch_{}", (round + 2) % 4));
                round += 1;
                std::thread::yield_now();
            }
        })
    };

    let workers: Vec<_> = (0..THREADS)
        .map(|tid| {
            let catalog = catalog.clone();
            let cache = Arc::clone(&cache);
            let reference = reference.clone();
            let checked = Arc::clone(&checked);
            std::thread::spawn(move || {
                let session = Session::with_catalog(Engine::native(), catalog);
                for i in 0..ITERS {
                    let pick = (tid + i) % QUERIES.len();
                    let sql = QUERIES[pick];
                    // Rotate through the three client paths the server uses.
                    let got = match i % 3 {
                        0 => session.sql(sql).unwrap(),
                        1 => {
                            let prepared = session.prepare(sql).unwrap();
                            session.execute(&prepared).unwrap()
                        }
                        _ => {
                            let (prepared, _hit) = session.prepare_cached(&cache, sql).unwrap();
                            session.execute(&prepared).unwrap()
                        }
                    };
                    assert!(
                        got.bag_eq(&reference[pick]),
                        "thread {tid} iter {i}: divergent result for {sql:?}"
                    );
                    checked.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    for worker in workers {
        worker.join().expect("worker thread panicked");
    }
    stop.store(true, Ordering::Relaxed);
    publisher.join().expect("publisher thread panicked");

    assert_eq!(checked.load(Ordering::Relaxed), (THREADS * ITERS) as u64);
    // The cache saw real traffic; invalidation-by-version kept it bounded.
    let stats = cache.stats();
    assert!(stats.hits + stats.misses > 0, "plan cache never consulted");
    assert!(stats.len <= 32, "plan cache exceeded its capacity");
    // The publisher actually churned versions while queries ran.
    assert!(catalog.version() > 2, "publisher never published");
}

#[test]
fn prepared_statements_survive_concurrent_republication() {
    let (catalog, products, _readings) = load_catalog();
    let session = Session::with_catalog(Engine::native(), catalog.clone());
    let prepared = session
        .prepare("SELECT * FROM products ORDER BY price AS rank LIMIT 2")
        .unwrap();
    let expected = session.execute(&prepared).unwrap();

    let publisher = {
        let catalog = catalog.clone();
        std::thread::spawn(move || {
            for _ in 0..200 {
                catalog.register("products", Arc::clone(&products));
            }
        })
    };
    // The prepared plan is pinned to its bind-time snapshot: concurrent
    // publication of the same contents never perturbs its output.
    for _ in 0..200 {
        let got = session.execute(&prepared).unwrap();
        assert!(got.bag_eq(&expected));
    }
    publisher.join().unwrap();
}
