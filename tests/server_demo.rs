//! End-to-end service test: every statement in `workloads/demo.sql` goes
//! through a real localhost `audb-server` as `POST /query` and the wire
//! responses are diffed against the same semantics `demo.golden` pins:
//!
//! * each statement's canonical form must appear as an echo line in
//!   `workloads/demo.golden` (so this test and the CLI golden diff are
//!   provably exercising the same script),
//! * successful statements must return exactly the rows a local
//!   [`Session`] produces (the oracle the golden file was generated
//!   from), with the golden file's `[N rows]` count,
//! * the script's deliberate binding error must come back as a
//!   structured HTTP error with the same message the golden file records.

use audb::engine::{Engine, Session};
use audb::server::wire;
use audb::server::{serve, Json, ServerConfig, ServerState};
use audb::workloads::csvload;
use audb::SharedCatalog;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

fn demo_catalog() -> SharedCatalog {
    let catalog = SharedCatalog::new();
    catalog.register(
        "products",
        csvload::load_au_csv("workloads/products.csv").unwrap(),
    );
    catalog.register(
        "readings",
        csvload::load_au_csv("workloads/readings.csv").unwrap(),
    );
    catalog
}

/// The demo script's statements: comment lines stripped, split on `;`.
fn demo_statements() -> Vec<String> {
    let script = std::fs::read_to_string("workloads/demo.sql").unwrap();
    let code: String = script
        .lines()
        .filter(|line| !line.trim_start().starts_with("--"))
        .collect::<Vec<_>>()
        .join("\n");
    code.split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// Minimal HTTP client: one POST per connection, parse status and body.
fn http_post(addr: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (status, String::from_utf8(body).unwrap())
}

#[test]
fn demo_script_over_localhost_matches_golden_semantics() {
    let catalog = demo_catalog();
    let oracle = Session::with_catalog(Engine::native(), catalog.clone());
    let state = ServerState::new(Engine::native(), catalog, 2);
    let handle = serve(
        state,
        ServerConfig {
            port: 0,
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr().to_string();

    let golden = std::fs::read_to_string("workloads/demo.golden").unwrap();
    let statements = demo_statements();
    assert!(statements.len() >= 6, "demo script shrank unexpectedly");

    for sql in &statements {
        // The canonical (whitespace-flattened) statement is the golden
        // file's echo line — proof both harnesses run the same script.
        let flat = sql.split_whitespace().collect::<Vec<_>>().join(" ");
        assert!(
            golden.contains(&format!("-- {flat}")),
            "statement missing from demo.golden: {flat}"
        );

        let (status, body) = http_post(&addr, "/query", sql);
        let reply = Json::parse(&body).unwrap();
        match oracle.sql(sql) {
            Ok(expected) => {
                assert_eq!(status, 200, "unexpected status for {flat}: {body}");
                // The oracle result, pushed through the same wire encoder,
                // must match field-for-field (rows are normalized on both
                // sides, so bag-equal means byte-equal).
                let expected = wire::relation_body(expected);
                for field in ["schema", "row_count", "rows", "mults"] {
                    assert_eq!(
                        reply.get(field),
                        expected.get(field),
                        "field {field} diverged for {flat}"
                    );
                }
                // And the row count the golden file pins for this block.
                let block = golden.split(&format!("-- {flat}\n")).nth(1).unwrap();
                let header = block.lines().next().unwrap();
                let count: i64 = header
                    .rsplit_once('[')
                    .and_then(|(_, tail)| tail.strip_suffix("rows]"))
                    .expect("golden header has [N rows]")
                    .trim()
                    .parse()
                    .unwrap();
                assert_eq!(reply.get("row_count"), Some(&Json::Int(count)));
            }
            Err(e) => {
                // The script's deliberate error: structured on the wire,
                // same message the golden file records.
                assert_eq!(status, 400, "expected client error for {flat}: {body}");
                let error = reply.get("error").expect("error member");
                assert_eq!(
                    error.get("kind").and_then(Json::as_str),
                    Some(e.kind()),
                    "wrong kind for {flat}"
                );
                let message = error.get("message").and_then(Json::as_str).unwrap();
                assert!(
                    golden.contains(&format!("error: {message}")),
                    "error message not pinned by demo.golden: {message}"
                );
            }
        }
    }

    // The service survived the whole script; the counters saw it all.
    let (status, body) = http_post(&addr, "/run_all", &statements[0]);
    assert_eq!(status, 200, "run_all failed: {body}");
    handle.shutdown();
}
