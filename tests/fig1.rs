//! End-to-end reproduction of the paper's running example (Fig. 1): the
//! uncertain sales database, its AU-DB encoding (Fig. 1f left), the top-2
//! query (Fig. 1f right) and the windowed aggregation query (Fig. 1g).

use audb::core::{
    au_project, AuRelation, AuTuple, AuWindowSpec, Mult3, RangeExpr, RangeValue, WinAgg,
};
use audb::native::{topk_native, window_native};
use audb::rel::Schema;

/// The AU-DB of Fig. 1f (left): Term, Sales with range annotations.
fn sales_au() -> AuRelation {
    let rv = RangeValue::new;
    AuRelation::from_rows(
        Schema::new(["term", "sales"]),
        [
            (
                AuTuple::from([RangeValue::certain(1i64), rv(2, 2, 3)]),
                Mult3::ONE,
            ),
            (
                AuTuple::from([RangeValue::certain(2i64), rv(2, 3, 3)]),
                Mult3::ONE,
            ),
            (AuTuple::from([rv(3, 3, 5), rv(4, 7, 7)]), Mult3::ONE),
            (
                AuTuple::from([RangeValue::certain(4i64), rv(4, 4, 7)]),
                Mult3::ONE,
            ),
        ],
    )
}

/// Fig. 1f (right): the top-2 highest-selling terms. The grey rows — the
/// only ones possibly in the result — are ([3/3/5], [4/7/7]) at positions
/// [0/0/1] and (4, [4/4/7]) at positions [0/1/1], both with multiplicity
/// (1,1,1); terms 1 and 2 are certainly out (the paper prints them with
/// multiplicity (0,0,0); we drop such rows).
#[test]
fn fig_1f_top2() {
    let au = sales_au();
    // "Most sales" = sort descending on sales: negate and sort ascending.
    let input = au_project(
        &au,
        &[
            (RangeExpr::col(0), "term"),
            (RangeExpr::col(1), "sales"),
            (RangeExpr::Neg(Box::new(RangeExpr::col(1))), "neg"),
        ],
    );
    let top2 = topk_native(&input, &[2], 2, "pos").normalize();
    assert_eq!(top2.rows().len(), 2, "{top2}");

    let find = |term_sg: i64| {
        top2.rows()
            .iter()
            .find(|r| r.tuple.get(0).sg == audb::rel::Value::Int(term_sg))
            .unwrap_or_else(|| panic!("term {term_sg} missing from {top2}"))
    };
    let t3 = find(3);
    assert_eq!(t3.tuple.get(0), &RangeValue::new(3, 3, 5));
    assert_eq!(t3.tuple.get(3), &RangeValue::new(0, 0, 1), "{top2}");
    assert_eq!(t3.mult, Mult3::ONE);
    let t4 = find(4);
    assert_eq!(t4.tuple.get(3), &RangeValue::new(0, 1, 1), "{top2}");
    assert_eq!(t4.mult, Mult3::ONE);
}

/// The positions of the *excluded* tuples also match Fig. 1f: terms 1 and 2
/// get position bounds [2/3/3] and [2/2/3] in the full sort.
#[test]
fn fig_1f_full_sort_positions() {
    let au = sales_au();
    let input = au_project(
        &au,
        &[
            (RangeExpr::col(0), "term"),
            (RangeExpr::col(1), "sales"),
            (RangeExpr::Neg(Box::new(RangeExpr::col(1))), "neg"),
        ],
    );
    let sorted = audb::native::sort_native(&input, &[2], "pos");
    let pos_of = |term: i64| {
        sorted
            .rows()
            .iter()
            .find(|r| r.tuple.get(0).sg == audb::rel::Value::Int(term))
            .map(|r| r.tuple.get(3).clone())
            .unwrap()
    };
    assert_eq!(pos_of(1), RangeValue::new(2, 3, 3));
    assert_eq!(pos_of(2), RangeValue::new(2, 2, 3));
    assert_eq!(pos_of(3), RangeValue::new(0, 0, 1));
    assert_eq!(pos_of(4), RangeValue::new(0, 1, 1));
}

/// Fig. 1g: sum(Sales) OVER (ORDER BY term ROWS BETWEEN CURRENT ROW AND 1
/// FOLLOWING) — all four printed rows reproduced exactly. Note that the
/// term-2 lower bound of 6 requires the *slot-occupancy* tightening
/// (guaranteed_extra in audb_core::WindowMembers): the paper's Sec. 6.1
/// formulas alone yield 2 (the min-k rule only adds negative possible
/// values), but its printed example uses the fact that the following slot
/// is always occupied; we implement that reasoning (DESIGN.md §3.4).
#[test]
fn fig_1g_windowed_sum() {
    let au = sales_au();
    let spec = AuWindowSpec::rows(vec![0], 0, 1);
    let out = window_native(&au, &spec, WinAgg::Sum(1), "sum").normalize();
    assert_eq!(out.rows().len(), 4, "{out}");
    let sum_of = |term: i64| {
        out.rows()
            .iter()
            .find(|r| r.tuple.get(0).sg == audb::rel::Value::Int(term))
            .map(|r| r.tuple.get(2).clone())
            .unwrap()
    };
    assert_eq!(sum_of(1), RangeValue::new(4, 5, 6));
    assert_eq!(sum_of(3), RangeValue::new(4, 11, 14));
    assert_eq!(sum_of(4), RangeValue::new(4, 4, 14));
    assert_eq!(
        sum_of(2),
        RangeValue::new(6, 10, 10),
        "paper's Fig. 1g row 2"
    );
    // And the paper's own over-approximation note holds: term 1's upper
    // bound is 6 although no single world exceeds 5.
    assert_eq!(sum_of(1).ub, audb::rel::Value::Int(6));
}

/// The reference, native and rewrite implementations all agree on the
/// running example.
#[test]
fn fig_1_method_agreement() {
    use audb::core::{sort_ref, window_ref, CmpSemantics};
    let au = sales_au();
    let native = audb::native::sort_native(&au, &[1, 0], "pos");
    let reference = sort_ref(&au, &[1, 0], "pos", CmpSemantics::IntervalLex);
    let rewrite = audb::rewrite::rewr_sort(&au, &[1, 0], "pos");
    assert!(native.bag_eq(&reference));
    assert!(rewrite.bag_eq(&reference));

    let spec = AuWindowSpec::rows(vec![0], 0, 1);
    let nat = window_native(&au, &spec, WinAgg::Sum(1), "s");
    let refr = window_ref(&au, &spec, WinAgg::Sum(1), "s", CmpSemantics::IntervalLex);
    let rewr = audb::rewrite::rewr_window(
        &au,
        &spec,
        WinAgg::Sum(1),
        "s",
        audb::rewrite::JoinStrategy::NestedLoop,
    );
    assert!(nat.bag_eq(&refr), "native:\n{nat}\nref:\n{refr}");
    assert!(rewr.bag_eq(&refr));
}
