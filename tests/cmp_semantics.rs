//! Comparison-semantics properties (DESIGN.md §3.2): the interval-lex
//! comparison is *exact* for independent per-attribute ranges — verified
//! against brute-force enumeration of all deterministic instantiations —
//! and the paper's syntactic recursion is sound relative to it.

use audb::core::{tuple_lt, AuTuple, CmpSemantics, RangeValue};
use audb::rel::Tuple;
use proptest::prelude::*;

fn rv_small() -> impl Strategy<Value = RangeValue> {
    (-2i64..3, 0i64..3).prop_map(|(lb, w)| RangeValue::new(lb, lb, lb + w))
}

fn tuple2() -> impl Strategy<Value = AuTuple> {
    (rv_small(), rv_small()).prop_map(|(a, b)| AuTuple::new([a, b]))
}

/// Enumerate every deterministic instantiation of a 2-attribute range tuple.
fn instantiations(t: &AuTuple) -> Vec<Tuple> {
    let r0 = t.get(0);
    let r1 = t.get(1);
    let (a0, b0) = (r0.lb.as_i64().unwrap(), r0.ub.as_i64().unwrap());
    let (a1, b1) = (r1.lb.as_i64().unwrap(), r1.ub.as_i64().unwrap());
    let mut out = Vec::new();
    for x in a0..=b0 {
        for y in a1..=b1 {
            out.push(Tuple::from([x, y]));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Interval-lex certain/possible flags are exactly the brute-force
    /// ∀/∃ of the lexicographic comparison.
    #[test]
    fn interval_lex_is_exact(a in tuple2(), b in tuple2()) {
        let r = tuple_lt(&a, &b, &[0, 1], CmpSemantics::IntervalLex);
        let mut all = true;
        let mut any = false;
        for x in instantiations(&a) {
            for y in instantiations(&b) {
                let lt = x < y; // lexicographic on (attr0, attr1)
                all &= lt;
                any |= lt;
            }
        }
        prop_assert_eq!(r.lb, all, "certain flag");
        prop_assert_eq!(r.ub, any, "possible flag");
        prop_assert!(r.is_wellformed());
    }

    /// Syntactic is sound: its certain ⊆ exact certain, its possible ⊇
    /// exact possible.
    #[test]
    fn syntactic_is_sound(a in tuple2(), b in tuple2()) {
        let exact = tuple_lt(&a, &b, &[0, 1], CmpSemantics::IntervalLex);
        let syn = tuple_lt(&a, &b, &[0, 1], CmpSemantics::Syntactic);
        prop_assert!(!syn.lb || exact.lb, "syntactic certain must imply exact certain");
        prop_assert!(!exact.ub || syn.ub, "exact possible must imply syntactic possible");
        prop_assert!(syn.is_wellformed());
    }

    /// Both semantics agree on the selected guess (it is deterministic).
    #[test]
    fn sg_component_agrees(a in tuple2(), b in tuple2()) {
        let exact = tuple_lt(&a, &b, &[0, 1], CmpSemantics::IntervalLex);
        let syn = tuple_lt(&a, &b, &[0, 1], CmpSemantics::Syntactic);
        prop_assert_eq!(exact.sg, syn.sg);
    }
}
