//! The SQL round-trip guarantee: for random builder-generated plans,
//! pretty-printing to SQL and reparsing through a session catalog yields
//! the *identical* plan (`parse ∘ print = id` — same operator chain, same
//! per-operator schemas, same shared source), and both plans produce
//! bag-equal bounds on **all three** backends (`run_all`).

use audb::core::{AuRelation, AuTuple, Mult3, RangeExpr, RangeValue};
use audb::engine::{Agg, Engine, Plan, Query, Session, WindowSpec};
use audb::rel::{CmpOp, Schema};
use proptest::prelude::*;
use std::sync::Arc;

fn rv_strategy() -> impl Strategy<Value = RangeValue> {
    (0i64..10, 0i64..4, 0i64..4)
        .prop_map(|(lb, d1, d2)| RangeValue::new(lb, lb + d1.min(d2), lb + d1.max(d2)))
}

fn mult_strategy() -> impl Strategy<Value = Mult3> {
    prop_oneof![
        Just(Mult3::ONE),
        Just(Mult3::new(0, 1, 1)),
        Just(Mult3::new(0, 0, 1)),
        Just(Mult3::new(1, 1, 2)),
    ]
}

fn au_relation() -> impl Strategy<Value = AuRelation> {
    proptest::collection::vec(((rv_strategy(), rv_strategy()), mult_strategy()), 1..=5).prop_map(
        |rows| {
            AuRelation::from_rows(
                Schema::new(["a", "b"]),
                rows.into_iter()
                    .map(|((a, b), m)| (AuTuple::new([a, b]), m)),
            )
        },
    )
}

/// Abstract operator choices with raw numeric parameters; `apply` fits
/// them to whatever schema the chain has reached, so every generated chain
/// builds successfully.
#[derive(Clone, Debug)]
enum OpSeed {
    Select {
        col: usize,
        cmp: usize,
        lit: i64,
        neg: bool,
    },
    Project {
        keep: Vec<usize>,
    },
    ProjectExprs {
        a: usize,
        b: usize,
    },
    Sort {
        cols: Vec<usize>,
        k: Option<u64>,
    },
    Window {
        order: usize,
        part: Option<usize>,
        frame: usize,
        agg: usize,
    },
}

fn op_seed() -> impl Strategy<Value = OpSeed> {
    prop_oneof![
        (0usize..8, 0usize..6, 0i64..12, proptest::bool::ANY)
            .prop_map(|(col, cmp, lit, neg)| { OpSeed::Select { col, cmp, lit, neg } }),
        proptest::collection::vec(0usize..8, 1..=3).prop_map(|keep| OpSeed::Project { keep }),
        (0usize..8, 0usize..8).prop_map(|(a, b)| OpSeed::ProjectExprs { a, b }),
        (
            proptest::collection::vec(0usize..8, 1..=2),
            prop_oneof![Just(None), (0u64..5).prop_map(Some)]
        )
            .prop_map(|(cols, k)| OpSeed::Sort { cols, k }),
        (
            0usize..8,
            prop_oneof![Just(None), (0usize..8).prop_map(Some)],
            0usize..5,
            0usize..5
        )
            .prop_map(|(order, part, frame, agg)| OpSeed::Window {
                order,
                part,
                frame,
                agg
            }),
    ]
}

const CMPS: [CmpOp; 6] = [
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
    CmpOp::Eq,
    CmpOp::Ne,
];
const FRAMES: [(i64, i64); 5] = [(0, 0), (-1, 0), (-2, 0), (-1, 1), (0, 1)];

fn apply(q: Query, names: &mut Vec<String>, fresh: &mut u32, seed: &OpSeed) -> Query {
    let n = names.len();
    let mut next_name = || {
        let name = format!("c{fresh}");
        *fresh += 1;
        name
    };
    match seed {
        OpSeed::Select { col, cmp, lit, neg } => {
            // Neg-of-literal is the regression case: it must print as
            // `(-(5))`, not `(-5)` (which would fold back into a literal).
            let rhs = if *neg {
                RangeExpr::Neg(Box::new(RangeExpr::lit(*lit)))
            } else {
                RangeExpr::lit(*lit)
            };
            q.select(RangeExpr::Cmp(
                CMPS[cmp % CMPS.len()],
                Box::new(RangeExpr::col(col % n)),
                Box::new(rhs),
            ))
        }
        OpSeed::Project { keep } => {
            let mut idxs: Vec<usize> = Vec::new();
            for i in keep {
                let i = i % n;
                if !idxs.contains(&i) {
                    idxs.push(i);
                }
            }
            let selected: Vec<String> = idxs.iter().map(|&i| names[i].clone()).collect();
            let q = q.project(selected.iter().map(String::as_str));
            *names = selected;
            q
        }
        OpSeed::ProjectExprs { a, b } => {
            let (n1, n2) = (next_name(), next_name());
            let q = q.project_exprs([
                (RangeExpr::col(a % n), n1.clone()),
                (
                    RangeExpr::Add(
                        Box::new(RangeExpr::col(a % n)),
                        Box::new(RangeExpr::col(b % n)),
                    ),
                    n2.clone(),
                ),
            ]);
            *names = vec![n1, n2];
            q
        }
        OpSeed::Sort { cols, k } => {
            let mut idxs: Vec<usize> = Vec::new();
            for i in cols {
                let i = i % n;
                if !idxs.contains(&i) {
                    idxs.push(i);
                }
            }
            let pos = next_name();
            let q = q.sort_by_as(idxs, pos.clone());
            names.push(pos);
            match k {
                Some(k) => q.topk(*k),
                None => q,
            }
        }
        OpSeed::Window {
            order,
            part,
            frame,
            agg,
        } => {
            let (l, u) = FRAMES[frame % FRAMES.len()];
            let agg = match agg % 5 {
                0 => Agg::sum(order % n),
                1 => Agg::count(),
                2 => Agg::min(order % n),
                3 => Agg::max(order % n),
                _ => Agg::avg(order % n),
            };
            let mut spec = WindowSpec::rows(l, u).order_by([order % n]).aggregate(agg);
            if let Some(p) = part {
                spec = spec.partition_by([p % n]);
            }
            let out = next_name();
            let q = q.window(spec.output(out.clone()));
            names.push(out);
            q
        }
    }
}

fn plan_strategy() -> impl Strategy<Value = Plan> {
    (au_relation(), proptest::collection::vec(op_seed(), 0..=3)).prop_map(|(rel, seeds)| {
        let mut names: Vec<String> = rel.schema.cols().to_vec();
        let mut fresh = 0u32;
        let mut q = Query::scan(rel);
        for seed in &seeds {
            q = apply(q, &mut names, &mut fresh, seed);
        }
        q.build().expect("generated plan is valid by construction")
    })
}

/// Print a plan, reparse it against a catalog holding its source as `t`,
/// and return the recompiled plan.
fn roundtrip(plan: &Plan) -> Plan {
    let sql = plan.to_sql("t");
    let session = Session::new(Engine::native());
    session.register("t", Arc::clone(plan.source_arc()));
    let prepared = session
        .prepare(&sql)
        .unwrap_or_else(|e| panic!("printed SQL must reparse: {e}\nsql: {sql}\nplan: {plan:?}"));
    prepared.plan().clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `parse ∘ print = id`: the reparsed plan has the identical operator
    /// chain and schemas, shares the same source, and the printed form is a
    /// fixpoint (printing the reparsed plan gives the same SQL back).
    #[test]
    fn printed_plans_reparse_to_the_identical_plan(plan in plan_strategy()) {
        let sql = plan.to_sql("t");
        let back = roundtrip(&plan);
        prop_assert!(
            plan.same_shape(&back),
            "plan drifted through SQL:\n  sql: {sql}\n  ops:  {:?}\n  back: {:?}",
            plan.ops(), back.ops()
        );
        prop_assert!(Arc::ptr_eq(plan.source_arc(), back.source_arc()));
        prop_assert_eq!(back.to_sql("t"), sql, "printing is a fixpoint");
        prop_assert_eq!(back.sql().unwrap(), sql, "provenance carries the text");
    }

    /// SQL-issued plans keep the paper's cross-implementation invariant:
    /// `run_all` (reference ≡ native ≡ rewrite, bag-equal bounds) agrees
    /// between the original and the reparsed plan.
    #[test]
    fn reparsed_plans_agree_on_all_backends(plan in plan_strategy()) {
        let back = roundtrip(&plan);
        let original = Engine::native().run_all(&plan).expect("backends agree on original");
        let reparsed = Engine::native().run_all(&back).expect("backends agree on reparsed");
        prop_assert!(
            original.output.bag_eq(&reparsed.output),
            "original:\n{}\nreparsed:\n{}", original.output, reparsed.output
        );
    }
}

/// Regression: `Neg` over a numeric literal must not print as `(-5)` —
/// the parser folds that into the literal -5 and the op chain drifts.
#[test]
fn neg_of_literal_roundtrips() {
    let rel = AuRelation::from_rows(
        Schema::new(["a", "b"]),
        [(
            AuTuple::new([RangeValue::new(-9, -3, 1), RangeValue::certain(2i64)]),
            Mult3::ONE,
        )],
    );
    let plan = Query::scan(rel)
        .select(RangeExpr::col(0).lt(RangeExpr::Neg(Box::new(RangeExpr::lit(5)))))
        .build()
        .unwrap();
    let sql = plan.to_sql("t");
    assert_eq!(sql, "SELECT * FROM t WHERE (a < (-(5)))");
    let back = roundtrip(&plan);
    assert!(plan.same_shape(&back), "ops: {:?}", back.ops());

    // A plain negative literal still prints (and folds back) as itself.
    let rel2 = back.source_arc().clone();
    let plan = Query::scan(rel2)
        .select(RangeExpr::col(0).lt(RangeExpr::lit(-5)))
        .build()
        .unwrap();
    assert_eq!(plan.to_sql("t"), "SELECT * FROM t WHERE (a < -5)");
    assert!(plan.same_shape(&roundtrip(&plan)));
}

/// A deterministic multi-block chain: every operator kind in one plan,
/// printed across nested sub-selects, reparses identically.
#[test]
fn kitchen_sink_plan_roundtrips() {
    let rel = AuRelation::from_rows(
        Schema::new(["a", "b"]),
        [
            (
                AuTuple::new([RangeValue::new(1, 2, 3), RangeValue::certain(10i64)]),
                Mult3::ONE,
            ),
            (
                AuTuple::new([RangeValue::certain(2i64), RangeValue::new(7, 8, 12)]),
                Mult3::new(0, 1, 1),
            ),
        ],
    );
    let plan = Query::scan(rel)
        .select(RangeExpr::col(0).le(RangeExpr::Lit(RangeValue::new(1, 2, 9))))
        .window(
            WindowSpec::rows(-1, 0)
                .order_by(["b"])
                .partition_by(["a"])
                .aggregate(Agg::sum("b"))
                .output("s"),
        )
        .project_exprs([
            (RangeExpr::col(0), "a2".to_string()),
            (
                RangeExpr::Mul(Box::new(RangeExpr::col(2)), Box::new(RangeExpr::lit(2))),
                "s2".to_string(),
            ),
        ])
        .sort_by_as(["s2", "a2"], "rank")
        .topk(3)
        .build()
        .unwrap();
    let sql = plan.to_sql("t");
    assert_eq!(
        sql,
        "SELECT a AS a2, (s * 2) AS s2 FROM \
         (SELECT *, SUM(b) OVER (PARTITION BY a ORDER BY b \
         ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) AS s FROM t \
         WHERE (a <= RANGE(1, 2, 9))) ORDER BY s2, a2 AS rank LIMIT 3"
    );
    let back = roundtrip(&plan);
    assert!(plan.same_shape(&back));
}
