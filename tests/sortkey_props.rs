//! Property tests pinning the zero-allocation hot paths to their
//! semantic references:
//!
//! * [`SortKey`] byte order ≡ [`Value::cmp`] (and its lexicographic
//!   extension to mixed-type tuples) — the contract every heap, sweep and
//!   normalize sort in `audb-native`/`audb-core` now relies on;
//! * the rewritten `normalize()` (precomputed keys, sort + adjacent-merge,
//!   borrow-or-owned fast path) ≡ the original semantics: merge identical
//!   hypercubes additively, drop `(0,0,0)` rows, deterministic total order.

use audb::core::sortkey::{Corner, SortKey};
use audb::core::{AuRelation, AuTuple, Mult3, RangeValue};
use audb::rel::{Schema, Tuple, Value};
use proptest::prelude::*;

/// Values across every variant, weighted toward collision-prone numerics
/// (equal ints/floats, signed zeros, NaN) so the cross-type edge cases of
/// `Value::cmp` are exercised, not dodged.
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        proptest::bool::ANY.prop_map(Value::Bool),
        (-6i64..6).prop_map(Value::Int),
        Just(Value::Int(i64::MAX)),
        Just(Value::Int(i64::MIN)),
        Just(Value::Int((1 << 53) + 1)),
        (-6i64..6).prop_map(|i| Value::Float(i as f64)),
        (-24i64..24).prop_map(|i| Value::Float(i as f64 / 4.0)),
        Just(Value::Float(-0.0)),
        Just(Value::Float(f64::NAN)),
        Just(Value::Float(-f64::NAN)),
        Just(Value::Float(f64::INFINITY)),
        Just(Value::Float(f64::NEG_INFINITY)),
        Just(Value::Float((1u64 << 53) as f64)),
        (0u8..4, 0u8..3).prop_map(|(c, n)| {
            let ch = [b'a', b'b', b'\0', b'z'][c as usize] as char;
            Value::str(ch.to_string().repeat(n as usize))
        }),
    ]
}

fn rv_strategy() -> impl Strategy<Value = RangeValue> {
    (value_strategy(), value_strategy(), value_strategy()).prop_map(|(a, b, c)| {
        // Order the three draws so the range is well-formed.
        let mut v = [a, b, c];
        v.sort();
        let [lb, sg, ub] = v;
        RangeValue { lb, sg, ub }
    })
}

fn au_relation_strategy() -> impl Strategy<Value = AuRelation> {
    let mult = prop_oneof![
        Just(Mult3::ZERO),
        Just(Mult3::ONE),
        Just(Mult3::new(0, 1, 1)),
        Just(Mult3::new(0, 0, 1)),
        Just(Mult3::new(1, 2, 3)),
    ];
    proptest::collection::vec(((rv_strategy(), rv_strategy()), mult), 0..14).prop_map(|rows| {
        AuRelation::from_rows(
            Schema::new(["a", "b"]),
            rows.into_iter()
                .map(|((a, b), m)| (AuTuple::new([a, b]), m)),
        )
    })
}

/// The historic normalize(): hash-merge on tuple equality, drop zeros,
/// sort by corner tuples compared element-wise. Kept here as the semantic
/// reference for the optimized implementation.
fn normalize_reference(rel: &AuRelation) -> Vec<(AuTuple, Mult3)> {
    let mut map: Vec<(AuTuple, Mult3)> = Vec::new();
    for row in rel.rows() {
        if row.mult.is_zero() {
            continue;
        }
        match map.iter_mut().find(|(t, _)| *t == row.tuple) {
            Some((_, m)) => *m = *m + row.mult,
            None => map.push((row.tuple.clone(), row.mult)),
        }
    }
    map.sort_by(|a, b| {
        a.0.lb_tuple()
            .cmp(&b.0.lb_tuple())
            .then_with(|| a.0.ub_tuple().cmp(&b.0.ub_tuple()))
            .then_with(|| a.0.sg_tuple().cmp(&b.0.sg_tuple()))
    });
    map
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Single-value key order ≡ `Value::cmp`, for every pair of generated
    /// values (including NaN payload/sign classes and -0.0 vs Int(0)).
    #[test]
    fn sortkey_matches_value_cmp(a in value_strategy(), b in value_strategy()) {
        let (ka, kb) = (SortKey::of_value(&a), SortKey::of_value(&b));
        prop_assert_eq!(ka.cmp(&kb), a.cmp(&b), "{:?} vs {:?}", a, b);
    }

    /// Concatenated keys ≡ lexicographic tuple comparison, mixed types and
    /// unequal prefixes included.
    #[test]
    fn sortkey_tuples_match_lexicographic_cmp(
        xs in proptest::collection::vec(value_strategy(), 1..4),
        ys in proptest::collection::vec(value_strategy(), 1..4),
    ) {
        // Compare on the shared arity (keys of different arity encode
        // different projections; the operators never mix those).
        let n = xs.len().min(ys.len());
        let idxs: Vec<usize> = (0..n).collect();
        let (a, b) = (Tuple::new(xs), Tuple::new(ys));
        let ka = SortKey::of_tuple(&a, &idxs);
        let kb = SortKey::of_tuple(&b, &idxs);
        let expect = idxs
            .iter()
            .map(|&i| a.get(i).cmp(b.get(i)))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal);
        prop_assert_eq!(ka.cmp(&kb), expect, "{} vs {}", a, b);
    }

    /// Corner keys equal the key of the materialized corner tuple — the
    /// allocation they avoid is pure overhead, not a semantic change.
    #[test]
    fn corner_keys_equal_materialized(
        rvs in proptest::collection::vec(rv_strategy(), 1..4),
    ) {
        let t = AuTuple::new(rvs);
        let idxs: Vec<usize> = (0..t.arity()).collect();
        prop_assert_eq!(
            SortKey::of_corner(&t, Corner::Lb, &idxs),
            SortKey::of_tuple(&t.lb_tuple(), &idxs)
        );
        prop_assert_eq!(
            SortKey::of_corner(&t, Corner::Sg, &idxs),
            SortKey::of_tuple(&t.sg_tuple(), &idxs)
        );
        prop_assert_eq!(
            SortKey::of_corner(&t, Corner::Ub, &idxs),
            SortKey::of_tuple(&t.ub_tuple(), &idxs)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Optimized `normalize()` ≡ the historic merge/drop/sort semantics.
    #[test]
    fn normalize_matches_reference(rel in au_relation_strategy()) {
        let expect = normalize_reference(&rel);
        let got = rel.clone().normalize();
        prop_assert!(got.is_normalized());
        prop_assert_eq!(got.rows().len(), expect.len());
        for (row, (t, m)) in got.rows().iter().zip(&expect) {
            prop_assert_eq!(&row.tuple, t);
            prop_assert_eq!(&row.mult, m);
        }
    }

    /// The borrow-or-owned entry agrees with by-value normalize, and
    /// borrowing really happens on canonical inputs.
    #[test]
    fn normalized_cow_agrees_and_borrows(rel in au_relation_strategy()) {
        let owned = rel.clone().normalize();
        {
            let cow = rel.normalized();
            prop_assert_eq!(cow.rows().len(), owned.rows().len());
            for (a, b) in cow.rows().iter().zip(owned.rows()) {
                prop_assert_eq!(a, b);
            }
            prop_assert!(matches!(rel.normalized(), std::borrow::Cow::Owned(_)) || rel.is_normalized());
        }
        // Once canonical, normalized() must borrow (the fast path).
        let cow = owned.normalized();
        prop_assert!(matches!(cow, std::borrow::Cow::Borrowed(_)));
        // And normalize() on a canonical relation is the identity.
        let again = owned.clone().normalize();
        prop_assert_eq!(again.rows().len(), owned.rows().len());
        for (a, b) in again.rows().iter().zip(owned.rows()) {
            prop_assert_eq!(a, b);
        }
    }

    /// Normalization is idempotent and blind to input row order.
    #[test]
    fn normalize_is_order_insensitive(rel in au_relation_strategy(), rot in 0usize..8) {
        let mut shuffled = rel.clone();
        if !shuffled.rows().is_empty() {
            let r = rot % shuffled.rows().len();
            shuffled.rows_mut().rotate_left(r);
        }
        let a = rel.normalize();
        let b = shuffled.normalize();
        prop_assert_eq!(a.rows().len(), b.rows().len());
        for (x, y) in a.rows().iter().zip(b.rows()) {
            prop_assert_eq!(x, y);
        }
    }
}
