//! The paper's central correctness property (Theorems 1 and 2), verified
//! mechanically: for random incomplete databases, the AU-DB result of
//! sort / top-k / windowed aggregation **bounds the deterministic result of
//! every possible world** — checked with the exact tuple-matching max-flow
//! of `audb_worlds::bounding`, not with a weaker heuristic.

use audb::core::{AuWindowSpec, WinAgg};
use audb::rel::{
    select, sort_to_pos, window_rows, AggFunc, Expr, Schema, Tuple, Value, WindowSpec,
};
use audb::worlds::{bounds_world, enumerate_worlds, Alternative, XTuple, XTupleTable};
use proptest::prelude::*;

/// Random small x-tuple tables: ≤ 6 tuples, ≤ 3 alternatives each over a
/// tiny value domain (collisions and ties actively exercised), optional
/// absence, and occasionally a declared range wider than the hull.
fn table_strategy() -> impl Strategy<Value = XTupleTable> {
    let alt = (0i64..8, 0i64..8);
    let xtuple = (
        proptest::collection::vec(alt, 1..=3),
        proptest::bool::ANY, // may be absent?
        proptest::bool::ANY, // widen declared ranges?
    )
        .prop_map(|(alts, absent, widen)| {
            let present: f64 = if absent { 0.5 } else { 1.0 };
            let p = present / alts.len() as f64;
            let xt = XTuple::new(
                alts.iter()
                    .map(|&(a, b)| Alternative {
                        tuple: Tuple::from([a, b]),
                        prob: p,
                    })
                    .collect(),
            );
            if widen {
                let lo0 = alts.iter().map(|a| a.0).min().unwrap();
                let hi0 = alts.iter().map(|a| a.0).max().unwrap();
                let lo1 = alts.iter().map(|a| a.1).min().unwrap();
                let hi1 = alts.iter().map(|a| a.1).max().unwrap();
                xt.with_declared(vec![
                    (Value::Int(lo0 - 1), Value::Int(hi0 + 1)),
                    (Value::Int(lo1), Value::Int(hi1 + 2)),
                ])
            } else {
                xt
            }
        });
    proptest::collection::vec(xtuple, 1..=6)
        .prop_map(|tuples| XTupleTable::new(Schema::new(["a", "b"]), tuples))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1: sorting is bound preserving.
    #[test]
    fn sort_bounds_every_world(table in table_strategy()) {
        let au = table.to_au_relation();
        let sorted = audb::native::sort_native(&au, &[0], "pos");
        for w in enumerate_worlds(&table, 4096) {
            let det = sort_to_pos(&w.relation, &[0], "pos");
            prop_assert!(
                bounds_world(&sorted, &det),
                "world {:?} not bounded by\n{sorted}",
                det
            );
        }
    }

    /// Top-k = sort + selection is bound preserving.
    #[test]
    fn topk_bounds_every_world(table in table_strategy(), k in 1u64..4) {
        let au = table.to_au_relation();
        let top = audb::native::topk_native(&au, &[0], k, "pos");
        for w in enumerate_worlds(&table, 4096) {
            let det = sort_to_pos(&w.relation, &[0], "pos");
            let pos_col = det.schema.arity() - 1;
            let det_top = select(&det, &Expr::col(pos_col).lt(Expr::lit(k as i64)));
            prop_assert!(
                bounds_world(&top, &det_top),
                "world top-{k} {det_top} not bounded by\n{top}"
            );
        }
    }

    /// Theorem 2: windowed aggregation is bound preserving (native).
    #[test]
    fn window_bounds_every_world(
        table in table_strategy(),
        lu in prop_oneof![Just((0i64, 0i64)), Just((-1, 0)), Just((-2, 0)), Just((-1, 1))],
        agg in prop_oneof![
            Just((WinAgg::Sum(1), AggFunc::Sum(1))),
            Just((WinAgg::Count, AggFunc::Count)),
            Just((WinAgg::Min(1), AggFunc::Min(1))),
            Just((WinAgg::Max(1), AggFunc::Max(1))),
        ],
    ) {
        let (l, u) = lu;
        let (au_agg, det_agg) = agg;
        let au = table.to_au_relation();
        let spec = AuWindowSpec::rows(vec![0], l, u);
        let out = audb::native::window_native(&au, &spec, au_agg, "x");
        for w in enumerate_worlds(&table, 2048) {
            let det = window_rows(&w.relation, &WindowSpec::rows(vec![0], l, u), det_agg, "x");
            prop_assert!(
                bounds_world(&out, &det),
                "world window result {det} not bounded by\n{out}"
            );
        }
    }

    /// The rewrite method is bound preserving too (it must be — it equals
    /// the reference — but this checks the full pipeline independently).
    #[test]
    fn rewrite_window_bounds_every_world(table in table_strategy()) {
        let au = table.to_au_relation();
        let spec = AuWindowSpec::rows(vec![0], -1, 0);
        let out = audb::rewrite::rewr_window(
            &au,
            &spec,
            WinAgg::Sum(1),
            "x",
            audb::rewrite::JoinStrategy::IntervalIndex,
        );
        for w in enumerate_worlds(&table, 2048) {
            let det = window_rows(&w.relation, &WindowSpec::rows(vec![0], -1, 0), AggFunc::Sum(1), "x");
            prop_assert!(bounds_world(&out, &det));
        }
    }

    /// The derived AU-DB itself bounds the incomplete database (sanity for
    /// the whole setup), including the selected-guess world condition.
    #[test]
    fn derived_audb_bounds_the_table(table in table_strategy()) {
        let au = table.to_au_relation();
        let worlds: Vec<_> = enumerate_worlds(&table, 4096)
            .into_iter()
            .map(|w| w.relation)
            .collect();
        prop_assert!(audb::worlds::bounds_incomplete(&au, &worlds, true));
    }
}
