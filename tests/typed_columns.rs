//! Property tests pinning the typed physical layer (PR 6) to the generic
//! `Value` path it accelerates. The oracle is [`AuColumns::to_generic`]:
//! demoting every column to `Generic(Vec<Value>)` lanes forces every
//! kernel down the historical `Value`-sweeping path, so for any relation
//! the typed and demoted columns must agree on
//!
//! * the vectorized expression kernels (`eval_batch` / `truth_batch` /
//!   `eval_batch_at` / `truth_batch_at` / `eval_batch_column`) — across
//!   monomorphic `i64` / `f64` / dictionary-string sweeps, the int–float
//!   cross-comparison kernels, overflow fallback, and plain generic
//!   fallback expressions;
//! * `SortKey::of_columns` (typed slices encode the same memcmp keys the
//!   per-value encoder produces — NaN, `-0.0`, and int/float alignment
//!   included);
//! * `normalize` (whole relation canonicalization);
//! * row ↔ column round-trips, dictionary-encoded string columns
//!   included.
//!
//! The value pools deliberately include the adversarial corners: NaN
//! (one equivalence class above every other number), `-0.0 ≡ 0.0`,
//! `i64::MAX` (typed add bails to the generic overflow-to-float
//! promotion), and `±2⁵³`-scale floats.

use audb::core::{AuColumns, AuRelation, AuTuple, Mult3, PhysType, RangeExpr, RangeValue, SortKey};
use audb::rel::{CmpOp, Schema, Value};
use proptest::prelude::*;

fn i64_val() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-6i64..6).prop_map(Value::Int),
        Just(Value::Int(i64::MAX)),
        Just(Value::Int(i64::MIN + 1)),
    ]
}

fn f64_val() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-8i64..8).prop_map(|i| Value::Float(i as f64 / 2.0)),
        Just(Value::Float(f64::NAN)),
        Just(Value::Float(-0.0)),
        Just(Value::Float(0.0)),
        Just(Value::Float(9_007_199_254_740_992.0)), // 2^53
    ]
}

fn str_val() -> impl Strategy<Value = Value> {
    (0u8..5).prop_map(|c| Value::str(["", "a", "ab", "b", "ba"][c as usize]))
}

/// Mixed-class cells — this column stays on the generic fallback.
fn mixed_val() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-5i64..5).prop_map(Value::Int),
        (-4i64..4).prop_map(|i| Value::Float(i as f64 + 0.5)),
        proptest::bool::ANY.prop_map(Value::Bool),
        str_val(),
    ]
}

/// Range values over one value pool, biased toward certainty so both the
/// certain-collapsed fast path and the bitmap-carrying ranged layout
/// occur; the triple is sorted under the total `Value` order so the
/// `lb ≤ sg ≤ ub` invariant holds even for NaN-bearing samples.
fn rv_of<S: Strategy<Value = Value> + 'static>(
    vals: impl Fn() -> S,
) -> impl Strategy<Value = RangeValue> {
    prop_oneof![
        vals().prop_map(RangeValue::certain),
        (vals(), vals(), vals()).prop_map(|(a, b, c)| {
            let mut v = [a, b, c];
            v.sort_by(|x, y| x.partial_cmp(y).expect("Value order is total"));
            let [l, s, u] = v;
            RangeValue::new(l, s, u)
        }),
    ]
}

fn mult_strategy() -> impl Strategy<Value = Mult3> {
    prop_oneof![
        Just(Mult3::ONE),
        Just(Mult3::ZERO),
        Just(Mult3::new(0, 1, 1)),
        Just(Mult3::new(1, 2, 4)),
    ]
}

/// Four-attribute relations: one column per typed layout (`i64`, `f64`,
/// dictionary string) plus a mixed-class generic column.
fn typed_relation(max_rows: usize) -> impl Strategy<Value = AuRelation> {
    proptest::collection::vec(
        (
            (
                rv_of(i64_val),
                rv_of(f64_val),
                rv_of(str_val),
                rv_of(mixed_val),
            ),
            mult_strategy(),
        ),
        0..=max_rows,
    )
    .prop_map(|rows| {
        AuRelation::from_rows(
            Schema::new(["i", "f", "s", "g"]),
            rows.into_iter()
                .map(|((a, b, c, d), m)| (AuTuple::new([a, b, c, d]), m)),
        )
    })
}

/// Expression shapes whose typed lowering covers every kernel: pure
/// monomorphic sweeps, int–float cross comparisons, string dictionary
/// comparisons, typed arithmetic (with overflow bailout), and shapes that
/// must fall back (generic column, `Mul`, cross-class comparison,
/// predicates under arithmetic).
fn exprs() -> Vec<RangeExpr> {
    let col = RangeExpr::col;
    let lit = RangeExpr::lit;
    vec![
        col(0),
        col(1),
        col(2),
        col(3),
        // Same-type comparisons: i64/i64, f64/f64, str/str.
        col(0).lt(lit(2)),
        col(1).le(RangeExpr::lit(Value::Float(0.5))),
        col(1).eq(col(1)),
        col(2).lt(RangeExpr::lit(Value::str("b"))),
        col(2).cmp(CmpOp::Ge, col(2)),
        // Cross-type numeric comparisons, both orders, all six ops.
        col(0).lt(col(1)),
        col(1).lt(col(0)),
        col(0).le(col(1)),
        col(0).eq(col(1)),
        col(1).cmp(CmpOp::Ne, col(0)),
        col(0).cmp(CmpOp::Gt, col(1)),
        col(1).cmp(CmpOp::Ge, col(0)),
        // Typed arithmetic: i64 (checked, may bail on i64::MAX), mixed
        // promotion, antitone subtraction, bound-swapping negation.
        RangeExpr::Add(Box::new(col(0)), Box::new(lit(1))),
        RangeExpr::Add(Box::new(col(0)), Box::new(col(1))),
        RangeExpr::Sub(Box::new(col(1)), Box::new(col(0))),
        RangeExpr::Sub(Box::new(col(0)), Box::new(lit(3))),
        RangeExpr::Neg(Box::new(col(0))),
        RangeExpr::Neg(Box::new(col(1))),
        RangeExpr::Add(Box::new(col(0)), Box::new(col(0))).lt(lit(4)),
        // Boolean connectives over typed comparisons.
        col(0)
            .lt(col(1))
            .and(col(2).le(RangeExpr::lit(Value::str("ab")))),
        RangeExpr::Or(
            Box::new(col(0).eq(lit(1))),
            Box::new(col(1).lt(RangeExpr::lit(Value::Float(1.0)))),
        ),
        RangeExpr::Not(Box::new(col(0).le(col(1)))),
        // Fallback shapes: generic column, Mul, cross-class comparison,
        // predicate under arithmetic.
        col(3).lt(col(0)),
        RangeExpr::Mul(Box::new(col(0)), Box::new(col(1))),
        col(0).lt(col(2)),
        RangeExpr::Add(Box::new(col(0).lt(col(1))), Box::new(lit(1))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Load-time inference picks the typed layouts, and rows survive the
    /// round-trip exactly — dictionary-encoded string columns included.
    #[test]
    fn typed_layouts_roundtrip_rows(rel in typed_relation(10)) {
        let cols = rel.to_columns();
        if !rel.is_empty() {
            let t = cols.col_phys_types();
            prop_assert_eq!(t[0], PhysType::I64);
            prop_assert_eq!(t[1], PhysType::F64);
            prop_assert_eq!(t[2], PhysType::Str);
        }
        prop_assert_eq!(cols.to_rows().rows(), rel.rows());
        // Demotion is logically invisible.
        let generic = cols.to_generic();
        prop_assert!(generic.col_phys_types().iter().all(|t| *t == PhysType::Generic));
        prop_assert_eq!(generic.to_rows().rows(), rel.rows());
        for c in 0..cols.arity() {
            prop_assert_eq!(generic.col(c), cols.col(c), "col {}", c);
        }
        // The incremental builder stores the same bag under the same
        // logical equality.
        let mut pushed = AuColumns::empty(rel.schema.clone());
        for row in rel.rows() {
            pushed.push_row(&row.tuple, row.mult);
        }
        prop_assert_eq!(pushed.to_rows().rows(), rel.rows());
    }

    /// Typed kernels ≡ generic kernels on every expression shape, batch
    /// size, and selection, including `eval_batch_column`'s direct
    /// column materialization (certain-collapse decision included).
    #[test]
    fn typed_kernels_match_generic_kernels(
        rel in typed_relation(9),
        batch_size in prop_oneof![Just(1usize), Just(3), Just(1024)],
    ) {
        let cols = rel.to_columns();
        let generic = cols.to_generic();
        for e in exprs() {
            for (tb, gb) in cols.batches(batch_size).zip(generic.batches(batch_size)) {
                let vals = e.eval_batch(&tb);
                let truths = e.truth_batch(&tb);
                prop_assert_eq!(&vals, &e.eval_batch(&gb), "expr {:?}", e);
                prop_assert_eq!(&truths, &e.truth_batch(&gb), "expr {:?}", e);
                let idxs: Vec<usize> = (0..tb.len()).step_by(2).collect();
                prop_assert_eq!(
                    e.eval_batch_at(&tb, &idxs),
                    e.eval_batch_at(&gb, &idxs),
                    "expr {:?}", e
                );
                prop_assert_eq!(
                    e.truth_batch_at(&tb, &idxs),
                    e.truth_batch_at(&gb, &idxs),
                    "expr {:?}", e
                );
                let tc = e.eval_batch_column(&tb, &idxs);
                let gc = e.eval_batch_column(&gb, &idxs);
                prop_assert_eq!(tc.is_certain(), gc.is_certain(), "expr {:?}", e);
                for k in 0..idxs.len() {
                    prop_assert_eq!(
                        tc.range_value(k),
                        gc.range_value(k),
                        "expr {:?} @ {}", e, k
                    );
                }
            }
        }
    }

    /// Typed slice encoding ≡ per-value encoding: the memcmp sort keys
    /// are byte-identical, so every downstream order (sort, top-k,
    /// normalize) is unchanged by the physical layout.
    #[test]
    fn sortkey_of_columns_parity(rel in typed_relation(10)) {
        let cols = rel.to_columns();
        prop_assert_eq!(
            SortKey::of_columns(&cols),
            SortKey::of_columns(&cols.to_generic())
        );
    }

    /// Columnar normalize is layout-independent and agrees with the row
    /// oracle.
    #[test]
    fn normalize_parity(rel in typed_relation(10)) {
        let typed = rel.to_columns().normalize();
        let generic = rel.to_columns().to_generic().normalize();
        prop_assert_eq!(typed.to_rows().rows(), generic.to_rows().rows());
        prop_assert_eq!(typed.to_rows().rows(), rel.clone().normalize().rows());
    }

    /// Gather (the post-selection materialization) is layout-independent
    /// — the typed no-clone path picks exactly the rows the generic path
    /// picks.
    #[test]
    fn gather_parity(rel in typed_relation(10)) {
        let cols = rel.to_columns();
        let idxs: Vec<usize> = (0..rel.len()).step_by(2).collect();
        let mults: Vec<Mult3> = idxs.iter().map(|_| Mult3::ONE).collect();
        let typed = cols.gather(&idxs, &mults);
        let generic = cols.to_generic().gather(&idxs, &mults);
        prop_assert_eq!(typed.to_rows().rows(), generic.to_rows().rows());
    }
}
