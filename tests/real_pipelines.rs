//! End-to-end sanity over the real-world dataset simulators (Sec. 9.2):
//! every method runs on every query, the structural quality relationships
//! hold (AU bounds cover the exact truth; MCDB envelopes sit inside it),
//! and the pre-aggregation pipeline is consistent across representations.

use audb::competitors::ptk_possible;
use audb::workloads::metrics::aggregate_quality;
use audb::workloads::runner::{self, Bounds};
use audb::workloads::{all_datasets, iceberg};

fn pairs(approx: &Bounds, tight: &Bounds) -> Vec<((f64, f64), (f64, f64))> {
    approx
        .iter()
        .zip(tight)
        .filter_map(|(a, t)| Some(((*a)?, (*t)?)))
        .collect()
}

#[test]
fn rank_quality_relationships_hold_on_all_datasets() {
    for ds in all_datasets(0.004, 42) {
        let rq = &ds.rank;
        let tight = runner::symb_sort(&rq.table, &rq.order).value;
        let imp = runner::imp_sort(&rq.table, &rq.order, None).value;
        let rewr = runner::rewrite_sort(&rq.table, &rq.order, None).value;
        let mc = runner::mcdb_sort(&rq.table, &rq.order, 20, 9).value;

        assert_eq!(imp, rewr, "{}: Imp and Rewr must agree", ds.name);
        let qi = aggregate_quality(pairs(&imp, &tight));
        assert!(qi.recall > 0.999, "{}: AU recall {qi:?}", ds.name);
        let qm = aggregate_quality(pairs(&mc, &tight));
        assert!(
            qm.accuracy > 0.999,
            "{}: MCDB under-approximates, so full precision: {qm:?}",
            ds.name
        );
        assert!(qm.recall <= 1.0 + 1e-9);
    }
}

#[test]
fn window_queries_cover_truth_where_computable() {
    for ds in all_datasets(0.004, 11) {
        let wq = &ds.window;
        if wq.l.abs() > 8 {
            continue; // unbounded healthcare rank window: no local truth
        }
        let tight = runner::symb_window(&wq.table, &wq.order, wq.agg, wq.l, wq.u, 1 << 20).value;
        let imp = runner::imp_window(&wq.table, &wq.order, wq.agg, wq.l, wq.u).value;
        let q = aggregate_quality(pairs(&imp, &tight));
        assert!(q.recall > 0.999, "{}: {q:?}", ds.name);
    }
}

/// The pre-aggregated iceberg rank input is consistent: the AU relation
/// derived from the converted x-tuples bounds the conversion's most likely
/// world, and PT-k's possible answers are covered by the AU top-k's
/// possible answers.
#[test]
fn preaggregation_representations_are_consistent() {
    let ds = iceberg(0.004, 3);
    let rq = &ds.rank;
    let au = rq.table.to_au_relation();
    assert!(audb::worlds::bounds_world(
        &au,
        &rq.table.most_likely_world()
    ));

    let possible = ptk_possible(&rq.table, &rq.order, rq.k);
    let imp = runner::imp_sort(&rq.table, &rq.order, Some(rq.k)).value;
    for idx in possible {
        assert!(
            imp[idx].is_some(),
            "PT-k possible answer {idx} missing from the AU top-k"
        );
    }
}

#[test]
fn healthcare_inline_rank_bounds_are_ranks() {
    let ds = audb::workloads::healthcare(0.02, 5);
    let wq = &ds.window;
    let imp = runner::imp_window(&wq.table, &wq.order, wq.agg, wq.l, wq.u).value;
    let n = wq.table.len() as f64;
    let mut covered = 0;
    for b in imp.iter().flatten() {
        assert!(b.0 >= 1.0 && b.1 <= n, "rank bounds out of [1, n]");
        covered += 1;
    }
    assert_eq!(covered, wq.table.len());
}
