//! The pipeline executor's semantic contract: for **every** plan, backend
//! and batch size, batch-streaming pipelined execution (fused
//! select/project stages, morsel-parallel, breakers materializing) is
//! bag-equal to the original materialized operator-at-a-time execution.
//!
//! Plans here are deliberately richer than the cross-backend agreement
//! suite's: multiple streamable operators in a row (so fusion chains have
//! length > 1), streamable operators between breakers, and degenerate
//! batch sizes (1, input size, larger than input) that stress batch
//! boundaries.

use audb::core::{AuRelation, AuTuple, Mult3, RangeExpr, RangeValue};
use audb::engine::{optimize, Agg, BackendChoice, Engine, ExecMode, Plan, Query, WindowSpec};
use audb::rel::Schema;
use proptest::prelude::*;

fn rv_strategy() -> impl Strategy<Value = RangeValue> {
    (0i64..10, 0i64..5, 0i64..5)
        .prop_map(|(lb, d1, d2)| RangeValue::new(lb, lb + d1.min(d2), lb + d1.max(d2)))
}

fn mult_strategy() -> impl Strategy<Value = Mult3> {
    prop_oneof![
        Just(Mult3::ONE),
        Just(Mult3::new(0, 1, 1)),
        Just(Mult3::new(0, 0, 1)),
        Just(Mult3::new(1, 1, 2)),
        Just(Mult3::new(1, 2, 3)),
        // Zero annotations exercise the projection drop rule.
        Just(Mult3::ZERO),
    ]
}

fn au_relation(max_rows: usize) -> impl Strategy<Value = AuRelation> {
    proptest::collection::vec(
        ((rv_strategy(), rv_strategy()), mult_strategy()),
        0..=max_rows,
    )
    .prop_map(|rows| {
        AuRelation::from_rows(
            Schema::new(["a", "b"]),
            rows.into_iter()
                .map(|((a, b), m)| (AuTuple::new([a, b]), m)),
        )
    })
}

/// One streamable operator appended to the chain: a selection on the
/// first column, a reordering projection, or a computed projection that
/// keeps the arity at 2 (so later operators can still resolve columns).
#[derive(Clone, Debug)]
enum Streamable {
    Select(i64),
    Swap,
    Compute,
}

fn streamable_strategy() -> impl Strategy<Value = Streamable> {
    prop_oneof![
        (0i64..12).prop_map(Streamable::Select),
        Just(Streamable::Swap),
        Just(Streamable::Compute),
    ]
}

/// Append a streamable op. Projections rename to fresh `a`/`b` columns so
/// chains compose regardless of what ran before.
fn apply_streamable(q: Query, s: &Streamable) -> Query {
    match s {
        Streamable::Select(bound) => q.select(RangeExpr::col(0).le(RangeExpr::lit(*bound))),
        Streamable::Swap => q.project_exprs([
            (RangeExpr::col(1), "a".to_string()),
            (RangeExpr::col(0), "b".to_string()),
        ]),
        Streamable::Compute => q.project_exprs([
            (RangeExpr::col(0), "a".to_string()),
            (
                RangeExpr::Add(Box::new(RangeExpr::col(1)), Box::new(RangeExpr::lit(1))),
                "b".to_string(),
            ),
        ]),
    }
}

/// One breaker appended to the chain. Position/aggregate columns are
/// projected away right after, so plans can stack several breakers while
/// the streamable generators keep seeing a two-column `a`/`b` schema.
#[derive(Clone, Debug)]
enum Breaker {
    Sort,
    TopK(u64),
    Window { lower: i64, upper: i64 },
}

fn breaker_strategy() -> impl Strategy<Value = Breaker> {
    prop_oneof![
        Just(Breaker::Sort),
        (0u64..5).prop_map(Breaker::TopK),
        prop_oneof![Just((0i64, 0i64)), Just((-1, 0)), Just((-1, 1))]
            .prop_map(|(lower, upper)| Breaker::Window { lower, upper }),
    ]
}

fn apply_breaker(q: Query, b: &Breaker, tag: usize) -> Query {
    let out = format!("x{tag}");
    let q = match b {
        Breaker::Sort => q.sort_by_as(["a"], &out),
        Breaker::TopK(k) => q.sort_by_as(["a"], &out).topk(*k),
        Breaker::Window { lower, upper } => q.window(
            WindowSpec::rows(*lower, *upper)
                .order_by(["a"])
                .aggregate(Agg::sum("b"))
                .output(&out),
        ),
    };
    // Keep the evolving schema at ["a", "b"] for the next segment.
    q.project(["a", "b"])
}

/// A random plan: up to three segments of (0–2 streamable ops, breaker),
/// closed by a final run of streamable ops — covering empty fusion
/// chains, multi-op fusion chains, consecutive breakers and trailing
/// output pipelines.
fn plan_strategy() -> impl Strategy<Value = Plan> {
    (
        au_relation(9),
        proptest::collection::vec(
            (
                proptest::collection::vec(streamable_strategy(), 0..=2),
                breaker_strategy(),
            ),
            0..=3,
        ),
        proptest::collection::vec(streamable_strategy(), 0..=2),
    )
        .prop_map(|(rel, segments, tail)| {
            let mut q = Query::scan(rel);
            for (tag, (streamables, breaker)) in segments.iter().enumerate() {
                for s in streamables {
                    q = apply_streamable(q, s);
                }
                q = apply_breaker(q, breaker, tag);
            }
            for s in &tail {
                q = apply_streamable(q, s);
            }
            q.build().expect("generated plan is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// THE tentpole invariant: pipelined ≡ materialized, bag-wise, on all
    /// three backends, across batch sizes including the degenerate ones.
    #[test]
    fn pipelined_equals_materialized_on_all_backends(
        plan in plan_strategy(),
        batch_size in prop_oneof![Just(1usize), Just(2), Just(7), Just(1024)],
    ) {
        for choice in BackendChoice::ALL {
            let materialized = Engine::new(choice)
                .with_exec_mode(ExecMode::Materialized)
                .execute(&plan)
                .expect("materialized run");
            let pipelined = Engine::new(choice)
                .with_exec_mode(ExecMode::Pipelined)
                .with_batch_size(batch_size)
                .execute(&plan)
                .expect("pipelined run");
            prop_assert!(
                pipelined.bag_eq(&materialized),
                "{choice} batch {batch_size}:\npipelined:\n{pipelined}\nmaterialized:\n{materialized}"
            );
        }
    }

    /// And the cross-backend agreement invariant survives the rewiring:
    /// run_all (native/rewrite pipelined, reference materialized) still
    /// sees identical bounds everywhere.
    #[test]
    fn run_all_agrees_through_the_pipeline_executor(plan in plan_strategy()) {
        let all = Engine::native().run_all(&plan).expect("backends agree");
        let direct = Engine::native().execute(&plan).expect("native executes");
        prop_assert!(all.output.bag_eq(&direct));
    }

    /// The optimizer's contract: every rewrite (select reordering, select
    /// pushdown below breakers, dead-column pruning) preserves AU-DB bag
    /// semantics on every backend.
    #[test]
    fn optimized_equals_unoptimized_on_all_backends(plan in plan_strategy()) {
        let optimized = optimize(&plan);
        for choice in BackendChoice::ALL {
            let plain = Engine::new(choice).execute(&plan).expect("unoptimized run");
            let opt = Engine::new(choice).execute(&optimized).expect("optimized run");
            prop_assert!(
                opt.bag_eq(&plain),
                "{choice}:\noptimized:\n{opt}\nunoptimized:\n{plain}\nrewrites: {:?}",
                optimized.opt().map(|o| &o.rules)
            );
        }
    }

    /// Zone-map batch skipping is invisible in the output: pruned
    /// pipelined execution is bag-equal to pruning-disabled execution on
    /// every backend and batch size.
    #[test]
    fn pruned_equals_unpruned_on_all_backends(
        plan in plan_strategy(),
        batch_size in prop_oneof![Just(1usize), Just(2), Just(7), Just(1024)],
    ) {
        for choice in BackendChoice::ALL {
            let unpruned = Engine::new(choice)
                .with_exec_mode(ExecMode::Pipelined)
                .with_batch_size(batch_size)
                .with_pruning(false)
                .execute(&plan)
                .expect("unpruned run");
            let pruned = Engine::new(choice)
                .with_exec_mode(ExecMode::Pipelined)
                .with_batch_size(batch_size)
                .execute(&plan)
                .expect("pruned run");
            prop_assert!(
                pruned.bag_eq(&unpruned),
                "{choice} batch {batch_size}:\npruned:\n{pruned}\nunpruned:\n{unpruned}"
            );
        }
    }
}

/// Pushing a select below a window is only sound when the frame is the
/// point frame `[0,0]` or the predicate is a partition-local filter on
/// certain columns. A trailing-frame window with a plain column predicate
/// must be refused — and the same shape with a point frame must fire.
#[test]
fn frame_unsafe_window_pushdown_is_refused() {
    let rel = AuRelation::from_rows(
        Schema::new(["a", "b"]),
        (0..8).map(|i| {
            (
                AuTuple::new([RangeValue::certain(i), RangeValue::certain(10 - i)]),
                Mult3::ONE,
            )
        }),
    );
    let windowed = |lower: i64| {
        Query::scan(rel.clone())
            .window(
                WindowSpec::rows(lower, 0)
                    .order_by(["a"])
                    .aggregate(Agg::sum("b"))
                    .output("w"),
            )
            .select(RangeExpr::col(0).lt(RangeExpr::lit(5)))
            .build()
            .unwrap()
    };

    // Frame [-1,0]: the select would change which neighbors the window
    // sees. Refused — the plan comes back without rewrites.
    let unsafe_plan = windowed(-1);
    let optimized = optimize(&unsafe_plan);
    assert!(
        optimized.opt().is_none(),
        "pushdown below a trailing-frame window must be refused: {:?}",
        optimized.opt().map(|o| &o.rules)
    );

    // Frame [0,0]: each row's window is itself; filtering first is sound,
    // and the rule fires.
    let safe_plan = windowed(0);
    let optimized = optimize(&safe_plan);
    let rules = &optimized.opt().expect("point-frame pushdown fires").rules;
    assert!(rules
        .iter()
        .any(|r| r.rule == "pushdown-select-below-window"));
    for choice in BackendChoice::ALL {
        let plain = Engine::new(choice).execute(&safe_plan).unwrap();
        let opt = Engine::new(choice).execute(&optimized).unwrap();
        assert!(opt.bag_eq(&plain), "{choice}");
    }
}
