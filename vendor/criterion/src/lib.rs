//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the subset of the
//! criterion API this workspace's benches use is reimplemented here:
//! benchmark groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: per benchmark, one untimed warmup iteration sizes a
//! batch so a sample takes ≳ `SAMPLE_TARGET`; then `sample_size` samples
//! are timed and the per-iteration median/min/max are reported on stdout as
//! `group/name  time: [..]`. No plotting, no statistics beyond that —
//! `audb-bench`'s `repro --json` is the tracked perf artifact; these
//! benches exist for quick interactive comparisons.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time per timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);
/// Hard cap on the total time spent per benchmark.
const BENCH_BUDGET: Duration = Duration::from_secs(3);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    ran: usize,
}

impl Criterion {
    /// Build from command-line arguments: `--test` runs each benchmark for
    /// a single iteration (used by `cargo test --benches`); the first
    /// non-flag argument is a substring filter on `group/name`.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--test" => c.test_mode = true,
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                s if !s.starts_with('-') => c.filter = Some(s.to_string()),
                _ => {}
            }
        }
        c
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            owner: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Print the run footer.
    pub fn final_summary(&self) {
        println!("criterion-lite: {} benchmark(s) run", self.ran);
    }

    fn matches(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    owner: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

/// A benchmark identifier `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Time `f`'s `b.iter(..)` body.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        if self.owner.matches(&full) {
            let mut b = Bencher {
                sample_size: self.sample_size,
                test_mode: self.owner.test_mode,
                report: None,
            };
            f(&mut b);
            b.print(&full);
            self.owner.ran += 1;
        }
        self
    }

    /// Time `f` with an auxiliary input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if self.owner.matches(&full) {
            let mut b = Bencher {
                sample_size: self.sample_size,
                test_mode: self.owner.test_mode,
                report: None,
            };
            f(&mut b, input);
            b.print(&full);
            self.owner.ran += 1;
        }
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Handed to benchmark closures; `iter` runs and times the body.
pub struct Bencher {
    sample_size: usize,
    test_mode: bool,
    report: Option<(Duration, Duration, Duration)>,
}

impl Bencher {
    /// Measure `f`, retaining its output via `black_box` so the optimizer
    /// cannot delete the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.report = None;
            return;
        }
        let budget_start = Instant::now();
        // Warmup + batch sizing.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            if budget_start.elapsed() > BENCH_BUDGET {
                break;
            }
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed() / batch as u32);
        }
        if samples.is_empty() {
            samples.push(once);
        }
        samples.sort();
        let med = samples[samples.len() / 2];
        self.report = Some((samples[0], med, samples[samples.len() - 1]));
    }

    fn print(&self, id: &str) {
        match self.report {
            Some((lo, med, hi)) => println!(
                "{id:<40} time: [{} {} {}]",
                fmt_dur(lo),
                fmt_dur(med),
                fmt_dur(hi)
            ),
            None => println!("{id:<40} ok (test mode)"),
        }
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_report() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
        assert_eq!(c.ran, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("other".into()),
            ..Criterion::default()
        };
        let mut g = c.benchmark_group("t");
        g.bench_function("noop", |b| b.iter(|| ()));
        g.finish();
        assert_eq!(c.ran, 0);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("imp", 16_000);
        assert_eq!(id.id, "imp/16000");
    }
}
