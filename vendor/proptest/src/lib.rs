//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the subset of the
//! proptest API this workspace uses is reimplemented here: the
//! [`Strategy`] trait (`prop_map`, `boxed`), range / tuple / `Just` /
//! collection / bool strategies, the `prop_oneof!` combinator, and the
//! `proptest!` / `prop_assert*` macros. Differences from upstream:
//!
//! * **No shrinking.** A failing case panics with its case number and
//!   seed; re-running is deterministic, so the case reproduces exactly.
//! * Case counts honor `ProptestConfig::with_cases` and can be overridden
//!   globally with the `PROPTEST_CASES` environment variable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// Object-safe view of a strategy (implementation detail of
    /// [`BoxedStrategy`]).
    trait DynStrategy {
        type Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(std::rc::Rc<dyn DynStrategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.dyn_generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Build from the alternatives.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.uniform(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = rng.uniform128(span);
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = rng.uniform128(span);
                    (start as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.uniform(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.uniform(2) == 1
        }
    }
}

pub mod test_runner {
    //! Test execution configuration.

    /// Subset of proptest's run configuration.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Run `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }

        /// Effective case count, honoring the `PROPTEST_CASES` env override.
        pub fn effective_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
            {
                Some(n) => n,
                None => self.cases,
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// The RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic per-(property, case) generator.
    pub fn for_case(property: &str, case: u32) -> Self {
        // FNV-1a over the property name, mixed with the case number.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in property.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9E37)))
    }

    /// Uniform value in `[0, span)`.
    pub fn uniform(&mut self, span: u64) -> u64 {
        self.uniform128(span as u128) as u64
    }

    /// Uniform value in `[0, span)` for wide spans.
    pub fn uniform128(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        let x: u64 = self.0.gen();
        ((x as u128) * span) >> 64
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@inner $cfg; $($rest)*);
    };
    (@inner $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let cases = config.effective_cases();
            for case in 0..cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)*
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(err) = result {
                    eprintln!(
                        "proptest: property {} failed at case {}/{} (deterministic; re-run reproduces)",
                        stringify!($name), case, cases
                    );
                    ::std::panic::resume_unwind(err);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@inner $crate::test_runner::Config::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps() {
        let s = (0i64..10).prop_map(|x| x * 2);
        let mut rng = TestRng::for_case("ranges_and_maps", 0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1i64), Just(2), Just(3)];
        let mut rng = TestRng::for_case("oneof", 0);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(s.generate(&mut rng) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn vec_lengths_in_range() {
        let s = crate::collection::vec(0i64..5, 2..=4);
        let mut rng = TestRng::for_case("vecs", 0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(x in 0i64..100, ys in crate::collection::vec(0i64..10, 0..5)) {
            prop_assert!((0..100).contains(&x));
            prop_assert!(ys.len() < 5);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(b in crate::bool::ANY) {
            prop_assert_eq!(b as u8 > 0, b);
        }
    }
}
