//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the subset of the rand
//! API this workspace uses is reimplemented here: [`rngs::StdRng`] (an
//! xoshiro256** generator), [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`. Streams differ
//! from upstream rand, but every consumer in this workspace only relies on
//! *deterministic* and *well-distributed* draws, not on rand-compatible
//! streams.

use std::ops::{Range, RangeInclusive};

/// Low-level source of uniform 64-bit values.
pub trait RngCore {
    /// Next uniform `u64`.
    fn next_u64(&mut self) -> u64;

    /// Next uniform `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Derive a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an `Rng` (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw a uniform value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled (`rng.gen_range(a..b)` / `(a..=b)`).
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// Uniform value in `[0, span)` with negligible modulo bias for the spans
/// used here (`span ≪ 2^64`): widen to 128 bits and take the high part.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let x = rng.next_u64() as u128;
    (x * span) >> 64
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw of a [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, as the xoshiro authors
            // recommend; guarantees a non-zero state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
            let w = rng.gen_range(0usize..17);
            assert!(w < 17);
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn small_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
