//! Five-minute tour: build an uncertain relation, ask for bound-preserving
//! top-k and windowed-aggregation answers — every query goes through the
//! unified engine, which plans it once, explains it, and can execute it on
//! all three interchangeable backends (reference / native / rewrite) while
//! asserting their bounds agree.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use audb::core::{AuRelation, AuTuple, Mult3, RangeExpr, RangeValue};
use audb::engine::{Agg, Engine, Query, Session, WindowSpec};
use audb::rel::Schema;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An uncertain product table: price ranges come from conflicting
    // sources; the middle value is the curator's best guess. One row may
    // not exist at all (multiplicity lower bound 0).
    let products = AuRelation::from_rows(
        Schema::new(["sku", "price"]),
        [
            (
                AuTuple::from([RangeValue::certain(1i64), RangeValue::new(9, 10, 12)]),
                Mult3::ONE,
            ),
            (
                AuTuple::from([RangeValue::certain(2i64), RangeValue::new(8, 11, 11)]),
                Mult3::ONE,
            ),
            (
                AuTuple::from([RangeValue::certain(3i64), RangeValue::new(15, 15, 15)]),
                Mult3::new(0, 1, 1), // possibly a duplicate entry
            ),
            (
                AuTuple::from([RangeValue::certain(4i64), RangeValue::new(7, 7, 7)]),
                Mult3::ONE,
            ),
        ],
    );
    println!("Uncertain products:\n{products}");

    let engine = Engine::native();

    // Top-2 cheapest products under €14. Column references are validated
    // when the plan is built — a typo'd name or a colliding output column
    // is a structured PlanError here, not a panic deep inside an operator.
    let top2_plan = Query::scan(products.clone())
        .select(RangeExpr::col(1).lt(RangeExpr::lit(14)))
        .sort_by_as(["price"], "rank")
        .topk(2)
        .build()?;
    // The explain's `exec:` block shows the physical pipeline plan: the
    // selection fuses into the scan pipeline (`fuse(select)`), the top-k
    // is the pipeline breaker that materializes.
    println!("How the engine runs it:\n{}", engine.explain(&top2_plan));

    // Execute on every backend and assert the bounds agree — the paper's
    // "same semantics, interchangeable implementations" invariant, checked
    // on the fly. Multiplicity triples tell you which answers are certain
    // (lb = 1), in the best-guess world (sg = 1), or merely possible
    // (ub = 1); the rank attribute carries position bounds.
    let top2 = engine.run_all(&top2_plan)?;
    println!("{top2}");
    println!(
        "Top-2 by price (certain / guess / possible):\n{}",
        top2.output
    );

    // A rolling sum over the price-sorted order: each bound covers every
    // possible world the input admits.
    let rolling_plan = Query::scan(products)
        .window(
            WindowSpec::rows(-1, 0)
                .order_by(["price"])
                .aggregate(Agg::sum("price"))
                .output("rolling_sum"),
        )
        .build()?;
    let rolling = engine.run_all(&rolling_plan)?;
    println!("{rolling}");
    println!(
        "Rolling price sum (window = previous + current row):\n{}",
        rolling.output
    );

    // The same queries, as text: register the relation in a session and
    // the SQL frontend compiles onto the identical plans (see
    // examples/sql_tour.rs for the full tour).
    let session = Session::new(engine);
    session.register("products", rolling_plan.source_arc().clone());
    let top2_sql =
        session.sql("SELECT * FROM products WHERE price < 14 ORDER BY price AS rank LIMIT 2")?;
    assert!(top2_sql.bag_eq(&top2.output));
    println!(
        "SQL says the same:\n  SELECT * FROM products WHERE price < 14 \
         ORDER BY price AS rank LIMIT 2\n{top2_sql}"
    );

    // Every range is a guarantee: in no possible world does a value escape
    // its printed bounds — that is the bound-preservation theorem the
    // test-suite checks against exhaustive world enumeration.
    Ok(())
}
