//! Five-minute tour: build an uncertain relation, ask for bound-preserving
//! top-k and windowed-aggregation answers.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use audb::core::{AuRelation, AuTuple, AuWindowSpec, Mult3, RangeValue, WinAgg};
use audb::native::{topk_native, window_native};
use audb::rel::Schema;

fn main() {
    // An uncertain product table: price ranges come from conflicting
    // sources; the middle value is the curator's best guess. One row may
    // not exist at all (multiplicity lower bound 0).
    let products = AuRelation::from_rows(
        Schema::new(["sku", "price"]),
        [
            (
                AuTuple::from([RangeValue::certain(1i64), RangeValue::new(9, 10, 12)]),
                Mult3::ONE,
            ),
            (
                AuTuple::from([RangeValue::certain(2i64), RangeValue::new(8, 11, 11)]),
                Mult3::ONE,
            ),
            (
                AuTuple::from([RangeValue::certain(3i64), RangeValue::new(15, 15, 15)]),
                Mult3::new(0, 1, 1), // possibly a duplicate entry
            ),
            (
                AuTuple::from([RangeValue::certain(4i64), RangeValue::new(7, 7, 7)]),
                Mult3::ONE,
            ),
        ],
    );
    println!("Uncertain products:\n{products}");

    // Top-2 cheapest products. Multiplicity triples tell you which answers
    // are certain (lb = 1), in the best-guess world (sg = 1), or merely
    // possible (ub = 1); the position attribute carries rank bounds.
    let top2 = topk_native(&products, &[1], 2, "rank");
    println!("Top-2 by price (certain / guess / possible):\n{top2}");

    // A rolling sum over the price-sorted order: each bound covers every
    // possible world the input admits.
    let spec = AuWindowSpec::rows(vec![1], -1, 0);
    let rolling = window_native(&products, &spec, WinAgg::Sum(1), "rolling_sum");
    println!("Rolling price sum (window = previous + current row):\n{rolling}");

    // Every range is a guarantee: in no possible world does a value escape
    // its printed bounds — that is the bound-preservation theorem the
    // test-suite checks against exhaustive world enumeration.
}
