//! The SQL front door: register uncertain relations in a session catalog,
//! then drive ranking and window queries as text — parse → bind (every
//! `PlanError` check included) → execute on any backend, explain with the
//! originating SQL, prepare for reuse, and round-trip plans back to SQL.
//!
//! ```sh
//! cargo run --example sql_tour
//! ```

use audb::core::{AuRelation, AuTuple, Mult3, RangeValue};
use audb::engine::{Engine, Query, Session};
use audb::rel::Schema;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The quickstart's uncertain product table, now behind a name.
    let products = AuRelation::from_rows(
        Schema::new(["sku", "price"]),
        [
            (
                AuTuple::from([RangeValue::certain(1i64), RangeValue::new(9, 10, 12)]),
                Mult3::ONE,
            ),
            (
                AuTuple::from([RangeValue::certain(2i64), RangeValue::new(8, 11, 11)]),
                Mult3::ONE,
            ),
            (
                AuTuple::from([RangeValue::certain(3i64), RangeValue::new(15, 15, 15)]),
                Mult3::new(0, 1, 1),
            ),
            (
                AuTuple::from([RangeValue::certain(4i64), RangeValue::new(7, 7, 7)]),
                Mult3::ONE,
            ),
        ],
    );
    let session = Session::new(Engine::native());
    session.register("products", products.clone());

    // 1. Text in, bounds out. ORDER BY is the AU-DB sort: it appends a
    //    position-range column (here named `rank`), LIMIT caps it to a
    //    top-k.
    let sql = "SELECT * FROM products ORDER BY price AS rank LIMIT 2";
    println!("{sql}\n{}", session.sql(sql)?.normalize());

    // 2. explain_sql shows the query text, the chosen backend (with any
    //    fallback reason) and the operator chain it compiled to.
    println!("{}", session.explain_sql(sql)?);

    // 3. Uncertainty-aware predicates: RANGE(lb, sg, ub) literals compare
    //    under the bound-preserving semantics, so WHERE keeps every row
    //    that *possibly* matches (with its multiplicity saying how sure).
    let cheap = session
        .sql("SELECT sku, price FROM products WHERE price < RANGE(9, 9, 16) ORDER BY price")?;
    println!("possibly-cheap products:\n{}", cheap.normalize());

    // 4. Prepare once, run many times; the plan shares the catalog's
    //    relation (no copies) and remembers its SQL.
    let prepared = session.prepare(
        "SELECT *, SUM(price) OVER (ORDER BY price \
         ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) AS rolling FROM products",
    )?;
    let first = session.execute(&prepared)?;
    let second = session.execute(&prepared)?;
    assert!(first.bag_eq(&second));
    println!("prepared [{}]:\n{}", prepared.sql(), first.normalize());

    // 5. Every builder plan round-trips through SQL: print it, reparse it,
    //    and the engine sees the identical operator chain.
    let plan = Query::scan(products)
        .sort_by_as(["price"], "rank")
        .topk(2)
        .build()?;
    let printed = plan.to_sql("products");
    println!("builder plan prints as: {printed}");
    let reparsed = session.prepare(&printed)?;
    assert!(plan.same_shape(reparsed.plan()), "parse ∘ print = id");

    // 6. And SQL queries keep the cross-backend agreement invariant: one
    //    call runs reference, native and rewrite, asserting bag-equal
    //    bounds.
    let all = session.run_all_sql(sql)?;
    println!("{all}");
    Ok(())
}
