//! A tournament leaderboard with disputed scores: every uncertain top-k
//! semantics from the paper's related work, side by side, on the same data
//! (U-Top, U-Rank, Global-Topk, expected rank, PT-k, and AU-DB bounds).
//!
//! ```sh
//! cargo run --example leaderboard
//! ```

use audb::competitors::{
    expected_ranks, global_topk, ptk_certain, ptk_possible, ptk_topk_probs, urank, utop,
};
use audb::engine::{Engine, Session};
use audb::rel::{Schema, Tuple, Value};
use audb::worlds::{Alternative, XTuple, XTupleTable};

fn main() {
    let players = ["ada", "grace", "edsger", "barbara", "donald"];
    // Scores under dispute: (resolved outcomes, probability). Lower = better
    // rank here (golf scoring); k = 2 podium places.
    let score_sets: [&[(i64, f64)]; 5] = [
        &[(68, 0.6), (72, 0.4)], // ada: one contested hole
        &[(70, 1.0)],            // grace: clean card
        &[(66, 0.3), (74, 0.7)], // edsger: big dispute
        &[(71, 0.5), (69, 0.5)], // barbara: coin-flip ruling
        &[(75, 0.9)],            // donald: may be disqualified
    ];
    let table = XTupleTable::new(
        Schema::new(["score", "player"]),
        score_sets
            .iter()
            .enumerate()
            .map(|(i, alts)| {
                XTuple::new(
                    alts.iter()
                        .map(|&(s, p)| Alternative {
                            tuple: Tuple::new([Value::Int(s), Value::Int(i as i64)]),
                            prob: p,
                        })
                        .collect(),
                )
            })
            .collect(),
    );
    let k = 2;
    let name = |i: usize| players[i];

    println!("Who makes the podium (top-{k} lowest scores)?\n");

    let seq = utop(&table, &[0], k, 10_000);
    println!(
        "U-Top        most likely podium sequence: {:?}",
        seq.iter()
            .map(|t| name(t.get(1).as_i64().unwrap() as usize))
            .collect::<Vec<_>>()
    );

    let ur = urank(&table, &[0], k);
    println!(
        "U-Rank       most likely per place:       {:?}",
        ur.iter().map(|o| o.map(name)).collect::<Vec<_>>()
    );

    let gt = global_topk(&table, &[0], k);
    println!(
        "Global-Topk  highest Pr[podium]:          {:?}",
        gt.iter().map(|&i| name(i)).collect::<Vec<_>>()
    );

    let er = expected_ranks(&table, &[0]);
    println!(
        "Exp. rank    per player:                  {:?}",
        er.iter()
            .enumerate()
            .map(|(i, r)| format!("{} {:.2}", name(i), r))
            .collect::<Vec<_>>()
    );

    let probs = ptk_topk_probs(&table, &[0], k);
    println!(
        "PT-k         Pr[podium]:                  {:?}",
        probs
            .iter()
            .enumerate()
            .map(|(i, p)| format!("{} {:.2}", name(i), p))
            .collect::<Vec<_>>()
    );
    println!(
        "             certain: {:?}   possible: {:?}",
        ptk_certain(&table, &[0], k)
            .iter()
            .map(|&i| name(i))
            .collect::<Vec<_>>(),
        ptk_possible(&table, &[0], k)
            .iter()
            .map(|&i| name(i))
            .collect::<Vec<_>>()
    );

    // And the AU-DB answer: one relation carrying certain AND possible
    // membership plus rank bounds, still queryable further — issued as
    // SQL through a session, executed on every engine backend with bound
    // agreement asserted (run_all).
    let session = Session::new(Engine::native());
    session.register("scores", table.to_au_relation());
    let all = session
        .run_all_sql(&format!(
            "SELECT * FROM scores ORDER BY score AS rank LIMIT {k}"
        ))
        .expect("backends agree");
    let podium = all.output;
    println!("\nAU-DB top-{k} (score range, player, rank range, certainty):");
    for row in podium.rows() {
        let player = name(row.tuple.get(1).sg.as_i64().unwrap() as usize);
        println!(
            "  {player:8} score {:12} rank {:10} multiplicity {}",
            row.tuple.get(0).to_string(),
            row.tuple.get(2).to_string(),
            row.mult
        );
    }
}
