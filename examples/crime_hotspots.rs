//! End-to-end real-world-style pipeline on the Chicago-crimes simulator:
//! rank the worst days (top-3 by incident count) and compute the
//! neighbouring-crime window query, comparing the AU-DB method against
//! MCDB sampling and the exact ground truth.
//!
//! ```sh
//! cargo run --release --example crime_hotspots
//! ```

use audb::engine::Engine;
use audb::workloads::metrics::aggregate_quality;
use audb::workloads::runner;
use audb::workloads::{crimes, RealDataset};

fn main() {
    // 1% of the paper's 1.45M rows keeps this example snappy.
    let ds: RealDataset = crimes(0.01, 7);
    println!(
        "Crimes simulator: {} base rows, {:.1}% uncertain",
        ds.rows,
        ds.uncertainty * 100.0
    );

    // --- Rank: top-3 days by count (pre-aggregated, Sec. 9.2). ---
    // The AU-DB drivers build one logical plan and run it through the
    // engine; here we additionally run the same plan on *every* backend and
    // let run_all assert that reference, native and rewrite bounds agree on
    // this real-world-shaped data.
    let rq = &ds.rank;
    let plan = runner::sort_plan(&rq.table, &rq.order, Some(rq.k));
    let agreement = Engine::native().run_all(&plan).expect("backends agree");
    println!("cross-backend check on the rank query: {agreement}");

    let imp = runner::imp_sort(&rq.table, &rq.order, Some(rq.k));
    let det = runner::det_sort(&rq.table, &rq.order, Some(rq.k));
    let mc = runner::mcdb_sort(&rq.table, &rq.order, 20, 1);
    println!(
        "\nTop-{} days by incident count over {} aggregated days:",
        rq.k,
        rq.table.len()
    );
    println!("  Det   {:>10?}   (one world, no guarantees)", det.elapsed);
    println!(
        "  Imp   {:>10?}   (bounds on certain & possible top-3)",
        imp.elapsed
    );
    println!("  MCDB20{:>10?}   (sampled envelope)", mc.elapsed);
    let answers = imp.value.iter().flatten().count();
    println!("  Imp returns {answers} candidate days (possible answers ⊇ certain answers)");

    // --- Window: min(year) among latitude neighbours, 2016 slice. ---
    let wq = &ds.window;
    let imp = runner::imp_window(&wq.table, &wq.order, wq.agg, wq.l, wq.u);
    let mc = runner::mcdb_window(&wq.table, &wq.order, wq.agg, wq.l, wq.u, 20, 2);
    let tight = runner::symb_window(&wq.table, &wq.order, wq.agg, wq.l, wq.u, 1 << 20);
    println!(
        "\nWindow query (min(year) over latitude ±1) on {} rows:",
        wq.table.len()
    );
    println!("  Imp    {:>10?}", imp.elapsed);
    println!("  MCDB20 {:>10?}", mc.elapsed);
    println!("  exact  {:>10?}", tight.elapsed);

    let pair = |a: &runner::Bounds| {
        a.iter()
            .zip(&tight.value)
            .filter_map(|(x, t)| Some(((*x)?, (*t)?)))
            .collect::<Vec<_>>()
    };
    let qi = aggregate_quality(pair(&imp.value));
    let qm = aggregate_quality(pair(&mc.value));
    println!(
        "  quality vs exact: Imp recall {:.3} (never misses a possible answer), MCDB20 recall {:.3}",
        qi.recall, qm.recall
    );
    println!(
        "                    Imp accuracy {:.3}, MCDB20 accuracy {:.3}",
        qi.accuracy, qm.accuracy
    );
}
