//! Rolling aggregates over noisy sensor data — the paper's motivating
//! windowed-aggregation use case, fed as a **live stream**. Readings
//! arrive with calibration uncertainty (a declared error band around each
//! measurement); the rolling aggregates must bound every world the bands
//! admit, and a subscription keeps them current as batches arrive instead
//! of recomputing the day from scratch.
//!
//! The printout is golden-tested (`workloads/sensor_rolling.golden`), so
//! everything here is deterministic.
//!
//! ```sh
//! cargo run --example sensor_rolling
//! ```

use audb::core::AuRelation;
use audb::engine::{Engine, Session};
use audb::rel::{Schema, Tuple, Value};
use audb::worlds::{Alternative, XTuple, XTupleTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let n = 48; // 48 measurements = one day of half-hourly readings

    // Each reading: a timestamp and a temperature in deci-degrees. Roughly
    // one in six sensors drifts, widening its declared error band.
    let tuples: Vec<XTuple> = (0..n)
        .map(|ts| {
            let true_temp =
                180 + ((ts as f64 / 5.0).sin() * 40.0) as i64 + rng.gen_range(-3i64..=3);
            let drifting = rng.gen_range(0..6) == 0;
            let band = if drifting { 25 } else { 4 };
            // The measured alternatives sit inside the declared band.
            let alts: Vec<i64> = (0..3)
                .map(|_| true_temp + rng.gen_range(-band..=band))
                .collect();
            let p = 1.0 / alts.len() as f64;
            XTuple::new(
                alts.iter()
                    .map(|&t| Alternative {
                        tuple: Tuple::from([ts as i64, t]),
                        prob: p,
                    })
                    .collect(),
            )
            .with_declared(vec![
                (Value::Int(ts as i64), Value::Int(ts as i64)),
                (Value::Int(true_temp - band), Value::Int(true_temp + band)),
            ])
        })
        .collect();
    let day = XTupleTable::new(Schema::new(["ts", "temp"]), tuples).to_au_relation();

    // The table starts empty; readings stream in below.
    let session = Session::new(Engine::native());
    session.register("readings", AuRelation::empty(day.schema.clone()));

    // Subscribe to the one-hour rolling max (current + 1 preceding
    // reading): the statement compiles once, and each appended batch
    // re-emits only the output rows whose bounds changed. The cutoff is
    // lowered so even this toy stream crosses onto the incremental path.
    let mut live = session
        .subscribe(
            "SELECT *, MAX(temp) OVER (ORDER BY ts \
             ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) AS x FROM readings",
        )
        .expect("subscription compiles")
        .with_cutoff(16);

    // Stream the day in six-hour batches. Appends go to the shared
    // catalog too (the server's `POST /append` path), so the at-rest SQL
    // below sees the same grown table the subscription maintains.
    println!("streaming 4 batches of 12 readings into the subscription:");
    for (i, chunk) in day.rows().chunks(12).enumerate() {
        let batch = AuRelation::from_rows(
            day.schema.clone(),
            chunk.iter().map(|r| (r.tuple.clone(), r.mult)),
        );
        session
            .shared_catalog()
            .append("readings", &batch)
            .expect("schema matches");
        let delta = live.append(&batch).expect("in-order append");
        println!(
            "  batch {i}: +12 readings -> {} rows retracted, {} emitted ({})",
            delta.removed.len(),
            delta.added.len(),
            delta.strategy
        );
    }

    // The subscription's value is exactly the full recompute — show the
    // last hour's maintained bounds straight from the live result.
    println!("\nlive rolling max, last 3 readings:");
    let value = live.value().normalize();
    let mut rows: Vec<_> = value.rows().iter().collect();
    rows.sort_by_key(|r| r.tuple.get(0).sg.as_i64());
    for row in rows.iter().rev().take(3).rev() {
        let ts = row.tuple.get(0).sg.as_i64().unwrap();
        let x = row.tuple.get(2);
        println!(
            "  t={ts:>2}: max in [{:.1}°, {:.1}°]",
            x.lb.as_i64().unwrap() as f64 / 10.0,
            x.ub.as_i64().unwrap() as f64 / 10.0
        );
    }
    let full = session
        .sql(
            "SELECT *, MAX(temp) OVER (ORDER BY ts \
             ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) AS x FROM readings",
        )
        .expect("recompute runs");
    assert!(
        value.bag_eq(&full.normalize()),
        "maintained value must equal the full recompute"
    );
    println!("  (verified equal to a full recompute of the grown table)");

    // The rest of the dashboard works off the grown catalog. Each query is
    // one line of SQL, executed on every backend with bound agreement
    // asserted (`run_all_sql`).
    let rolling = |agg: &str| {
        session
            .run_all_sql(&format!(
                "SELECT *, {agg}(temp) OVER (ORDER BY ts \
                 ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) AS x FROM readings"
            ))
            .expect("backends agree")
            .output
    };
    println!();
    for (name, agg) in [
        ("rolling max", "MAX"),
        ("rolling min", "MIN"),
        ("rolling avg envelope", "AVG"),
    ] {
        let out = rolling(agg);
        // Report the widest bound of the day — where drift hurts the most.
        let mut worst: Option<(i64, i64, i64)> = None;
        for row in out.rows() {
            let ts = row.tuple.get(0).sg.as_i64().unwrap();
            let x = row.tuple.get(2);
            let (lo, hi) = (
                x.lb.as_f64().unwrap_or(0.0) as i64,
                x.ub.as_f64().unwrap_or(0.0) as i64,
            );
            if worst.is_none_or(|(_, a, b)| hi - lo > b - a) {
                worst = Some((ts, lo, hi));
            }
        }
        let (ts, lo, hi) = worst.unwrap();
        println!(
            "{name:22} widest bound at t={ts:>2}: [{:.1}°, {:.1}°]",
            lo as f64 / 10.0,
            hi as f64 / 10.0
        );
    }

    // Alarm logic on guarantees, not guesses: a certain alarm fires only if
    // even the lower bound of the rolling max exceeds the threshold; a
    // possible alarm if the upper bound does.
    let out = rolling("MAX");
    let threshold = 215;
    let certain = out
        .rows()
        .iter()
        .filter(|r| r.tuple.get(2).lb > Value::Int(threshold))
        .count();
    let possible = out
        .rows()
        .iter()
        .filter(|r| r.tuple.get(2).ub > Value::Int(threshold))
        .count();
    println!(
        "\nalarm > {:.1}°: {certain} readings certainly alarm, {possible} possibly alarm",
        threshold as f64 / 10.0
    );
    println!("(a dashboard built on point estimates would show exactly one number — and be wrong in some worlds)");
}
