//! Rolling aggregates over noisy sensor data — the paper's motivating
//! windowed-aggregation use case. Readings arrive with calibration
//! uncertainty (a declared error band around each measurement); the rolling
//! sum/min/max must bound every world the bands admit.
//!
//! ```sh
//! cargo run --example sensor_rolling
//! ```

use audb::engine::{Engine, Session};
use audb::rel::{Schema, Tuple, Value};
use audb::worlds::{Alternative, XTuple, XTupleTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let n = 48; // 48 measurements = one day of half-hourly readings

    // Each reading: a timestamp and a temperature in deci-degrees. Roughly
    // one in six sensors drifts, widening its declared error band.
    let tuples: Vec<XTuple> = (0..n)
        .map(|ts| {
            let true_temp =
                180 + ((ts as f64 / 5.0).sin() * 40.0) as i64 + rng.gen_range(-3i64..=3);
            let drifting = rng.gen_range(0..6) == 0;
            let band = if drifting { 25 } else { 4 };
            // The measured alternatives sit inside the declared band.
            let alts: Vec<i64> = (0..3)
                .map(|_| true_temp + rng.gen_range(-band..=band))
                .collect();
            let p = 1.0 / alts.len() as f64;
            XTuple::new(
                alts.iter()
                    .map(|&t| Alternative {
                        tuple: Tuple::from([ts as i64, t]),
                        prob: p,
                    })
                    .collect(),
            )
            .with_declared(vec![
                (Value::Int(ts as i64), Value::Int(ts as i64)),
                (Value::Int(true_temp - band), Value::Int(true_temp + band)),
            ])
        })
        .collect();
    let table = XTupleTable::new(Schema::new(["ts", "temp"]), tuples);
    let session = Session::new(Engine::native());
    session.register("readings", table.to_au_relation());

    // One-hour rolling window (current + 1 preceding reading). Each query
    // is one line of SQL against the registered relation, executed on
    // every backend with bound agreement asserted (`run_all_sql`).
    let rolling = |agg: &str| {
        session
            .run_all_sql(&format!(
                "SELECT *, {agg}(temp) OVER (ORDER BY ts \
                 ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) AS x FROM readings"
            ))
            .expect("backends agree")
            .output
    };
    for (name, agg) in [
        ("rolling max", "MAX"),
        ("rolling min", "MIN"),
        ("rolling avg envelope", "AVG"),
    ] {
        let out = rolling(agg);
        // Report the widest bound of the day — where drift hurts the most.
        let mut worst: Option<(i64, i64, i64)> = None;
        for row in out.rows() {
            let ts = row.tuple.get(0).sg.as_i64().unwrap();
            let x = row.tuple.get(2);
            let (lo, hi) = (
                x.lb.as_f64().unwrap_or(0.0) as i64,
                x.ub.as_f64().unwrap_or(0.0) as i64,
            );
            if worst.is_none_or(|(_, a, b)| hi - lo > b - a) {
                worst = Some((ts, lo, hi));
            }
        }
        let (ts, lo, hi) = worst.unwrap();
        println!(
            "{name:22} widest bound at t={ts:>2}: [{:.1}°, {:.1}°]",
            lo as f64 / 10.0,
            hi as f64 / 10.0
        );
    }

    // Alarm logic on guarantees, not guesses: a certain alarm fires only if
    // even the lower bound of the rolling max exceeds the threshold; a
    // possible alarm if the upper bound does.
    let out = rolling("MAX");
    let threshold = 215;
    let certain = out
        .rows()
        .iter()
        .filter(|r| r.tuple.get(2).lb > Value::Int(threshold))
        .count();
    let possible = out
        .rows()
        .iter()
        .filter(|r| r.tuple.get(2).ub > Value::Int(threshold))
        .count();
    println!(
        "\nalarm > {:.1}°: {certain} readings certainly alarm, {possible} possibly alarm",
        threshold as f64 / 10.0
    );
    println!("(a dashboard built on point estimates would show exactly one number — and be wrong in some worlds)");
}
