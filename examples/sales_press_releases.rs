//! The paper's running example (Fig. 1): a sales database extracted from
//! three conflicting press releases, and what every uncertain top-k
//! semantics says about "the two terms with the most sales".
//!
//! ```sh
//! cargo run --example sales_press_releases
//! ```

use audb::competitors::{ptk_certain, ptk_possible, urank, utop};
use audb::core::RangeExpr;
use audb::engine::{Agg, Engine, Query, WindowSpec};
use audb::rel::{Schema, Tuple};
use audb::worlds::{Alternative, XTuple, XTupleTable};

fn main() {
    // Three possible worlds D1 (p=.4), D2 (p=.3), D3 (p=.3) — Fig. 1a.
    // Term and Sales disagree across the extractions; we model each row as
    // an x-tuple whose alternatives are the three extracted versions.
    let rows: [[(i64, i64); 3]; 4] = [
        [(1, 2), (1, 3), (1, 2)],
        [(2, 3), (2, 2), (2, 2)],
        [(3, 7), (3, 4), (5, 4)],
        [(4, 4), (4, 6), (4, 7)],
    ];
    let probs = [0.4, 0.3, 0.3];
    let table = XTupleTable::new(
        Schema::new(["term", "sales"]),
        rows.iter()
            .map(|versions| {
                XTuple::new(
                    versions
                        .iter()
                        .zip(probs)
                        .map(|(&(t, s), prob)| Alternative {
                            tuple: Tuple::from([t, s]),
                            prob,
                        })
                        .collect(),
                )
            })
            .collect(),
    );

    println!("== The classic semantics (Fig. 1b–1e) ==");
    // Sales DESC: order by negated sales.
    let mut neg = table.clone();
    for xt in &mut neg.tuples {
        for a in &mut xt.alternatives {
            let s = a.tuple.get(1).as_i64().unwrap();
            a.tuple.0[1] = audb::rel::Value::Int(-s);
        }
    }
    let seq = utop(&neg, &[1], 2, 10_000);
    println!(
        "U-Top (most likely top-2 sequence): terms {:?}",
        seq.iter().map(|t| t.get(0).clone()).collect::<Vec<_>>()
    );
    let ur = urank(&neg, &[1], 2);
    println!(
        "U-Rank (most likely tuple per rank): {:?}  <- the same term can win twice!",
        ur.iter()
            .map(|o| o.map(|i| rows[i][0].0))
            .collect::<Vec<_>>()
    );
    println!(
        "PT-k possible answers (PT>0): terms {:?}",
        ptk_possible(&neg, &[1], 2)
            .iter()
            .map(|&i| rows[i][0].0)
            .collect::<Vec<_>>()
    );
    println!(
        "PT-k certain answers (PT=1): terms {:?}",
        ptk_certain(&neg, &[1], 2)
            .iter()
            .map(|&i| rows[i][0].0)
            .collect::<Vec<_>>()
    );

    println!("\n== The AU-DB approach (Fig. 1f/1g) ==");
    let au = std::sync::Arc::new(table.to_au_relation());
    println!("AU-DB bounding all three worlds:\n{au}");

    // Top-2 highest selling terms: negate sales, rank ascending — one
    // logical plan (project → sort → top-k), validated at build time and
    // executed on all three backends with bound agreement asserted.
    let engine = Engine::native();
    let top2_plan = Query::scan(std::sync::Arc::clone(&au))
        .project_exprs([
            (RangeExpr::col(0), "term"),
            (RangeExpr::col(1), "sales"),
            (RangeExpr::Neg(Box::new(RangeExpr::col(1))), "neg_sales"),
        ])
        .sort_by_as(["neg_sales"], "position")
        .topk(2)
        .build()
        .expect("top-2 plan is valid");
    println!("Plan:\n{}", engine.explain(&top2_plan));
    let top2 = engine.run_all(&top2_plan).expect("backends agree");
    println!(
        "Top-2 (under- and over-approximating certain/possible answers):\n{}",
        top2.output
    );

    // Fig. 1g: rolling sum over the current and following term.
    let window_plan = Query::scan(au)
        .window(
            WindowSpec::rows(0, 1)
                .order_by(["term"])
                .aggregate(Agg::sum("sales"))
                .output("sum"),
        )
        .build()
        .expect("rolling-sum plan is valid");
    let windowed = engine.run_all(&window_plan).expect("backends agree");
    println!(
        "Rolling sum of sales (current + next term):\n{}",
        windowed.output
    );

    println!(
        "Unlike the classic semantics, the AU-DB result separates certain \
         from possible answers *and* remains a valid input for further \
         uncertainty-aware queries."
    );
}
