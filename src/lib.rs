//! # audb — bound-preserving ranking and window queries over uncertain data
//!
//! Umbrella crate for the reproduction of *"Efficient Approximation of
//! Certain and Possible Answers for Ranking and Window Queries over
//! Uncertain Data"* (Feng, Glavic, Kennedy — VLDB 2023). It re-exports the
//! workspace crates under stable module names:
//!
//! | module | contents |
//! |---|---|
//! | [`rel`] | deterministic bag-relational engine (values, `RA+`, windows, sort) |
//! | [`core`] | AU-DB model, `ℕ³` semiring, reference sort/top-k/window semantics |
//! | [`conheap`] | connected heaps (Sec. 8.2) |
//! | [`native`] | one-pass native algorithms (Sec. 8) — the paper's `Imp` |
//! | [`rewrite`] | SQL-style rewrites over the relational encoding (Sec. 7) — `Rewr` |
//! | [`engine`] | **the front door**: logical plans + pluggable backends |
//! | [`worlds`] | x-tuple probabilistic model, world enumeration/sampling, exact bounds |
//! | [`competitors`] | MCDB, PT-k, Symb, U-Top, U-Rank, Global-Topk, expected rank |
//! | [`workloads`] | synthetic + real-world-simulating generators, quality metrics |
//!
//! ## Quick example
//!
//! Queries are built once as validated logical plans and executed on any of
//! the three interchangeable backends (reference / native / rewrite); the
//! engine can also run a plan on *all* of them and assert the bounds agree:
//!
//! ```
//! use audb::core::{AuRelation, AuTuple, Mult3, RangeValue};
//! use audb::engine::{Engine, Query};
//! use audb::rel::Schema;
//!
//! // A sales relation with an uncertain Sales attribute.
//! let rel = AuRelation::from_rows(
//!     Schema::new(["term", "sales"]),
//!     [
//!         (AuTuple::from([RangeValue::certain(1i64), RangeValue::new(2, 2, 3)]), Mult3::ONE),
//!         (AuTuple::from([RangeValue::certain(2i64), RangeValue::new(2, 3, 3)]), Mult3::ONE),
//!     ],
//! );
//! // Top-1 by sales: positions carry uncertainty; multiplicities tell you
//! // which answers are certain vs merely possible.
//! let plan = Query::scan(rel).sort_by(["sales"]).topk(1).build()?;
//! let engine = Engine::native();
//! println!("{}", engine.explain(&plan));   // backend + operator chain + cost notes
//! let agreed = engine.run_all(&plan)?;     // reference ≡ native ≡ rewrite
//! assert!(!agreed.output.is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/quickstart.rs` for a five-minute tour and DESIGN.md for the
//! full system inventory.

pub use audb_competitors as competitors;
pub use audb_conheap as conheap;
pub use audb_core as core;
pub use audb_engine as engine;
pub use audb_native as native;
pub use audb_rel as rel;
pub use audb_rewrite as rewrite;
pub use audb_workloads as workloads;
pub use audb_worlds as worlds;
