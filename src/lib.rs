//! # audb — bound-preserving ranking and window queries over uncertain data
//!
//! Umbrella crate for the reproduction of *"Efficient Approximation of
//! Certain and Possible Answers for Ranking and Window Queries over
//! Uncertain Data"* (Feng, Glavic, Kennedy — VLDB 2023). It re-exports the
//! workspace crates under stable module names:
//!
//! | module | contents |
//! |---|---|
//! | [`rel`] | deterministic bag-relational engine (values, `RA+`, windows, sort) |
//! | [`core`] | AU-DB model, `ℕ³` semiring, reference sort/top-k/window semantics |
//! | [`conheap`] | connected heaps (Sec. 8.2) |
//! | [`native`] | one-pass native algorithms (Sec. 8) — the paper's `Imp` |
//! | [`rewrite`] | SQL-style rewrites over the relational encoding (Sec. 7) — `Rewr` |
//! | [`worlds`] | x-tuple probabilistic model, world enumeration/sampling, exact bounds |
//! | [`competitors`] | MCDB, PT-k, Symb, U-Top, U-Rank, Global-Topk, expected rank |
//! | [`workloads`] | synthetic + real-world-simulating generators, quality metrics |
//!
//! See `examples/quickstart.rs` for a five-minute tour and DESIGN.md for the
//! full system inventory.

pub use audb_competitors as competitors;
pub use audb_conheap as conheap;
pub use audb_core as core;
pub use audb_native as native;
pub use audb_rel as rel;
pub use audb_rewrite as rewrite;
pub use audb_workloads as workloads;
pub use audb_worlds as worlds;
