//! # audb — bound-preserving ranking and window queries over uncertain data
//!
//! Umbrella crate for the reproduction of *"Efficient Approximation of
//! Certain and Possible Answers for Ranking and Window Queries over
//! Uncertain Data"* (Feng, Glavic, Kennedy — VLDB 2023). It re-exports the
//! workspace crates under stable module names:
//!
//! | module | contents |
//! |---|---|
//! | [`rel`] | deterministic bag-relational engine (values, `RA+`, windows, sort) |
//! | [`core`] | AU-DB model, `ℕ³` semiring, reference sort/top-k/window semantics |
//! | [`conheap`] | connected heaps (Sec. 8.2) |
//! | [`native`] | one-pass native algorithms (Sec. 8) — the paper's `Imp` |
//! | [`rewrite`] | SQL-style rewrites over the relational encoding (Sec. 7) — `Rewr` |
//! | [`engine`] | **the front door**: logical plans, SQL sessions + pluggable backends |
//! | [`sql`] | textual frontend: lexer, parser, AST (bound by the engine) |
//! | [`worlds`] | x-tuple probabilistic model, world enumeration/sampling, exact bounds |
//! | [`competitors`] | MCDB, PT-k, Symb, U-Top, U-Rank, Global-Topk, expected rank |
//! | [`workloads`] | synthetic + real-world-simulating generators, quality metrics |
//! | [`server`] | concurrent SQL service layer: HTTP/JSON front end, worker pool, plan cache |
//!
//! ## Quick example
//!
//! Queries are built once as validated logical plans and executed on any of
//! the three interchangeable backends (reference / native / rewrite); the
//! engine can also run a plan on *all* of them and assert the bounds agree:
//!
//! ```
//! use audb::core::{AuRelation, AuTuple, Mult3, RangeValue};
//! use audb::engine::{Engine, Query};
//! use audb::rel::Schema;
//!
//! // A sales relation with an uncertain Sales attribute.
//! let rel = AuRelation::from_rows(
//!     Schema::new(["term", "sales"]),
//!     [
//!         (AuTuple::from([RangeValue::certain(1i64), RangeValue::new(2, 2, 3)]), Mult3::ONE),
//!         (AuTuple::from([RangeValue::certain(2i64), RangeValue::new(2, 3, 3)]), Mult3::ONE),
//!     ],
//! );
//! // Top-1 by sales: positions carry uncertainty; multiplicities tell you
//! // which answers are certain vs merely possible.
//! let plan = Query::scan(rel).sort_by(["sales"]).topk(1).build()?;
//! let engine = Engine::native();
//! println!("{}", engine.explain(&plan));   // backend + operator chain + cost notes
//! let agreed = engine.run_all(&plan)?;     // reference ≡ native ≡ rewrite
//! assert!(!agreed.output.is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## SQL frontend
//!
//! The same queries compile from text: register relations in a
//! [`engine::Session`] catalog and every workload becomes scriptable
//! (`repro sql` drives whole `.sql` files over CSV-loaded tables):
//!
//! ```
//! use audb::core::{AuRelation, AuTuple, Mult3, RangeValue};
//! use audb::engine::{Engine, Session};
//! use audb::rel::Schema;
//!
//! let rel = AuRelation::from_rows(
//!     Schema::new(["term", "sales"]),
//!     [
//!         (AuTuple::from([RangeValue::certain(1i64), RangeValue::new(2, 2, 3)]), Mult3::ONE),
//!         (AuTuple::from([RangeValue::certain(2i64), RangeValue::new(2, 3, 3)]), Mult3::ONE),
//!     ],
//! );
//! let mut session = Session::new(Engine::native());
//! session.register("sales", rel);
//! // ORDER BY is the AU-DB sort (Def. 2): it appends a position-range
//! // column; LIMIT turns it into a top-k.
//! let top = session.sql("SELECT * FROM sales ORDER BY sales AS rank LIMIT 1")?;
//! assert_eq!(top.schema.cols(), &["term", "sales", "rank"]);
//! // Window queries, range-literal predicates and EXPLAIN work too:
//! session.sql("SELECT *, SUM(sales) OVER (ORDER BY sales \
//!     ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) AS roll FROM sales")?;
//! println!("{}", session.explain_sql("SELECT * FROM sales WHERE sales < RANGE(2, 2, 4)")?);
//! # Ok::<(), audb::engine::SessionError>(())
//! ```
//!
//! See `examples/quickstart.rs` for a five-minute tour,
//! `examples/sql_tour.rs` for the SQL session walkthrough, and DESIGN.md
//! for the full system inventory.

pub use audb_competitors as competitors;
pub use audb_conheap as conheap;
pub use audb_core as core;
pub use audb_engine as engine;
// lint: allow(no-direct-backend-call) -- umbrella crate re-exports every layer by design
pub use audb_native as native;
pub use audb_rel as rel;
// lint: allow(no-direct-backend-call) -- umbrella crate re-exports every layer by design
pub use audb_rewrite as rewrite;
pub use audb_server as server;
pub use audb_sql as sql;
pub use audb_workloads as workloads;
pub use audb_worlds as worlds;

// The full engine + SQL public surface, flattened to the umbrella root so
// `use audb::{Engine, Session, Query, SqlError, ...}` works without module
// paths.
pub use audb_engine::{
    plan_to_sql, Agg, Backend, BackendChoice, BackendRun, Catalog, CmpSemantics, ColRef, Engine,
    EngineError, Explain, ExplainStep, IntervalIndex, JoinStrategy, Native, Op, Plan, PlanError,
    Prepared, Query, Reference, Rewrite, RunAll, Session, SessionError, WindowSpec,
};
pub use audb_engine::{CacheStats, PlanCache, SharedCatalog};
pub use audb_engine::{
    CatalogAppendError, Delta, MaintainedQuery, Strategy, DEFAULT_INCREMENTAL_CUTOFF,
};
pub use audb_sql::{is_keyword, parse, parse_script, Span, SqlError, SqlErrorKind};
