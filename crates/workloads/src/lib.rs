//! # audb-workloads — workload generators, method drivers, quality metrics
//!
//! Everything the evaluation harness (crate `audb-bench`) consumes:
//!
//! * [`synthetic`] — the Sec. 9.1 microbenchmark generator (`n` rows, `u`%
//!   uncertainty, attribute range `r`; defaults 50k / 5% / 1k);
//! * [`real`] — statistical simulators of the Iceberg / Crimes / Healthcare
//!   datasets with the six Sec. 9.2 queries (substitutions documented in
//!   DESIGN.md §2);
//! * [`runner`] — uniform timed drivers for every compared method (`Det`,
//!   `Imp`, `Rewr`, `Rewr(index)`, `MCDB`, `Symb`, `PT-k`) producing
//!   per-input-tuple bounds;
//! * [`metrics`] — recall / accuracy / estimated-range (Sec. 9 formulas);
//! * [`convert`] — AU-relation ⇄ x-tuple bridging for pre-aggregated
//!   queries;
//! * [`csvload`] — CSV → AU-relation loading (the `_lb`/`_ub` + `mult_*`
//!   header convention behind `repro sql`).

pub mod convert;
pub mod csvload;
pub mod metrics;
pub mod real;
pub mod runner;
pub mod synthetic;

pub use convert::xtuple_from_au;
pub use csvload::{
    au_columns_from_relation, au_from_relation, load_au_csv, load_au_csv_columns, load_au_dir,
    read_au_csv, read_au_csv_columns,
};
pub use metrics::{aggregate_quality, bound_quality, BoundQuality, QualityStats};
pub use real::{all_datasets, crimes, healthcare, iceberg, RankQuery, RealDataset, WindowQuery};
pub use synthetic::{gen_sort_table, gen_window_table, SyntheticConfig};
