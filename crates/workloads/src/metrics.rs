//! Approximation-quality metrics (paper Sec. 9, "Compared Algorithms").
//!
//! Given the tight bounds `[c, d]` (computed by the exact methods) and an
//! approximation `[a, b]`:
//!
//! * `recall = (min(b,d) − max(a,c)) / (d − c)` — how much of the true
//!   bound the approximation covers (1 for any over-approximation, < 1 for
//!   MCDB's sampled envelopes);
//! * `accuracy = (min(b,d) − max(a,c)) / (b − a)` — the *precision* of the
//!   reported bound: the fraction of it that lies inside the truth. Always
//!   1 for under-approximations (MCDB) and < 1 for over-approximations
//!   (AU-DBs), matching the paper's Figs. 18/19. (The formula as printed in
//!   the paper is its reciprocal and would exceed 1; the reported values
//!   are ≤ 1, so the intended ratio is the one implemented here.)
//! * `range_ratio = (b − a) / (d − c)` — the "estimated value range" of
//!   Figs. 12/13 (>1: over-approximation, <1: under-approximation).
//!
//! Point ground truths (`c = d`) are handled by treating the tight width as
//! one discrete unit, keeping every metric well-defined for integer data.

/// Quality of one approximate bound against the tight bound.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoundQuality {
    /// Fraction of the tight bound covered.
    pub recall: f64,
    /// Precision of the reported bound (overlap / reported width).
    pub accuracy: f64,
    /// Width ratio (the "estimated value range").
    pub range_ratio: f64,
}

/// Compare `[a, b]` against the tight `[c, d]`.
pub fn bound_quality(approx: (f64, f64), tight: (f64, f64)) -> BoundQuality {
    let (a, b) = approx;
    let (c, d) = tight;
    debug_assert!(a <= b && c <= d, "malformed bounds");
    let unit = |w: f64| if w <= 0.0 { 1.0 } else { w };
    let overlap = (b.min(d) - a.max(c)).max(0.0);
    let overlap_u = if overlap > 0.0 || (a <= d && c <= b) {
        unit(overlap)
    } else {
        0.0
    };
    BoundQuality {
        recall: (overlap_u / unit(d - c)).min(1.0),
        accuracy: (overlap_u / unit(b - a)).min(1.0),
        range_ratio: unit(b - a) / unit(d - c),
    }
}

/// Averaged quality over a relation (the per-tuple mean, as in the paper).
#[derive(Clone, Copy, Debug, Default)]
pub struct QualityStats {
    /// Mean recall.
    pub recall: f64,
    /// Mean accuracy.
    pub accuracy: f64,
    /// Mean range ratio.
    pub range_ratio: f64,
    /// Number of tuples measured.
    pub n: usize,
}

/// Average [`bound_quality`] over `(approx, tight)` pairs.
pub fn aggregate_quality(
    pairs: impl IntoIterator<Item = ((f64, f64), (f64, f64))>,
) -> QualityStats {
    let mut s = QualityStats::default();
    for (approx, tight) in pairs {
        let q = bound_quality(approx, tight);
        s.recall += q.recall;
        s.accuracy += q.accuracy;
        s.range_ratio += q.range_ratio;
        s.n += 1;
    }
    if s.n > 0 {
        s.recall /= s.n as f64;
        s.accuracy /= s.n as f64;
        s.range_ratio /= s.n as f64;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_bounds_score_one() {
        let q = bound_quality((2.0, 5.0), (2.0, 5.0));
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.accuracy, 1.0);
        assert_eq!(q.range_ratio, 1.0);
    }

    #[test]
    fn over_approximation_keeps_full_recall() {
        let q = bound_quality((0.0, 10.0), (2.0, 5.0));
        assert_eq!(q.recall, 1.0);
        assert!((q.accuracy - 0.3).abs() < 1e-9);
        assert!((q.range_ratio - 10.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn under_approximation_loses_recall_not_accuracy() {
        let q = bound_quality((3.0, 4.0), (2.0, 5.0));
        assert!((q.recall - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(q.accuracy, 1.0, "under-approximations are fully precise");
        assert!((q.range_ratio - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn point_truth_handled() {
        let q = bound_quality((5.0, 5.0), (5.0, 5.0));
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.accuracy, 1.0);
        // Containing point estimate, width 2.
        let q = bound_quality((4.0, 6.0), (5.0, 5.0));
        assert_eq!(q.recall, 1.0);
        assert!((q.range_ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_bounds_score_zero() {
        let q = bound_quality((0.0, 1.0), (3.0, 4.0));
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.accuracy, 0.0);
    }

    #[test]
    fn aggregation_averages() {
        let s = aggregate_quality([
            ((2.0, 5.0), (2.0, 5.0)),
            ((3.0, 4.0), (2.0, 5.0)), // recall 1/3
        ]);
        assert_eq!(s.n, 2);
        assert!((s.recall - (1.0 + 1.0 / 3.0) / 2.0).abs() < 1e-9);
    }
}
