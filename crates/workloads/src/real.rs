//! Simulators of the paper's three real-world datasets (Sec. 9.2).
//!
//! The originals (NSIDC Iceberg sightings, Chicago Crimes, Medicare
//! Hospital Compare) are cleaned with entity-resolution / imputation lenses
//! whose output is an uncertain database. We reproduce their statistical
//! shape — row counts, uncertainty rates, schemas — and the *exact six
//! queries* of Sec. 9.2, per the substitution policy of DESIGN.md §2:
//!
//! | dataset | rows | uncertainty | rank query | window query |
//! |---|---|---|---|---|
//! | Iceberg | 167 K | 1.1 % | top-3 sizes by `count(*)` | rolling `sum(number)` per date, `[0, +3]` |
//! | Crimes | 1.45 M | 0.1 % | top-3 days by `count(*)` | `min(year)` over latitude order, `[-1, +1]`, year = 2016 |
//! | Healthcare | 171 K | 1.0 % | top-5 facilities by score | in-line rank: `count(*)` over score desc (unbounded preceding) |
//!
//! A `scale` factor shrinks row counts proportionally (wall-clock budgets;
//! EXPERIMENTS.md records the scale used for each reported number).

use crate::convert::xtuple_from_au;
use audb_core::{au_aggregate, au_project, RangeExpr, WinAgg};
use audb_rel::{Schema, Tuple, Value};
use audb_worlds::{Alternative, XTuple, XTupleTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A ranking (top-k) workload instance.
pub struct RankQuery {
    /// The (possibly pre-aggregated) input.
    pub table: XTupleTable,
    /// Order-by attribute indices (ascending; descending queries negate).
    pub order: Vec<usize>,
    /// The `k` of the top-k.
    pub k: u64,
}

/// A windowed-aggregation workload instance.
pub struct WindowQuery {
    /// The input table.
    pub table: XTupleTable,
    /// Order-by attribute indices.
    pub order: Vec<usize>,
    /// The aggregate.
    pub agg: WinAgg,
    /// Window offsets `[l, u]`.
    pub l: i64,
    /// Window upper offset.
    pub u: i64,
}

/// One simulated dataset with its two Sec. 9.2 queries.
pub struct RealDataset {
    /// Dataset name as in the paper's tables.
    pub name: &'static str,
    /// Base-table row count after scaling.
    pub rows: usize,
    /// Fraction of uncertain rows.
    pub uncertainty: f64,
    /// The rank query (pre-aggregated where the paper pre-aggregates).
    pub rank: RankQuery,
    /// The window query.
    pub window: WindowQuery,
}

fn scaled(n: usize, scale: f64) -> usize {
    ((n as f64 * scale) as usize).max(64)
}

/// NSIDC iceberg sightings: `(date, size, number, id)`.
pub fn iceberg(scale: f64, seed: u64) -> RealDataset {
    let rows = scaled(167_000, scale);
    let uncertainty = 0.011;
    let mut rng = StdRng::seed_from_u64(seed);
    let tuples: Vec<XTuple> = (0..rows)
        .map(|id| {
            let date = rng.gen_range(0..1095i64);
            let number = rng.gen_range(1..50i64);
            let sizes: Vec<i64> = if rng.gen_bool(uncertainty) {
                // Extraction ambiguity: two or three adjacent size classes.
                let s = rng.gen_range(0..8i64);
                (s..=s + rng.gen_range(1i64..=2)).collect()
            } else {
                vec![rng.gen_range(0..10i64)]
            };
            let p = 1.0 / sizes.len() as f64;
            XTuple::new(
                sizes
                    .into_iter()
                    .map(|s| Alternative {
                        tuple: Tuple::new([
                            Value::Int(date),
                            Value::Int(s),
                            Value::Int(number),
                            Value::Int(id as i64),
                        ]),
                        prob: p,
                    })
                    .collect(),
            )
        })
        .collect();
    let base = XTupleTable::new(Schema::new(["date", "size", "number", "id"]), tuples);

    // Rank: SELECT size, count(*) GROUP BY size ORDER BY ct DESC LIMIT 3 —
    // pre-aggregate in the AU model, negate for descending order.
    let au = base.to_au_relation();
    let agg = au_aggregate(&au, &[1], &[(WinAgg::Count, "ct")]);
    let ranked = au_project(
        &agg,
        &[
            (RangeExpr::col(0), "size"),
            (RangeExpr::Neg(Box::new(RangeExpr::col(1))), "neg_ct"),
        ],
    );
    let rank = RankQuery {
        table: xtuple_from_au(&ranked),
        order: vec![1],
        k: 3,
    };

    // Window: rolling sum of `number` over date order, current + 3 following.
    let window = WindowQuery {
        table: base,
        order: vec![0],
        agg: WinAgg::Sum(2),
        l: 0,
        u: 3,
    };
    RealDataset {
        name: "Iceberg",
        rows,
        uncertainty,
        rank,
        window,
    }
}

/// Chicago crimes: `(date, year, latitude, id)`; the window query runs on
/// the year-2016 slice, as in the paper's SQL.
pub fn crimes(scale: f64, seed: u64) -> RealDataset {
    let rows = scaled(1_450_000, scale);
    let uncertainty = 0.001;
    let mut rng = StdRng::seed_from_u64(seed);
    let gen_lat = |rng: &mut StdRng| rng.gen_range(41_640_000..42_030_000i64);
    let tuples: Vec<XTuple> = (0..rows)
        .map(|id| {
            let date = rng.gen_range(0..5844i64);
            let year = 2001 + date / 366;
            // Geocoding ambiguity: candidate latitudes inside a declared
            // uncertainty region reported by the geocoder.
            let (lats, declared) = if rng.gen_bool(uncertainty) {
                let l0 = gen_lat(&mut rng);
                let spread = rng.gen_range(5_000..40_000i64);
                (
                    vec![l0, l0 + spread / 2, l0 + spread],
                    Some((l0 - spread / 4, l0 + spread + spread / 4)),
                )
            } else {
                (vec![gen_lat(&mut rng)], None)
            };
            let p = 1.0 / lats.len() as f64;
            let xt = XTuple::new(
                lats.into_iter()
                    .map(|lat| Alternative {
                        tuple: Tuple::new([
                            Value::Int(date),
                            Value::Int(year),
                            Value::Int(lat),
                            Value::Int(id as i64),
                        ]),
                        prob: p,
                    })
                    .collect(),
            );
            if let Some((lo, hi)) = declared {
                xt.with_declared(vec![
                    (Value::Int(date), Value::Int(date)),
                    (Value::Int(year), Value::Int(year)),
                    (Value::Int(lo), Value::Int(hi)),
                    (Value::Int(id as i64), Value::Int(id as i64)),
                ])
            } else {
                xt
            }
        })
        .collect();
    let base = XTupleTable::new(Schema::new(["date", "year", "lat", "id"]), tuples);

    // Rank: top-3 days by incident count.
    let au = base.to_au_relation();
    let agg = au_aggregate(&au, &[0], &[(WinAgg::Count, "ct")]);
    let ranked = au_project(
        &agg,
        &[
            (RangeExpr::col(0), "date"),
            (RangeExpr::Neg(Box::new(RangeExpr::col(1))), "neg_ct"),
        ],
    );
    let rank = RankQuery {
        table: xtuple_from_au(&ranked),
        order: vec![1],
        k: 3,
    };

    // Window: year-2016 slice, min(year) over latitude neighbours. Year is
    // the *imputed* attribute there (missing-value repair): uncertain rows
    // may be 2015–2017.
    let rows_2016 = scaled(rows / 16, 1.0);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    let tuples: Vec<XTuple> = (0..rows_2016)
        .map(|id| {
            let lat = gen_lat(&mut rng);
            let years: Vec<i64> = if rng.gen_bool(uncertainty * 10.0) {
                vec![2015, 2016, 2017]
            } else {
                vec![2016]
            };
            let p = 1.0 / years.len() as f64;
            XTuple::new(
                years
                    .into_iter()
                    .map(|y| Alternative {
                        tuple: Tuple::new([Value::Int(lat), Value::Int(y), Value::Int(id as i64)]),
                        prob: p,
                    })
                    .collect(),
            )
        })
        .collect();
    let window = WindowQuery {
        table: XTupleTable::new(Schema::new(["lat", "year", "id"]), tuples),
        order: vec![0],
        agg: WinAgg::Min(1),
        l: -1,
        u: 1,
    };
    RealDataset {
        name: "Crimes",
        rows,
        uncertainty,
        rank,
        window,
    }
}

/// Medicare hospital compare: `(score, id)`, restricted to one measure
/// (MRSA Bacteremia), as the paper's WHERE clause does — roughly 1/40 of
/// the 171 K base rows survive the filter.
pub fn healthcare(scale: f64, seed: u64) -> RealDataset {
    let base_rows = scaled(171_000, scale);
    let rows = (base_rows / 40).max(64);
    let uncertainty = 0.01;
    let mut rng = StdRng::seed_from_u64(seed);
    let tuples: Vec<XTuple> = (0..rows)
        .map(|id| {
            // Imputed scores: plausible values inside a declared band that
            // the imputation lens reports wider than the realizations.
            let (scores, declared) = if rng.gen_bool(uncertainty) {
                let s = rng.gen_range(100..1700i64);
                let band = rng.gen_range(50..250i64);
                (
                    vec![s, s + band / 3, s + band / 2],
                    Some((s - band / 4, s + band)),
                )
            } else {
                (vec![rng.gen_range(0..2000i64)], None)
            };
            let p = 1.0 / scores.len() as f64;
            let xt = XTuple::new(
                scores
                    .into_iter()
                    .map(|s| Alternative {
                        tuple: Tuple::new([Value::Int(s), Value::Int(id as i64)]),
                        prob: p,
                    })
                    .collect(),
            );
            if let Some((lo, hi)) = declared {
                xt.with_declared(vec![
                    (Value::Int(lo), Value::Int(hi)),
                    (Value::Int(id as i64), Value::Int(id as i64)),
                ])
            } else {
                xt
            }
        })
        .collect();
    let table = XTupleTable::new(Schema::new(["score", "id"]), tuples);

    // Rank: ORDER BY score LIMIT 5 — directly on the filtered rows.
    let rank = RankQuery {
        table: table.clone(),
        order: vec![0],
        k: 5,
    };
    // Window: in-line rank = count(*) OVER (ORDER BY score DESC), i.e. an
    // unbounded-preceding window on the negated score.
    let mut neg = table.clone();
    for xt in &mut neg.tuples {
        for alt in &mut xt.alternatives {
            let s = alt.tuple.get(0).as_i64().unwrap();
            alt.tuple.0[0] = Value::Int(-s);
        }
        if let Some(d) = &mut xt.declared {
            let (lo, hi) = (d[0].0.as_i64().unwrap(), d[0].1.as_i64().unwrap());
            d[0] = (Value::Int(-hi), Value::Int(-lo));
        }
    }
    let n = neg.len() as i64;
    let window = WindowQuery {
        table: neg,
        order: vec![0],
        agg: WinAgg::Count,
        l: -n,
        u: 0,
    };
    RealDataset {
        name: "Healthcare",
        rows: base_rows,
        uncertainty,
        rank,
        window,
    }
}

/// All three simulators at a common scale.
pub fn all_datasets(scale: f64, seed: u64) -> Vec<RealDataset> {
    vec![
        iceberg(scale, seed),
        crimes(scale, seed.wrapping_add(100)),
        healthcare(scale, seed.wrapping_add(200)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{imp_sort, imp_window, mcdb_sort, symb_sort};

    #[test]
    fn iceberg_rank_is_preaggregated() {
        let ds = iceberg(0.005, 1);
        // At most 10 size classes + spill from uncertain rows.
        assert!(ds.rank.table.len() <= 12, "{}", ds.rank.table.len());
        // Counts are negative (descending order trick).
        let any = &ds.rank.table.tuples[0].alternatives[0].tuple;
        assert!(any.get(1).as_i64().unwrap() <= 0);
    }

    #[test]
    fn rank_queries_run_end_to_end() {
        for ds in all_datasets(0.002, 7) {
            let imp = imp_sort(&ds.rank.table, &ds.rank.order, Some(ds.rank.k));
            let mc = mcdb_sort(&ds.rank.table, &ds.rank.order, 5, 1);
            let tight = symb_sort(&ds.rank.table, &ds.rank.order);
            assert_eq!(mc.value.len(), tight.value.len());
            // Top-k keeps at most a few answers per method.
            let answers = imp.value.iter().flatten().count();
            assert!(answers >= ds.rank.k as usize, "{}: {answers}", ds.name);
        }
    }

    #[test]
    fn window_queries_run_end_to_end() {
        for ds in all_datasets(0.002, 3) {
            let w = &ds.window;
            let imp = imp_window(&w.table, &w.order, w.agg, w.l, w.u);
            let produced = imp.value.iter().flatten().count();
            assert_eq!(produced, w.table.len(), "{}", ds.name);
        }
    }

    #[test]
    fn healthcare_window_is_inline_rank() {
        let ds = healthcare(0.02, 5);
        let w = &ds.window;
        let imp = imp_window(&w.table, &w.order, w.agg, w.l, w.u).value;
        // Ranks are within [1, n].
        let n = w.table.len() as f64;
        for b in imp.iter().flatten() {
            assert!(b.0 >= 1.0 && b.1 <= n);
        }
    }
}
