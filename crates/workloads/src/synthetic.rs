//! Synthetic microbenchmark workloads (paper Sec. 9.1).
//!
//! "We generated synthetic data consisting of a single table with 2
//! attributes for sorting and 3 attributes for windowed aggregation.
//! Attribute values are uniform randomly distributed. Except where noted,
//! we default to 50k rows and 5% uncertainty with maximum 1k attribute
//! range on uncertain values."
//!
//! Every generated table carries a trailing certain `id` attribute (the
//! x-tuple index): it never affects order-by semantics beyond deterministic
//! tie-breaking, and lets the quality harness attribute per-tuple bounds
//! across all methods.

use audb_rel::{Schema, Tuple, Value};
use audb_worlds::{Alternative, XTuple, XTupleTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters (paper defaults via [`Default`]).
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Number of rows (paper default 50k).
    pub rows: usize,
    /// Fraction of rows with uncertain attributes (paper default 5%).
    pub uncertainty: f64,
    /// Maximum width of an uncertain attribute's value range (default 1k).
    pub range: i64,
    /// Alternatives per uncertain attribute value.
    pub alternatives: usize,
    /// Probability that an uncertain row may be absent entirely.
    pub absent_prob: f64,
    /// Value domain `[0, domain)`; 0 (the default) auto-scales to
    /// `rows × 20`, keeping the data density — and hence the width of
    /// position uncertainty relative to an attribute range — invariant
    /// under the `--scale` factor.
    pub domain: i64,
    /// RNG seed (all workloads are reproducible).
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            rows: 50_000,
            uncertainty: 0.05,
            range: 1_000,
            alternatives: 4,
            absent_prob: 0.0,
            domain: 0,
            seed: 0x5EED,
        }
    }
}

impl SyntheticConfig {
    /// Convenience: set the row count.
    pub fn rows(mut self, rows: usize) -> Self {
        self.rows = rows;
        self
    }

    /// Convenience: set the uncertainty rate.
    pub fn uncertainty(mut self, u: f64) -> Self {
        self.uncertainty = u;
        self
    }

    /// Convenience: set the attribute range.
    pub fn range(mut self, r: i64) -> Self {
        self.range = r;
        self
    }

    /// Convenience: set the seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }
}

fn domain_of(cfg: &SyntheticConfig) -> i64 {
    if cfg.domain > 0 {
        cfg.domain
    } else {
        (cfg.rows as i64 * 20).max(1_000)
    }
}

/// Uncertain values for one attribute: either a certain draw, or
/// `alternatives` draws from a *declared* range of width `range` (the
/// cleaning heuristic's range; alternatives sit inside it but rarely at its
/// endpoints, so the derived AU-DB genuinely over-approximates — see
/// `audb_worlds::XTuple::declared`).
fn gen_attr(rng: &mut StdRng, cfg: &SyntheticConfig, uncertain: bool) -> (Vec<i64>, (i64, i64)) {
    let base = rng.gen_range(0..domain_of(cfg));
    if !uncertain {
        return (vec![base], (base, base));
    }
    let width = cfg.range.max(1);
    let declared = (base, base + width - 1);
    let mut vals: Vec<i64> = (0..cfg.alternatives.max(2))
        .map(|_| base + rng.gen_range(0..width))
        .collect();
    vals.sort_unstable();
    vals.dedup();
    (vals, declared)
}

/// The sorting workload: schema `(a, b, id)` with two order-by attributes.
/// Sorting queries order on `(a, b)`.
pub fn gen_sort_table(cfg: &SyntheticConfig) -> XTupleTable {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let tuples = (0..cfg.rows)
        .map(|id| {
            let uncertain = rng.gen_bool(cfg.uncertainty);
            let (avals, a_decl) = gen_attr(&mut rng, cfg, uncertain);
            let b = rng.gen_range(0..domain_of(cfg));
            let absent = uncertain && cfg.absent_prob > 0.0 && rng.gen_bool(cfg.absent_prob);
            let present_mass = if absent { 0.5 } else { 1.0 };
            let p = present_mass / avals.len() as f64;
            let xt = XTuple::new(
                avals
                    .into_iter()
                    .map(|a| Alternative {
                        tuple: Tuple::new([Value::Int(a), Value::Int(b), Value::Int(id as i64)]),
                        prob: p,
                    })
                    .collect(),
            );
            if uncertain {
                xt.with_declared(vec![
                    (Value::Int(a_decl.0), Value::Int(a_decl.1)),
                    (Value::Int(b), Value::Int(b)),
                    (Value::Int(id as i64), Value::Int(id as i64)),
                ])
            } else {
                xt
            }
        })
        .collect();
    XTupleTable::new(Schema::new(["a", "b", "id"]), tuples)
}

/// The windowed-aggregation workload: schema `(o, g, v, id)` — an order-by
/// attribute, a partition attribute (certain; small category domain), the
/// aggregation attribute, and the id. Uncertainty hits the order attribute
/// and, independently, the aggregation attribute.
///
/// The auto domain is 10× sparser than the sorting workload's (`rows ×
/// 200`): an uncertain order range then displaces a tuple by a handful of
/// positions — commensurate with the window sizes under study — rather
/// than by dozens, matching the quality regime of the paper's Fig. 13.
pub fn gen_window_table(cfg: &SyntheticConfig) -> XTupleTable {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(1));
    let sparse_cfg = SyntheticConfig {
        domain: if cfg.domain > 0 {
            cfg.domain
        } else {
            (cfg.rows as i64 * 200).max(10_000)
        },
        ..cfg.clone()
    };
    let cfg = &sparse_cfg;
    let groups = 8i64;
    let tuples = (0..cfg.rows)
        .map(|id| {
            let o_unc = rng.gen_bool(cfg.uncertainty);
            let v_unc = rng.gen_bool(cfg.uncertainty);
            let (ovals, o_decl) = gen_attr(&mut rng, cfg, o_unc);
            let g = rng.gen_range(0..groups);
            let (vvals, v_decl) = gen_attr(&mut rng, cfg, v_unc);
            // Cross product of the uncertain attributes' alternatives.
            let mut alts = Vec::with_capacity(ovals.len() * vvals.len());
            for &o in &ovals {
                for &v in &vvals {
                    alts.push(Tuple::new([
                        Value::Int(o),
                        Value::Int(g),
                        Value::Int(v),
                        Value::Int(id as i64),
                    ]));
                }
            }
            let p = 1.0 / alts.len() as f64;
            let xt = XTuple::new(
                alts.into_iter()
                    .map(|tuple| Alternative { tuple, prob: p })
                    .collect(),
            );
            // Window workloads declare alternative hulls (no heuristic
            // widening): widened order ranges create *phantom* window
            // members — tuples no world ever places in the window — whose
            // value mass blows up aggregate bounds by orders of magnitude,
            // a regime the paper's Fig. 13 (ratios ≤ ~1.3) clearly is not
            // in. The remaining over-approximation is the genuine
            // correlation ignorance of the AU-DB model.
            let _ = (o_decl, v_decl);
            xt
        })
        .collect();
    XTupleTable::new(Schema::new(["o", "g", "v", "id"]), tuples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_table_shape_and_determinism() {
        let cfg = SyntheticConfig::default().rows(500).seed(1);
        let t1 = gen_sort_table(&cfg);
        let t2 = gen_sort_table(&cfg);
        assert_eq!(t1.len(), 500);
        // Deterministic given the seed.
        for (a, b) in t1.tuples.iter().zip(&t2.tuples) {
            assert_eq!(a.alternatives.len(), b.alternatives.len());
            for (x, y) in a.alternatives.iter().zip(&b.alternatives) {
                assert_eq!(x.tuple, y.tuple);
            }
        }
    }

    #[test]
    fn uncertainty_rate_is_respected() {
        let cfg = SyntheticConfig::default()
            .rows(5_000)
            .uncertainty(0.1)
            .seed(2);
        let t = gen_sort_table(&cfg);
        let uncertain = t.tuples.iter().filter(|x| x.alternatives.len() > 1).count();
        let rate = uncertain as f64 / t.len() as f64;
        assert!((rate - 0.1).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn ranges_are_bounded() {
        let cfg = SyntheticConfig::default().rows(2_000).range(100).seed(3);
        let t = gen_sort_table(&cfg);
        for x in &t.tuples {
            let vals: Vec<i64> = x
                .alternatives
                .iter()
                .map(|a| a.tuple.get(0).as_i64().unwrap())
                .collect();
            let spread = vals.iter().max().unwrap() - vals.iter().min().unwrap();
            assert!(spread < 100, "spread {spread}");
        }
    }

    #[test]
    fn window_table_has_certain_partitions() {
        let cfg = SyntheticConfig::default().rows(1_000).seed(4);
        let t = gen_window_table(&cfg);
        for x in &t.tuples {
            let g0 = x.alternatives[0].tuple.get(1).clone();
            assert!(x.alternatives.iter().all(|a| a.tuple.get(1) == &g0));
        }
    }

    #[test]
    fn ids_are_positional() {
        let cfg = SyntheticConfig::default().rows(100).seed(5);
        let t = gen_sort_table(&cfg);
        for (i, x) in t.tuples.iter().enumerate() {
            assert!(x
                .alternatives
                .iter()
                .all(|a| a.tuple.get(2).as_i64() == Some(i as i64)));
        }
    }
}
