//! Conversions between AU-relations and x-tuple tables.
//!
//! Real-world rank queries in the paper run over *pre-aggregated* data
//! (Sec. 9.2). Aggregation happens in the AU-DB model; to hand the same
//! uncertain aggregate to the sampling/probabilistic competitors we
//! re-materialize an x-tuple table whose alternatives are the range corners
//! of each aggregated row. This keeps every method consuming the identical
//! uncertainty model (DESIGN.md §2); probabilities follow the selected
//! guess (most of the mass on the sg corner).

use audb_core::AuRelation;
use audb_rel::{Schema, Value};
use audb_worlds::{Alternative, XTuple, XTupleTable};

/// Probability mass assigned to the selected-guess corner.
const SG_MASS: f64 = 0.6;
/// Presence probability of rows that only possibly exist (`k↓ = 0`).
const MAYBE_PRESENT: f64 = 0.8;

/// Build an x-tuple table from an AU relation. Each row contributes its
/// selected guess plus *inner-quartile* points of its range as alternatives
/// (`lb + w/4` and `ub − w/4`), with the full `[lb, ub]` range attached as
/// the declared range: the derived AU-DB keeps the cleaning heuristic's
/// bounds while the realized worlds stay strictly inside them — the same
/// relationship the paper's lens-cleaned datasets exhibit (and the reason
/// its `Imp` accuracy is below 1 while MCDB's recall is). A trailing
/// certain `id` attribute is appended for per-tuple quality tracking.
pub fn xtuple_from_au(au: &AuRelation) -> XTupleTable {
    let schema = Schema::new(au.schema.cols().iter().cloned().chain(["id".to_string()]));
    let tuples = au
        .rows()
        .iter()
        .enumerate()
        .map(|(id, row)| {
            let idv = Value::Int(id as i64);
            let sg = row.tuple.sg_tuple().with(idv.clone());
            // Inner-quartile corner points per attribute.
            let inner = |frac_from_lb: bool| -> audb_rel::Tuple {
                let vals = row
                    .tuple
                    .0
                    .iter()
                    .map(|r| match (r.lb.as_i64(), r.ub.as_i64()) {
                        (Some(lo), Some(hi)) if hi > lo => {
                            let w = hi - lo;
                            Value::Int(if frac_from_lb {
                                lo + (w / 4).max(1).min(w)
                            } else {
                                hi - (w / 4).max(1).min(w)
                            })
                        }
                        _ => {
                            if frac_from_lb {
                                r.lb.clone()
                            } else {
                                r.ub.clone()
                            }
                        }
                    });
                audb_rel::Tuple(vals.collect()).with(idv.clone())
            };
            let mut corners = vec![sg.clone()];
            for c in [inner(true), inner(false)] {
                if !corners.contains(&c) {
                    corners.push(c);
                }
            }
            let declared: Vec<(Value, Value)> = row
                .tuple
                .0
                .iter()
                .map(|r| (r.lb.clone(), r.ub.clone()))
                .chain([(idv.clone(), idv.clone())])
                .collect();
            let presence = if row.mult.lb >= 1 { 1.0 } else { MAYBE_PRESENT };
            let rest = corners.len() - 1;
            let alternatives = corners
                .into_iter()
                .enumerate()
                .map(|(i, tuple)| {
                    let prob = if rest == 0 {
                        presence
                    } else if i == 0 {
                        presence * SG_MASS
                    } else {
                        presence * (1.0 - SG_MASS) / rest as f64
                    };
                    Alternative { tuple, prob }
                })
                .collect();
            XTuple::new(alternatives).with_declared(declared)
        })
        .collect();
    XTupleTable::new(schema, tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_core::{AuTuple, Mult3, RangeValue};

    #[test]
    fn inner_points_become_alternatives() {
        let au = AuRelation::from_rows(
            Schema::new(["ct"]),
            [
                (AuTuple::new([RangeValue::new(2, 3, 5)]), Mult3::ONE),
                (
                    AuTuple::new([RangeValue::certain(7i64)]),
                    Mult3::new(0, 1, 1),
                ),
            ],
        );
        let xt = xtuple_from_au(&au);
        assert_eq!(xt.schema.cols(), &["ct", "id"]);
        // sg = 3, inner-from-lb = 3 (dedup with sg), inner-from-ub = 4.
        assert_eq!(xt.tuples[0].alternatives.len(), 2);
        assert!(xt.tuples[0].certainly_exists());
        // Declared range = the full AU range (wider than the alternatives).
        let d = xt.tuples[0].declared.as_ref().unwrap();
        assert_eq!(d[0], (audb_rel::Value::Int(2), audb_rel::Value::Int(5)));
        // Certain value, uncertain presence.
        assert_eq!(xt.tuples[1].alternatives.len(), 1);
        assert!(!xt.tuples[1].certainly_exists());
        assert!((xt.tuples[1].presence_prob() - MAYBE_PRESENT).abs() < 1e-9);
    }

    #[test]
    fn derived_au_relation_bounds_the_corners() {
        let au = AuRelation::from_rows(
            Schema::new(["ct"]),
            [(AuTuple::new([RangeValue::new(2, 3, 5)]), Mult3::ONE)],
        );
        let xt = xtuple_from_au(&au);
        let back = xt.to_au_relation();
        // Ranges must round-trip (corners span the same hull).
        assert_eq!(back.rows()[0].tuple.get(0), &RangeValue::new(2, 3, 5));
    }
}
