//! CSV → AU-relation loading for the SQL frontend (`repro sql`) and
//! scripted workloads.
//!
//! Builds on `audb_rel::csv` (dependency-free RFC-4180 reader) and folds a
//! flat header convention into range annotations:
//!
//! * a column `c` with sibling columns `c_lb` / `c_ub` becomes the
//!   range-annotated attribute `[c_lb / c / c_ub]` (either sibling may be
//!   omitted — the missing bound defaults to the base value);
//! * the column triple `mult_lb, mult_sg, mult_ub` (all three present)
//!   becomes the row's `ℕ³` multiplicity (default `(1,1,1)`);
//! * every other column is a certain attribute.
//!
//! Invalid rows (`lb ≤ sg ≤ ub` violated, non-integer multiplicities)
//! are reported as `io::Error`s naming the row, not panics.

use audb_core::{AuRelation, AuTuple, Mult3, RangeValue};
use audb_rel::{read_csv, Relation, Schema};
use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

/// How one output attribute maps onto input columns.
struct ColPlan {
    name: String,
    sg: usize,
    lb: Option<usize>,
    ub: Option<usize>,
}

fn plan_columns(schema: &Schema) -> (Vec<ColPlan>, Option<[usize; 3]>) {
    let cols = schema.cols();
    let has = |name: &str| schema.index_of(name);
    let mult = match (has("mult_lb"), has("mult_sg"), has("mult_ub")) {
        (Some(l), Some(s), Some(u)) => Some([l, s, u]),
        _ => None,
    };
    let is_mult_col = |i: usize| mult.is_some_and(|m| m.contains(&i));
    let mut plans = Vec::new();
    for (i, name) in cols.iter().enumerate() {
        if is_mult_col(i) {
            continue;
        }
        // A bound column of an existing base attribute is folded, not kept.
        if let Some(base) = name
            .strip_suffix("_lb")
            .or_else(|| name.strip_suffix("_ub"))
        {
            if has(base).is_some() {
                continue;
            }
        }
        plans.push(ColPlan {
            name: name.clone(),
            sg: i,
            lb: has(&format!("{name}_lb")),
            ub: has(&format!("{name}_ub")),
        });
    }
    (plans, mult)
}

fn bad_row(row: usize, msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("row {row}: {msg}"))
}

/// Fold a deterministic relation (as read from CSV) into an AU-relation
/// under the `_lb`/`_ub` + `mult_*` header convention.
pub fn au_from_relation(rel: &Relation) -> io::Result<AuRelation> {
    let (plans, mult_cols) = plan_columns(&rel.schema);
    let schema = Schema::new(plans.iter().map(|p| p.name.clone()));
    let mut out = AuRelation::empty(schema);
    for (ri, row) in rel.rows.iter().enumerate() {
        let mut vals = Vec::with_capacity(plans.len());
        for p in &plans {
            let sg = row.tuple.get(p.sg).clone();
            let lb =
                p.lb.map_or_else(|| sg.clone(), |i| row.tuple.get(i).clone());
            let ub =
                p.ub.map_or_else(|| sg.clone(), |i| row.tuple.get(i).clone());
            if !(lb <= sg && sg <= ub) {
                return Err(bad_row(
                    ri + 1,
                    format!(
                        "column {:?} violates lb \u{2264} sg \u{2264} ub: [{lb} / {sg} / {ub}]",
                        p.name
                    ),
                ));
            }
            vals.push(RangeValue::new(lb, sg, ub));
        }
        let mult = match mult_cols {
            None => Mult3::certain(row.mult),
            Some([l, s, u]) => {
                let get = |i: usize, what: &str| -> io::Result<u64> {
                    row.tuple
                        .get(i)
                        .as_i64()
                        .and_then(|v| u64::try_from(v).ok())
                        .ok_or_else(|| {
                            bad_row(ri + 1, format!("{what} is not a non-negative integer"))
                        })
                };
                let (l, s, u) = (get(l, "mult_lb")?, get(s, "mult_sg")?, get(u, "mult_ub")?);
                if !(l <= s && s <= u) {
                    return Err(bad_row(
                        ri + 1,
                        format!("multiplicity violates lb \u{2264} sg \u{2264} ub: ({l},{s},{u})"),
                    ));
                }
                Mult3::new(l, s, u)
            }
        };
        out.push(AuTuple::new(vals), mult);
    }
    Ok(out)
}

/// Read an AU-relation from CSV text.
pub fn read_au_csv(reader: impl Read) -> io::Result<AuRelation> {
    au_from_relation(&read_csv(reader)?)
}

/// Load an AU-relation from a CSV file.
pub fn load_au_csv(path: impl AsRef<Path>) -> io::Result<AuRelation> {
    read_au_csv(File::open(path)?)
}

/// Load every `*.csv` in a directory as `(file stem, relation)` pairs, in
/// name order — the table set `repro sql` registers.
pub fn load_au_dir(dir: impl AsRef<Path>) -> io::Result<Vec<(String, AuRelation)>> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "csv"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let name = p
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            let rel = load_au_csv(&p)
                .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", p.display())))?;
            Ok((name, rel))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_and_mult_columns_fold() {
        let csv = "sku,price_lb,price,price_ub,mult_lb,mult_sg,mult_ub\n\
                   1,9,10,12,1,1,1\n\
                   2,15,15,15,0,1,1\n";
        let au = read_au_csv(csv.as_bytes()).unwrap();
        assert_eq!(au.schema.cols(), &["sku", "price"]);
        assert_eq!(au.rows[0].tuple.get(0), &RangeValue::certain(1i64));
        assert_eq!(au.rows[0].tuple.get(1), &RangeValue::new(9, 10, 12));
        assert_eq!(au.rows[0].mult, Mult3::ONE);
        assert_eq!(au.rows[1].mult, Mult3::new(0, 1, 1));
    }

    #[test]
    fn plain_csv_is_fully_certain() {
        let csv = "a,b\n1,x\n2,y\n";
        let au = read_au_csv(csv.as_bytes()).unwrap();
        assert_eq!(au.schema.cols(), &["a", "b"]);
        assert!(au
            .rows
            .iter()
            .all(|r| r.mult == Mult3::ONE && r.tuple.0.iter().all(|v| v.is_certain())));
    }

    #[test]
    fn one_sided_bounds_and_standalone_suffix_names() {
        // `a_ub` without `a_lb` bounds only from above; `z_lb` without a
        // base `z` stays a standalone certain column.
        let csv = "a,a_ub,z_lb\n1,3,7\n";
        let au = read_au_csv(csv.as_bytes()).unwrap();
        assert_eq!(au.schema.cols(), &["a", "z_lb"]);
        assert_eq!(au.rows[0].tuple.get(0), &RangeValue::new(1, 1, 3));
        assert_eq!(au.rows[0].tuple.get(1), &RangeValue::certain(7i64));
    }

    #[test]
    fn invalid_rows_are_errors_not_panics() {
        let e = read_au_csv("a_lb,a,a_ub\n5,4,6\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("row 1"), "{e}");
        let e = read_au_csv("a,mult_lb,mult_sg,mult_ub\n1,2,1,1\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("multiplicity"), "{e}");
        let e = read_au_csv("a,mult_lb,mult_sg,mult_ub\n1,-1,1,1\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("mult_lb"), "{e}");
    }
}
