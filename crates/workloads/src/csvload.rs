//! CSV → AU-relation loading for the SQL frontend (`repro sql`) and
//! scripted workloads.
//!
//! Builds on `audb_rel::csv` (dependency-free RFC-4180 reader) and folds a
//! flat header convention into range annotations:
//!
//! * a column `c` with sibling columns `c_lb` / `c_ub` becomes the
//!   range-annotated attribute `[c_lb / c / c_ub]` (either sibling may be
//!   omitted — the missing bound defaults to the base value);
//! * the column triple `mult_lb, mult_sg, mult_ub` (all three present)
//!   becomes the row's `ℕ³` multiplicity (default `(1,1,1)`);
//! * every other column is a certain attribute.
//!
//! Since the columnar refactor the loader builds [`AuColumns`] **directly**,
//! one attribute at a time: a column with no bound siblings becomes a
//! certain-collapsed column with zero per-cell work, a bounded column
//! builds its three bound vectors in one sweep (collapsing back to the
//! certain fast path when every cell turns out to be a point). The row
//! representation is derived from it on demand.
//!
//! The loader also **infers each attribute's physical layout** from its
//! cells (across all bound lanes jointly, so a ranged column's three
//! lanes always share one layout): all-integer attributes load as `i64`
//! lanes, all-string attributes dictionary-encode, and an attribute
//! mixing integer and float cells promotes to `f64` — the load boundary
//! is the *only* place an integer is ever rewritten as a float, and an
//! integer beyond ±2⁵³ contradicts the inferred `f64` layout and is a
//! spanned error rather than a silent rounding. Anything else (booleans,
//! nulls, string/number mixes) falls back to generic `Value` storage.
//!
//! Invalid input is reported as an `io::Error` spanning the offending
//! source location — ragged rows as `line N: ragged row …` (from
//! [`audb_rel::read_csv_lines`], which tracks real file lines across
//! skipped blanks), and `lb ≤ sg ≤ ub` violations (including `lb > ub`)
//! as `line N, column "c" (cols X–Y): …` naming the folded source
//! columns (`row N` instead of `line N` when the input is a
//! programmatic [`Relation`] with no tracked source lines). Nothing
//! panics and nothing is silently clamped.

use audb_core::physical::{int_fits_f64, CertBitmap, PhysVec};
use audb_core::{AuColumn, AuColumns, AuRelation, Mult3};
use audb_rel::{read_csv_lines, Relation, Schema, Value};
use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

/// How one output attribute maps onto input columns.
struct ColPlan {
    name: String,
    sg: usize,
    lb: Option<usize>,
    ub: Option<usize>,
}

impl ColPlan {
    /// `cols X–Y` — the 1-based span of source columns folded into this
    /// attribute (for error messages).
    fn col_span(&self) -> (usize, usize) {
        let idxs = [Some(self.sg), self.lb, self.ub];
        let mut it = idxs.iter().flatten();
        let first = *it.next().expect("sg always present");
        let (mut lo, mut hi) = (first, first);
        for &i in it {
            lo = lo.min(i);
            hi = hi.max(i);
        }
        (lo + 1, hi + 1)
    }
}

fn plan_columns(schema: &Schema) -> (Vec<ColPlan>, Option<[usize; 3]>) {
    let cols = schema.cols();
    let has = |name: &str| schema.index_of(name);
    let mult = match (has("mult_lb"), has("mult_sg"), has("mult_ub")) {
        (Some(l), Some(s), Some(u)) => Some([l, s, u]),
        _ => None,
    };
    let is_mult_col = |i: usize| mult.is_some_and(|m| m.contains(&i));
    let mut plans = Vec::new();
    for (i, name) in cols.iter().enumerate() {
        if is_mult_col(i) {
            continue;
        }
        // A bound column of an existing base attribute is folded, not kept.
        if let Some(base) = name
            .strip_suffix("_lb")
            .or_else(|| name.strip_suffix("_ub"))
        {
            if has(base).is_some() {
                continue;
            }
        }
        plans.push(ColPlan {
            name: name.clone(),
            sg: i,
            lb: has(&format!("{name}_lb")),
            ub: has(&format!("{name}_ub")),
        });
    }
    (plans, mult)
}

/// A location/column-spanned loading error (`loc` is `line N` for CSV
/// input with tracked source lines, `row N` for programmatic relations).
fn bad_cell(loc: &str, span: &str, msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("{loc}, {span}: {msg}"))
}

/// True iff the cells span both integers and floats but nothing else —
/// the one case where the loader promotes integers to `f64`
/// ([`PhysVec::from_values`] itself never rewrites a value's class).
fn mixed_numeric<'a>(vals: impl Iterator<Item = &'a Value>) -> bool {
    let (mut int, mut float, mut other) = (false, false, false);
    for v in vals {
        match v {
            Value::Int(_) => int = true,
            Value::Float(_) => float = true,
            _ => other = true,
        }
    }
    int && float && !other
}

/// Materialize one bound lane under the inferred layout: a promoted lane
/// builds its `f64` vector directly, erroring on any integer `f64`
/// cannot represent exactly (a cell contradicting the inferred type);
/// otherwise [`PhysVec::from_values`] picks the class-strict layout.
fn load_lane(
    vals: Vec<Value>,
    promote: bool,
    p: &ColPlan,
    loc_of: &dyn Fn(usize) -> String,
) -> io::Result<PhysVec> {
    if !promote {
        return Ok(PhysVec::from_values(vals));
    }
    let mut out = Vec::with_capacity(vals.len());
    for (ri, v) in vals.iter().enumerate() {
        out.push(match v {
            Value::Float(f) => *f,
            Value::Int(i) if int_fits_f64(*i) => *i as f64,
            Value::Int(i) => {
                let (a, b) = p.col_span();
                return Err(bad_cell(
                    &loc_of(ri),
                    &format!("column {:?} (cols {a}\u{2013}{b})", p.name),
                    format!(
                        "column inferred as f64 (mixed int/float cells), \
                         but integer {i} is not exactly representable"
                    ),
                ));
            }
            _ => unreachable!("promotion requires an all-numeric attribute"),
        });
    }
    Ok(PhysVec::F64(out))
}

/// Build one output attribute column from its source columns, validating
/// `lb ≤ sg ≤ ub` per cell and inferring the physical layout from the
/// cells (see the module docs). Bound-free attributes collapse to the
/// certain fast path; bounded attributes whose every cell is a point
/// collapse after the sweep.
fn build_attr_column(
    rel: &Relation,
    p: &ColPlan,
    loc_of: &dyn Fn(usize) -> String,
) -> io::Result<AuColumn> {
    let rows = &rel.rows;
    if p.lb.is_none() && p.ub.is_none() {
        let vals: Vec<Value> = rows.iter().map(|r| r.tuple.get(p.sg).clone()).collect();
        let promote = mixed_numeric(vals.iter());
        return Ok(AuColumn::Certain(load_lane(vals, promote, p, loc_of)?));
    }
    let mut lb: Vec<Value> = Vec::with_capacity(rows.len());
    let mut ub: Vec<Value> = Vec::with_capacity(rows.len());
    let mut sg: Vec<Value> = Vec::with_capacity(rows.len());
    let mut certain = CertBitmap::new();
    let mut all_certain = true;
    for (ri, row) in rows.iter().enumerate() {
        let s = row.tuple.get(p.sg);
        let l = p.lb.map_or(s, |i| row.tuple.get(i));
        let u = p.ub.map_or(s, |i| row.tuple.get(i));
        if !(l <= s && s <= u) {
            let (a, b) = p.col_span();
            return Err(bad_cell(
                &loc_of(ri),
                &format!("column {:?} (cols {a}\u{2013}{b})", p.name),
                format!("lb \u{2264} sg \u{2264} ub violated: [{l} / {s} / {u}]"),
            ));
        }
        let point = l == u;
        all_certain = all_certain && point;
        certain.push(point);
        lb.push(l.clone());
        sg.push(s.clone());
        ub.push(u.clone());
    }
    // The three bound lanes share one inferred class, so a ranged
    // column's lanes always land in the same physical layout.
    let promote = mixed_numeric(lb.iter().chain(sg.iter()).chain(ub.iter()));
    Ok(if all_certain {
        AuColumn::Certain(load_lane(sg, promote, p, loc_of)?)
    } else {
        AuColumn::Ranged {
            lb: load_lane(lb, promote, p, loc_of)?,
            sg: load_lane(sg, promote, p, loc_of)?,
            ub: load_lane(ub, promote, p, loc_of)?,
            certain,
        }
    })
}

/// Fold a deterministic relation (as read from CSV) straight into a
/// columnar AU-relation under the `_lb`/`_ub` + `mult_*` header
/// convention, building one [`AuColumn`] per output attribute.
/// `loc_of` renders a data-row index as its source location (`line N`
/// when real file lines are known, `row N` otherwise — used in error
/// spans).
fn build_columns(rel: &Relation, loc_of: &dyn Fn(usize) -> String) -> io::Result<AuColumns> {
    let (plans, mult_cols) = plan_columns(&rel.schema);
    let schema = Schema::new(plans.iter().map(|p| p.name.clone()));
    let mut cols = Vec::with_capacity(plans.len());
    for p in &plans {
        cols.push(build_attr_column(rel, p, loc_of)?);
    }
    let mults: Vec<Mult3> = match mult_cols {
        None => rel.rows.iter().map(|r| Mult3::certain(r.mult)).collect(),
        Some([l, s, u]) => {
            let (lo, hi) = (l.min(s).min(u) + 1, l.max(s).max(u) + 1);
            let span = format!("columns mult_lb\u{2013}mult_ub (cols {lo}\u{2013}{hi})");
            let mut mults = Vec::with_capacity(rel.rows.len());
            for (ri, row) in rel.rows.iter().enumerate() {
                let get = |i: usize, what: &str| -> io::Result<u64> {
                    row.tuple
                        .get(i)
                        .as_i64()
                        .and_then(|v| u64::try_from(v).ok())
                        .ok_or_else(|| {
                            bad_cell(
                                &loc_of(ri),
                                &span,
                                format!("{what} is not a non-negative integer"),
                            )
                        })
                };
                let (l, s, u) = (get(l, "mult_lb")?, get(s, "mult_sg")?, get(u, "mult_ub")?);
                if !(l <= s && s <= u) {
                    return Err(bad_cell(
                        &loc_of(ri),
                        &span,
                        format!("multiplicity violates lb \u{2264} sg \u{2264} ub: ({l},{s},{u})"),
                    ));
                }
                mults.push(Mult3::new(l, s, u));
            }
            mults
        }
    };
    Ok(AuColumns::from_cols(schema, cols, &mults))
}

/// Fold a deterministic relation into a columnar AU-relation. Errors
/// name the offending 1-based data row (`row N`) — the relation may be
/// programmatic, so no file line is fabricated; use
/// [`read_au_csv_columns`] for exact source lines.
pub fn au_columns_from_relation(rel: &Relation) -> io::Result<AuColumns> {
    build_columns(rel, &|ri| format!("row {}", ri + 1))
}

/// Fold a deterministic relation into a (row-layout) AU-relation — the
/// compatibility wrapper over [`au_columns_from_relation`].
pub fn au_from_relation(rel: &Relation) -> io::Result<AuRelation> {
    au_columns_from_relation(rel).map(|c| c.to_rows())
}

/// Read a columnar AU-relation from CSV text (errors carry exact source
/// line numbers).
pub fn read_au_csv_columns(reader: impl Read) -> io::Result<AuColumns> {
    let (rel, lines) = read_csv_lines(reader)?;
    build_columns(&rel, &|ri| format!("line {}", lines[ri]))
}

/// Read an AU-relation from CSV text.
pub fn read_au_csv(reader: impl Read) -> io::Result<AuRelation> {
    read_au_csv_columns(reader).map(|c| c.to_rows())
}

/// Load a columnar AU-relation from a CSV file.
pub fn load_au_csv_columns(path: impl AsRef<Path>) -> io::Result<AuColumns> {
    read_au_csv_columns(File::open(path)?)
}

/// Load an AU-relation from a CSV file.
pub fn load_au_csv(path: impl AsRef<Path>) -> io::Result<AuRelation> {
    read_au_csv(File::open(path)?)
}

/// Load every `*.csv` in a directory as `(file stem, relation)` pairs, in
/// name order — the table set `repro sql` registers.
pub fn load_au_dir(dir: impl AsRef<Path>) -> io::Result<Vec<(String, AuRelation)>> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "csv"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let name = p
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            let rel = load_au_csv(&p)
                .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", p.display())))?;
            Ok((name, rel))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_core::RangeValue;

    #[test]
    fn bounds_and_mult_columns_fold() {
        let csv = "sku,price_lb,price,price_ub,mult_lb,mult_sg,mult_ub\n\
                   1,9,10,12,1,1,1\n\
                   2,15,15,15,0,1,1\n";
        let au = read_au_csv(csv.as_bytes()).unwrap();
        assert_eq!(au.schema.cols(), &["sku", "price"]);
        assert_eq!(au.rows()[0].tuple.get(0), &RangeValue::certain(1i64));
        assert_eq!(au.rows()[0].tuple.get(1), &RangeValue::new(9, 10, 12));
        assert_eq!(au.rows()[0].mult, Mult3::ONE);
        assert_eq!(au.rows()[1].mult, Mult3::new(0, 1, 1));
    }

    #[test]
    fn columnar_load_uses_certain_fast_path() {
        let csv = "sku,price_lb,price,price_ub\n1,9,10,12\n2,3,4,5\n";
        let cols = read_au_csv_columns(csv.as_bytes()).unwrap();
        assert!(cols.col(0).is_certain());
        assert!(!cols.col(1).is_certain());
        // A bounded column whose cells are all points collapses too.
        let cols = read_au_csv_columns("a,a_ub\n1,1\n2,2\n".as_bytes()).unwrap();
        assert!(cols.col(0).is_certain());
        // And the columnar load agrees with the row load.
        let csv = "a,a_lb,b,mult_lb,mult_sg,mult_ub\n1,0,x,0,1,2\n3,3,y,1,1,1\n";
        let cols = read_au_csv_columns(csv.as_bytes()).unwrap();
        let rows = read_au_csv(csv.as_bytes()).unwrap();
        assert!(cols.to_rows().bag_eq(&rows));
    }

    #[test]
    fn load_infers_typed_physical_layouts() {
        use audb_core::PhysType;
        // all-int → i64, any float among numerics → f64, all-string →
        // dictionary, string/number mix → generic fallback.
        let csv = "i,f,s,g\n1,1.5,x,1\n2,2,y,z\n";
        let cols = read_au_csv_columns(csv.as_bytes()).unwrap();
        assert_eq!(
            cols.col_phys_types(),
            vec![
                PhysType::I64,
                PhysType::F64,
                PhysType::Str,
                PhysType::Generic
            ]
        );
        // A ranged attribute's lanes share one inferred layout: an
        // all-int lb lane promotes along with its float sg lane.
        let cols = read_au_csv_columns("a_lb,a\n1,1.5\n2,3.5\n".as_bytes()).unwrap();
        assert!(!cols.col(0).is_certain());
        assert_eq!(cols.col_phys_types(), vec![PhysType::F64]);
    }

    #[test]
    fn mixed_numeric_promotes_with_representability_check() {
        // The promoted integer reads back as a float — logically equal
        // to the int under the Value order.
        let cols = read_au_csv_columns("a\n1.5\n2\n".as_bytes()).unwrap();
        let rows = cols.to_rows();
        assert_eq!(
            rows.rows()[1].tuple.get(0),
            &RangeValue::certain(Value::Float(2.0))
        );
        assert_eq!(rows.rows()[1].tuple.get(0), &RangeValue::certain(2i64));
        // An integer beyond ±2^53 contradicts the inferred f64 layout:
        // spanned error, never a silent rounding.
        let big = (1i64 << 53) + 1;
        let e = read_au_csv(format!("a\n0.5\n{big}\n").as_bytes()).unwrap_err();
        assert!(e.to_string().contains("line 3"), "{e}");
        assert!(
            e.to_string().contains("column \"a\" (cols 1\u{2013}1)"),
            "{e}"
        );
        assert!(e.to_string().contains("not exactly representable"), "{e}");
        // The same int in an all-int column is fine — i64 lanes are exact.
        let cols = read_au_csv_columns(format!("a\n1\n{big}\n").as_bytes()).unwrap();
        assert_eq!(
            cols.to_rows().rows()[1].tuple.get(0),
            &RangeValue::certain(big)
        );
    }

    #[test]
    fn plain_csv_is_fully_certain() {
        let csv = "a,b\n1,x\n2,y\n";
        let au = read_au_csv(csv.as_bytes()).unwrap();
        assert_eq!(au.schema.cols(), &["a", "b"]);
        assert!(au
            .rows()
            .iter()
            .all(|r| r.mult == Mult3::ONE && r.tuple.0.iter().all(|v| v.is_certain())));
    }

    #[test]
    fn one_sided_bounds_and_standalone_suffix_names() {
        // `a_ub` without `a_lb` bounds only from above; `z_lb` without a
        // base `z` stays a standalone certain column.
        let csv = "a,a_ub,z_lb\n1,3,7\n";
        let au = read_au_csv(csv.as_bytes()).unwrap();
        assert_eq!(au.schema.cols(), &["a", "z_lb"]);
        assert_eq!(au.rows()[0].tuple.get(0), &RangeValue::new(1, 1, 3));
        assert_eq!(au.rows()[0].tuple.get(1), &RangeValue::certain(7i64));
    }

    #[test]
    fn lb_gt_ub_cells_error_with_line_and_column_span() {
        // Row on file line 3 (line 1 header, line 2 valid): the error must
        // name the line and the folded source-column span, not panic or
        // clamp.
        let e = read_au_csv("a_lb,a,a_ub\n1,2,3\n5,4,6\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("line 3"), "{e}");
        assert!(
            e.to_string().contains("column \"a\" (cols 1\u{2013}3)"),
            "{e}"
        );
        // Blank lines are skipped but do not shift the reported line.
        let e = read_au_csv("a_lb,a,a_ub\n\n\n5,4,6\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("line 4"), "{e}");
        // lb > ub via a one-sided bound.
        let e = read_au_csv("a,a_ub\n5,4\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
        assert!(e.to_string().contains("cols 1\u{2013}2"), "{e}");
    }

    #[test]
    fn programmatic_relations_report_rows_not_lines() {
        // No file behind the relation: the error names the data row, not
        // a fabricated source line.
        let rel = audb_rel::read_csv("a_lb,a,a_ub\n5,4,6\n".as_bytes()).unwrap();
        let e = au_from_relation(&rel).unwrap_err();
        assert!(e.to_string().contains("row 1"), "{e}");
        assert!(!e.to_string().contains("line"), "{e}");
    }

    #[test]
    fn ragged_rows_error_with_line() {
        let e = read_au_csv("a,b\n1,2\n1\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("line 3"), "{e}");
        assert!(e.to_string().contains("ragged row"), "{e}");
        let e = read_au_csv("a,b\n1,2,3\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
    }

    #[test]
    fn invalid_mults_are_errors_not_panics() {
        let e = read_au_csv("a,mult_lb,mult_sg,mult_ub\n1,2,1,1\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("multiplicity"), "{e}");
        assert!(e.to_string().contains("line 2"), "{e}");
        assert!(e.to_string().contains("cols 2\u{2013}4"), "{e}");
        let e = read_au_csv("a,mult_lb,mult_sg,mult_ub\n1,-1,1,1\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("mult_lb"), "{e}");
    }
}
