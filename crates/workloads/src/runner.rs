//! Method drivers: run each compared algorithm on an x-tuple workload and
//! extract per-input-tuple answer bounds plus wall-clock time.
//!
//! Every driver follows the same contract: it consumes the *same* x-tuple
//! table (deriving whatever representation its method needs — the AU-DB for
//! `Imp`/`Rewr`, the most likely world for `Det`, samples for `MCDB`), and
//! returns `Vec<Option<(f64, f64)>>` of per-x-tuple bounds keyed by the
//! table's trailing `id` attribute, ready for [`crate::metrics`].
//!
//! The AU-DB methods (`Imp`, `Rewr`) are driven exclusively through the
//! unified [`audb_engine`] API: each driver builds one logical plan and
//! executes it on the corresponding backend, so the plan construction
//! (order columns, position/aggregate output names, top-k capping) is
//! written once and shared with the examples and benchmarks.

use audb_core::{AuRelation, WinAgg};
use audb_engine::{
    Agg, Engine, JoinStrategy, Plan, Query, Session, SessionError, WindowSpec as EngineWindowSpec,
};
use audb_rel::ops::sort::topk_with_pos;
use audb_rel::{sort_to_pos, window_rows, AggFunc, Value, WindowSpec};
use audb_worlds::{WindowTruth, XTupleTable};
use std::time::{Duration, Instant};

/// A timed result.
#[derive(Debug)]
pub struct Timed<T> {
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// The produced value.
    pub value: T,
}

/// Time a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> Timed<T> {
    let start = Instant::now();
    let value = f();
    Timed {
        elapsed: start.elapsed(),
        value,
    }
}

/// Per-x-tuple `[lo, hi]` bounds as floats (`None` = no answer for that
/// input tuple, e.g. filtered out of a top-k).
pub type Bounds = Vec<Option<(f64, f64)>>;

fn val_f(v: &Value) -> f64 {
    v.as_f64().unwrap_or(f64::NAN)
}

/// Extract per-id bounds from an AU sort/window output: `id_col` holds the
/// certain provenance id, `val_col` the range-annotated answer. Multiple
/// rows per id (duplicates) hull together.
pub fn au_bounds_by_id(out: &AuRelation, id_col: usize, val_col: usize, n: usize) -> Bounds {
    let mut bounds: Bounds = vec![None; n];
    for row in out.rows() {
        if row.mult.is_zero() {
            continue;
        }
        let id = row.tuple.get(id_col).sg.as_i64().expect("certain id") as usize;
        let rv = row.tuple.get(val_col);
        let (lo, hi) = (val_f(&rv.lb), val_f(&rv.ub));
        bounds[id] = Some(match bounds[id] {
            None => (lo, hi),
            Some((a, b)) => (a.min(lo), b.max(hi)),
        });
    }
    bounds
}

// ---------------------------------------------------------------- sorting

/// `Det`: deterministic sort of the most likely world (no bounds — returns
/// the positions as point "bounds" for uniformity).
pub fn det_sort(table: &XTupleTable, order: &[usize], k: Option<u64>) -> Timed<Bounds> {
    let world = table.most_likely_world();
    let id_col = table.schema.arity() - 1;
    time(move || {
        let sorted = match k {
            Some(k) => topk_with_pos(&world, order, k),
            None => sort_to_pos(&world, order, "pos"),
        };
        let pos_col = sorted.schema.arity() - 1;
        let mut bounds: Bounds = vec![None; world.total_mult() as usize + 1];
        for row in &sorted.rows {
            let id = row.tuple.get(id_col).as_i64().unwrap() as usize;
            let p = val_f(row.tuple.get(pos_col));
            if id < bounds.len() {
                bounds[id] = Some((p, p));
            }
        }
        bounds
    })
}

/// Build the shared sort / top-k plan over a table's derived AU-DB.
/// Written once for every AU method driver (and reused by the perf bench):
/// positions land in a trailing `"pos"` column; `k` turns the sort into a
/// top-k with position bounds capped at `k`.
pub fn sort_plan(table: &XTupleTable, order: &[usize], k: Option<u64>) -> Plan {
    let q = Query::scan(table.to_au_relation()).sort_by(order.iter().copied());
    let q = match k {
        Some(k) => q.topk(k),
        None => q,
    };
    q.build().expect("workload sort plan is valid")
}

/// Build the shared row-window plan over a table's derived AU-DB
/// (aggregate lands in a trailing `"x"` column).
pub fn window_plan(table: &XTupleTable, order: &[usize], agg: WinAgg, l: i64, u: i64) -> Plan {
    Query::scan(table.to_au_relation())
        .window(
            EngineWindowSpec::rows(l, u)
                .order_by(order.iter().copied())
                .aggregate(Agg::from(agg))
                .output("x"),
        )
        .build()
        .expect("workload window plan is valid")
}

/// Time one engine execution of a sort/window plan, extracting per-id
/// bounds from the trailing output column.
fn engine_bounds(engine: Engine, plan: &Plan, id_col: usize, n_ids: usize) -> Timed<Bounds> {
    time(move || {
        let out = engine.execute(plan).expect("workload plan executes");
        au_bounds_by_id(&out, id_col, out.schema.arity() - 1, n_ids)
    })
}

/// Drive a workload with a **textual** query: the table's derived AU-DB is
/// registered as `t` in a fresh session, the SQL is compiled against it
/// (inheriting every plan-validation check), executed on the engine's
/// backend, and per-id bounds are extracted from the trailing output
/// column — the same contract as the builder-driven drivers, so scripted
/// and programmatic workloads are interchangeable.
pub fn sql_bounds(
    table: &XTupleTable,
    engine: Engine,
    sql: &str,
) -> Result<Timed<Bounds>, SessionError> {
    let session = Session::new(engine);
    session.register("t", table.to_au_relation());
    let prepared = session.prepare(sql)?;
    let id_col = table.schema.arity() - 1;
    let n_ids = prepared.plan().source().len() + 1;
    let run = time(|| session.engine().execute(prepared.plan()));
    let out = run.value?;
    Ok(Timed {
        elapsed: run.elapsed,
        value: au_bounds_by_id(&out, id_col, out.schema.arity() - 1, n_ids),
    })
}

/// `Imp`: the native one-pass sort / top-k over the derived AU-DB.
pub fn imp_sort(table: &XTupleTable, order: &[usize], k: Option<u64>) -> Timed<Bounds> {
    let plan = sort_plan(table, order, k);
    let id_col = table.schema.arity() - 1;
    let n_ids = plan.source().len() + 1;
    engine_bounds(Engine::native(), &plan, id_col, n_ids)
}

/// `Rewr`: the Fig. 7 rewrite.
pub fn rewrite_sort(table: &XTupleTable, order: &[usize], k: Option<u64>) -> Timed<Bounds> {
    let plan = sort_plan(table, order, k);
    let id_col = table.schema.arity() - 1;
    let n_ids = plan.source().len() + 1;
    engine_bounds(Engine::rewrite(), &plan, id_col, n_ids)
}

/// `MCDB`: sampled position envelopes.
pub fn mcdb_sort(table: &XTupleTable, order: &[usize], samples: usize, seed: u64) -> Timed<Bounds> {
    time(|| {
        audb_competitors::mcdb_sort_bounds(table, order, samples, seed)
            .into_iter()
            .map(|b| b.map(|(lo, hi)| (lo as f64, hi as f64)))
            .collect()
    })
}

/// `Symb`: exact tight position bounds (quadratic pairwise reasoning).
pub fn symb_sort(table: &XTupleTable, order: &[usize]) -> Timed<Bounds> {
    time(|| {
        audb_competitors::symb_sort_bounds(table, order)
            .into_iter()
            .map(|b| b.map(|(lo, hi)| (lo as f64, hi as f64)))
            .collect()
    })
}

/// `PT-k`: certain/possible top-k membership (returns the two answer sets'
/// sizes packed as bounds is meaningless — expose the probabilities
/// instead; timing is what the perf figures need).
pub fn ptk_sort(table: &XTupleTable, order: &[usize], k: u64) -> Timed<Vec<f64>> {
    time(|| audb_competitors::ptk_topk_probs(table, order, k))
}

// ---------------------------------------------------------------- windows

/// `Det`: deterministic windowed aggregation on the most likely world.
pub fn det_window(
    table: &XTupleTable,
    order: &[usize],
    agg: WinAgg,
    l: i64,
    u: i64,
) -> Timed<Bounds> {
    let world = table.most_likely_world();
    let id_col = table.schema.arity() - 1;
    let dagg = match agg {
        WinAgg::Sum(c) => AggFunc::Sum(c),
        WinAgg::Count => AggFunc::Count,
        WinAgg::Min(c) => AggFunc::Min(c),
        WinAgg::Max(c) => AggFunc::Max(c),
        WinAgg::Avg(c) => AggFunc::Avg(c),
    };
    time(move || {
        let out = window_rows(&world, &WindowSpec::rows(order.to_vec(), l, u), dagg, "x");
        let x_col = out.schema.arity() - 1;
        let mut bounds: Bounds = vec![None; world.total_mult() as usize + 1];
        for row in &out.rows {
            let id = row.tuple.get(id_col).as_i64().unwrap() as usize;
            let v = val_f(row.tuple.get(x_col));
            if id < bounds.len() {
                bounds[id] = Some((v, v));
            }
        }
        bounds
    })
}

/// `Imp`: the native one-pass window algorithm.
pub fn imp_window(
    table: &XTupleTable,
    order: &[usize],
    agg: WinAgg,
    l: i64,
    u: i64,
) -> Timed<Bounds> {
    let plan = window_plan(table, order, agg, l, u);
    let id_col = table.schema.arity() - 1;
    let n_ids = plan.source().len() + 1;
    engine_bounds(Engine::native(), &plan, id_col, n_ids)
}

/// `Rewr` / `Rewr(index)`: the Fig. 8 rewrite.
pub fn rewrite_window(
    table: &XTupleTable,
    order: &[usize],
    agg: WinAgg,
    l: i64,
    u: i64,
    strategy: JoinStrategy,
) -> Timed<Bounds> {
    let plan = window_plan(table, order, agg, l, u);
    let id_col = table.schema.arity() - 1;
    let n_ids = plan.source().len() + 1;
    engine_bounds(
        Engine::rewrite().with_join_strategy(strategy),
        &plan,
        id_col,
        n_ids,
    )
}

/// `MCDB`: sampled window-aggregate envelopes.
pub fn mcdb_window(
    table: &XTupleTable,
    order: &[usize],
    agg: WinAgg,
    l: i64,
    u: i64,
    samples: usize,
    seed: u64,
) -> Timed<Bounds> {
    time(|| {
        audb_competitors::mcdb_window_bounds(table, order, agg, l, u, samples, seed)
            .into_iter()
            .map(|b| b.map(|(lo, hi)| (val_f(&lo), val_f(&hi))))
            .collect()
    })
}

/// `Symb`: exact window bounds by capped local enumeration. Skipped tuples
/// become `None`.
pub fn symb_window(
    table: &XTupleTable,
    order: &[usize],
    agg: WinAgg,
    l: i64,
    u: i64,
    enum_cap: u128,
) -> Timed<Bounds> {
    time(|| {
        audb_worlds::exact_window_bounds(table, order, agg, l, u, enum_cap)
            .into_iter()
            .map(|b| match b {
                Some(WindowTruth::Exact(lo, hi)) => Some((val_f(&lo), val_f(&hi))),
                _ => None,
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::aggregate_quality;
    use crate::synthetic::{gen_sort_table, gen_window_table, SyntheticConfig};

    fn pairs(approx: &Bounds, tight: &Bounds) -> Vec<((f64, f64), (f64, f64))> {
        approx
            .iter()
            .zip(tight)
            .filter_map(|(a, t)| Some(((*a)?, (*t)?)))
            .collect()
    }

    /// End-to-end sanity: on a small synthetic workload the AU bounds cover
    /// the exact bounds (recall 1), MCDB's envelopes are inside them
    /// (recall ≤ 1, accuracy ≤ 1), and `Symb` is exact.
    #[test]
    fn sort_quality_relationships() {
        let cfg = SyntheticConfig::default().rows(300).seed(9);
        let t = gen_sort_table(&cfg);
        let order = [0usize, 1];
        let tight = symb_sort(&t, &order).value;
        let imp = imp_sort(&t, &order, None).value;
        let rewr = rewrite_sort(&t, &order, None).value;
        let mc = mcdb_sort(&t, &order, 10, 1).value;

        assert_eq!(imp, rewr, "Imp and Rewr produce identical bounds");
        let qi = aggregate_quality(pairs(&imp, &tight));
        assert!(qi.recall > 0.999, "AU bounds over-approximate: {qi:?}");
        assert!(qi.range_ratio >= 1.0 - 1e-9);
        let qm = aggregate_quality(pairs(&mc, &tight));
        assert!(
            qm.range_ratio <= 1.0 + 1e-9,
            "MCDB under-approximates: {qm:?}"
        );
        let qs = aggregate_quality(pairs(&tight, &tight));
        assert!((qs.accuracy - 1.0).abs() < 1e-9);
    }

    /// With declared ranges (the default generator) the AU bounds are
    /// strictly looser than the truth but still cover it; with declared
    /// ranges stripped (AU = alternative hull) the position bounds are
    /// exactly tight on single-attribute uncertainty (DESIGN.md §3.6).
    #[test]
    fn imp_sort_bounds_tight_iff_hull() {
        let cfg = SyntheticConfig::default().rows(200).seed(4);
        let t = gen_sort_table(&cfg);
        let order = [0usize, 1];
        let tight = symb_sort(&t, &order).value;
        let loose = imp_sort(&t, &order, None).value;
        let ql = aggregate_quality(pairs(&loose, &tight));
        assert!(ql.recall > 0.999 && ql.range_ratio >= 1.0, "{ql:?}");

        let mut hull = t.clone();
        for xt in &mut hull.tuples {
            xt.declared = None;
        }
        let imp = imp_sort(&hull, &order, None).value;
        let q = aggregate_quality(pairs(&imp, &tight));
        assert!(
            (q.accuracy - 1.0).abs() < 1e-9,
            "expected exact bounds, got {q:?}"
        );
    }

    /// Scripted and programmatic workloads are interchangeable: the same
    /// ranking / window queries issued as SQL text produce exactly the
    /// bounds of the builder-driven drivers.
    #[test]
    fn sql_driver_matches_builder_drivers() {
        let cfg = SyntheticConfig::default().rows(120).seed(7);
        let t = gen_sort_table(&cfg);
        let sql = sql_bounds(
            &t,
            Engine::native(),
            "SELECT * FROM t ORDER BY a, b LIMIT 5",
        )
        .expect("sql sort runs")
        .value;
        let built = imp_sort(&t, &[0, 1], Some(5)).value;
        assert_eq!(sql, built, "SQL top-k ≡ builder top-k");

        let w = gen_window_table(&cfg);
        let sql = sql_bounds(
            &w,
            Engine::rewrite(),
            "SELECT *, SUM(v) OVER (ORDER BY o ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) \
             AS x FROM t",
        )
        .expect("sql window runs")
        .value;
        let built =
            rewrite_window(&w, &[0], WinAgg::Sum(2), -2, 0, JoinStrategy::IntervalIndex).value;
        assert_eq!(sql, built, "SQL window ≡ builder window");

        // Validation errors surface as structured SessionErrors.
        let err = sql_bounds(&t, Engine::native(), "SELECT * FROM t ORDER BY nope").unwrap_err();
        assert!(err.to_string().contains("unknown column"), "{err}");
    }

    #[test]
    fn window_bounds_cover_truth() {
        let cfg = SyntheticConfig::default().rows(150).seed(11);
        let t = gen_window_table(&cfg);
        let order = [0usize];
        let tight = symb_window(&t, &order, WinAgg::Sum(2), -2, 0, 1 << 22).value;
        let imp = imp_window(&t, &order, WinAgg::Sum(2), -2, 0).value;
        let q = aggregate_quality(pairs(&imp, &tight));
        assert!(q.recall > 0.999, "AU window bounds must cover truth: {q:?}");
        assert!(q.range_ratio >= 1.0 - 1e-9);
        let mc = mcdb_window(&t, &order, WinAgg::Sum(2), -2, 0, 10, 3).value;
        let qm = aggregate_quality(pairs(&mc, &tight));
        assert!(qm.range_ratio <= 1.0 + 1e-9, "{qm:?}");
    }
}
