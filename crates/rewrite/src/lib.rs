//! # audb-rewrite — the SQL-rewrite implementation of uncertain ranking
//!
//! The paper's Sec. 7 shows that AU-DB sorting and windowed aggregation can
//! be compiled to relational algebra over the standard *relational encoding*
//! of AU-DBs (three columns per attribute + three multiplicity columns),
//! and evaluated by any deterministic DBMS. This crate implements those
//! rewrites against the `audb-rel` engine:
//!
//! * [`sort::rewr_sort`] / [`sort::rewr_topk`] — Fig. 7: endpoint union +
//!   running sums + group-merge.
//! * [`window::rewr_window`] — Fig. 8: range-overlap self-join + per-tuple
//!   window classification; [`window::JoinStrategy::IntervalIndex`] is the
//!   paper's `Rewr(index)` variant backed by [`index::IntervalIndex`].
//!
//! All rewrites produce bounds identical to the `audb-core` reference
//! semantics (property-tested); they are the paper's `Rewr` baseline —
//! asymptotically fine for sorting, quadratic for windows, which is exactly
//! the performance gap the native algorithms (`audb-native`) close.

pub mod index;
pub mod sort;
pub mod window;

pub use index::IntervalIndex;
pub use sort::{endpoint_union, rewr_sort, rewr_topk};
pub use window::{rewr_window, JoinStrategy};
