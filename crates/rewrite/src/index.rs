//! A static centered interval tree.
//!
//! The paper's `Rewr(index)` variant (Fig. 15) accelerates the range-overlap
//! self-join of the window rewrite with a range index (Postgres GiST there);
//! this is our equivalent substrate. Build is `O(n log n)`, an overlap query
//! reports `k` results in `O(log n + k)`.

/// A static index over closed integer intervals supporting stabbing and
/// overlap queries.
pub struct IntervalIndex {
    nodes: Vec<Node>,
    root: Option<usize>,
    len: usize,
}

struct Node {
    center: i64,
    left: Option<usize>,
    right: Option<usize>,
    /// Intervals containing `center`, sorted by lower endpoint ascending.
    by_lo: Vec<(i64, u32)>,
    /// The same intervals sorted by upper endpoint descending.
    by_hi: Vec<(i64, u32)>,
}

impl IntervalIndex {
    /// Build from `(lo, hi)` closed intervals; the `u32` id reported by
    /// queries is the input position. Intervals with `lo > hi` are ignored.
    pub fn build(intervals: &[(i64, i64)]) -> Self {
        let mut items: Vec<(i64, i64, u32)> = intervals
            .iter()
            .enumerate()
            .filter(|(_, &(lo, hi))| lo <= hi)
            .map(|(i, &(lo, hi))| (lo, hi, i as u32))
            .collect();
        let len = items.len();
        let mut nodes = Vec::new();
        let root = Self::build_rec(&mut items, &mut nodes);
        IntervalIndex { nodes, root, len }
    }

    /// Number of indexed intervals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff nothing was indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn build_rec(items: &mut [(i64, i64, u32)], nodes: &mut Vec<Node>) -> Option<usize> {
        if items.is_empty() {
            return None;
        }
        // Median of lower endpoints: guarantees at least the median
        // interval contains the center (lo = center ≤ hi), so recursion
        // always terminates, and keeps the tree balanced for near-uniform
        // position data.
        let mut los: Vec<i64> = items.iter().map(|&(lo, _, _)| lo).collect();
        let m = los.len() / 2;
        los.select_nth_unstable(m);
        let center = los[m];

        let mut here = Vec::new();
        let mut left_items = Vec::new();
        let mut right_items = Vec::new();
        for &(lo, hi, id) in items.iter() {
            if hi < center {
                left_items.push((lo, hi, id));
            } else if lo > center {
                right_items.push((lo, hi, id));
            } else {
                here.push((lo, hi, id));
            }
        }
        debug_assert!(
            !here.is_empty(),
            "the median-lo interval always contains the center"
        );
        let (left, right) = (
            Self::build_rec(&mut left_items, nodes),
            Self::build_rec(&mut right_items, nodes),
        );

        let mut by_lo: Vec<(i64, u32)> = here.iter().map(|&(lo, _, id)| (lo, id)).collect();
        by_lo.sort_unstable();
        let mut by_hi: Vec<(i64, u32)> = here.iter().map(|&(_, hi, id)| (hi, id)).collect();
        by_hi.sort_unstable_by(|a, b| b.cmp(a));

        nodes.push(Node {
            center,
            left,
            right,
            by_lo,
            by_hi,
        });
        Some(nodes.len() - 1)
    }

    /// Collect the ids of all intervals overlapping `[qlo, qhi]`.
    pub fn query_overlap(&self, qlo: i64, qhi: i64, out: &mut Vec<u32>) {
        if qlo > qhi {
            return;
        }
        let mut stack = Vec::new();
        if let Some(r) = self.root {
            stack.push(r);
        }
        while let Some(ni) = stack.pop() {
            let node = &self.nodes[ni];
            if qhi < node.center {
                // Only node intervals starting at or before qhi can overlap.
                for &(lo, id) in &node.by_lo {
                    if lo > qhi {
                        break;
                    }
                    out.push(id);
                }
                if let Some(l) = node.left {
                    stack.push(l);
                }
            } else if qlo > node.center {
                for &(hi, id) in &node.by_hi {
                    if hi < qlo {
                        break;
                    }
                    out.push(id);
                }
                if let Some(r) = node.right {
                    stack.push(r);
                }
            } else {
                // The query straddles the center: every node interval hits.
                out.extend(node.by_lo.iter().map(|&(_, id)| id));
                if let Some(l) = node.left {
                    stack.push(l);
                }
                if let Some(r) = node.right {
                    stack.push(r);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(intervals: &[(i64, i64)], qlo: i64, qhi: i64) -> Vec<u32> {
        let mut v: Vec<u32> = intervals
            .iter()
            .enumerate()
            .filter(|(_, &(lo, hi))| lo <= hi && hi >= qlo && lo <= qhi)
            .map(|(i, _)| i as u32)
            .collect();
        v.sort();
        v
    }

    #[test]
    fn matches_bruteforce_on_pseudorandom_intervals() {
        let intervals: Vec<(i64, i64)> = (0..500i64)
            .map(|i| {
                let lo = (i * 37) % 1000;
                (lo, lo + (i * 13) % 80)
            })
            .collect();
        let idx = IntervalIndex::build(&intervals);
        assert_eq!(idx.len(), 500);
        for q in 0..200 {
            let qlo = (q * 71) % 1000;
            let qhi = qlo + (q * 29) % 120;
            let mut got = Vec::new();
            idx.query_overlap(qlo, qhi, &mut got);
            got.sort();
            assert_eq!(got, brute(&intervals, qlo, qhi), "query [{qlo},{qhi}]");
        }
    }

    #[test]
    fn empty_and_degenerate() {
        let idx = IntervalIndex::build(&[]);
        let mut out = Vec::new();
        idx.query_overlap(0, 100, &mut out);
        assert!(out.is_empty());

        // All-identical intervals.
        let same = vec![(5, 10); 20];
        let idx = IntervalIndex::build(&same);
        idx.query_overlap(7, 7, &mut out);
        assert_eq!(out.len(), 20);
        out.clear();
        idx.query_overlap(11, 30, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn inverted_intervals_are_skipped() {
        let idx = IntervalIndex::build(&[(5, 3), (1, 2)]);
        assert_eq!(idx.len(), 1);
        let mut out = Vec::new();
        idx.query_overlap(0, 10, &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn point_queries() {
        let intervals = [(0, 10), (5, 5), (6, 20), (21, 30)];
        let idx = IntervalIndex::build(&intervals);
        let mut out = Vec::new();
        idx.query_overlap(5, 5, &mut out);
        out.sort();
        assert_eq!(out, vec![0, 1]);
    }
}
