//! SQL-rewrite implementation of AU-DB windowed aggregation (paper Fig. 8).
//!
//! The rewrite's skeleton:
//!
//! 1. `Q_part` — a **range-overlap self-join** pairs every partition-defining
//!    tuple with every tuple possibly in its partition
//!    (`Q1.G↓ ≤ Q2.G↑ ∧ Q1.G↑ ≥ Q2.G↓`);
//! 2. `Q_pos` / `Q_bnds` — per defining tuple, position bounds within its
//!    partition via the endpoint running sums of Fig. 7;
//! 3. `Q_winposs` / `Q_markcert` — filter to tuples possibly in the window
//!    and mark those certainly in it (the Fig. 6 interval tests);
//! 4. `Q_aggbnds` — fold certain members and the min-k/max-k selection of
//!    possible members into the aggregate bounds.
//!
//! Without `PARTITION BY`, step 1 degenerates to a self-join on *position*
//! overlap; `Rewr` executes it as a nested-loop scan (quadratic — this is
//! precisely why the paper's `Rewr` is orders of magnitude slower than the
//! native algorithm for windows), while `Rewr(index)` probes a
//! [`crate::index::IntervalIndex`] over the position ranges, reproducing
//! the paper's indexed variant (Fig. 15). The member classification and
//! bounds math are shared with the reference implementation
//! ([`audb_core::aggregate_window`]), so outputs are identical to
//! [`audb_core::window_ref`] — property-tested.

use crate::index::IntervalIndex;
use crate::sort::positions_by_endpoints;
use audb_core::{
    aggregate_window, guaranteed_extra_slots, sg_window_values, AuRelation, AuWindowSpec, Mult3,
    RangeValue, TruthRange, WinAgg, WindowMembers,
};
use audb_rel::ops::sort::total_order;
use audb_rel::Tuple;

/// How the rewrite evaluates its range-overlap self-join.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum JoinStrategy {
    /// Nested-loop scan — the plain `Rewr` of the paper.
    NestedLoop,
    /// Interval-index probe — the paper's `Rewr(index)` (default: it is
    /// asymptotically no worse and usually far faster).
    #[default]
    IntervalIndex,
}

/// `rewr(ω[l,u]_{f(A)→X; G; O}(R))`: Fig. 8. Supports uncertain partition
/// attributes (unlike the native algorithm). Output equals
/// [`audb_core::window_ref`] under interval-lex comparison.
pub fn rewr_window(
    rel: &AuRelation,
    spec: &AuWindowSpec,
    agg: WinAgg,
    out_name: &str,
    strategy: JoinStrategy,
) -> AuRelation {
    let exp = rel.normalized().expand();
    let n = exp.rows().len();
    let total_idxs = total_order(exp.schema.arity(), &spec.order);
    let mut out = AuRelation::empty(exp.schema.with(out_name));
    if n == 0 {
        return out;
    }

    let keys_lb: Vec<Tuple> = exp
        .rows()
        .iter()
        .map(|r| r.tuple.lb_tuple().project(&total_idxs))
        .collect();
    let keys_sg: Vec<Tuple> = exp
        .rows()
        .iter()
        .map(|r| r.tuple.sg_tuple().project(&total_idxs))
        .collect();
    let keys_ub: Vec<Tuple> = exp
        .rows()
        .iter()
        .map(|r| r.tuple.ub_tuple().project(&total_idxs))
        .collect();

    let sg_vals = sg_window_values(&exp, spec, agg);
    let (l, u) = (spec.lower, spec.upper);
    let size = spec.size() as usize;

    let attr_of = |j: usize| -> RangeValue {
        match agg.input_col() {
            Some(c) => exp.rows()[j].tuple.get(c).clone(),
            None => RangeValue::certain(1i64),
        }
    };

    if spec.partition.is_empty() {
        // Positions are global; the self-join is on position-range overlap.
        let mults: Vec<Mult3> = exp.rows().iter().map(|r| r.mult).collect();
        let pos = positions_by_endpoints(&keys_lb, &keys_sg, &keys_ub, &mults);
        let intervals: Vec<(i64, i64)> = (0..n)
            .map(|j| (pos.lb[j] as i64, pos.ub[j] as i64))
            .collect();
        let index = match strategy {
            JoinStrategy::IntervalIndex => Some(IntervalIndex::build(&intervals)),
            JoinStrategy::NestedLoop => None,
        };

        let total_lb: u64 = mults.iter().map(|m| m.lb).sum();
        let mut scratch: Vec<u32> = Vec::new();
        for ti in 0..n {
            let (tlo, thi) = intervals[ti];
            let ps = (tlo + l, thi + u); // possibly covered positions
            let cs = (thi + l, tlo + u); // certainly covered positions
            let mut members = WindowMembers {
                cert: vec![attr_of(ti)],
                poss: Vec::new(),
                sg: sg_vals[ti].clone(),
                possn: 0,
                guaranteed_extra: 0,
            };
            let mut classify = |j: usize| {
                if j == ti {
                    return;
                }
                let (jlo, jhi) = intervals[j];
                if jhi < ps.0 || jlo > ps.1 {
                    return;
                }
                if exp.rows()[j].mult.lb >= 1 && jlo >= cs.0 && jhi <= cs.1 {
                    members.cert.push(attr_of(j));
                } else {
                    members.poss.push(attr_of(j));
                }
            };
            match &index {
                Some(idx) => {
                    scratch.clear();
                    idx.query_overlap(ps.0, ps.1, &mut scratch);
                    for &j in scratch.iter() {
                        classify(j as usize);
                    }
                }
                None => {
                    for j in 0..n {
                        classify(j);
                    }
                }
            }
            members.possn = size.saturating_sub(members.cert.len());
            let n_cert = total_lb - exp.rows()[ti].mult.lb + 1;
            members.guaranteed_extra = guaranteed_extra_slots(
                l,
                u,
                tlo as u64,
                thi as u64,
                n_cert,
                members.cert.len(),
                members.possn,
            );
            let x = aggregate_window(&members, agg);
            out.push(exp.rows()[ti].tuple.with(x), exp.rows()[ti].mult);
        }
        return out.normalize();
    }

    // PARTITION BY: pair each defining tuple with the tuples possibly in
    // its partition (the Q_part range-overlap join), then compute positions
    // *within* that partition and classify members.
    let part_candidates = partition_join(&exp, &spec.partition, strategy);
    for ti in 0..n {
        let cand = &part_candidates[ti];
        // Filter candidate multiplicities by partition-membership truth.
        let fms: Vec<Mult3> = cand
            .iter()
            .map(|&j| {
                let truth = spec.partition.iter().fold(TruthRange::TRUE, |acc, &g| {
                    acc.and(
                        exp.rows()[j]
                            .tuple
                            .get(g)
                            .eq_range(exp.rows()[ti].tuple.get(g)),
                    )
                });
                exp.rows()[j].mult.filter(truth)
            })
            .collect();
        // Positions of the candidates within this partition.
        let klb: Vec<Tuple> = cand.iter().map(|&j| keys_lb[j].clone()).collect();
        let ksg: Vec<Tuple> = cand.iter().map(|&j| keys_sg[j].clone()).collect();
        let kub: Vec<Tuple> = cand.iter().map(|&j| keys_ub[j].clone()).collect();
        let pos = positions_by_endpoints(&klb, &ksg, &kub, &fms);

        let self_at = cand
            .iter()
            .position(|&j| j == ti)
            .expect("target is a candidate of its own partition");
        let (tlo, thi) = (pos.lb[self_at] as i64, pos.ub[self_at] as i64);
        let ps = (tlo + l, thi + u);
        let cs = (thi + l, tlo + u);
        let mut members = WindowMembers {
            cert: vec![attr_of(ti)],
            poss: Vec::new(),
            sg: sg_vals[ti].clone(),
            possn: 0,
            guaranteed_extra: 0,
        };
        for (ci, &j) in cand.iter().enumerate() {
            if j == ti || fms[ci].is_zero() {
                continue;
            }
            let (jlo, jhi) = (pos.lb[ci] as i64, pos.ub[ci] as i64);
            if jhi < ps.0 || jlo > ps.1 {
                continue;
            }
            if fms[ci].lb >= 1 && jlo >= cs.0 && jhi <= cs.1 {
                members.cert.push(attr_of(j));
            } else {
                members.poss.push(attr_of(j));
            }
        }
        members.possn = size.saturating_sub(members.cert.len());
        let n_cert: u64 = cand
            .iter()
            .enumerate()
            .filter(|(_, &j)| j != ti)
            .map(|(ci, _)| fms[ci].lb)
            .sum::<u64>()
            + 1;
        members.guaranteed_extra = guaranteed_extra_slots(
            l,
            u,
            tlo as u64,
            thi as u64,
            n_cert,
            members.cert.len(),
            members.possn,
        );
        let x = aggregate_window(&members, agg);
        out.push(exp.rows()[ti].tuple.with(x), exp.rows()[ti].mult);
    }
    out.normalize()
}

/// The `Q_part` overlap join: per target, the rows whose partition-attribute
/// ranges all overlap the target's. Indexed on the first partition attribute
/// when it is integer-valued and the strategy asks for it.
fn partition_join(
    exp: &AuRelation,
    partition: &[usize],
    strategy: JoinStrategy,
) -> Vec<Vec<usize>> {
    let n = exp.rows().len();
    let g0 = partition[0];
    let overlap_all = |i: usize, j: usize| -> bool {
        partition.iter().all(|&g| {
            let a = exp.rows()[i].tuple.get(g);
            let b = exp.rows()[j].tuple.get(g);
            a.lb <= b.ub && b.lb <= a.ub
        })
    };

    let int_intervals: Option<Vec<(i64, i64)>> = exp
        .rows()
        .iter()
        .map(|r| {
            let v = r.tuple.get(g0);
            Some((v.lb.as_i64()?, v.ub.as_i64()?))
        })
        .collect();

    match (strategy, int_intervals) {
        (JoinStrategy::IntervalIndex, Some(intervals)) => {
            let idx = IntervalIndex::build(&intervals);
            let mut scratch = Vec::new();
            (0..n)
                .map(|ti| {
                    scratch.clear();
                    idx.query_overlap(intervals[ti].0, intervals[ti].1, &mut scratch);
                    let mut cand: Vec<usize> = scratch
                        .iter()
                        .map(|&j| j as usize)
                        .filter(|&j| overlap_all(ti, j))
                        .collect();
                    cand.sort_unstable();
                    cand
                })
                .collect()
        }
        _ => (0..n)
            .map(|ti| (0..n).filter(|&j| overlap_all(ti, j)).collect())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_core::{window_ref, AuTuple, CmpSemantics};
    use audb_rel::Schema;

    fn rv(lb: i64, sg: i64, ub: i64) -> RangeValue {
        RangeValue::new(lb, sg, ub)
    }

    /// Paper Example 7 input (partitioned, uncertain partition attributes).
    fn example7() -> AuRelation {
        AuRelation::from_rows(
            Schema::new(["a", "b", "c"]),
            [
                (
                    AuTuple::new([
                        RangeValue::certain(1i64),
                        rv(1, 1, 3),
                        RangeValue::certain(7i64),
                    ]),
                    Mult3::new(1, 1, 2),
                ),
                (
                    AuTuple::new([
                        rv(2, 3, 3),
                        RangeValue::certain(15i64),
                        RangeValue::certain(4i64),
                    ]),
                    Mult3::new(0, 1, 1),
                ),
                (
                    AuTuple::new([rv(1, 1, 2), RangeValue::certain(2i64), rv(2, 4, 5)]),
                    Mult3::ONE,
                ),
            ],
        )
    }

    #[test]
    fn partitioned_rewrite_matches_reference_example_7() {
        let spec = AuWindowSpec::rows(vec![1], -1, 0).partition_by(vec![0]);
        for strategy in [JoinStrategy::NestedLoop, JoinStrategy::IntervalIndex] {
            let got = rewr_window(&example7(), &spec, WinAgg::Sum(2), "s", strategy);
            let want = window_ref(
                &example7(),
                &spec,
                WinAgg::Sum(2),
                "s",
                CmpSemantics::IntervalLex,
            );
            assert!(
                got.bag_eq(&want),
                "{strategy:?}\ngot:\n{got}\nwant:\n{want}"
            );
        }
    }

    #[test]
    fn partitionless_rewrite_matches_reference() {
        let rel = AuRelation::from_rows(
            Schema::new(["o", "v"]),
            [
                (AuTuple::new([rv(1, 1, 3), rv(5, 7, 7)]), Mult3::ONE),
                (AuTuple::new([rv(2, 2, 2), rv(-3, -3, -3)]), Mult3::ONE),
                (
                    AuTuple::new([rv(4, 5, 6), rv(10, 10, 12)]),
                    Mult3::new(0, 1, 1),
                ),
                (AuTuple::new([rv(8, 8, 8), rv(1, 2, 3)]), Mult3::ONE),
            ],
        );
        for agg in [
            WinAgg::Sum(1),
            WinAgg::Count,
            WinAgg::Min(1),
            WinAgg::Max(1),
        ] {
            for (l, u) in [(0i64, 0i64), (-2, 0), (-1, 1)] {
                let spec = AuWindowSpec::rows(vec![0], l, u);
                for strategy in [JoinStrategy::NestedLoop, JoinStrategy::IntervalIndex] {
                    let got = rewr_window(&rel, &spec, agg, "x", strategy);
                    let want = window_ref(&rel, &spec, agg, "x", CmpSemantics::IntervalLex);
                    assert!(
                        got.bag_eq(&want),
                        "agg={agg:?} l={l} u={u} {strategy:?}\ngot:\n{got}\nwant:\n{want}"
                    );
                }
            }
        }
    }

    #[test]
    fn string_partition_attributes_fall_back_to_nested_loop() {
        let rel = AuRelation::from_rows(
            Schema::new(["g", "o", "v"]),
            [
                (
                    AuTuple::new([
                        RangeValue::certain("x"),
                        rv(1, 1, 2),
                        RangeValue::certain(5i64),
                    ]),
                    Mult3::ONE,
                ),
                (
                    AuTuple::new([
                        RangeValue::certain("y"),
                        rv(1, 2, 2),
                        RangeValue::certain(9i64),
                    ]),
                    Mult3::ONE,
                ),
            ],
        );
        let spec = AuWindowSpec::rows(vec![1], -1, 0).partition_by(vec![0]);
        let got = rewr_window(
            &rel,
            &spec,
            WinAgg::Sum(2),
            "s",
            JoinStrategy::IntervalIndex,
        );
        let want = window_ref(&rel, &spec, WinAgg::Sum(2), "s", CmpSemantics::IntervalLex);
        assert!(got.bag_eq(&want), "got:\n{got}\nwant:\n{want}");
    }
}
