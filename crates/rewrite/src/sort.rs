//! SQL-rewrite implementation of the AU-DB sort operator (paper Fig. 7).
//!
//! The rewrite materializes, per input tuple, three *endpoint* rows over the
//! relational encoding — the lower-bound corner (`isend = 0`, a *start*
//! tuple), the selected-guess point (`isend = −1`) and the upper-bound
//! corner (`isend = 1`, an *end* tuple) — unions them (`Q_lower ∪ Q_sg ∪
//! Q_upper`), and obtains position bounds with running sums over the
//! endpoint order (`Q_bounds`): a start tuple's running total of end-tuple
//! certain multiplicities strictly before it is Equation (1); an end
//! tuple's running total of start-tuple possible multiplicities strictly
//! before it is Equation (3) (minus the tuple's own multiplicity when its
//! own start lies strictly earlier). A final group-by merges the endpoint
//! rows back per tuple (`e_pos`).
//!
//! The endpoint union is built with `audb-rel` operators exactly as Fig. 7
//! writes it; the running sums are evaluated by a sort + merge scan (what a
//! DBMS would do for the `ω[−∞,0]` window), with *strict* predecessor
//! semantics at key ties so the result is identical to the Def. 2
//! reference and to the native algorithm (property-tested).

use audb_core::encode::{encode, lb_col, mult_cols, sg_col, ub_col};
use audb_core::{AuRelation, Mult3, RangeExpr, RangeValue};
use audb_rel::ops::project::project;
use audb_rel::ops::sort::total_order;
use audb_rel::{union, Expr, Relation, Tuple};

/// Position bounds per input row, as computed by the endpoint scan.
pub(crate) struct EndpointPositions {
    pub lb: Vec<u64>,
    pub sg: Vec<u64>,
    pub ub: Vec<u64>,
}

/// Compute Equations (1)–(3) for every row by merging sorted endpoint
/// streams. `keys_*[i]` are the corner keys projected on the total order;
/// `mults[i]` the (possibly partition-filtered) multiplicity triples.
pub(crate) fn positions_by_endpoints(
    keys_lb: &[Tuple],
    keys_sg: &[Tuple],
    keys_ub: &[Tuple],
    mults: &[Mult3],
) -> EndpointPositions {
    let n = mults.len();
    let mut pos = EndpointPositions {
        lb: vec![0; n],
        sg: vec![0; n],
        ub: vec![0; n],
    };

    // τ_sg: strict prefix sums over groups of equal sg keys.
    let mut by_sg: Vec<usize> = (0..n).collect();
    by_sg.sort_by(|&a, &b| keys_sg[a].cmp(&keys_sg[b]));
    let mut cum = 0u64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        let mut group = 0u64;
        while j < n && keys_sg[by_sg[j]] == keys_sg[by_sg[i]] {
            pos.sg[by_sg[j]] = cum;
            group += mults[by_sg[j]].sg;
            j += 1;
        }
        cum += group;
        i = j;
    }

    // τ↓ and τ↑: merge the start (lb-corner) and end (ub-corner) streams.
    // Endpoint = (key index into keys, is_end, row): sorted by key with all
    // endpoints at an equal key processed as one group so that ties never
    // count as strict predecessors.
    let mut endpoints: Vec<(bool, usize)> = Vec::with_capacity(2 * n);
    endpoints.extend((0..n).map(|r| (false, r)));
    endpoints.extend((0..n).map(|r| (true, r)));
    let key_of = |e: &(bool, usize)| -> &Tuple {
        if e.0 {
            &keys_ub[e.1]
        } else {
            &keys_lb[e.1]
        }
    };
    endpoints.sort_by(|a, b| key_of(a).cmp(key_of(b)));

    let mut cum_end_lb = 0u64; // Σ k↓ over end tuples strictly before
    let mut cum_start_ub = 0u64; // Σ k↑ over start tuples strictly before
    let mut i = 0;
    while i < endpoints.len() {
        let mut j = i;
        let (mut group_end_lb, mut group_start_ub) = (0u64, 0u64);
        while j < endpoints.len() && key_of(&endpoints[j]) == key_of(&endpoints[i]) {
            let (is_end, r) = endpoints[j];
            if is_end {
                // Equation (3): possible predecessors are start corners
                // strictly before this end corner; the row's own start is
                // excluded (Def. 2 sums over t' ≠ t).
                let own = if keys_lb[r] == keys_ub[r] {
                    0 // own start ties this key group — not counted anyway
                } else {
                    mults[r].ub
                };
                pos.ub[r] = cum_start_ub - own;
                group_end_lb += mults[r].lb;
            } else {
                // Equation (1): certain predecessors are end corners
                // strictly before this start corner.
                pos.lb[r] = cum_end_lb;
                group_start_ub += mults[r].ub;
            }
            j += 1;
        }
        cum_end_lb += group_end_lb;
        cum_start_ub += group_start_ub;
        i = j;
    }
    pos
}

/// Build the Fig. 7 endpoint union `Q_lower ∪ Q_sg ∪ Q_upper` over the
/// relational encoding, with a provenance `__id` column standing in for
/// `ROW_NUMBER()`. Returned for fidelity/testing; [`rewr_sort`] evaluates
/// its running sums with the merge scan above.
pub fn endpoint_union(rel: &AuRelation, order: &[usize]) -> Relation {
    let total_idxs = total_order(rel.schema.arity(), order);
    let flat = encode(rel);
    // Append __id.
    let mut with_id = Relation::empty(flat.schema.with("__id"));
    for (i, row) in flat.rows.iter().enumerate() {
        with_id.push(row.tuple.with(audb_rel::Value::Int(i as i64)), row.mult);
    }
    let id_col = with_id.schema.arity() - 1;
    let (ml, ms, mu) = mult_cols(rel.schema.arity());

    let mk = |isend: i64, col_of: &dyn Fn(usize) -> usize| -> Relation {
        let mut exprs: Vec<(Expr, &str)> =
            vec![(Expr::col(id_col), "__id"), (Expr::lit(isend), "isend")];
        let names: Vec<String> = (0..total_idxs.len()).map(|i| format!("k{i}")).collect();
        for (i, &c) in total_idxs.iter().enumerate() {
            exprs.push((Expr::col(col_of(c)), &names[i]));
        }
        exprs.push((Expr::col(ml), "m_lb"));
        exprs.push((Expr::col(ms), "m_sg"));
        exprs.push((Expr::col(mu), "m_ub"));
        project(&with_id, &exprs)
    };
    let q_lower = mk(0, &lb_col);
    let q_sg = mk(-1, &sg_col);
    let q_upper = mk(1, &ub_col);
    union(&union(&q_lower, &q_sg), &q_upper)
}

/// `rewr(sort_{O→τ}(R))`: the Fig. 7 rewrite. Produces the same output as
/// [`audb_core::sort_ref`] / `audb_native::sort_native`.
///
/// The dataflow is executed as a DBMS would: the endpoint union is
/// *materialized* through the relational engine (`encode` + three
/// projections + two unions), and the running sums are evaluated by a
/// sort-and-merge scan over that materialized relation — this is where `Rewr`'s
/// constant-factor overhead over the native algorithm comes from (Fig. 11).
pub fn rewr_sort(rel: &AuRelation, order: &[usize], pos_name: &str) -> AuRelation {
    let rel = rel.normalized();
    let rel: &AuRelation = &rel;
    let total_idxs = total_order(rel.schema.arity(), order);
    let n = rel.rows().len();
    let m = total_idxs.len();

    // Q_lower ∪ Q_sg ∪ Q_upper, materialized (schema:
    // [__id, isend, k0..k{m-1}, m_lb, m_sg, m_ub]).
    let endpoints_rel = endpoint_union(rel, order);

    // Parse the three endpoint streams back out of the materialized union
    // (the engine's rows are the source of truth from here on).
    let mut keys_lb: Vec<Tuple> = vec![Tuple(Vec::new()); n];
    let mut keys_sg: Vec<Tuple> = vec![Tuple(Vec::new()); n];
    let mut keys_ub: Vec<Tuple> = vec![Tuple(Vec::new()); n];
    let mut mults: Vec<Mult3> = vec![Mult3::ZERO; n];
    let key_cols: Vec<usize> = (2..2 + m).collect();
    for row in &endpoints_rel.rows {
        let id = row.tuple.get(0).as_i64().expect("__id") as usize;
        let isend = row.tuple.get(1).as_i64().expect("isend");
        let key = row.tuple.project(&key_cols);
        match isend {
            0 => keys_lb[id] = key,
            -1 => keys_sg[id] = key,
            _ => keys_ub[id] = key,
        }
        mults[id] = Mult3::new(
            row.tuple.get(2 + m).as_i64().unwrap() as u64,
            row.tuple.get(3 + m).as_i64().unwrap() as u64,
            row.tuple.get(4 + m).as_i64().unwrap() as u64,
        );
    }

    let pos = positions_by_endpoints(&keys_lb, &keys_sg, &keys_ub, &mults);

    // Merge the bounds back per tuple and split duplicates (Def. 2).
    let mut out = AuRelation::empty(rel.schema.with(pos_name));
    for r in 0..n {
        let row = &rel.rows()[r];
        for i in 0..row.mult.ub {
            let p = RangeValue::from_i64s(
                (pos.lb[r] + i) as i64,
                (pos.sg[r] + i) as i64,
                (pos.ub[r] + i) as i64,
            );
            let mult = if i < row.mult.lb {
                Mult3::ONE
            } else if i < row.mult.sg {
                Mult3::new(0, 1, 1)
            } else {
                Mult3::new(0, 0, 1)
            };
            out.push(row.tuple.with(p), mult);
        }
    }
    out
}

/// Top-k via the rewrite: `σ_{τ < k}` over [`rewr_sort`] with the AU-DB
/// selection semantics (same output as [`audb_core::topk_ref`]).
pub fn rewr_topk(rel: &AuRelation, order: &[usize], k: u64, pos_name: &str) -> AuRelation {
    let sorted = rewr_sort(rel, order, pos_name);
    let pos_col = sorted.schema.arity() - 1;
    audb_core::au_select(
        &sorted,
        &RangeExpr::col(pos_col).lt(RangeExpr::lit(k as i64)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_core::{sort_ref, topk_ref, AuTuple, CmpSemantics};
    use audb_rel::Schema;

    fn rv(lb: i64, sg: i64, ub: i64) -> RangeValue {
        RangeValue::new(lb, sg, ub)
    }

    fn example6() -> AuRelation {
        AuRelation::from_rows(
            Schema::new(["a", "b"]),
            [
                (
                    AuTuple::new([RangeValue::certain(1i64), rv(1, 1, 3)]),
                    Mult3::new(1, 1, 2),
                ),
                (
                    AuTuple::new([rv(2, 3, 3), RangeValue::certain(15i64)]),
                    Mult3::new(0, 1, 1),
                ),
                (
                    AuTuple::new([rv(1, 1, 2), RangeValue::certain(2i64)]),
                    Mult3::ONE,
                ),
            ],
        )
    }

    #[test]
    fn rewrite_sort_matches_reference() {
        let got = rewr_sort(&example6(), &[0, 1], "pos");
        let want = sort_ref(&example6(), &[0, 1], "pos", CmpSemantics::IntervalLex);
        assert!(got.bag_eq(&want), "got:\n{got}\nwant:\n{want}");
    }

    #[test]
    fn rewrite_topk_matches_reference() {
        for k in 0..5 {
            let got = rewr_topk(&example6(), &[0, 1], k, "pos");
            let want = topk_ref(&example6(), &[0, 1], k, CmpSemantics::IntervalLex);
            assert!(got.bag_eq(&want), "k={k}\ngot:\n{got}\nwant:\n{want}");
        }
    }

    #[test]
    fn endpoint_union_shape() {
        let q = endpoint_union(&example6(), &[0, 1]);
        // 3 rows × 3 endpoint kinds.
        assert_eq!(q.rows.len(), 9);
        assert_eq!(q.schema.cols()[0], "__id");
        assert_eq!(q.schema.cols()[1], "isend");
    }

    #[test]
    fn certain_input_reduces_to_deterministic() {
        use audb_rel::Relation;
        let det = Relation::from_values(Schema::new(["a"]), [[4i64], [2], [9], [2]]);
        let au = AuRelation::certain(&det);
        let got = rewr_sort(&au, &[0], "pos");
        let want = sort_ref(&au, &[0], "pos", CmpSemantics::IntervalLex);
        assert!(got.bag_eq(&want));
    }
}
