//! # audb-conheap — connected heaps (paper Sec. 8.2)
//!
//! A **connected heap** is a set of `H` min-heaps that store pointers into a
//! shared arena of records; each record remembers its node position inside
//! every component heap (*back pointers*). Popping the root of one heap
//! therefore removes the record from all other heaps in `O(H · log n)`,
//! instead of the `O(n)` linear scan a collection of independent heaps
//! would need to even *find* the element.
//!
//! The paper's windowed-aggregation algorithm (Sec. 8.3) keeps the tuples
//! possibly belonging to a window simultaneously ordered by
//! `τ↑` (eviction order), `A↓` (min-k candidates) and `A↑` descending
//! (max-k candidates); the connected heap makes maintaining all three views
//! cheap. The preliminary experiment of Sec. 8.2 (reproduced by
//! `repro-heaps`) shows 1.7×–10× gains over unconnected heaps.
//!
//! [`UnconnectedHeaps`] implements the baseline from that experiment:
//! identical API, but deletion from the non-popped heaps does a linear
//! search.
//!
//! ```
//! use audb_conheap::ConnectedHeap;
//! use std::cmp::Ordering;
//!
//! // Two orders over (a, b) pairs: heap 0 by a, heap 1 by b.
//! let mut h = ConnectedHeap::new(2, |which, x: &(i64, i64), y: &(i64, i64)| match which {
//!     0 => x.0.cmp(&y.0),
//!     _ => x.1.cmp(&y.1),
//! });
//! h.insert((1, 30));
//! h.insert((2, 10));
//! h.insert((3, 20));
//! assert_eq!(h.peek(0), Some(&(1, 30)));
//! assert_eq!(h.peek(1), Some(&(2, 10)));
//! // Popping from heap 0 removes the record everywhere.
//! assert_eq!(h.pop(0), Some((1, 30)));
//! assert_eq!(h.peek(1), Some(&(2, 10)));
//! assert_eq!(h.len(), 2);
//! ```

use std::cmp::Ordering;

/// Stable handle to a record stored in a [`ConnectedHeap`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RecordId(usize);

/// A set of `H` min-heaps over one shared record arena with back pointers.
///
/// `cmp(h, a, b)` must implement a total order per component heap `h`.
///
/// Back pointers live in **one flat stride-`H` vector** (`pos[rec * H + h]`
/// = node index of record `rec` inside component heap `h`) rather than a
/// `Vec<usize>` per record: inserting a record costs zero allocations once
/// the arena has warmed up (amortized one `Vec` growth each), and the
/// pointer updates in `sift_up`/`sift_down` hit one contiguous cache line
/// per record instead of chasing a heap-allocated side vector.
pub struct ConnectedHeap<T, C>
where
    C: Fn(usize, &T, &T) -> Ordering,
{
    payload: Vec<Option<T>>,
    /// Flat back pointers, stride `heaps.len()`.
    pos: Vec<usize>,
    free: Vec<usize>,
    heaps: Vec<Vec<usize>>, // heap position -> record index
    cmp: C,
    len: usize,
}

impl<T, C> ConnectedHeap<T, C>
where
    C: Fn(usize, &T, &T) -> Ordering,
{
    /// Create a connected heap with `h` component orders.
    pub fn new(h: usize, cmp: C) -> Self {
        assert!(h >= 1, "need at least one component heap");
        ConnectedHeap {
            payload: Vec::new(),
            pos: Vec::new(),
            free: Vec::new(),
            heaps: vec![Vec::new(); h],
            cmp,
            len: 0,
        }
    }

    /// Create with capacity for `cap` simultaneous records (no further
    /// allocation until the live count first exceeds `cap`).
    pub fn with_capacity(h: usize, cap: usize, cmp: C) -> Self {
        assert!(h >= 1, "need at least one component heap");
        ConnectedHeap {
            payload: Vec::with_capacity(cap),
            pos: Vec::with_capacity(cap * h),
            free: Vec::with_capacity(cap),
            heaps: vec![Vec::with_capacity(cap); h],
            cmp,
            len: 0,
        }
    }

    /// Number of component heaps `H`.
    pub fn components(&self) -> usize {
        self.heaps.len()
    }

    /// Arena slots currently allocated (live + free). Together with
    /// [`ConnectedHeap::len`] this exposes how much of the arena a
    /// long-lived heap is actually reusing.
    pub fn arena_slots(&self) -> usize {
        self.payload.len()
    }

    /// Drop every record but keep the arena, back-pointer vector, free
    /// list and per-component index vectors allocated. A maintenance
    /// sweep that rebuilds its state (e.g. after a recompute fallback)
    /// calls this instead of constructing a new heap, so steady-state
    /// appends never reallocate.
    pub fn clear(&mut self) {
        self.free.clear();
        for (i, slot) in self.payload.iter_mut().enumerate() {
            *slot = None;
            self.free.push(i);
        }
        // `free` pops from the back: reverse so refills reuse slot 0 first.
        self.free.reverse();
        for heap in &mut self.heaps {
            heap.clear();
        }
        self.len = 0;
    }

    /// Ensure the arena can hold `additional` more live records without
    /// reallocating any of its vectors.
    pub fn reserve(&mut self, additional: usize) {
        let hn = self.heaps.len();
        let spare = self.payload.len() - self.len;
        let grow = additional.saturating_sub(spare);
        self.payload.reserve(grow);
        self.pos.reserve(grow * hn);
        self.free.reserve(grow);
        for heap in &mut self.heaps {
            heap.reserve(additional.saturating_sub(heap.capacity() - heap.len()));
        }
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no records are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn payload(&self, rec: usize) -> &T {
        self.payload[rec].as_ref().expect("live record")
    }

    #[inline]
    fn pos_of(&self, rec: usize, h: usize) -> usize {
        self.pos[rec * self.heaps.len() + h]
    }

    #[inline]
    fn set_pos(&mut self, rec: usize, h: usize, at: usize) {
        let stride = self.heaps.len();
        self.pos[rec * stride + h] = at;
    }

    fn less(&self, h: usize, a: usize, b: usize) -> bool {
        (self.cmp)(h, self.payload(a), self.payload(b)) == Ordering::Less
    }

    /// Insert a record into every component heap in `O(H log n)` — and
    /// zero allocations when a freed arena slot is available.
    pub fn insert(&mut self, item: T) -> RecordId {
        let hn = self.heaps.len();
        let rec = match self.free.pop() {
            Some(i) => {
                self.payload[i] = Some(item);
                i
            }
            None => {
                self.payload.push(Some(item));
                self.pos.resize(self.payload.len() * hn, usize::MAX);
                self.payload.len() - 1
            }
        };
        for h in 0..hn {
            let at = self.heaps[h].len();
            self.heaps[h].push(rec);
            self.set_pos(rec, h, at);
            self.sift_up(h, at);
        }
        self.len += 1;
        RecordId(rec)
    }

    /// Smallest element of component heap `h` in `O(1)`.
    pub fn peek(&self, h: usize) -> Option<&T> {
        self.heaps[h].first().map(|&rec| self.payload(rec))
    }

    /// The record id of the root of component heap `h`.
    pub fn peek_id(&self, h: usize) -> Option<RecordId> {
        self.heaps[h].first().map(|&rec| RecordId(rec))
    }

    /// Pop the root of component heap `h`, removing the record from every
    /// other heap via its back pointers (`O(H log n)`).
    pub fn pop(&mut self, h: usize) -> Option<T> {
        let &rec = self.heaps[h].first()?;
        self.remove_record(rec)
    }

    /// Borrow a record by id.
    pub fn get(&self, id: RecordId) -> Option<&T> {
        self.payload.get(id.0).and_then(|s| s.as_ref())
    }

    /// Remove a specific record from all heaps.
    pub fn remove(&mut self, id: RecordId) -> Option<T> {
        self.payload.get(id.0).and_then(|s| s.as_ref())?;
        self.remove_record(id.0)
    }

    fn remove_record(&mut self, rec: usize) -> Option<T> {
        for h in 0..self.heaps.len() {
            let at = self.pos_of(rec, h);
            debug_assert!(self.heaps[h][at] == rec);
            let last = self.heaps[h].len() - 1;
            self.heaps[h].swap(at, last);
            let moved = self.heaps[h][at];
            self.set_pos(moved, h, at);
            self.heaps[h].pop();
            if at <= last && at < self.heaps[h].len() {
                // The replacement may violate the heap property either
                // upward or downward (never both; see paper Sec. 8.2).
                self.sift_down(h, at);
                self.sift_up(h, at);
            }
        }
        self.len -= 1;
        self.free.push(rec);
        self.payload[rec].take()
    }

    fn sift_up(&mut self, h: usize, mut at: usize) {
        while at > 0 {
            let parent = (at - 1) / 2;
            let (a, b) = (self.heaps[h][at], self.heaps[h][parent]);
            if self.less(h, a, b) {
                self.heaps[h].swap(at, parent);
                self.set_pos(a, h, parent);
                self.set_pos(b, h, at);
                at = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, h: usize, mut at: usize) {
        let n = self.heaps[h].len();
        loop {
            let (l, r) = (2 * at + 1, 2 * at + 2);
            let mut smallest = at;
            if l < n && self.less(h, self.heaps[h][l], self.heaps[h][smallest]) {
                smallest = l;
            }
            if r < n && self.less(h, self.heaps[h][r], self.heaps[h][smallest]) {
                smallest = r;
            }
            if smallest == at {
                break;
            }
            let (a, b) = (self.heaps[h][smallest], self.heaps[h][at]);
            self.heaps[h].swap(at, smallest);
            self.set_pos(a, h, at);
            self.set_pos(b, h, smallest);
            at = smallest;
        }
    }

    /// Iterate component heap `h` in sorted order without disturbing the
    /// structure: clones that component's index vector and drains it as a
    /// scratch heap (`O(k log n)` for the first `k` elements). Used by the
    /// min-k / max-k pool scans of the window algorithm.
    pub fn sorted_iter(&self, h: usize) -> SortedIter<'_, T, C> {
        SortedIter {
            owner: self,
            h,
            scratch: self.heaps[h].clone(),
        }
    }

    /// Debug validation: every back pointer agrees with the heap arrays and
    /// every component satisfies the heap property.
    pub fn validate(&self) -> bool {
        for (h, heap) in self.heaps.iter().enumerate() {
            if heap.len() != self.len {
                return false;
            }
            for (i, &rec) in heap.iter().enumerate() {
                if self.pos_of(rec, h) != i || self.payload[rec].is_none() {
                    return false;
                }
                if i > 0 {
                    let parent = heap[(i - 1) / 2];
                    if self.less(h, rec, parent) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Lazy sorted iteration over one component of a [`ConnectedHeap`].
pub struct SortedIter<'a, T, C>
where
    C: Fn(usize, &T, &T) -> Ordering,
{
    owner: &'a ConnectedHeap<T, C>,
    h: usize,
    scratch: Vec<usize>,
}

impl<'a, T, C> Iterator for SortedIter<'a, T, C>
where
    C: Fn(usize, &T, &T) -> Ordering,
{
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        if self.scratch.is_empty() {
            return None;
        }
        let top = self.scratch[0];
        let last = self.scratch.len() - 1;
        self.scratch.swap(0, last);
        self.scratch.pop();
        // Restore the heap property on the scratch vector.
        let mut at = 0usize;
        let n = self.scratch.len();
        loop {
            let (l, r) = (2 * at + 1, 2 * at + 2);
            let mut smallest = at;
            if l < n
                && self
                    .owner
                    .less(self.h, self.scratch[l], self.scratch[smallest])
            {
                smallest = l;
            }
            if r < n
                && self
                    .owner
                    .less(self.h, self.scratch[r], self.scratch[smallest])
            {
                smallest = r;
            }
            if smallest == at {
                break;
            }
            self.scratch.swap(at, smallest);
            at = smallest;
        }
        Some(self.owner.payload(top))
    }
}

/// The baseline of the paper's Sec. 8.2 experiment: the same multi-order
/// container, but without back pointers — removing a record popped from one
/// heap requires a *linear search* through every other heap.
pub struct UnconnectedHeaps<T, C>
where
    C: Fn(usize, &T, &T) -> Ordering,
{
    arena: Vec<Option<T>>,
    free: Vec<usize>,
    heaps: Vec<Vec<usize>>,
    cmp: C,
    len: usize,
}

impl<T, C> UnconnectedHeaps<T, C>
where
    C: Fn(usize, &T, &T) -> Ordering,
{
    /// Create with `h` component orders.
    pub fn new(h: usize, cmp: C) -> Self {
        assert!(h >= 1);
        UnconnectedHeaps {
            arena: Vec::new(),
            free: Vec::new(),
            heaps: vec![Vec::new(); h],
            cmp,
            len: 0,
        }
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn payload(&self, rec: usize) -> &T {
        self.arena[rec].as_ref().expect("live record")
    }

    fn less(&self, h: usize, a: usize, b: usize) -> bool {
        (self.cmp)(h, self.payload(a), self.payload(b)) == Ordering::Less
    }

    /// Insert into every heap.
    pub fn insert(&mut self, item: T) -> RecordId {
        let rec = match self.free.pop() {
            Some(i) => {
                self.arena[i] = Some(item);
                i
            }
            None => {
                self.arena.push(Some(item));
                self.arena.len() - 1
            }
        };
        for h in 0..self.heaps.len() {
            self.heaps[h].push(rec);
            let at = self.heaps[h].len() - 1;
            self.sift_up(h, at);
        }
        self.len += 1;
        RecordId(rec)
    }

    /// Smallest element of heap `h`.
    pub fn peek(&self, h: usize) -> Option<&T> {
        self.heaps[h].first().map(|&r| self.payload(r))
    }

    /// Pop the root of heap `h`; other heaps are purged by linear search
    /// (the `O(n)` baseline the connected heap eliminates).
    pub fn pop(&mut self, h: usize) -> Option<T> {
        let &rec = self.heaps[h].first()?;
        for hh in 0..self.heaps.len() {
            let at = if hh == h {
                0
            } else {
                // Linear search: this is the point of the experiment.
                self.heaps[hh]
                    .iter()
                    .position(|&r| r == rec)
                    .expect("record present in all heaps")
            };
            let last = self.heaps[hh].len() - 1;
            self.heaps[hh].swap(at, last);
            self.heaps[hh].pop();
            if at < self.heaps[hh].len() {
                self.sift_down(hh, at);
                self.sift_up(hh, at);
            }
        }
        self.len -= 1;
        self.free.push(rec);
        self.arena[rec].take()
    }

    fn sift_up(&mut self, h: usize, mut at: usize) {
        while at > 0 {
            let parent = (at - 1) / 2;
            if self.less(h, self.heaps[h][at], self.heaps[h][parent]) {
                self.heaps[h].swap(at, parent);
                at = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, h: usize, mut at: usize) {
        let n = self.heaps[h].len();
        loop {
            let (l, r) = (2 * at + 1, 2 * at + 2);
            let mut smallest = at;
            if l < n && self.less(h, self.heaps[h][l], self.heaps[h][smallest]) {
                smallest = l;
            }
            if r < n && self.less(h, self.heaps[h][r], self.heaps[h][smallest]) {
                smallest = r;
            }
            if smallest == at {
                break;
            }
            self.heaps[h].swap(at, smallest);
            at = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_key_cmp(h: usize, a: &(i64, i64, i64), b: &(i64, i64, i64)) -> Ordering {
        match h {
            0 => a.0.cmp(&b.0),
            1 => a.1.cmp(&b.1),
            _ => b.2.cmp(&a.2), // heap 2 is a max-heap on the third key
        }
    }

    #[test]
    fn paper_example_8() {
        // Tuples t1=(1,3), t2=(2,6), t3=(3,2), t4=(4,1); h1 sorted on the
        // first attribute, h2 on the second. Popping h1 removes t1 from h2.
        let mut ch = ConnectedHeap::new(2, |h, a: &(i64, i64), b: &(i64, i64)| match h {
            0 => a.0.cmp(&b.0),
            _ => a.1.cmp(&b.1),
        });
        for t in [(1, 3), (2, 6), (3, 2), (4, 1)] {
            ch.insert(t);
        }
        assert_eq!(ch.peek(0), Some(&(1, 3)));
        assert_eq!(ch.peek(1), Some(&(4, 1)));
        assert_eq!(ch.pop(0), Some((1, 3)));
        assert!(ch.validate());
        assert_eq!(ch.peek(0), Some(&(2, 6)));
        assert_eq!(ch.peek(1), Some(&(4, 1)));
        assert_eq!(ch.len(), 3);
    }

    #[test]
    fn pop_each_component_in_order() {
        let mut ch = ConnectedHeap::new(3, three_key_cmp);
        let items = [(5, 50, 500), (1, 40, 900), (3, 10, 100), (2, 20, 700)];
        for it in items {
            ch.insert(it);
        }
        assert_eq!(ch.peek(0).unwrap().0, 1);
        assert_eq!(ch.peek(1).unwrap().1, 10);
        assert_eq!(ch.peek(2).unwrap().2, 900);
        // Pop everything from heap 0: ascending first keys.
        let mut firsts = Vec::new();
        while let Some(t) = ch.pop(0) {
            firsts.push(t.0);
            assert!(ch.validate());
        }
        assert_eq!(firsts, vec![1, 2, 3, 5]);
    }

    #[test]
    fn remove_by_id() {
        let mut ch = ConnectedHeap::new(2, |h, a: &(i64, i64), b: &(i64, i64)| match h {
            0 => a.0.cmp(&b.0),
            _ => a.1.cmp(&b.1),
        });
        let _a = ch.insert((1, 9));
        let b = ch.insert((2, 1));
        let _c = ch.insert((3, 5));
        assert_eq!(ch.remove(b), Some((2, 1)));
        assert!(ch.validate());
        assert_eq!(ch.remove(b), None, "double remove is a no-op");
        assert_eq!(ch.peek(1), Some(&(3, 5)));
        assert_eq!(ch.len(), 2);
    }

    #[test]
    fn sorted_iter_does_not_mutate() {
        let mut ch = ConnectedHeap::new(2, |h, a: &(i64, i64), b: &(i64, i64)| match h {
            0 => a.0.cmp(&b.0),
            _ => a.1.cmp(&b.1),
        });
        for i in 0..20i64 {
            ch.insert((i * 7 % 20, i * 13 % 20));
        }
        let snd: Vec<i64> = ch.sorted_iter(1).map(|t| t.1).collect();
        let mut sorted = snd.clone();
        sorted.sort();
        assert_eq!(snd, sorted);
        assert_eq!(ch.len(), 20);
        assert!(ch.validate());
    }

    #[test]
    fn arena_slots_are_reused() {
        let mut ch = ConnectedHeap::new(1, |_, a: &i64, b: &i64| a.cmp(b));
        for i in 0..100 {
            ch.insert(i);
        }
        for _ in 0..50 {
            ch.pop(0);
        }
        for i in 0..50 {
            ch.insert(i);
        }
        assert!(ch.validate());
        assert_eq!(ch.len(), 100);
        // No more than 100 arena slots should ever have been allocated.
        assert!(ch.payload.len() <= 100);
        assert_eq!(ch.pos.len(), ch.payload.len() * ch.components());
    }

    #[test]
    fn clear_retains_capacity_and_reuses_slots() {
        let mut ch =
            ConnectedHeap::with_capacity(2, 64, |h, a: &(i64, i64), b: &(i64, i64)| match h {
                0 => a.0.cmp(&b.0),
                _ => a.1.cmp(&b.1),
            });
        for i in 0..64i64 {
            ch.insert((i, 63 - i));
        }
        // Leave the heap mid-life (some slots on the free list).
        for _ in 0..10 {
            ch.pop(0);
        }
        assert_eq!(ch.len(), 54);
        ch.clear();
        assert!(ch.is_empty());
        assert_eq!(ch.arena_slots(), 64, "arena survives clear()");
        // Refill to the same size: every insert reuses a freed slot.
        for i in 0..64i64 {
            ch.insert((i * 7 % 64, i));
        }
        assert!(ch.validate());
        assert_eq!(ch.arena_slots(), 64, "no realloc on refill");
        assert_eq!(ch.pop(0), Some((0, 0)));
    }

    #[test]
    fn reserve_preallocates_for_appends() {
        let mut ch = ConnectedHeap::new(3, three_key_cmp);
        ch.insert((1, 2, 3));
        ch.reserve(100);
        let slots_before = ch.payload.capacity();
        for i in 0..100i64 {
            ch.insert((i, i * 3 % 101, i * 7 % 103));
        }
        assert!(ch.validate());
        assert_eq!(
            ch.payload.capacity(),
            slots_before,
            "reserve covered the fill"
        );
        assert_eq!(ch.len(), 101);
    }

    #[test]
    fn unconnected_baseline_agrees_with_connected() {
        let mut con = ConnectedHeap::new(3, three_key_cmp);
        let mut unc = UnconnectedHeaps::new(3, three_key_cmp);
        // Prime moduli larger than the item count keep every key column
        // tie-free, so both structures must pop identical elements.
        let items: Vec<(i64, i64, i64)> = (0..200)
            .map(|i: i64| (i * 37 % 211, i * 53 % 223, i * 71 % 227))
            .collect();
        for &it in &items {
            con.insert(it);
            unc.insert(it);
        }
        for round in 0..items.len() {
            let h = round % 3;
            assert_eq!(con.peek(h), unc.peek(h), "round {round}");
            assert_eq!(con.pop(h), unc.pop(h), "round {round}");
        }
        assert!(con.is_empty() && unc.is_empty());
    }
}
