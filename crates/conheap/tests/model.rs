//! Model-based property tests: a connected heap must behave like a sorted
//! multiset under arbitrary interleavings of inserts and pops, across all
//! component orders, and its internal invariants must hold throughout.

use audb_conheap::{ConnectedHeap, UnconnectedHeaps};
use proptest::prelude::*;
use std::cmp::Ordering;

#[derive(Clone, Debug)]
enum Op {
    Insert(i64, i64),
    Pop(u8),
}

fn cmp2(h: usize, a: &(i64, i64), b: &(i64, i64)) -> Ordering {
    // Tie-break with the other key so the order is total — pops are then
    // fully deterministic and comparable against the model.
    match h {
        0 => a.cmp(b),
        _ => (a.1, a.0).cmp(&(b.1, b.0)),
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-50i64..50, -50i64..50).prop_map(|(a, b)| Op::Insert(a, b)),
        (0u8..2).prop_map(Op::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The connected heap agrees with a plain sorted-vector model on every
    /// peek/pop, under both component orders, and `validate()` never fails.
    #[test]
    fn connected_heap_matches_multiset_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut ch = ConnectedHeap::new(2, cmp2);
        let mut model: Vec<(i64, i64)> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(a, b) => {
                    ch.insert((a, b));
                    model.push((a, b));
                }
                Op::Pop(h) => {
                    let h = h as usize;
                    let expect = model
                        .iter()
                        .cloned()
                        .min_by(|x, y| cmp2(h, x, y));
                    prop_assert_eq!(ch.peek(h).cloned(), expect);
                    let got = ch.pop(h);
                    prop_assert_eq!(got, expect);
                    if let Some(e) = expect {
                        let idx = model.iter().position(|&x| x == e).unwrap();
                        model.swap_remove(idx);
                    }
                }
            }
            prop_assert!(ch.validate(), "heap invariants violated");
            prop_assert_eq!(ch.len(), model.len());
        }
        // Drain and check the full sorted order on component 0.
        let mut drained = Vec::new();
        while let Some(x) = ch.pop(0) {
            drained.push(x);
        }
        model.sort();
        prop_assert_eq!(drained, model);
    }

    /// Connected and unconnected (linear-search) heaps are observationally
    /// identical — the paper's Sec. 8.2 experiment varies only performance.
    #[test]
    fn connected_equals_unconnected(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let mut ch = ConnectedHeap::new(2, cmp2);
        let mut uh = UnconnectedHeaps::new(2, cmp2);
        for op in ops {
            match op {
                Op::Insert(a, b) => {
                    ch.insert((a, b));
                    uh.insert((a, b));
                }
                Op::Pop(h) => {
                    prop_assert_eq!(ch.pop(h as usize), uh.pop(h as usize));
                }
            }
            prop_assert_eq!(ch.len(), uh.len());
        }
    }

    /// `sorted_iter` yields each component's full contents in order without
    /// consuming the heap.
    #[test]
    fn sorted_iter_is_sorted_and_nondestructive(items in proptest::collection::vec((-50i64..50, -50i64..50), 0..60)) {
        let mut ch = ConnectedHeap::new(2, cmp2);
        for &it in &items {
            ch.insert(it);
        }
        for h in 0..2 {
            let out: Vec<(i64, i64)> = ch.sorted_iter(h).cloned().collect();
            prop_assert_eq!(out.len(), items.len());
            for w in out.windows(2) {
                prop_assert_ne!(cmp2(h, &w[0], &w[1]), Ordering::Greater);
            }
        }
        prop_assert_eq!(ch.len(), items.len());
        prop_assert!(ch.validate());
    }
}
