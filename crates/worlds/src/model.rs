//! The block-independent (x-tuple) probabilistic database model.
//!
//! An [`XTupleTable`] is a set of independent *x-tuples*; each x-tuple
//! realizes at most one of its weighted [`Alternative`]s per possible world
//! (or is absent, with the remaining probability mass). This is the input
//! model of the paper's evaluation: every data generator produces an
//! x-tuple table, from which we derive
//!
//! * the **AU-DB** consumed by `Imp`/`Rewr` ([`XTupleTable::to_au_relation`]:
//!   per-attribute range hulls + the most likely alternative as the
//!   selected guess),
//! * the **selected-guess / most-likely world** consumed by `Det`,
//! * **sampled worlds** for `MCDB`,
//! * exact alternative probabilities for `PT-k` and the `Symb` stand-in.

use audb_core::{AuRelation, AuTuple, Mult3, RangeValue};
use audb_rel::{Relation, Schema, Tuple, Value};
use rand::Rng;

/// Probability tolerance when deciding whether an x-tuple certainly exists.
pub const EPS: f64 = 1e-9;

/// One possible realization of an x-tuple.
#[derive(Clone, Debug)]
pub struct Alternative {
    /// The realized tuple.
    pub tuple: Tuple,
    /// Its probability; alternatives of one x-tuple sum to at most 1.
    pub prob: f64,
}

/// An independent uncertain tuple with mutually exclusive alternatives.
#[derive(Clone, Debug)]
pub struct XTuple {
    /// The mutually exclusive realizations.
    pub alternatives: Vec<Alternative>,
    /// Optional *declared* per-attribute `[lb, ub]` ranges, as produced by a
    /// data-cleaning heuristic. Declared ranges must contain every
    /// alternative but may be wider — the AU-DB derived from this table
    /// then over-approximates the true possible worlds, exactly as the
    /// paper's lens-cleaned inputs do. `None` = use the alternative hull.
    pub declared: Option<Vec<(Value, Value)>>,
}

impl XTuple {
    /// Build from alternatives (no declared ranges).
    pub fn new(alternatives: Vec<Alternative>) -> Self {
        XTuple {
            alternatives,
            declared: None,
        }
    }

    /// Attach declared attribute ranges (must contain every alternative).
    pub fn with_declared(mut self, declared: Vec<(Value, Value)>) -> Self {
        debug_assert!(self.alternatives.iter().all(|a| {
            a.tuple
                .0
                .iter()
                .zip(&declared)
                .all(|(v, (lo, hi))| lo <= v && v <= hi)
        }));
        self.declared = Some(declared);
        self
    }

    /// A tuple that certainly exists with a single value.
    pub fn certain(tuple: Tuple) -> Self {
        XTuple::new(vec![Alternative { tuple, prob: 1.0 }])
    }

    /// Uniformly weighted alternatives that certainly realize one of them.
    pub fn uniform(tuples: impl IntoIterator<Item = Tuple>) -> Self {
        let tuples: Vec<Tuple> = tuples.into_iter().collect();
        let p = 1.0 / tuples.len() as f64;
        XTuple::new(
            tuples
                .into_iter()
                .map(|tuple| Alternative { tuple, prob: p })
                .collect(),
        )
    }

    /// Total probability of existing in a world.
    pub fn presence_prob(&self) -> f64 {
        self.alternatives.iter().map(|a| a.prob).sum()
    }

    /// True iff the tuple appears in every world.
    pub fn certainly_exists(&self) -> bool {
        self.presence_prob() >= 1.0 - EPS
    }

    /// The most likely realization — `None` when absence is more likely
    /// than every alternative.
    pub fn most_likely(&self) -> Option<&Alternative> {
        let best = self
            .alternatives
            .iter()
            .max_by(|a, b| a.prob.total_cmp(&b.prob))?;
        let absent = 1.0 - self.presence_prob();
        (best.prob >= absent - EPS).then_some(best)
    }

    /// Number of outcomes (alternatives, plus absence when possible).
    pub fn outcome_count(&self) -> usize {
        self.alternatives.len() + usize::from(!self.certainly_exists())
    }

    /// Sample a realization (or `None` for absence).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Tuple> {
        let mut x: f64 = rng.gen();
        for alt in &self.alternatives {
            if x < alt.prob {
                return Some(&alt.tuple);
            }
            x -= alt.prob;
        }
        None
    }
}

/// A block-independent probabilistic table.
#[derive(Clone, Debug)]
pub struct XTupleTable {
    /// Attribute names.
    pub schema: Schema,
    /// The independent x-tuples.
    pub tuples: Vec<XTuple>,
}

impl XTupleTable {
    /// Build from x-tuples.
    pub fn new(schema: Schema, tuples: Vec<XTuple>) -> Self {
        XTupleTable { schema, tuples }
    }

    /// Number of x-tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the table has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Number of possible worlds (saturating).
    pub fn world_count(&self) -> u128 {
        self.tuples.iter().fold(1u128, |acc, t| {
            acc.saturating_mul(t.outcome_count() as u128)
        })
    }

    /// The most likely world (per-tuple argmax) — the paper's
    /// selected-guess world and the input of the `Det` baseline.
    pub fn most_likely_world(&self) -> Relation {
        Relation::from_rows(
            self.schema.clone(),
            self.tuples
                .iter()
                .filter_map(|t| t.most_likely().map(|a| (a.tuple.clone(), 1))),
        )
    }

    /// Sample one world with provenance: `(x-tuple index, realized tuple)`
    /// pairs. MCDB-style consumers need the provenance to attribute query
    /// answers back to input tuples across samples.
    pub fn sample_world_tagged<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<(usize, Tuple)> {
        self.tuples
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.sample(rng).map(|tu| (i, tu.clone())))
            .collect()
    }

    /// Sample one world.
    pub fn sample_world<R: Rng + ?Sized>(&self, rng: &mut R) -> Relation {
        Relation::from_rows(
            self.schema.clone(),
            self.tuples
                .iter()
                .filter_map(|t| t.sample(rng).map(|tu| (tu.clone(), 1))),
        )
    }

    /// Derive the AU-DB bounding this table: attribute ranges are the hulls
    /// over the alternatives, the selected guess is the most likely
    /// alternative, and the multiplicity triple is
    /// `(certainly exists, in SG world, 1)`.
    pub fn to_au_relation(&self) -> AuRelation {
        let rows = self.tuples.iter().filter_map(|t| {
            let first = t.alternatives.first()?;
            let arity = first.tuple.arity();
            let sg_alt = t
                .alternatives
                .iter()
                .max_by(|a, b| a.prob.total_cmp(&b.prob))
                .expect("non-empty alternatives");
            let vals = (0..arity).map(|i| {
                let (lo, hi) = match &t.declared {
                    Some(d) => (d[i].0.clone(), d[i].1.clone()),
                    None => (
                        t.alternatives
                            .iter()
                            .map(|a| a.tuple.get(i))
                            .min()
                            .unwrap()
                            .clone(),
                        t.alternatives
                            .iter()
                            .map(|a| a.tuple.get(i))
                            .max()
                            .unwrap()
                            .clone(),
                    ),
                };
                RangeValue {
                    lb: lo,
                    sg: sg_alt.tuple.get(i).clone(),
                    ub: hi,
                }
            });
            let mult = Mult3 {
                lb: u64::from(t.certainly_exists()),
                sg: u64::from(t.most_likely().is_some()),
                ub: 1,
            };
            Some((AuTuple::new(vals), mult))
        });
        AuRelation::from_rows(self.schema.clone(), rows.collect::<Vec<_>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> XTupleTable {
        XTupleTable::new(
            Schema::new(["a"]),
            vec![
                XTuple::certain(Tuple::from([10i64])),
                XTuple::uniform([Tuple::from([1i64]), Tuple::from([5i64])]),
                XTuple::new(vec![
                    Alternative {
                        tuple: Tuple::from([7i64]),
                        prob: 0.4,
                    },
                    Alternative {
                        tuple: Tuple::from([9i64]),
                        prob: 0.3,
                    },
                ]),
            ],
        )
    }

    #[test]
    fn world_counting() {
        // 1 × 2 × 3 outcomes.
        assert_eq!(table().world_count(), 6);
    }

    #[test]
    fn most_likely_world_uses_argmax() {
        let w = table().most_likely_world();
        // x2 ties at 0.5/0.5 → first max (value 1 or 5, max_by keeps last
        // max? total_cmp keeps the later of equals — accept either); x3
        // picks 7 (0.4 > 0.3 absent).
        assert_eq!(w.total_mult(), 3);
        assert_eq!(w.mult_of(&Tuple::from([10i64])), 1);
        assert_eq!(w.mult_of(&Tuple::from([7i64])), 1);
    }

    #[test]
    fn au_relation_hull_and_multiplicities() {
        let au = table().to_au_relation();
        assert_eq!(au.rows().len(), 3);
        assert_eq!(au.rows()[0].mult, Mult3::ONE);
        assert_eq!(au.rows()[1].tuple.get(0).lb, audb_rel::Value::Int(1));
        assert_eq!(au.rows()[1].tuple.get(0).ub, audb_rel::Value::Int(5));
        assert_eq!(au.rows()[1].mult, Mult3::ONE);
        // Maybe-absent tuple: lb 0, sg 1 (7 beats absence), ub 1.
        assert_eq!(au.rows()[2].mult, Mult3::new(0, 1, 1));
    }

    #[test]
    fn sampling_respects_probabilities_roughly() {
        let t = table();
        let mut rng = StdRng::seed_from_u64(42);
        let mut absent = 0;
        let n = 20_000;
        for _ in 0..n {
            let w = t.sample_world(&mut rng);
            if w.mult_of(&Tuple::from([7i64])) == 0 && w.mult_of(&Tuple::from([9i64])) == 0 {
                absent += 1;
            }
        }
        let rate = absent as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "absence rate {rate}");
    }

    #[test]
    fn au_relation_bounds_every_sampled_world() {
        let t = table();
        let au = t.to_au_relation();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let w = t.sample_world(&mut rng);
            for row in &w.rows {
                assert!(
                    au.rows().iter().any(|r| r.tuple.bounds(&row.tuple)),
                    "world tuple {} not bounded",
                    row.tuple
                );
            }
        }
    }
}
