//! # audb-worlds — incomplete and probabilistic database substrate
//!
//! The paper evaluates over *incomplete databases*: sets of possible worlds
//! (Sec. 3.1), generated here from the block-independent **x-tuple model**
//! ([`model::XTupleTable`]). This crate provides everything the AU-DB
//! methods, competitors, and tests need from that model:
//!
//! * [`model`] — x-tuples, most-likely (selected-guess) worlds, world
//!   sampling, and derivation of the bounding AU-DB;
//! * [`enumerate`] — exhaustive world enumeration with provenance (small
//!   inputs; ground truth for property tests and exact competitors);
//! * [`exact`] — *tight* per-tuple position bounds in closed form and
//!   window-aggregate bounds by bounded local enumeration (the `Symb`
//!   stand-in used to normalize approximation quality, DESIGN.md §2);
//! * [`bounding`] — the exact tuple-matching checker (max-flow) deciding
//!   `R ⊏ R`, used to *prove* bound preservation in tests.

pub mod bounding;
pub mod enumerate;
pub mod exact;
pub mod model;

pub use bounding::{bounds_incomplete, bounds_world};
pub use enumerate::{enumerate_worlds, World};
pub use exact::{exact_position_bounds, exact_window_bounds, WindowTruth};
pub use model::{Alternative, XTuple, XTupleTable};
