//! Exhaustive possible-world enumeration for small x-tuple tables.
//!
//! Used as ground truth by property tests (bound preservation) and by the
//! exact competitors (the `Symb` stand-in, PT-k validation, expected
//! ranks). The number of worlds is the product of per-tuple outcome counts;
//! [`enumerate_worlds`] refuses to enumerate beyond an explicit cap so a
//! misconfigured test fails loudly instead of hanging.

use crate::model::XTupleTable;
use audb_rel::{Relation, Tuple};

/// One possible world: the realized relation, its probability, and for each
/// x-tuple the index of the chosen alternative (`None` = absent) — the
/// provenance needed to track per-tuple answers through queries.
#[derive(Clone, Debug)]
pub struct World {
    /// The deterministic relation of this world.
    pub relation: Relation,
    /// The world's probability (product of independent choices).
    pub prob: f64,
    /// Per x-tuple: which alternative realized.
    pub choices: Vec<Option<usize>>,
}

/// Enumerate all possible worlds. Panics if the world count exceeds `cap`.
pub fn enumerate_worlds(table: &XTupleTable, cap: u128) -> Vec<World> {
    let count = table.world_count();
    assert!(
        count <= cap,
        "{count} possible worlds exceed the enumeration cap of {cap}"
    );
    let mut worlds = Vec::with_capacity(count as usize);
    let mut tuples: Vec<(Tuple, u64)> = Vec::new();
    let mut choices: Vec<Option<usize>> = Vec::with_capacity(table.len());
    rec(table, 0, 1.0, &mut tuples, &mut choices, &mut worlds);
    worlds
}

fn rec(
    table: &XTupleTable,
    i: usize,
    prob: f64,
    tuples: &mut Vec<(Tuple, u64)>,
    choices: &mut Vec<Option<usize>>,
    out: &mut Vec<World>,
) {
    if i == table.len() {
        out.push(World {
            relation: Relation::from_rows(table.schema.clone(), tuples.iter().cloned()),
            prob,
            choices: choices.clone(),
        });
        return;
    }
    let xt = &table.tuples[i];
    for (ai, alt) in xt.alternatives.iter().enumerate() {
        if alt.prob <= 0.0 {
            continue;
        }
        tuples.push((alt.tuple.clone(), 1));
        choices.push(Some(ai));
        rec(table, i + 1, prob * alt.prob, tuples, choices, out);
        tuples.pop();
        choices.pop();
    }
    let absent = 1.0 - xt.presence_prob();
    if absent > crate::model::EPS {
        choices.push(None);
        rec(table, i + 1, prob * absent, tuples, choices, out);
        choices.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Alternative, XTuple};
    use audb_rel::Schema;

    fn table() -> XTupleTable {
        XTupleTable::new(
            Schema::new(["a"]),
            vec![
                XTuple::certain(Tuple::from([1i64])),
                XTuple::new(vec![
                    Alternative {
                        tuple: Tuple::from([2i64]),
                        prob: 0.5,
                    },
                    Alternative {
                        tuple: Tuple::from([3i64]),
                        prob: 0.2,
                    },
                ]),
            ],
        )
    }

    #[test]
    fn enumerates_all_worlds_with_probabilities() {
        let worlds = enumerate_worlds(&table(), 100);
        assert_eq!(worlds.len(), 3);
        let total: f64 = worlds.iter().map(|w| w.prob).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // The absent world has only the certain tuple.
        let absent = worlds.iter().find(|w| w.choices[1].is_none()).unwrap();
        assert_eq!(absent.relation.total_mult(), 1);
        assert!((absent.prob - 0.3).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "exceed the enumeration cap")]
    fn cap_is_enforced() {
        enumerate_worlds(&table(), 2);
    }
}
