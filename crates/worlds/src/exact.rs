//! Exact (tight) per-tuple answer bounds over x-tuple tables — the ground
//! truth against which approximation quality is measured (paper Sec. 9:
//! "the tightest bound [c, d] as computed by Symb and PT-k").
//!
//! * [`exact_position_bounds`] — closed-form tight sort-position bounds:
//!   because x-tuples are independent, the smallest possible position of
//!   `t` is the number of tuples that *unavoidably* precede it (certainly
//!   exist and their largest key is below `t`'s smallest), and the largest
//!   possible position counts every tuple that can precede it. `O(n log n)`
//!   at any scale.
//! * [`exact_window_bounds`] — tight window-aggregate bounds by bounded
//!   *local enumeration*: under `ROWS [l, u]`, membership in `t`'s window
//!   only depends on tuples not separated from `t` by at least
//!   `max(−l, u)` fixed (certain, certain-key) tuples, so enumerating the
//!   joint outcomes of that candidate neighbourhood is exhaustive. This is
//!   the `Symb` stand-in (the paper used Z3; see DESIGN.md §2) — exact but
//!   exponential in the local uncertainty, hence capped.

use crate::model::XTupleTable;
use audb_core::WinAgg;
use audb_rel::ops::sort::total_order;
use audb_rel::{Tuple, Value};

/// Per-x-tuple keys (projections on the total order) over its alternatives.
struct Keys {
    min_key: Tuple,
    max_key: Tuple,
    certain: bool,
    /// Certain existence *and* a single possible key.
    fixed: bool,
}

fn keys_of(table: &XTupleTable, order: &[usize]) -> (Vec<usize>, Vec<Option<Keys>>) {
    let total_idxs = total_order(table.schema.arity(), order);
    let keys = table
        .tuples
        .iter()
        .map(|t| {
            let mut ks = t.alternatives.iter().map(|a| a.tuple.project(&total_idxs));
            let first = ks.next()?;
            let (mut lo, mut hi) = (first.clone(), first);
            for k in ks {
                if k < lo {
                    lo = k.clone();
                }
                if k > hi {
                    hi = k;
                }
            }
            let certain = t.certainly_exists();
            let fixed = certain && lo == hi;
            Some(Keys {
                min_key: lo,
                max_key: hi,
                certain,
                fixed,
            })
        })
        .collect();
    (total_idxs, keys)
}

/// Tight `[pos_min, pos_max]` of each x-tuple's sort position (0-based,
/// conditional on the tuple existing); `None` for alternatives-free tuples.
/// Ties across distinct x-tuples are broken by x-tuple index (the
/// deterministic semantics' arbitrary-but-fixed tie-break; generators keep
/// keys distinct so this never matters in the benchmarks).
pub fn exact_position_bounds(table: &XTupleTable, order: &[usize]) -> Vec<Option<(u64, u64)>> {
    let (_, keys) = keys_of(table, order);
    // Sorted key lists for counting.
    let mut certain_max: Vec<&Tuple> = keys
        .iter()
        .flatten()
        .filter(|k| k.certain)
        .map(|k| &k.max_key)
        .collect();
    certain_max.sort();
    let mut all_min: Vec<&Tuple> = keys.iter().flatten().map(|k| &k.min_key).collect();
    all_min.sort();

    keys.iter()
        .map(|k| {
            let k = k.as_ref()?;
            // Unavoidable predecessors: certain tuples whose largest key is
            // strictly below this tuple's smallest key.
            let lo = certain_max.partition_point(|&m| m < &k.min_key) as u64;
            // Possible predecessors: any tuple whose smallest key is
            // strictly below this tuple's largest key (minus self).
            let mut hi = all_min.partition_point(|&m| m < &k.max_key) as u64;
            if k.min_key < k.max_key {
                hi -= 1; // self was counted
            }
            debug_assert!(lo <= hi);
            Some((lo, hi))
        })
        .collect()
}

/// Result of [`exact_window_bounds`] for one tuple.
#[derive(Clone, Debug, PartialEq)]
pub enum WindowTruth {
    /// Tight `[lo, hi]` on the aggregate over the tuple's window,
    /// conditional on the tuple existing.
    Exact(Value, Value),
    /// The local neighbourhood was too uncertain to enumerate under the cap.
    Skipped,
}

/// Tight bounds on `f(A) OVER (ORDER BY O ROWS BETWEEN -l PRECEDING AND u
/// FOLLOWING)` per x-tuple, by exhaustive enumeration of the candidate
/// neighbourhood. `enum_cap` bounds the number of joint outcomes explored
/// per tuple (tuples beyond it report [`WindowTruth::Skipped`]).
pub fn exact_window_bounds(
    table: &XTupleTable,
    order: &[usize],
    agg: WinAgg,
    l: i64,
    u: i64,
    enum_cap: u128,
) -> Vec<Option<WindowTruth>> {
    assert!(l <= 0 && u >= 0, "window must contain the current row");
    assert!(
        !matches!(agg, WinAgg::Avg(_)),
        "exact avg bounds are not supported"
    );
    let (total_idxs, keys) = keys_of(table, order);
    let reach_below = (-l) as usize;
    let reach_above = u as usize;

    // Fixed separators: certainly existing tuples with a single key.
    let mut fixed_keys: Vec<&Tuple> = keys
        .iter()
        .flatten()
        .filter(|k| k.fixed)
        .map(|k| &k.min_key)
        .collect();
    fixed_keys.sort();
    // #fixed keys strictly inside the open interval (a, b).
    let fixed_between = |a: &Tuple, b: &Tuple| -> usize {
        if a >= b {
            return 0;
        }
        fixed_keys.partition_point(|&k| k < b) - fixed_keys.partition_point(|&k| k <= a)
    };

    let val_of = |alt: &Tuple| -> Value {
        match agg.input_col() {
            Some(c) => alt.get(c).clone(),
            None => Value::Int(1),
        }
    };

    (0..table.len())
        .map(|ti| {
            let tk = keys[ti].as_ref()?;
            // Candidate neighbourhood (see module docs for the argument
            // that window members are always candidates).
            let mut cands: Vec<usize> = Vec::new();
            let mut outcomes: u128 = table.tuples[ti].alternatives.len() as u128;
            for (j, jk) in keys.iter().enumerate() {
                let Some(jk) = jk else { continue };
                if j == ti {
                    continue;
                }
                let below_ok = reach_below > 0
                    && jk.min_key < tk.max_key
                    && fixed_between(&jk.max_key, &tk.min_key) < reach_below;
                let above_ok = reach_above > 0
                    && jk.max_key > tk.min_key
                    && fixed_between(&tk.max_key, &jk.min_key) < reach_above;
                if below_ok || above_ok {
                    cands.push(j);
                    outcomes = outcomes.saturating_mul(table.tuples[j].outcome_count() as u128);
                    if outcomes > enum_cap {
                        return Some(WindowTruth::Skipped);
                    }
                }
            }

            // Enumerate the joint outcomes of target × candidates.
            let mut best: Option<(Value, Value)> = None;
            let mut realized: Vec<(Tuple, Value, usize)> = Vec::new();
            for t_alt in &table.tuples[ti].alternatives {
                let t_key = t_alt.tuple.project(&total_idxs);
                let t_val = val_of(&t_alt.tuple);
                enum_rec(
                    table,
                    &cands,
                    0,
                    &total_idxs,
                    &mut realized,
                    &mut |realized| {
                        // Sort candidate realizations and slice the window.
                        let mut sorted: Vec<(&Tuple, &Value, usize)> =
                            realized.iter().map(|(k, v, j)| (k, v, *j)).collect();
                        sorted.push((&t_key, &t_val, ti));
                        sorted.sort_by(|a, b| a.0.cmp(b.0).then(a.2.cmp(&b.2)));
                        let p = sorted
                            .iter()
                            .position(|&(_, _, j)| j == ti)
                            .expect("target present") as i64;
                        let lo = (p + l).max(0) as usize;
                        let hi = ((p + u).min(sorted.len() as i64 - 1)) as usize;
                        let result = fold_agg(agg, sorted[lo..=hi].iter().map(|&(_, v, _)| v));
                        match &mut best {
                            None => best = Some((result.clone(), result)),
                            Some((mn, mx)) => {
                                if result < *mn {
                                    *mn = result.clone();
                                }
                                if result > *mx {
                                    *mx = result;
                                }
                            }
                        }
                    },
                    &val_of,
                );
            }
            best.map(|(lo, hi)| WindowTruth::Exact(lo, hi))
        })
        .collect()
}

fn enum_rec(
    table: &XTupleTable,
    cands: &[usize],
    i: usize,
    total_idxs: &[usize],
    realized: &mut Vec<(Tuple, Value, usize)>,
    visit: &mut dyn FnMut(&[(Tuple, Value, usize)]),
    val_of: &dyn Fn(&Tuple) -> Value,
) {
    if i == cands.len() {
        visit(realized);
        return;
    }
    let j = cands[i];
    for alt in &table.tuples[j].alternatives {
        realized.push((alt.tuple.project(total_idxs), val_of(&alt.tuple), j));
        enum_rec(table, cands, i + 1, total_idxs, realized, visit, val_of);
        realized.pop();
    }
    if !table.tuples[j].certainly_exists() {
        enum_rec(table, cands, i + 1, total_idxs, realized, visit, val_of);
    }
}

fn fold_agg<'a>(agg: WinAgg, vals: impl Iterator<Item = &'a Value>) -> Value {
    match agg {
        WinAgg::Sum(_) => vals.fold(Value::Int(0), |acc, v| acc.add(v)),
        WinAgg::Count => Value::Int(vals.count() as i64),
        WinAgg::Min(_) => vals.min().cloned().unwrap_or(Value::Null),
        WinAgg::Max(_) => vals.max().cloned().unwrap_or(Value::Null),
        WinAgg::Avg(_) => unreachable!("rejected above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_worlds;
    use crate::model::{Alternative, XTuple};
    use audb_rel::{sort_to_pos, window_rows, AggFunc, Schema, WindowSpec};

    fn table() -> XTupleTable {
        XTupleTable::new(
            Schema::new(["k", "v"]),
            vec![
                XTuple::certain(Tuple::from([10i64, 1])),
                XTuple::uniform([Tuple::from([5i64, 2]), Tuple::from([15i64, 3])]),
                XTuple::new(vec![Alternative {
                    tuple: Tuple::from([12i64, 4]),
                    prob: 0.5,
                }]),
                XTuple::certain(Tuple::from([20i64, 5])),
            ],
        )
    }

    /// Enumerated ground truth for positions must match the closed form.
    #[test]
    fn position_bounds_match_enumeration() {
        let t = table();
        let bounds = exact_position_bounds(&t, &[0]);
        let worlds = enumerate_worlds(&t, 1000);
        for (i, b) in bounds.iter().enumerate() {
            let b = b.expect("all tuples have alternatives");
            let (mut lo, mut hi) = (u64::MAX, 0u64);
            for w in &worlds {
                let Some(ai) = w.choices[i] else { continue };
                let realized = &t.tuples[i].alternatives[ai].tuple;
                let sorted = sort_to_pos(&w.relation, &[0], "pos");
                for row in &sorted.rows {
                    if row.tuple.project(&[0, 1]) == *realized {
                        let p = row.tuple.get(2).as_i64().unwrap() as u64;
                        lo = lo.min(p);
                        hi = hi.max(p);
                    }
                }
            }
            assert_eq!((lo, hi), b, "tuple {i}");
        }
    }

    /// Enumerated ground truth for rolling sums must match the local
    /// enumeration.
    #[test]
    fn window_bounds_match_enumeration() {
        let t = table();
        for (l, u) in [(-1i64, 0i64), (0, 1), (-2, 0)] {
            let bounds = exact_window_bounds(&t, &[0], WinAgg::Sum(1), l, u, 1 << 20);
            let worlds = enumerate_worlds(&t, 1000);
            for (i, b) in bounds.iter().enumerate() {
                let Some(WindowTruth::Exact(lo, hi)) = b else {
                    panic!("tuple {i} skipped");
                };
                let (mut wlo, mut whi) = (Value::Null, Value::Null);
                for w in &worlds {
                    let Some(ai) = w.choices[i] else { continue };
                    let realized = &t.tuples[i].alternatives[ai].tuple;
                    let spec = WindowSpec::rows(vec![0], l, u);
                    let out = window_rows(&w.relation, &spec, AggFunc::Sum(1), "s");
                    for row in &out.rows {
                        if row.tuple.project(&[0, 1]) == *realized {
                            let s = row.tuple.get(2).clone();
                            if wlo.is_null() || s < wlo {
                                wlo = s.clone();
                            }
                            if whi.is_null() || s > whi {
                                whi = s;
                            }
                        }
                    }
                }
                assert_eq!((&wlo, &whi), (lo, hi), "tuple {i} window [{l},{u}]");
            }
        }
    }

    #[test]
    fn enumeration_cap_reports_skipped() {
        let t = table();
        let bounds = exact_window_bounds(&t, &[0], WinAgg::Sum(1), -2, 0, 2);
        assert!(bounds
            .iter()
            .any(|b| matches!(b, Some(WindowTruth::Skipped))));
    }
}
