//! The tuple-matching bounding checker (paper Sec. 3.2).
//!
//! An AU-relation `R` bounds a world `R` iff a *tuple matching* exists: a
//! distribution of every world tuple's multiplicity over the AU rows whose
//! hypercubes contain it, such that each AU row receives a total within its
//! `[k↓, k↑]` annotation. Existence of such a matching is a transportation
//! feasibility problem, decided here exactly with a max-flow (Dinic) over
//! the bipartite containment graph with lower bounds on the AU-row arcs.
//!
//! This checker is what the property-test suite uses to *prove* bound
//! preservation of every operator on enumerated incomplete databases.

use audb_core::AuRelation;
use audb_rel::Relation;
use std::collections::VecDeque;

/// A small max-flow solver (Dinic's algorithm).
struct Dinic {
    // adjacency: per node, indices into `edges`.
    adj: Vec<Vec<usize>>,
    // edges stored as (to, cap); edge i^1 is the reverse of edge i.
    to: Vec<usize>,
    cap: Vec<i64>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    fn new(n: usize) -> Self {
        Dinic {
            adj: vec![Vec::new(); n],
            to: Vec::new(),
            cap: Vec::new(),
            level: vec![0; n],
            iter: vec![0; n],
        }
    }

    fn add_edge(&mut self, from: usize, to: usize, cap: i64) {
        let e = self.to.len();
        self.to.push(to);
        self.cap.push(cap);
        self.adj[from].push(e);
        self.to.push(from);
        self.cap.push(0);
        self.adj[to].push(e + 1);
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.fill(-1);
        let mut q = VecDeque::new();
        self.level[s] = 0;
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            for &e in &self.adj[v] {
                if self.cap[e] > 0 && self.level[self.to[e]] < 0 {
                    self.level[self.to[e]] = self.level[v] + 1;
                    q.push_back(self.to[e]);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, v: usize, t: usize, f: i64) -> i64 {
        if v == t {
            return f;
        }
        while self.iter[v] < self.adj[v].len() {
            let e = self.adj[v][self.iter[v]];
            let u = self.to[e];
            if self.cap[e] > 0 && self.level[u] == self.level[v] + 1 {
                let d = self.dfs(u, t, f.min(self.cap[e]));
                if d > 0 {
                    self.cap[e] -= d;
                    self.cap[e ^ 1] += d;
                    return d;
                }
            }
            self.iter[v] += 1;
        }
        0
    }

    fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        let mut flow = 0;
        while self.bfs(s, t) {
            self.iter.fill(0);
            loop {
                let f = self.dfs(s, t, i64::MAX);
                if f == 0 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }
}

/// Does the AU-relation bound the deterministic world (`R ⊏ R`)? Exact
/// (max-flow feasibility of the tuple-matching circulation).
pub fn bounds_world(au: &AuRelation, world: &Relation) -> bool {
    let world = world.clone().normalize();
    let w = world.rows.len();
    let r = au.rows().len();
    // Circulation with lower bounds:
    //   s →(=mult)→ world tuple →(0..∞)→ AU row →(k↓..k↑)→ t →(∞)→ s
    // Feasible iff the standard lower-bound transformation saturates.
    let s = w + r;
    let t = s + 1;
    let ss = t + 1;
    let st = ss + 1;
    let mut excess = vec![0i64; st + 1];
    let mut flow = Dinic::new(st + 1);
    let total: i64 = world.rows.iter().map(|row| row.mult as i64).sum();

    for (i, row) in world.rows.iter().enumerate() {
        // s → world tuple with lower = cap = mult: becomes pure excess.
        excess[i] += row.mult as i64;
        excess[s] -= row.mult as i64;
        let mut contained = false;
        for (j, arow) in au.rows().iter().enumerate() {
            if arow.tuple.bounds(&row.tuple) {
                contained = true;
                flow.add_edge(i, w + j, row.mult as i64);
            }
        }
        if !contained && row.mult > 0 {
            return false; // some world tuple fits no hypercube
        }
    }
    for (j, arow) in au.rows().iter().enumerate() {
        let (lo, hi) = (arow.mult.lb as i64, arow.mult.ub as i64);
        if lo > 0 {
            excess[t] += lo;
            excess[w + j] -= lo;
        }
        if hi - lo > 0 {
            flow.add_edge(w + j, t, hi - lo);
        }
    }
    flow.add_edge(t, s, total.max(1) * 4 + 16); // ∞ back edge

    let mut need = 0i64;
    for (v, &e) in excess.iter().enumerate() {
        if e > 0 {
            flow.add_edge(ss, v, e);
            need += e;
        } else if e < 0 {
            flow.add_edge(v, st, -e);
        }
    }
    flow.max_flow(ss, st) == need
}

/// Does the AU-relation bound the incomplete database given by `worlds`
/// (every world bounded, and — when `check_sg` — its selected-guess world
/// is one of them)?
pub fn bounds_incomplete(au: &AuRelation, worlds: &[Relation], check_sg: bool) -> bool {
    if check_sg {
        let sg = au.sg_world();
        if !worlds.iter().any(|w| sg.bag_eq(w)) {
            return false;
        }
    }
    worlds.iter().all(|w| bounds_world(au, w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_core::{AuTuple, Mult3, RangeValue};
    use audb_rel::{Schema, Tuple};

    fn rv(lb: i64, sg: i64, ub: i64) -> RangeValue {
        RangeValue::new(lb, sg, ub)
    }

    fn world(vals: &[(i64, u64)]) -> Relation {
        Relation::from_rows(
            Schema::new(["a"]),
            vals.iter().map(|&(v, m)| (Tuple::from([v]), m)),
        )
    }

    #[test]
    fn simple_containment() {
        let au = AuRelation::from_rows(
            Schema::new(["a"]),
            [(AuTuple::new([rv(1, 3, 5)]), Mult3::new(1, 1, 2))],
        );
        assert!(bounds_world(&au, &world(&[(3, 1)])));
        assert!(bounds_world(&au, &world(&[(1, 2)])));
        assert!(!bounds_world(&au, &world(&[(6, 1)])), "value out of range");
        assert!(!bounds_world(&au, &world(&[(3, 3)])), "multiplicity over");
        assert!(!bounds_world(&au, &world(&[])), "lower bound unmet");
    }

    /// The paper's Sec. 3.2 example: ([1/3/5], a) × (1,1,2) bounds worlds
    /// with 1 or 2 tuples (v, a), v ∈ \[1,5\].
    #[test]
    fn paper_section_3_example() {
        let au = AuRelation::from_rows(
            Schema::new(["a", "b"]),
            [(
                AuTuple::new([rv(1, 3, 5), RangeValue::certain("a")]),
                Mult3::new(1, 1, 2),
            )],
        );
        let w1 = Relation::from_rows(
            Schema::new(["a", "b"]),
            [(
                Tuple::new([audb_rel::Value::Int(2), audb_rel::Value::str("a")]),
                2,
            )],
        );
        assert!(bounds_world(&au, &w1));
        let w2 = Relation::from_rows(
            Schema::new(["a", "b"]),
            [
                (
                    Tuple::new([audb_rel::Value::Int(1), audb_rel::Value::str("a")]),
                    1,
                ),
                (
                    Tuple::new([audb_rel::Value::Int(5), audb_rel::Value::str("a")]),
                    1,
                ),
            ],
        );
        assert!(bounds_world(&au, &w2));
    }

    /// A world tuple may be covered by several hypercubes; the matching
    /// must route around tight capacities.
    #[test]
    fn matching_requires_flow_not_greedy() {
        let au = AuRelation::from_rows(
            Schema::new(["a"]),
            [
                (AuTuple::new([rv(0, 1, 2)]), Mult3::new(1, 1, 1)),
                (AuTuple::new([rv(2, 3, 4)]), Mult3::new(1, 1, 1)),
            ],
        );
        // World: one tuple 2 (fits both) and one tuple 0 (fits only first).
        // Greedy placing 2 into the first row would strand 0; the flow
        // must place 2 into the second row.
        assert!(bounds_world(&au, &world(&[(2, 1), (0, 1)])));
        // Two copies of 2 plus a 0: needs 2→second, 2→first? first then has
        // 0 and 2 → over its cap of 1 → infeasible.
        assert!(!bounds_world(&au, &world(&[(2, 2), (0, 1)])));
    }

    #[test]
    fn incomplete_with_sg_check() {
        let au = AuRelation::from_rows(
            Schema::new(["a"]),
            [(AuTuple::new([rv(1, 2, 3)]), Mult3::ONE)],
        );
        let worlds = [world(&[(1, 1)]), world(&[(2, 1)]), world(&[(3, 1)])];
        assert!(bounds_incomplete(&au, &worlds, true));
        // Drop the SG world: bounding still holds per-world but not with
        // the SG condition.
        let worlds2 = [world(&[(1, 1)]), world(&[(3, 1)])];
        assert!(bounds_incomplete(&au, &worlds2, false));
        assert!(!bounds_incomplete(&au, &worlds2, true));
    }
}
