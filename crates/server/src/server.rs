//! The server proper: a `TcpListener` accept loop feeding a fixed-size
//! worker pool over an mpsc channel.
//!
//! Threading model: the acceptor thread only accepts; each accepted
//! connection is sent down the channel and one worker owns it until it
//! closes (HTTP keep-alive). To keep the pool fair when there are more
//! clients than workers, a worker returns a connection's socket to the
//! back of the queue after [`ServerConfig::keepalive_limit`] requests
//! (advertising `Connection: close`), so 64 clients rotate over 4 workers
//! instead of 4 clients monopolizing them.
//!
//! Shutdown: [`ServerHandle::shutdown`] flips an atomic flag and pokes the
//! listener with a wake-up connection so `accept` returns; workers drain
//! when the channel closes.

use crate::http;
use crate::state::{ConnState, ServerState};
use crate::wire;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration. `port: 0` binds an ephemeral port (the bound
/// address is on the returned handle).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Port to bind on 127.0.0.1 (0 = ephemeral).
    pub port: u16,
    /// Worker-pool size.
    pub threads: usize,
    /// Requests served on one connection before the server closes it to
    /// requeue the client (pool fairness under keep-alive).
    pub keepalive_limit: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 0,
            threads: default_threads(),
            keepalive_limit: 100,
        }
    }
}

/// `max(2, available_parallelism)`: at least two workers so one slow
/// query never serializes the whole service.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2)
}

/// A running server. Dropping the handle shuts it down.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (127.0.0.1 with the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (counters, plan cache, catalog).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Stop accepting, drain the workers, and join all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        // Shutdown is a once-per-server event: SeqCst ordering makes the
        // flag's visibility trivially correct relative to the wake-up
        // connection below (Release/Acquire would do; the stronger
        // ordering costs nothing off the request path).
        self.stop.store(true, Ordering::SeqCst);
        // Poke the blocking accept() so the acceptor observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Bind, spawn the pool, and return. Serving continues until the handle
/// is shut down or dropped.
pub fn serve(state: ServerState, config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(("127.0.0.1", config.port))?;
    let addr = listener.local_addr()?;
    let state = Arc::new(state);
    let stop = Arc::new(AtomicBool::new(false));

    let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = mpsc::channel();
    let rx = Arc::new(Mutex::new(rx));

    let workers = (0..config.threads.max(1))
        .map(|i| {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            let limit = config.keepalive_limit.max(1);
            std::thread::Builder::new()
                .name(format!("audb-worker-{i}"))
                .spawn(move || worker_loop(&rx, &state, limit))
        })
        .collect::<io::Result<Vec<_>>>()?;

    let acceptor = {
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("audb-acceptor".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    // SeqCst ordering pairs with the store in
                    // stop_and_join; see the justification there.
                    if stop.load(Ordering::SeqCst) {
                        break; // tx drops here; workers drain and exit.
                    }
                    match conn {
                        Ok(stream) => {
                            if tx.send(stream).is_err() {
                                break;
                            }
                        }
                        Err(_) => continue,
                    }
                }
            })?
    };

    Ok(ServerHandle {
        addr,
        state,
        stop,
        acceptor: Some(acceptor),
        workers,
    })
}

fn worker_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, state: &Arc<ServerState>, limit: usize) {
    loop {
        // Hold the lock only to receive; serving happens unlocked.
        let stream = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match stream {
            Ok(stream) => serve_connection(stream, state, limit),
            Err(_) => return, // channel closed: shutdown.
        }
    }
}

/// Serve one connection until the client closes, an I/O or parse error
/// occurs, or the keep-alive request limit is reached.
fn serve_connection(stream: TcpStream, state: &Arc<ServerState>, limit: usize) {
    // A read timeout bounds how long an idle keep-alive connection can
    // park a worker.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    let mut conn = ConnState::default();

    for served in 1..=limit {
        let request = match http::read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return, // clean close
            Err(_) => return,   // timeout / malformed: drop the connection
        };
        let keep_alive = request.keep_alive && served < limit;
        let (status, body) = wire::handle(state, &mut conn, &request);
        let body = body.to_string();
        if http::write_response(
            &mut write_half,
            status,
            "application/json",
            body.as_bytes(),
            keep_alive,
        )
        .is_err()
            || !keep_alive
        {
            return;
        }
    }
}
