//! # audb-server — the concurrent SQL service layer
//!
//! A dependency-free HTTP/1.1 + JSON front end over the engine: many
//! sessions, one [`SharedCatalog`](audb_engine::SharedCatalog), no global
//! lock on the query path. The paper's pitch is *interactive*
//! approximation — bounds in milliseconds — and this crate is where
//! "interactive" meets concurrency: a fixed worker pool serves `query` /
//! `prepare` / `execute` / `explain` / `run_all` requests, each against a
//! pinned catalog snapshot, with a shared bounded
//! [`PlanCache`](audb_engine::PlanCache) keyed on normalized SQL.
//!
//! The zero-dependency discipline of `crates/sql` applies: request
//! parsing ([`http`]), the JSON wire format ([`json`]) and the routing
//! ([`wire`]) are hand-rolled on `std` only — `std::net::TcpListener`,
//! threads and channels.
//!
//! ```no_run
//! use audb_engine::{Engine, SharedCatalog};
//! use audb_server::{serve, ServerConfig, ServerState};
//!
//! let catalog = SharedCatalog::new();
//! let state = ServerState::new(Engine::native(), catalog, 4);
//! let handle = serve(state, ServerConfig::default())?;
//! println!("serving on http://{}", handle.addr());
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! Concurrency model in one paragraph: readers (`/query` et al.) take one
//! `Arc` clone of the catalog snapshot per request and never hold a lock
//! while binding or executing; writers (`/register`) publish a new
//! snapshot copy-on-write. In-flight queries finish on their pinned
//! snapshot. The plan cache keys on `(catalog version, canonical SQL)`,
//! so publication also invalidates every cached plan at once. See
//! DESIGN.md §11 for the full lifecycle.

pub mod http;
pub mod json;
mod server;
mod state;
pub mod wire;

pub use json::{Json, JsonError};
pub use server::{default_threads, serve, ServerConfig, ServerHandle};
pub use state::{ConnState, ServerState};
