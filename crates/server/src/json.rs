//! Dependency-free JSON: the wire format of the service layer.
//!
//! Same zero-dep discipline as `audb-sql`: a small recursive-descent
//! parser and a writer, nothing else. Two properties matter for this
//! codebase and drive the design:
//!
//! * **Objects preserve insertion order** (`Obj` is a `Vec` of pairs, not
//!   a map), so encoded responses and merged bench artifacts are
//!   byte-stable and diffable in golden tests.
//! * **Integers and floats stay distinct** (`Int(i64)` vs `Float(f64)`),
//!   so round-tripping the bench artifact never turns `16000` into
//!   `16000.0`.

use std::fmt;

/// A JSON value. Construct with the variants or [`Json::obj`]; render
/// with `to_string()` (compact) or [`Json::pretty`]; read with
/// [`Json::parse`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs, preserving their order.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member lookup on objects (first match; `None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable member lookup on objects (first match; `None` elsewhere).
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Json> {
        match self {
            Json::Obj(pairs) => pairs.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Integer view (`Int` only — floats are not silently truncated).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view (`Int` or `Float`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Mutable object view (for artifact merging).
    pub fn as_obj_mut(&mut self) -> Option<&mut Vec<(String, Json)>> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Insert-or-replace a member on an object (no-op on other variants).
    pub fn set(&mut self, key: &str, value: Json) {
        if let Json::Obj(pairs) = self {
            match pairs.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value,
                None => pairs.push((key.to_string(), value)),
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Render with two-space indentation (the bench-artifact style).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Containers whose compact form fits within this width render on one
    /// line inside `pretty()` — keeps artifact rows and small arrays as
    /// single-line entries instead of exploding every scalar.
    const INLINE_WIDTH: usize = 240;

    fn write_pretty(&self, out: &mut String, indent: usize) {
        if matches!(self, Json::Arr(_) | Json::Obj(_)) {
            let compact = self.to_string();
            if compact.len() <= Self::INLINE_WIDTH {
                out.push_str(&compact);
                return;
            }
        }
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => {
                let _ = fmt::Write::write_fmt(out, format_args!("{other}"));
            }
        }
    }
}

impl fmt::Display for Json {
    /// Compact encoding (no whitespace).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Float(x) => {
                if x.is_finite() {
                    // Keep a decimal point so the value re-parses as Float.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    // JSON has no NaN/Infinity; null is the least-bad spelling.
                    f.write_str("null")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                write_string(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::with_capacity(k.len() + 2);
                    write_string(&mut buf, k);
                    write!(f, "{buf}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where it went wrong.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            self.expect_byte(b',')?;
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(pairs));
            }
            self.expect_byte(b',')?;
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for this
                            // codebase's artifacts; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // at char boundaries is safe via char_indices logic).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if !self.eat(b'-') {
                let _ = self.eat(b'+');
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("bad number"))
        } else {
            // Integers too large for i64 degrade to Float rather than fail.
            text.parse::<i64>()
                .map(Json::Int)
                .or_else(|_| text.parse::<f64>().map(Json::Float))
                .map_err(|_| self.err("bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values_and_preserves_member_order() {
        let doc = Json::obj([
            ("z", Json::Int(1)),
            (
                "a",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Float(1.5)]),
            ),
            ("s", Json::str("he said \"hi\"\n")),
        ]);
        let text = doc.to_string();
        assert_eq!(
            text,
            r#"{"z":1,"a":[null,true,1.5],"s":"he said \"hi\"\n"}"#
        );
        assert_eq!(Json::parse(&text).unwrap(), doc);
        // Pretty output re-parses to the same document.
        assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn ints_and_floats_stay_distinct() {
        assert_eq!(Json::parse("16000").unwrap(), Json::Int(16000));
        assert_eq!(Json::parse("16000.0").unwrap(), Json::Float(16000.0));
        assert_eq!(Json::Float(3.0).to_string(), "3.0");
        assert_eq!(Json::Int(3).to_string(), "3");
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"open", "{'a':1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn member_access_helpers() {
        let mut doc = Json::parse(r#"{"a": {"b": [1, 2.5, "x"]}, "n": 4}"#).unwrap();
        assert_eq!(doc.get("n").unwrap().as_i64(), Some(4));
        let arr = doc.get("a").unwrap().get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        doc.set("n", Json::Int(9));
        doc.set("new", Json::Bool(false));
        assert_eq!(doc.get("n").unwrap().as_i64(), Some(9));
        assert_eq!(doc.get("new"), Some(&Json::Bool(false)));
    }
}
