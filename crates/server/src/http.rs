//! Hand-rolled HTTP/1.1, just enough for the service layer: parse one
//! request (request line, headers, `Content-Length` body), write one
//! response. No chunked encoding, no TLS, no HTTP/2 — clients are the
//! bundled load generator, tests, and `curl`.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body (a registered CSV); anything larger is
/// rejected before buffering.
const MAX_BODY: usize = 64 << 20;
/// Largest accepted request line / header line.
const MAX_LINE: usize = 64 << 10;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without the query string (`/query`).
    pub path: String,
    /// `key=value` pairs from the query string, in order, percent-decoded.
    pub query: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// First query-string value for `key`.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy — SQL and CSV are expected).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Read one request off the stream. `Ok(None)` means the client closed
/// the connection cleanly before sending another request (the normal end
/// of a keep-alive conversation).
pub fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Request>> {
    let mut line = String::new();
    if read_line(reader, &mut line)? == 0 {
        return Ok(None);
    }
    let (method, target, version) = {
        let mut parts = line.trim_end().splitn(3, ' ');
        (
            parts.next().unwrap_or("").to_ascii_uppercase(),
            parts.next().unwrap_or("").to_string(),
            parts.next().unwrap_or("").to_string(),
        )
    };
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(bad("malformed request line"));
    }
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";

    let mut content_length = 0usize;
    loop {
        line.clear();
        if read_line(reader, &mut line)? == 0 {
            return Err(bad("connection closed mid-headers"));
        }
        let header = line.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(bad("malformed header"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse::<usize>()
                .map_err(|_| bad("bad Content-Length"))?;
            if content_length > MAX_BODY {
                return Err(bad("request body too large"));
            }
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| {
            let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
            (percent_decode(k), percent_decode(v))
        })
        .collect();

    Ok(Some(Request {
        method,
        path: percent_decode(path),
        query,
        body,
        keep_alive,
    }))
}

/// Write one response. `keep_alive` decides the `Connection:` header the
/// server advertises back (the caller then actually closes or not).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        _ => "Unknown",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Bounded line read (rejects absurdly long request/header lines instead
/// of buffering them).
fn read_line(reader: &mut BufReader<TcpStream>, out: &mut String) -> io::Result<usize> {
    let mut buf = Vec::new();
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            break;
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(i) => {
                buf.extend_from_slice(&available[..=i]);
                reader.consume(i + 1);
                break;
            }
            None => {
                buf.extend_from_slice(available);
                let n = available.len();
                reader.consume(n);
            }
        }
        if buf.len() > MAX_LINE {
            return Err(bad("header line too long"));
        }
    }
    out.push_str(&String::from_utf8_lossy(&buf));
    Ok(buf.len())
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok());
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding_handles_escapes_and_plus() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("SELECT%3B"), "SELECT;");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }
}
