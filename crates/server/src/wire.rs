//! Wire encoding and request routing: AU-relations, explain reports and
//! structured errors in and out of [`Json`], plus the endpoint dispatch
//! table. Pure functions of `(state, request)` — no sockets here — so the
//! whole wire surface golden-tests without a server.
//!
//! ## Response shapes (a compatibility surface, golden-tested)
//!
//! Query results: `{"schema": [...], "row_count": N, "rows": [[[lb,sg,ub],
//! ...], ...], "mults": [[lb,sg,ub], ...], "cache": {"hit": bool, "hits":
//! H, "misses": M}, "elapsed_us": T}` — every attribute is always the
//! `[lb, sg, ub]` triple (certain values repeat), rows are normalized, so
//! equal requests encode byte-identically (modulo `elapsed_us`).
//!
//! Errors: `{"error": {"kind": <machine tag>, "message": <human text>}}`
//! plus `"line"`/`"col"` members when the failure has a position in the
//! query text. The `kind` values come from
//! [`SessionError::kind`](audb_engine::SessionError::kind).

use crate::http::Request;
use crate::json::Json;
use crate::state::{ConnState, ServerState};
use audb_core::{AuRelation, Mult3, RangeValue};
use audb_engine::{RunAll, SessionError};
use audb_rel::Value;
use std::time::Instant;

/// An HTTP status plus its JSON body.
pub type Reply = (u16, Json);

/// Route one parsed request. Infallible: every failure becomes a
/// structured error reply.
pub fn handle(state: &ServerState, conn: &mut ConnState, req: &Request) -> Reply {
    let started = Instant::now();
    let reply = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => (200, Json::obj([("ok", Json::Bool(true))])),
        ("GET", "/stats") => (200, stats_body(state)),
        ("POST", "/query") => query(state, req, started),
        ("POST", "/prepare") => prepare(state, conn, req),
        ("POST", "/execute") => execute(state, conn, req, started),
        ("POST", "/explain") => explain(state, req),
        ("POST", "/run_all") => run_all(state, req, started),
        ("POST", "/register") => register(state, req),
        ("POST", "/append") => append(state, req),
        ("GET" | "POST", _) => (
            404,
            error_body(
                "unknown_route",
                &format!("no endpoint {:?}; see /health, /stats, /query, /prepare, /execute, /explain, /run_all, /register, /append", req.path),
                None,
            ),
        ),
        _ => (
            405,
            error_body(
                "method_not_allowed",
                &format!("method {} not allowed", req.method),
                None,
            ),
        ),
    };
    state.record(reply.0);
    reply
}

fn query(state: &ServerState, req: &Request, started: Instant) -> Reply {
    let session = state.session();
    let (prepared, hit) = match session.prepare_cached(&state.plan_cache, &req.body_text()) {
        Ok(p) => p,
        Err(e) => return session_error(&e),
    };
    match session.execute(&prepared) {
        Ok(rel) => {
            let mut body = relation_body(rel);
            body.set("cache", cache_body(state, hit));
            body.set("elapsed_us", Json::Int(elapsed_us(started)));
            (200, body)
        }
        Err(e) => session_error(&e),
    }
}

fn prepare(state: &ServerState, conn: &mut ConnState, req: &Request) -> Reply {
    let session = state.session();
    match session.prepare_cached(&state.plan_cache, &req.body_text()) {
        Ok((prepared, hit)) => {
            let sql = prepared.plan().sql().map(str::to_string);
            let id = conn.store(prepared);
            let mut body = Json::obj([
                ("id", Json::Int(id as i64)),
                ("cache", cache_body(state, hit)),
            ]);
            if let Some(sql) = sql {
                body.set("sql", Json::Str(sql));
            }
            (200, body)
        }
        Err(e) => session_error(&e),
    }
}

fn execute(state: &ServerState, conn: &mut ConnState, req: &Request, started: Instant) -> Reply {
    // The statement id arrives as `?id=N` or a bare/JSON body.
    let id = req
        .query_param("id")
        .map(str::to_string)
        .or_else(|| {
            let text = req.body_text();
            let text = text.trim().to_string();
            Json::parse(&text)
                .ok()
                .and_then(|j| j.get("id").and_then(Json::as_i64).map(|i| i.to_string()))
                .or(Some(text))
        })
        .unwrap_or_default();
    let Ok(id) = id.parse::<u64>() else {
        return (
            400,
            error_body(
                "bad_request",
                "execute needs a statement id (?id=N or {\"id\": N})",
                None,
            ),
        );
    };
    let Some(prepared) = conn.lookup(id) else {
        return (
            404,
            error_body(
                "unknown_statement",
                &format!("no prepared statement {id} on this connection"),
                None,
            ),
        );
    };
    match state.session().execute(&prepared) {
        Ok(rel) => {
            let mut body = relation_body(rel);
            body.set("elapsed_us", Json::Int(elapsed_us(started)));
            (200, body)
        }
        Err(e) => session_error(&e),
    }
}

fn explain(state: &ServerState, req: &Request) -> Reply {
    match state.session().explain_sql(&req.body_text()) {
        Ok(ex) => (
            200,
            Json::obj([
                ("backend", Json::str(ex.backend.to_string())),
                ("explain", Json::str(ex.to_string())),
            ]),
        ),
        Err(e) => session_error(&e),
    }
}

fn run_all(state: &ServerState, req: &Request, started: Instant) -> Reply {
    match state.session().run_all_sql(&req.body_text()) {
        Ok(all) => {
            let mut body = relation_body(all.output.clone());
            body.set("backends", backends_body(&all));
            body.set("elapsed_us", Json::Int(elapsed_us(started)));
            (200, body)
        }
        Err(e) => session_error(&e),
    }
}

fn register(state: &ServerState, req: &Request) -> Reply {
    let Some(name) = req.query_param("name").map(str::to_string) else {
        return (
            400,
            error_body("bad_request", "register needs ?name=<table>", None),
        );
    };
    match audb_workloads::read_au_csv(req.body.as_slice()) {
        Ok(rel) => {
            let rows = rel.rows().len();
            state.catalog.register(&name, rel);
            (
                200,
                Json::obj([
                    ("registered", Json::Str(name)),
                    ("rows", Json::Int(rows as i64)),
                    ("catalog_version", Json::Int(state.catalog.version() as i64)),
                ]),
            )
        }
        Err(e) => (400, error_body("bad_csv", &e.to_string(), None)),
    }
}

fn append(state: &ServerState, req: &Request) -> Reply {
    let Some(name) = req.query_param("name").map(str::to_string) else {
        return (
            400,
            error_body("bad_request", "append needs ?name=<table>", None),
        );
    };
    let batch = match audb_workloads::read_au_csv(req.body.as_slice()) {
        Ok(batch) => batch,
        Err(e) => return (400, error_body("bad_csv", &e.to_string(), None)),
    };
    let appended = batch.rows().len();
    match state.catalog.append(&name, &batch) {
        // The publish bumps the catalog version, which invalidates every
        // cached plan pinned to the pre-append snapshot — the next /query
        // re-binds against the grown table.
        Ok((rows, version)) => (
            200,
            Json::obj([
                ("appended", Json::Int(appended as i64)),
                ("table", Json::Str(name)),
                ("rows", Json::Int(rows as i64)),
                ("catalog_version", Json::Int(version as i64)),
            ]),
        ),
        Err(e) => {
            let status = if e.kind() == "unknown_table" {
                404
            } else {
                400
            };
            (status, error_body(e.kind(), &e.to_string(), None))
        }
    }
}

fn stats_body(state: &ServerState) -> Json {
    let cache = state.plan_cache.stats();
    let snapshot = state.catalog.snapshot();
    Json::obj([
        ("requests", Json::Int(state.requests() as i64)),
        ("errors", Json::Int(state.errors() as i64)),
        ("threads", Json::Int(state.threads as i64)),
        ("catalog_version", Json::Int(state.catalog.version() as i64)),
        (
            "tables",
            Json::Arr(
                snapshot
                    .iter()
                    .map(|(name, rel)| {
                        // Stats are recomputed on every publication, so
                        // staleness here would mean a snapshot invariant
                        // broke — surfaced rather than assumed.
                        let stats = snapshot.stats(name);
                        let fresh = stats.is_some_and(|s| s.rows == rel.rows().len());
                        Json::obj([
                            ("name", Json::str(name)),
                            ("rows", Json::Int(rel.rows().len() as i64)),
                            ("cols", Json::Int(rel.schema.arity() as i64)),
                            (
                                "zones",
                                Json::Int(stats.map_or(0, |s| s.zone_count()) as i64),
                            ),
                            ("stats_fresh", Json::Bool(fresh)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "plan_cache",
            Json::obj([
                ("hits", Json::Int(cache.hits as i64)),
                ("misses", Json::Int(cache.misses as i64)),
                ("len", Json::Int(cache.len as i64)),
                ("capacity", Json::Int(cache.capacity as i64)),
            ]),
        ),
    ])
}

fn cache_body(state: &ServerState, hit: bool) -> Json {
    let stats = state.plan_cache.stats();
    Json::obj([
        ("hit", Json::Bool(hit)),
        ("hits", Json::Int(stats.hits as i64)),
        ("misses", Json::Int(stats.misses as i64)),
    ])
}

fn backends_body(all: &RunAll) -> Json {
    Json::Arr(
        all.runs
            .iter()
            .map(|run| {
                Json::obj([
                    ("backend", Json::str(run.backend.to_string())),
                    ("mode", Json::str(run.mode.to_string())),
                    ("elapsed_us", Json::Int(run.elapsed.as_micros() as i64)),
                    ("rows", Json::Int(run.rows as i64)),
                ])
            })
            .collect(),
    )
}

/// Encode a result relation. Rows are normalized first, so two bag-equal
/// results encode identically — the property the golden tests and the
/// concurrency stress test lean on.
pub fn relation_body(rel: AuRelation) -> Json {
    let rel = rel.normalize();
    let schema = Json::Arr(rel.schema.cols().iter().map(Json::str).collect());
    let mut rows = Vec::with_capacity(rel.rows().len());
    let mut mults = Vec::with_capacity(rel.rows().len());
    for row in rel.rows() {
        rows.push(Json::Arr(
            (0..row.tuple.arity())
                .map(|i| range_value_json(row.tuple.get(i)))
                .collect(),
        ));
        mults.push(mult_json(row.mult));
    }
    Json::obj([
        ("schema", schema),
        ("row_count", Json::Int(rows.len() as i64)),
        ("rows", Json::Arr(rows)),
        ("mults", Json::Arr(mults)),
    ])
}

fn range_value_json(v: &RangeValue) -> Json {
    Json::Arr(vec![
        value_json(&v.lb),
        value_json(&v.sg),
        value_json(&v.ub),
    ])
}

fn mult_json(m: Mult3) -> Json {
    Json::Arr(vec![
        Json::Int(m.lb as i64),
        Json::Int(m.sg as i64),
        Json::Int(m.ub as i64),
    ])
}

fn value_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Int(*i),
        Value::Float(f) => Json::Float(*f),
        Value::Str(s) => Json::str(s.as_ref()),
    }
}

/// Map a [`SessionError`] onto `(status, body)`: text/plan/semantic
/// errors are the client's fault (400), a missing table is 404 (the
/// resource does not exist), and a backend disagreement — an engine
/// invariant violation — is the server's fault (500).
pub fn session_error(e: &SessionError) -> Reply {
    let status = match e.kind() {
        "unknown_table" => 404,
        "backend_disagreement" => 500,
        _ => 400,
    };
    let span = e.span().map(|s| (s.line as i64, s.col as i64));
    (status, error_body(e.kind(), &e.to_string(), span))
}

fn error_body(kind: &str, message: &str, span: Option<(i64, i64)>) -> Json {
    let mut inner = Json::obj([("kind", Json::str(kind)), ("message", Json::str(message))]);
    if let Some((line, col)) = span {
        inner.set("line", Json::Int(line));
        inner.set("col", Json::Int(col));
    }
    Json::obj([("error", inner)])
}

fn elapsed_us(started: Instant) -> i64 {
    started.elapsed().as_micros() as i64
}
