//! Shared and per-connection server state.
//!
//! One [`ServerState`] is shared (behind an `Arc`) by every worker: the
//! engine configuration, the [`SharedCatalog`] all sessions read through,
//! the global [`PlanCache`], and request counters. One [`ConnState`] lives
//! with each client connection and holds its prepared-statement table —
//! statement ids are meaningful only on the connection that prepared them,
//! exactly like database cursors.

use audb_engine::{Engine, PlanCache, Prepared, Session, SharedCatalog};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// State shared by all workers.
#[derive(Debug)]
pub struct ServerState {
    /// Engine configuration each per-request session runs on (`Engine` is
    /// `Copy`: cloning a session is free).
    pub engine: Engine,
    /// The one catalog every session reads through.
    pub catalog: SharedCatalog,
    /// Plans cached across all connections, keyed on normalized SQL.
    pub plan_cache: PlanCache,
    /// Worker-pool size (surfaced in `/stats`).
    pub threads: usize,
    requests: AtomicU64,
    errors: AtomicU64,
}

impl ServerState {
    /// State over an engine and an existing shared catalog.
    pub fn new(engine: Engine, catalog: SharedCatalog, threads: usize) -> Self {
        ServerState {
            engine,
            catalog,
            plan_cache: PlanCache::default(),
            threads,
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    /// A session over the shared catalog (cheap: an `Engine` copy plus a
    /// catalog handle clone).
    pub fn session(&self) -> Session {
        Session::with_catalog(self.engine, self.catalog.clone())
    }

    /// Count one handled request (and one error for non-2xx statuses).
    pub fn record(&self, status: u16) {
        // Relaxed ordering: monotonic statistics counters that publish no
        // other data — readers need totals, not happens-before edges.
        self.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            // Relaxed ordering: same statistics-only argument as above.
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Requests handled so far.
    pub fn requests(&self) -> u64 {
        // Relaxed ordering: see record() — a point-in-time statistic.
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests answered with an error status so far.
    pub fn errors(&self) -> u64 {
        // Relaxed ordering: see record() — a point-in-time statistic.
        self.errors.load(Ordering::Relaxed)
    }
}

/// Per-connection state: the prepared-statement table.
#[derive(Debug, Default)]
pub struct ConnState {
    next_id: u64,
    statements: HashMap<u64, Prepared>,
}

impl ConnState {
    /// Store a prepared statement, returning its connection-local id.
    pub fn store(&mut self, prepared: Prepared) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.statements.insert(id, prepared);
        id
    }

    /// Look up a statement by id (cloning is cheap: plans share their
    /// scanned relation behind an `Arc`).
    pub fn lookup(&self, id: u64) -> Option<Prepared> {
        self.statements.get(&id).cloned()
    }
}
