//! Wire-layer golden tests: the JSON response shapes are a compatibility
//! surface, pinned here byte-for-byte. `wire::handle` is a pure function
//! of `(state, request)`, so the whole surface tests without sockets;
//! only `elapsed_us` is nondeterministic and gets zeroed before the diff.

use audb_engine::{Engine, SharedCatalog};
use audb_server::http::Request;
use audb_server::wire;
use audb_server::{ConnState, Json, ServerState};
use audb_workloads::csvload;

fn state() -> ServerState {
    let catalog = SharedCatalog::new();
    catalog.register(
        "products",
        csvload::load_au_csv("../../workloads/products.csv").unwrap(),
    );
    catalog.register(
        "readings",
        csvload::load_au_csv("../../workloads/readings.csv").unwrap(),
    );
    ServerState::new(Engine::native(), catalog, 1)
}

fn post(path: &str, body: &str) -> Request {
    request("POST", path, body)
}

fn request(method: &str, path: &str, body: &str) -> Request {
    let (path, query_str) = path.split_once('?').unwrap_or((path, ""));
    Request {
        method: method.to_string(),
        path: path.to_string(),
        query: query_str
            .split('&')
            .filter(|kv| !kv.is_empty())
            .map(|kv| {
                let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
                (k.to_string(), v.to_string())
            })
            .collect(),
        body: body.as_bytes().to_vec(),
        keep_alive: true,
    }
}

/// Route a request and return `(status, body)` with volatile members
/// (elapsed timings) zeroed so the encoding is deterministic.
fn roundtrip(state: &ServerState, conn: &mut ConnState, req: &Request) -> (u16, String) {
    let (status, mut body) = wire::handle(state, conn, req);
    scrub(&mut body);
    (status, body.to_string())
}

fn scrub(json: &mut Json) {
    if json.get("elapsed_us").is_some() {
        json.set("elapsed_us", Json::Int(0));
    }
    if let Some(Json::Arr(backends)) = json.get_mut("backends") {
        for backend in backends {
            backend.set("elapsed_us", Json::Int(0));
        }
    }
}

#[test]
fn query_result_shape_is_stable() {
    let state = state();
    let mut conn = ConnState::default();
    let (status, body) = roundtrip(
        &state,
        &mut conn,
        &post(
            "/query",
            "SELECT * FROM products ORDER BY price AS rank LIMIT 2",
        ),
    );
    assert_eq!(status, 200);
    assert_eq!(body, "{\"schema\":[\"sku\",\"price\",\"rank\"],\"row_count\":4,\"rows\":[[[1,1,1],[9,10,12],[1,1,2]],[[2,2,2],[8,11,11],[1,2,2]],[[4,4,4],[7,7,7],[0,0,0]],[[5,5,5],[10,13,14],[1,2,2]]],\"mults\":[[0,1,1],[0,0,1],[1,1,1],[0,0,1]],\"cache\":{\"hit\":false,\"hits\":0,\"misses\":1},\"elapsed_us\":0}");
}

#[test]
fn repeated_query_reports_a_cache_hit() {
    let state = state();
    let mut conn = ConnState::default();
    let sql = "SELECT sku FROM products ORDER BY sku";
    let (_, first) = roundtrip(&state, &mut conn, &post("/query", sql));
    // Same statement, different whitespace: still the same cached plan.
    let (_, second) = roundtrip(
        &state,
        &mut conn,
        &post("/query", "SELECT  sku\nFROM products ORDER BY sku;"),
    );
    let first = Json::parse(&first).unwrap();
    let second = Json::parse(&second).unwrap();
    assert_eq!(
        first.get("cache").and_then(|c| c.get("hit")),
        Some(&Json::Bool(false))
    );
    assert_eq!(
        second.get("cache").and_then(|c| c.get("hit")),
        Some(&Json::Bool(true))
    );
    assert_eq!(first.get("rows"), second.get("rows"));
}

#[test]
fn parse_error_shape_carries_position() {
    let state = state();
    let mut conn = ConnState::default();
    let (status, body) = roundtrip(&state, &mut conn, &post("/query", "SELECT * FORM products"));
    assert_eq!(status, 400);
    assert_eq!(body, "{\"error\":{\"kind\":\"sql\",\"message\":\"SQL error at line 1, column 10: expected FROM, found identifier \\\"FORM\\\"\",\"line\":1,\"col\":10}}");
}

#[test]
fn unknown_table_is_404() {
    let state = state();
    let mut conn = ConnState::default();
    let (status, body) = roundtrip(&state, &mut conn, &post("/query", "SELECT * FROM missing"));
    assert_eq!(status, 404);
    assert_eq!(body, "{\"error\":{\"kind\":\"unknown_table\",\"message\":\"unknown table \\\"missing\\\"; registered: products, readings\"}}");
}

#[test]
fn unknown_column_is_400_with_kind() {
    let state = state();
    let mut conn = ConnState::default();
    let (status, body) = roundtrip(
        &state,
        &mut conn,
        &post("/query", "SELECT nope FROM products"),
    );
    assert_eq!(status, 400);
    assert_eq!(body, "{\"error\":{\"kind\":\"unknown_column\",\"message\":\"invalid plan: unknown column \\\"nope\\\" in schema (sku, price)\"}}");
}

#[test]
fn prepare_then_execute_roundtrips() {
    let state = state();
    let mut conn = ConnState::default();
    let (status, body) = roundtrip(
        &state,
        &mut conn,
        &post(
            "/prepare",
            "SELECT sku, price FROM products WHERE price < RANGE(9, 9, 16) ORDER BY price",
        ),
    );
    assert_eq!(status, 200);
    assert_eq!(body, "{\"id\":0,\"cache\":{\"hit\":false,\"hits\":0,\"misses\":1},\"sql\":\"SELECT sku, price FROM products WHERE price < RANGE(9, 9, 16) ORDER BY price\"}");

    let (status, body) = roundtrip(&state, &mut conn, &post("/execute?id=0", ""));
    assert_eq!(status, 200);
    assert_eq!(body, "{\"schema\":[\"sku\",\"price\",\"pos\"],\"row_count\":5,\"rows\":[[[1,1,1],[9,10,12],[1,1,3]],[[2,2,2],[8,11,11],[1,1,3]],[[3,3,3],[15,15,15],[1,1,4]],[[4,4,4],[7,7,7],[0,0,0]],[[5,5,5],[10,13,14],[1,1,3]]],\"mults\":[[0,0,1],[0,0,1],[0,0,1],[1,1,1],[0,0,1]],\"elapsed_us\":0}");

    // Statement ids are per-connection: a fresh connection sees nothing.
    let mut other = ConnState::default();
    let (status, body) = roundtrip(&state, &mut other, &post("/execute?id=0", ""));
    assert_eq!(status, 404);
    assert_eq!(body, "{\"error\":{\"kind\":\"unknown_statement\",\"message\":\"no prepared statement 0 on this connection\"}}");
}

#[test]
fn run_all_reports_every_backend() {
    let state = state();
    let mut conn = ConnState::default();
    let (status, body) = roundtrip(
        &state,
        &mut conn,
        &post("/run_all", "SELECT sku FROM products ORDER BY sku LIMIT 2"),
    );
    assert_eq!(status, 200);
    // The 5-row fixture sits below the cost model's pipelining
    // threshold, so every backend reports materialized execution.
    assert_eq!(body, "{\"schema\":[\"sku\",\"pos\"],\"row_count\":2,\"rows\":[[[1,1,1],[0,0,0]],[[2,2,2],[1,1,1]]],\"mults\":[[1,1,1],[1,1,1]],\"backends\":[{\"backend\":\"reference\",\"mode\":\"materialized\",\"elapsed_us\":0,\"rows\":2},{\"backend\":\"native\",\"mode\":\"materialized\",\"elapsed_us\":0,\"rows\":2},{\"backend\":\"rewrite\",\"mode\":\"materialized\",\"elapsed_us\":0,\"rows\":2}],\"elapsed_us\":0}");
}

#[test]
fn append_response_shape_is_stable() {
    let state = state();
    let mut conn = ConnState::default();
    // Same AU-CSV wire format as /register; the appended rows land after
    // the existing five, and the copy-on-write publish bumps the version.
    let batch = "sku,price_lb,price,price_ub,mult_lb,mult_sg,mult_ub\n\
                 6,20,21,22,1,1,1\n\
                 7,18,19,25,0,1,1\n";
    let (status, body) = roundtrip(&state, &mut conn, &post("/append?name=products", batch));
    assert_eq!(status, 200);
    assert_eq!(
        body,
        "{\"appended\":2,\"table\":\"products\",\"rows\":7,\"catalog_version\":3}"
    );

    // Queries prepared after the publish see the grown table.
    let (status, body) = roundtrip(
        &state,
        &mut conn,
        &post(
            "/query",
            "SELECT sku FROM products WHERE sku > 5 ORDER BY sku",
        ),
    );
    assert_eq!(status, 200);
    let parsed = Json::parse(&body).unwrap();
    assert_eq!(parsed.get("row_count"), Some(&Json::Int(2)));
}

#[test]
fn append_errors_are_structured() {
    let state = state();
    let mut conn = ConnState::default();

    // Rows whose schema does not match the table: 400, nothing published.
    let bad = "sku,price_lb,price,price_ub,color,mult_lb,mult_sg,mult_ub\n\
               6,20,21,22,9,1,1,1\n";
    let (status, body) = roundtrip(&state, &mut conn, &post("/append?name=products", bad));
    assert_eq!(status, 400);
    assert_eq!(body, "{\"error\":{\"kind\":\"schema_mismatch\",\"message\":\"appended rows have schema (sku, price, color), but table \\\"products\\\" has schema (sku, price)\"}}");

    // Unknown table: 404, same kind as the query path.
    let ok = "sku,price_lb,price,price_ub,mult_lb,mult_sg,mult_ub\n6,20,21,22,1,1,1\n";
    let (status, body) = roundtrip(&state, &mut conn, &post("/append?name=missing", ok));
    assert_eq!(status, 404);
    assert_eq!(body, "{\"error\":{\"kind\":\"unknown_table\",\"message\":\"unknown table \\\"missing\\\"; registered: products, readings\"}}");

    // Missing ?name and an unparsable body are both client errors.
    let (status, _) = roundtrip(&state, &mut conn, &post("/append", ok));
    assert_eq!(status, 400);
    let (status, body) = roundtrip(
        &state,
        &mut conn,
        &post("/append?name=products", "not,a\nvalid"),
    );
    assert_eq!(status, 400);
    assert!(body.contains("\"kind\":\"bad_csv\""), "{body}");

    // None of the failures bumped the catalog version (still 2 registers).
    let (_, stats) = roundtrip(&state, &mut conn, &request("GET", "/stats", ""));
    let parsed = Json::parse(&stats).unwrap();
    assert_eq!(parsed.get("catalog_version"), Some(&Json::Int(2)));
}

#[test]
fn unknown_route_and_bad_method_are_structured() {
    let state = state();
    let mut conn = ConnState::default();
    let (status, body) = roundtrip(&state, &mut conn, &post("/nope", ""));
    assert_eq!(status, 404);
    assert_eq!(body, "{\"error\":{\"kind\":\"unknown_route\",\"message\":\"no endpoint \\\"/nope\\\"; see /health, /stats, /query, /prepare, /execute, /explain, /run_all, /register, /append\"}}");

    let (status, body) = roundtrip(&state, &mut conn, &request("DELETE", "/query", ""));
    assert_eq!(status, 405);
    assert_eq!(
        body,
        "{\"error\":{\"kind\":\"method_not_allowed\",\"message\":\"method DELETE not allowed\"}}"
    );
}

#[test]
fn health_and_stats_shapes() {
    let state = state();
    let mut conn = ConnState::default();
    let (status, body) = roundtrip(&state, &mut conn, &request("GET", "/health", ""));
    assert_eq!(status, 200);
    assert_eq!(body, "{\"ok\":true}");

    // Each table reports its row/column counts, stats zone count, and
    // whether the catalog stats describe the published relation.
    let (_, body) = roundtrip(&state, &mut conn, &request("GET", "/stats", ""));
    assert_eq!(body, "{\"requests\":1,\"errors\":0,\"threads\":1,\"catalog_version\":2,\"tables\":[{\"name\":\"products\",\"rows\":5,\"cols\":2,\"zones\":1,\"stats_fresh\":true},{\"name\":\"readings\",\"rows\":8,\"cols\":3,\"zones\":1,\"stats_fresh\":true}],\"plan_cache\":{\"hits\":0,\"misses\":0,\"len\":0,\"capacity\":256}}");
}
