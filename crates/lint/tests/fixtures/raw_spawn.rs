//@path: crates/engine/src/exec/pipeline.rs
pub fn go() {
    std::thread::spawn(|| {});
}
pub fn go_builder() {
    let _ = std::thread::Builder::new().spawn(|| {});
}
