//@path: crates/core/src/columns.rs
pub fn read(p: *const u8) -> u8 {
    unsafe { *p }
}
pub fn read_justified(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid for reads.
    unsafe { *p }
}
