//@path: crates/core/src/physical.rs
pub fn decode(v: Option<u32>) -> u32 {
    // lint: allow(no-panic-hot-path) -- fixture proving a well-formed allow suppresses the diagnostic
    v.unwrap()
}
pub fn decode_trailing(v: Option<u32>) -> u32 {
    v.unwrap() // lint: allow(no-panic-hot-path) -- trailing form covers its own line
}
