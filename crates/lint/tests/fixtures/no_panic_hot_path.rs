//@path: crates/core/src/physical.rs
pub fn decode(v: Option<u32>) -> u32 {
    v.unwrap()
}
pub fn decode2(v: Option<u32>) -> u32 {
    v.expect("present")
}
pub fn boom() {
    panic!("bad state");
}
pub fn later() -> u32 {
    todo!()
}
pub fn dead_arm(x: bool) -> u32 {
    // `unreachable!` is deliberately legal: it marks proven-dead arms.
    match x {
        true => 1,
        false => unreachable!(),
    }
}
