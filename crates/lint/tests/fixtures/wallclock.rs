//@path: crates/core/src/sortkey.rs
pub fn stamp() -> u128 {
    let s = std::time::Instant::now();
    s.elapsed().as_nanos()
}
pub fn epoch() -> bool {
    std::time::SystemTime::now() == std::time::SystemTime::UNIX_EPOCH
}
