//@path: crates/engine/src/catalog.rs
use std::sync::atomic::{AtomicU64, Ordering};
pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}
pub fn bump_justified(c: &AtomicU64) {
    // Relaxed ordering: pure statistic, publishes nothing.
    c.fetch_add(1, Ordering::Relaxed);
}
