//@path: crates/server/src/fault.rs
use std::fmt;
#[derive(Debug)]
pub enum FaultError {
    Broken,
}
impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "broken")
    }
}
