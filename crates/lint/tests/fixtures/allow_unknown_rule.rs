//@path: crates/core/src/physical.rs
pub fn fine() -> u32 {
    // lint: allow(no-such-rule) -- rule id does not exist
    7
}
