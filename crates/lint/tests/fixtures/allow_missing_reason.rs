//@path: crates/core/src/physical.rs
pub fn decode(v: Option<u32>) -> u32 {
    // lint: allow(no-panic-hot-path)
    v.unwrap()
}
