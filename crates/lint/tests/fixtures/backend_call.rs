//@path: crates/workloads/src/probe.rs
use audb_native::sort_native;
pub fn run() {
    let a = sort_native();
    let b = rewr_sort();
    (a, b)
}
