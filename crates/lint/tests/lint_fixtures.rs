//! Golden tests: every rule fires on its deliberately-violating fixture
//! with the expected span, and the workspace itself comes back clean.
//!
//! Each fixture under `tests/fixtures/` opens with a `//@path:` (or
//! `#@path:` for manifests) line naming the workspace-relative path the
//! snippet pretends to live at — rule scoping is path-driven, so the
//! same code is a violation at `crates/core/src/physical.rs` and legal
//! at `crates/bench/src/figures.rs`. Expected output lives next to the
//! fixture in `<name>.golden`; regenerate with
//! `UPDATE_LINT_GOLDENS=1 cargo test -p audb-lint --test lint_fixtures`
//! and review the diff like any other code change.

use audb_lint::rules::check_workspace;
use audb_lint::scan::{Manifest, SourceFile, Workspace};
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Build a one-file workspace from a fixture, honoring its `@path:` header.
fn fixture_workspace(file_name: &str) -> Workspace {
    let full = fixtures_dir().join(file_name);
    let source = std::fs::read_to_string(&full)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", full.display()));
    let first = source.lines().next().unwrap_or_default();
    let rel_path = first
        .trim_start_matches("//")
        .trim_start_matches('#')
        .trim()
        .strip_prefix("@path:")
        .unwrap_or_else(|| panic!("fixture {file_name} must start with an @path: header"))
        .trim()
        .to_string();
    if file_name.ends_with(".toml") {
        Workspace {
            files: Vec::new(),
            manifests: vec![Manifest { rel_path, source }],
        }
    } else {
        Workspace {
            files: vec![SourceFile::parse(&rel_path, &source)],
            manifests: Vec::new(),
        }
    }
}

/// Render the fixture's diagnostics and compare against its golden file.
fn check_golden(file_name: &str) {
    let ws = fixture_workspace(file_name);
    let diags = check_workspace(&ws);
    let mut got = diags
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n");
    if !got.is_empty() {
        got.push('\n');
    }
    let stem = file_name.rsplit_once('.').map_or(file_name, |(s, _)| s);
    let golden_path = fixtures_dir().join(format!("{stem}.golden"));
    if std::env::var_os("UPDATE_LINT_GOLDENS").is_some() {
        std::fs::write(&golden_path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("read golden {}: {e}", golden_path.display()));
    assert_eq!(
        got, want,
        "fixture {file_name} diagnostics diverged from {stem}.golden \
         (regenerate with UPDATE_LINT_GOLDENS=1 and review)"
    );
}

#[test]
fn fires_no_panic_hot_path() {
    check_golden("no_panic_hot_path.rs");
}

#[test]
fn fires_atomic_ordering_justified() {
    check_golden("atomic_ordering.rs");
}

#[test]
fn fires_unsafe_safety_comment() {
    check_golden("unsafe_safety.rs");
}

#[test]
fn fires_no_raw_spawn() {
    check_golden("raw_spawn.rs");
}

#[test]
fn fires_no_direct_backend_call() {
    check_golden("backend_call.rs");
}

#[test]
fn fires_no_wallclock_in_kernels() {
    check_golden("wallclock.rs");
}

#[test]
fn fires_error_impls_std_error() {
    check_golden("error_impl.rs");
}

#[test]
fn fires_zero_dep_crates() {
    check_golden("zero_dep.toml");
}

#[test]
fn allow_with_reason_suppresses() {
    check_golden("allow_ok.rs");
}

#[test]
fn allow_without_reason_is_reported() {
    check_golden("allow_missing_reason.rs");
}

#[test]
fn allow_of_unknown_rule_is_reported() {
    check_golden("allow_unknown_rule.rs");
}

/// The real workspace must be lint-clean. Running under `cargo test`
/// puts the linter in the tier-1 gate without any CI-side wiring.
#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let ws = Workspace::collect(&root).expect("collect workspace");
    assert!(
        ws.files.len() > 50,
        "workspace scan looks truncated: only {} files",
        ws.files.len()
    );
    let diags = check_workspace(&ws);
    assert!(
        diags.is_empty(),
        "workspace has {} lint diagnostic(s); run `repro lint`:\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
