//! Workspace scanning: which files the linter reads, how `#[cfg(test)]`
//! code is masked out, and how `// lint: allow(rule) -- reason` escape
//! hatches are parsed.
//!
//! ## Scope
//!
//! The linter checks *shipped* code: `src/` trees of every workspace
//! crate (plus the umbrella crate's `src/`) and each crate's
//! `Cargo.toml`. Integration tests, benches, examples and the vendored
//! dependency shims are deliberately out of scope — tests exercise
//! panics and raw threads on purpose, and `vendor/` is frozen upstream
//! code. `#[cfg(test)]` items inside scanned files are skipped for the
//! same reason.
//!
//! ## The escape hatch
//!
//! `// lint: allow(rule-id) -- reason` suppresses diagnostics of
//! `rule-id` on the comment's own line(s) and the line immediately
//! after it (so it works both as a trailing comment and on its own
//! line). The reason is mandatory: an allow without ` -- reason`, or
//! naming an unknown rule, is itself a diagnostic (`allow-malformed`).

use crate::lexer::{tokenize, Tok};
use crate::rules;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// One parsed `// lint: allow(...)` comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule being suppressed.
    pub rule: String,
    /// First line the allow covers (the comment's first line).
    pub line: u32,
    /// Last line the allow covers (the line after the comment).
    pub end_line: u32,
    /// The mandatory justification after ` -- `.
    pub reason: String,
}

/// A scanned source file, pre-digested for the rules.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Code tokens (comments stripped, `#[cfg(test)]`/`#[test]` items
    /// masked out), in source order.
    pub code: Vec<Tok>,
    /// Every comment token in the file, in source order.
    pub comments: Vec<Tok>,
    /// Lines (1-based) that contain at least one code token.
    pub code_lines: BTreeSet<u32>,
    /// Well-formed allows, ready for suppression matching.
    pub allows: Vec<Allow>,
    /// Malformed allow diagnostics produced during parsing:
    /// `(line, col, message)`.
    pub bad_allows: Vec<(u32, u32, String)>,
}

impl SourceFile {
    /// Lex and digest one file.
    pub fn parse(rel_path: &str, source: &str) -> SourceFile {
        let toks = tokenize(source);
        let comments: Vec<Tok> = toks.iter().filter(|t| t.is_comment()).cloned().collect();
        let code = mask_test_items(toks.iter().filter(|t| !t.is_comment()).cloned().collect());
        let code_lines = code.iter().map(|t| t.line).collect();
        let (allows, bad_allows) = parse_allows(&comments);
        SourceFile {
            rel_path: rel_path.to_string(),
            code,
            comments,
            code_lines,
            allows,
            bad_allows,
        }
    }

    /// Whether a diagnostic of `rule` at `line` is suppressed by an allow.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && a.line <= line && line <= a.end_line)
    }

    /// Whether any comment near `line` (same line or up to `lookback`
    /// lines above) satisfies `pred` on its text.
    pub fn comment_near(&self, line: u32, lookback: u32, pred: impl Fn(&str) -> bool) -> bool {
        let lo = line.saturating_sub(lookback);
        self.comments
            .iter()
            .any(|c| c.end_line >= lo && c.line <= line && pred(c.comment_text()))
    }

    /// Whether the contiguous run of comment-only lines directly above
    /// `line` (or a comment trailing on `line` itself) contains a comment
    /// line satisfying `pred`. Used for `// SAFETY:` adjacency: the
    /// comment must touch the construct it justifies, with no code in
    /// between.
    pub fn adjacent_comment(&self, line: u32, pred: impl Fn(&str) -> bool) -> bool {
        // Trailing comment on the same line.
        if self
            .comments
            .iter()
            .any(|c| c.line == line && pred(c.comment_text()))
        {
            return true;
        }
        // Walk upward over comment-only lines.
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            if self.code_lines.contains(&l) {
                return false;
            }
            let Some(c) = self
                .comments
                .iter()
                .find(|c| c.line <= l && c.end_line >= l)
            else {
                return false; // blank line breaks adjacency
            };
            if pred(c.comment_text()) {
                return true;
            }
            l = c.line.saturating_sub(1);
            if l == 0 {
                return false;
            }
        }
        false
    }
}

/// Remove tokens belonging to `#[cfg(test)]` / `#[test]` items: the
/// attribute itself, any further attributes, and the item through its
/// closing `}` (or `;`).
fn mask_test_items(toks: Vec<Tok>) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("[") {
            let (attr, after) = attribute_tokens(&toks, i);
            if attr == ["cfg", "(", "test", ")"] || attr == ["test"] {
                i = skip_attributed_item(&toks, after);
                continue;
            }
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// Starting at `#`, return the attribute's inner token texts and the
/// index just past the closing `]`.
fn attribute_tokens(toks: &[Tok], at: usize) -> (Vec<String>, usize) {
    let mut inner = Vec::new();
    let mut depth = 0usize;
    let mut i = at + 1; // at `[`
    while i < toks.len() {
        match toks[i].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (inner, i + 1);
                }
            }
            t => inner.push(t.to_string()),
        }
        i += 1;
    }
    (inner, toks.len())
}

/// From the token after a test attribute, skip any further attributes and
/// then the item itself (balanced `{...}` body, or through a `;`).
fn skip_attributed_item(toks: &[Tok], mut i: usize) -> usize {
    while i < toks.len()
        && toks[i].text == "#"
        && toks.get(i + 1).map(|t| t.text.as_str()) == Some("[")
    {
        let (_, after) = attribute_tokens(toks, i);
        i = after;
    }
    while i < toks.len() {
        match toks[i].text.as_str() {
            ";" => return i + 1,
            "{" => {
                let mut depth = 0usize;
                while i < toks.len() {
                    match toks[i].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                return i + 1;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return i;
            }
            _ => i += 1,
        }
    }
    i
}

/// Extract `lint: allow(rule) -- reason` directives from comments.
/// Returns well-formed allows and `(line, col, message)` for malformed
/// ones.
#[allow(clippy::type_complexity)]
fn parse_allows(comments: &[Tok]) -> (Vec<Allow>, Vec<(u32, u32, String)>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        // A directive is a comment that *starts* with `lint:` — prose
        // that merely mentions the syntax (docs, this comment) is not one.
        let text = c.comment_text();
        let Some(rest) = text.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            bad.push((
                c.line,
                c.col,
                "malformed lint directive: expected `lint: allow(rule-id) -- reason`".to_string(),
            ));
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad.push((
                c.line,
                c.col,
                "malformed lint directive: unclosed `allow(`".to_string(),
            ));
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !rules::is_known_rule(&rule) {
            bad.push((
                c.line,
                c.col,
                format!("allow names unknown rule `{rule}` (see `repro lint --list`)"),
            ));
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix("--").map(str::trim).unwrap_or("");
        if reason.is_empty() {
            bad.push((
                c.line,
                c.col,
                format!("allow({rule}) is missing its reason: write `lint: allow({rule}) -- why this is sound`"),
            ));
            continue;
        }
        allows.push(Allow {
            rule,
            line: c.line,
            end_line: c.end_line + 1,
            reason: reason.to_string(),
        });
    }
    (allows, bad)
}

/// A crate manifest to check against the dependency allowlist.
pub struct Manifest {
    /// Path relative to the workspace root.
    pub rel_path: String,
    /// Raw contents.
    pub source: String,
}

/// Everything one lint run looks at.
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub manifests: Vec<Manifest>,
}

impl Workspace {
    /// Collect the scanned file set under `root` (a workspace checkout).
    pub fn collect(root: &Path) -> std::io::Result<Workspace> {
        let mut files = Vec::new();
        let mut manifests = Vec::new();

        let mut rs_roots: Vec<PathBuf> = vec![root.join("src")];
        let mut manifest_paths: Vec<PathBuf> = vec![root.join("Cargo.toml")];
        let crates = root.join("crates");
        if crates.is_dir() {
            let mut dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            dirs.sort();
            for dir in dirs {
                rs_roots.push(dir.join("src"));
                manifest_paths.push(dir.join("Cargo.toml"));
            }
        }

        for src_root in rs_roots {
            let mut rs_files = Vec::new();
            walk_rs(&src_root, &mut rs_files)?;
            rs_files.sort();
            for path in rs_files {
                let source = std::fs::read_to_string(&path)?;
                files.push(SourceFile::parse(&rel(root, &path), &source));
            }
        }
        for path in manifest_paths {
            if path.is_file() {
                let source = std::fs::read_to_string(&path)?;
                manifests.push(Manifest {
                    rel_path: rel(root, &path),
                    source,
                });
            }
        }
        Ok(Workspace { files, manifests })
    }
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().map(|e| e == "rs") == Some(true) {
            out.push(path);
        }
    }
    Ok(())
}

/// Find the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::TokKind;

    #[test]
    fn cfg_test_modules_are_masked() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\n\
                   fn also_live() {}";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let idents: Vec<&str> = f
            .code
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(idents.contains(&"live"));
        assert!(idents.contains(&"also_live"));
        assert_eq!(idents.iter().filter(|t| **t == "unwrap").count(), 1);
    }

    #[test]
    fn test_attr_with_following_attrs_is_masked() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn gone() { a.unwrap() }\nfn kept() {}";
        let f = SourceFile::parse("x.rs", src);
        let idents: Vec<&str> = f.code.iter().map(|t| t.text.as_str()).collect();
        assert!(!idents.contains(&"gone"));
        assert!(idents.contains(&"kept"));
    }

    #[test]
    fn other_attributes_survive() {
        let src = "#[derive(Debug)]\nstruct S;\n#[cfg(feature = \"x\")]\nfn f() {}";
        let f = SourceFile::parse("x.rs", src);
        let idents: Vec<&str> = f.code.iter().map(|t| t.text.as_str()).collect();
        assert!(idents.contains(&"S"));
        assert!(idents.contains(&"f"));
    }

    #[test]
    fn allow_parsing_happy_and_sad_paths() {
        let src = "\
// lint: allow(no-raw-spawn) -- loadgen needs raw client threads\n\
// lint: allow(no-raw-spawn)\n\
// lint: allow(not-a-rule) -- whatever\n\
// lint: deny(x)\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].rule, "no-raw-spawn");
        assert_eq!(f.allows[0].line, 1);
        assert_eq!(f.allows[0].end_line, 2);
        assert_eq!(f.bad_allows.len(), 3);
        assert!(f.bad_allows[0].2.contains("missing its reason"));
        assert!(f.bad_allows[1].2.contains("unknown rule"));
        assert!(f.bad_allows[2].2.contains("malformed"));
    }

    #[test]
    fn allowed_covers_own_and_next_line() {
        let src = "// lint: allow(no-raw-spawn) -- reason here\nstd::thread::spawn(f);\n\nstd::thread::spawn(g);";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.allowed("no-raw-spawn", 1));
        assert!(f.allowed("no-raw-spawn", 2));
        assert!(!f.allowed("no-raw-spawn", 4));
        assert!(!f.allowed("unsafe-safety-comment", 2));
    }

    #[test]
    fn adjacent_comment_walks_contiguous_block() {
        let src = "\
// SAFETY: the first line\n\
// continues here\n\
unsafe { x() };\n\
let y = 1;\n\
unsafe { z() };";
        let f = SourceFile::parse("x.rs", src);
        let is_safety = |t: &str| t.starts_with("SAFETY:");
        assert!(f.adjacent_comment(3, is_safety));
        assert!(!f.adjacent_comment(5, is_safety));
    }

    #[test]
    fn adjacent_comment_blocked_by_blank_line() {
        let src = "// SAFETY: too far away\n\nunsafe { x() };";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.adjacent_comment(3, |t| t.starts_with("SAFETY:")));
    }

    #[test]
    fn trailing_comment_counts() {
        let src = "unsafe { x() }; // SAFETY: inline";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.adjacent_comment(1, |t| t.starts_with("SAFETY:")));
    }
}
