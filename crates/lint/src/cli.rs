//! The `repro lint` entry point: scan, render (text or JSON), exit code.

use crate::rules::{self, Diagnostic};
use crate::scan::{find_root, Workspace};
use std::path::PathBuf;

/// Parsed command line for `repro lint`.
#[derive(Debug, Default)]
pub struct LintArgs {
    /// Emit the machine-readable JSON report instead of text.
    pub json: bool,
    /// Restrict reporting to one rule id.
    pub rule: Option<String>,
    /// Workspace root override (default: walk up from the current dir).
    pub root: Option<PathBuf>,
    /// Print the rule catalog and exit.
    pub list: bool,
}

impl LintArgs {
    /// Parse `repro lint`'s arguments.
    pub fn parse(args: &[String]) -> Result<LintArgs, String> {
        let mut out = LintArgs::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--json" => out.json = true,
                "--list" => out.list = true,
                "--rule" => {
                    let id = it.next().ok_or("--rule needs a rule id")?;
                    if !rules::is_known_rule(id) {
                        return Err(format!("unknown rule `{id}` (see --list)"));
                    }
                    out.rule = Some(id.clone());
                }
                "--root" => {
                    let p = it.next().ok_or("--root needs a path")?;
                    out.root = Some(PathBuf::from(p));
                }
                "--help" | "-h" => {
                    return Err(
                        "usage: repro lint [--json] [--rule ID] [--root PATH] [--list]".into(),
                    )
                }
                other => return Err(format!("unknown argument `{other}` (try --help)")),
            }
        }
        Ok(out)
    }
}

/// The result of one lint run, ready to render.
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    pub files_scanned: usize,
    pub manifests_scanned: usize,
    /// Justified `lint: allow` escape hatches in effect, as
    /// `(file, line, rule, reason)`.
    pub allows: Vec<(String, u32, String, String)>,
}

/// Scan `root` and collect the report (every rule; filtering happens at
/// render time).
pub fn run(root: &std::path::Path) -> std::io::Result<Report> {
    let ws = Workspace::collect(root)?;
    let diagnostics = rules::check_workspace(&ws);
    let mut allows = Vec::new();
    for f in &ws.files {
        for a in &f.allows {
            allows.push((f.rel_path.clone(), a.line, a.rule.clone(), a.reason.clone()));
        }
    }
    Ok(Report {
        diagnostics,
        files_scanned: ws.files.len(),
        manifests_scanned: ws.manifests.len(),
        allows,
    })
}

/// CLI driver. Returns the process exit code: 0 clean, 1 diagnostics
/// found; argument errors are `Err`.
pub fn cli(args: &[String]) -> Result<i32, String> {
    let args = LintArgs::parse(args)?;
    if args.list {
        for r in rules::RULES {
            println!("{:26} {}", r.id, r.summary);
        }
        return Ok(0);
    }
    let root = match &args.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_root(&cwd).ok_or("no workspace root found above the current directory")?
        }
    };
    let mut report = run(&root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
    if let Some(rule) = &args.rule {
        report.diagnostics.retain(|d| d.rule == rule);
    }
    if args.json {
        println!("{}", render_json(&report));
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        if report.diagnostics.is_empty() {
            println!(
                "lint clean: 0 diagnostics ({} files + {} manifests scanned, {} justified allows)",
                report.files_scanned,
                report.manifests_scanned,
                report.allows.len()
            );
        } else {
            println!(
                "{} diagnostic(s) ({} files + {} manifests scanned)",
                report.diagnostics.len(),
                report.files_scanned,
                report.manifests_scanned
            );
        }
    }
    Ok(if report.diagnostics.is_empty() { 0 } else { 1 })
}

/// Render the machine-readable report (stable shape, validated in CI).
pub fn render_json(report: &Report) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"artifact\": \"audb_lint_report\",\n");
    s.push_str("  \"schema_version\": 1,\n");
    s.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    s.push_str(&format!(
        "  \"manifests_scanned\": {},\n",
        report.manifests_scanned
    ));
    s.push_str("  \"rules\": [");
    for (i, r) in rules::RULES.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&json_str(r.id));
    }
    s.push_str("],\n");
    s.push_str("  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        s.push_str(if i > 0 { ",\n    " } else { "\n    " });
        s.push_str(&format!(
            "{{\"rule\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}, \"hint\": {}}}",
            json_str(d.rule),
            json_str(&d.file),
            d.line,
            d.col,
            json_str(&d.message),
            json_str(d.hint)
        ));
    }
    s.push_str(if report.diagnostics.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    s.push_str("  \"allows\": [");
    for (i, (file, line, rule, reason)) in report.allows.iter().enumerate() {
        s.push_str(if i > 0 { ",\n    " } else { "\n    " });
        s.push_str(&format!(
            "{{\"file\": {}, \"line\": {}, \"rule\": {}, \"reason\": {}}}",
            json_str(file),
            line,
            json_str(rule),
            json_str(reason)
        ));
    }
    s.push_str(if report.allows.is_empty() {
        "]\n"
    } else {
        "\n  ]\n"
    });
    s.push('}');
    s
}

/// Minimal JSON string encoder (the linter is dependency-free).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let ok =
            LintArgs::parse(&["--json".into(), "--rule".into(), "no-raw-spawn".into()]).unwrap();
        assert!(ok.json);
        assert_eq!(ok.rule.as_deref(), Some("no-raw-spawn"));
        assert!(LintArgs::parse(&["--rule".into(), "nope".into()]).is_err());
        assert!(LintArgs::parse(&["--wat".into()]).is_err());
    }

    #[test]
    fn json_report_is_wellformed() {
        let report = Report {
            diagnostics: vec![Diagnostic {
                rule: "no-raw-spawn",
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                col: 7,
                message: "raw `thread::spawn` with \"quotes\"".into(),
                hint: "use audb_par",
            }],
            files_scanned: 1,
            manifests_scanned: 1,
            allows: vec![("a.rs".into(), 9, "no-raw-spawn".into(), "why".into())],
        };
        let json = render_json(&report);
        assert!(json.contains("\"audb_lint_report\""));
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"line\": 3"));
        assert!(json.contains("\"reason\": \"why\""));
    }
}
