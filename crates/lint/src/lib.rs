//! # audb-lint — the workspace invariant checker
//!
//! A dependency-free, token-level Rust source scanner (same hand-rolled
//! discipline as `audb-sql`'s lexer and `audb-server`'s HTTP layer) that
//! walks the workspace and enforces the repo's correctness conventions
//! as structured, spanned diagnostics. The paper's value proposition is
//! *guaranteed* under/over-approximation of certain and possible
//! answers; the invariants below are what keep that guarantee true as
//! the code grows, and until this crate existed they were enforced only
//! by convention:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `no-panic-hot-path` | kernels and the server request path return errors, never panic |
//! | `atomic-ordering-justified` | every atomic ordering literal is argued for in a comment |
//! | `unsafe-safety-comment` | every `unsafe` carries an adjacent `// SAFETY:` proof |
//! | `no-raw-spawn` | threads come from `audb-par` or the server pool, nowhere else |
//! | `no-direct-backend-call` | all execution flows through `Engine`/`Session` (PR 2) |
//! | `zero-dep-crates` | per-crate external-dependency allowlist (sql/server/par/lint std-only) |
//! | `no-wallclock-in-kernels` | kernels are pure; timing lives at ExecTrace breaker boundaries |
//! | `error-impls-std-error` | every public error type is a real `std::error::Error` |
//!
//! Escape hatch: `// lint: allow(rule-id) -- reason` on (or directly
//! above) the offending line. The reason is mandatory — a reasonless or
//! unknown-rule allow is itself reported (`allow-malformed`).
//!
//! Run it as `repro lint [--json] [--rule ID] [--list]`; the workspace
//! must come back clean (`cargo test -p audb-lint` enforces this, which
//! puts the linter in the tier-1 gate). See DESIGN.md §12 for the rule
//! catalog rationale and how to add a rule.

pub mod cli;
pub mod lexer;
pub mod rules;
pub mod scan;

pub use cli::{cli, render_json, run, LintArgs, Report};
pub use rules::{Diagnostic, Rule, RULES};
pub use scan::{Manifest, SourceFile, Workspace};
