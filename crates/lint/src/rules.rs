//! The rule catalog. Every rule is a short token-pattern match over
//! [`SourceFile`]s (or a line scan over `Cargo.toml`s), scoped by
//! workspace-relative path. Rules are deliberately *narrow*: each one
//! machine-checks exactly one invariant the codebase previously enforced
//! by convention, and the catalog in DESIGN.md §12 records why.

use crate::scan::{Manifest, SourceFile, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`no-panic-hot-path`, ...).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong, specifically.
    pub message: String,
    /// How to fix it (or how to justify it).
    pub hint: &'static str,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}\n    hint: {}",
            self.file, self.line, self.col, self.rule, self.message, self.hint
        )
    }
}

/// A catalog entry.
pub struct Rule {
    pub id: &'static str,
    pub summary: &'static str,
    pub hint: &'static str,
}

/// Every rule the linter knows, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "no-panic-hot-path",
        summary: "no unwrap/expect/panic!/todo!/unimplemented! in audb_core kernels \
                  (physical, columns, sortkey) or the audb-server request path",
        hint: "return a structured error (kernels: propagate; server: SessionError -> \
               HTTP status), or justify with `// lint: allow(no-panic-hot-path) -- reason`",
    },
    Rule {
        id: "atomic-ordering-justified",
        summary: "every atomic Ordering::{Relaxed,Acquire,Release,AcqRel,SeqCst} literal \
                  carries a nearby comment mentioning `ordering`",
        hint: "add a comment within 3 lines explaining why this memory ordering is \
               sufficient (what publishes/observes what)",
    },
    Rule {
        id: "unsafe-safety-comment",
        summary: "every `unsafe` block/impl is directly preceded by a `// SAFETY:` comment",
        hint: "state the proof obligation: which invariant makes this sound, and what \
               maintains it",
    },
    Rule {
        id: "no-raw-spawn",
        summary: "std::thread::{spawn,Builder} only inside audb-par and crates/server",
        hint: "use audb_par::par_map/par_run (deterministic, AUDB_THREADS-bounded) or \
               justify with `// lint: allow(no-raw-spawn) -- reason`",
    },
    Rule {
        id: "no-direct-backend-call",
        summary: "backend entry points (sort_ref/sort_native/rewr_* and the audb_native/\
                  audb_rewrite crates) are only called from the engine's Backend impls",
        hint: "go through Engine/Session (`Query...` plans or SQL) so plan validation, \
               normalization and fallback rerouting stay in force",
    },
    Rule {
        id: "zero-dep-crates",
        summary: "per-crate external-dependency allowlist (audb-sql, audb-server, \
                  audb-par, audb-lint stay std-only)",
        hint: "drop the dependency or extend the allowlist in crates/lint/src/rules.rs \
               (a deliberate, reviewed act)",
    },
    Rule {
        id: "no-wallclock-in-kernels",
        summary: "no Instant::now/SystemTime inside audb_core or the fused-stage \
                  builders (timing belongs to the ExecTrace breaker boundaries)",
        hint: "move timing to engine::exec::run's per-op trace, or thread a clock in \
               from the caller",
    },
    Rule {
        id: "error-impls-std-error",
        summary: "every `pub ... Error` type implements std::error::Error",
        hint: "add `impl std::error::Error for ... {}` (and Display) so callers can \
               box/`?` it uniformly",
    },
    Rule {
        id: "allow-malformed",
        summary: "`lint: allow(...)` directives must name a known rule and carry a \
                  ` -- reason`",
        hint: "write `// lint: allow(rule-id) -- why this is sound`",
    },
];

/// Whether `id` names a rule in the catalog.
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

fn hint_for(id: &str) -> &'static str {
    RULES
        .iter()
        .find(|r| r.id == id)
        .map(|r| r.hint)
        .unwrap_or("")
}

/// Run every rule over the workspace. Diagnostics come back sorted by
/// `(file, line, col, rule)`; suppressed ones are already filtered out.
pub fn check_workspace(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        check_no_panic_hot_path(file, &mut out);
        check_atomic_ordering(file, &mut out);
        check_unsafe_safety(file, &mut out);
        check_no_raw_spawn(file, &mut out);
        check_no_direct_backend_call(file, &mut out);
        check_no_wallclock(file, &mut out);
        for (line, col, message) in &file.bad_allows {
            out.push(Diagnostic {
                rule: "allow-malformed",
                file: file.rel_path.clone(),
                line: *line,
                col: *col,
                message: message.clone(),
                hint: hint_for("allow-malformed"),
            });
        }
    }
    check_error_impls(&ws.files, &mut out);
    for m in &ws.manifests {
        check_manifest(m, &mut out);
    }
    // Apply `// lint: allow` suppression (allow-malformed is exempt: the
    // escape hatch cannot excuse its own misuse).
    let by_path: BTreeMap<&str, &SourceFile> =
        ws.files.iter().map(|f| (f.rel_path.as_str(), f)).collect();
    out.retain(|d| {
        d.rule == "allow-malformed"
            || by_path
                .get(d.file.as_str())
                .map(|f| !f.allowed(d.rule, d.line))
                .unwrap_or(true)
    });
    out.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    out
}

fn push(
    out: &mut Vec<Diagnostic>,
    rule: &'static str,
    file: &SourceFile,
    line: u32,
    col: u32,
    message: String,
) {
    out.push(Diagnostic {
        rule,
        file: file.rel_path.clone(),
        line,
        col,
        message,
        hint: hint_for(rule),
    });
}

// ------------------------------------------------------------------ scopes

/// The files whose panics would kill a query or a worker thread: the
/// typed-kernel layer of `audb_core` and the whole server request path.
fn in_panic_scope(path: &str) -> bool {
    path.starts_with("crates/server/src/")
        || matches!(
            path,
            "crates/core/src/physical.rs"
                | "crates/core/src/columns.rs"
                | "crates/core/src/sortkey.rs"
        )
}

/// Crates allowed to create raw threads: the deterministic parallel
/// helpers and the server's worker pool.
fn in_spawn_scope(path: &str) -> bool {
    path.starts_with("crates/par/") || path.starts_with("crates/server/")
}

/// Files allowed to name backend entry points: the backends themselves,
/// the engine's Backend impls, and the incremental-maintenance layer
/// (maintain.rs holds live `audb_native` sweep state between appends —
/// stateful by design, so it cannot route through `Engine::execute`).
/// optimize.rs is in scope as of the statistics PR — reviewed: its
/// soundness tests must compare a rewritten plan's output against the
/// per-backend operator semantics directly (e.g. `sort_ref` bounds under
/// a pushed-down select), and the rule would otherwise force those
/// oracle calls through `Engine`, hiding exactly the layer under test.
fn in_backend_scope(path: &str) -> bool {
    path.starts_with("crates/core/")
        || path.starts_with("crates/native/")
        || path.starts_with("crates/rewrite/")
        || path == "crates/engine/src/backend.rs"
        || path == "crates/engine/src/maintain.rs"
        || path == "crates/engine/src/optimize.rs"
}

/// Files where wall-clock reads would distort kernels: all of
/// `audb_core` plus the fused-stage builders.
fn in_kernel_clock_scope(path: &str) -> bool {
    path.starts_with("crates/core/src/") || path == "crates/engine/src/exec/lower.rs"
}

// ------------------------------------------------------------------- rules

/// Rule 1: `no-panic-hot-path`.
fn check_no_panic_hot_path(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !in_panic_scope(&file.rel_path) {
        return;
    }
    let toks = &file.code;
    for (i, t) in toks.iter().enumerate() {
        let prev = i.checked_sub(1).map(|j| toks[j].text.as_str());
        let next = toks.get(i + 1).map(|t| t.text.as_str());
        match t.text.as_str() {
            "unwrap" | "expect" if prev == Some(".") && next == Some("(") => {
                push(
                    out,
                    "no-panic-hot-path",
                    file,
                    t.line,
                    t.col,
                    format!("`.{}()` on the hot path can panic", t.text),
                );
            }
            "panic" | "todo" | "unimplemented" if next == Some("!") && prev != Some("fn") => {
                push(
                    out,
                    "no-panic-hot-path",
                    file,
                    t.line,
                    t.col,
                    format!("`{}!` on the hot path", t.text),
                );
            }
            _ => {}
        }
    }
}

const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Rule 2: `atomic-ordering-justified`.
fn check_atomic_ordering(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.code;
    for (i, t) in toks.iter().enumerate() {
        if t.text != "Ordering" {
            continue;
        }
        // `Ordering :: Relaxed` — two `:` puncts then the variant.
        let variant = match (
            toks.get(i + 1).map(|t| t.text.as_str()),
            toks.get(i + 2).map(|t| t.text.as_str()),
            toks.get(i + 3),
        ) {
            (Some(":"), Some(":"), Some(v)) if ATOMIC_ORDERINGS.contains(&v.text.as_str()) => v,
            _ => continue,
        };
        let justified =
            file.comment_near(t.line, 3, |c| c.to_ascii_lowercase().contains("ordering"));
        if !justified {
            push(
                out,
                "atomic-ordering-justified",
                file,
                variant.line,
                variant.col,
                format!(
                    "atomic `Ordering::{}` without a nearby justification comment \
                     (mention `ordering` within 3 lines)",
                    variant.text
                ),
            );
        }
    }
}

/// Rule 3: `unsafe-safety-comment`.
fn check_unsafe_safety(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for t in &file.code {
        if t.text != "unsafe" {
            continue;
        }
        if !file.adjacent_comment(t.line, |c| c.starts_with("SAFETY:")) {
            push(
                out,
                "unsafe-safety-comment",
                file,
                t.line,
                t.col,
                "`unsafe` without a directly preceding `// SAFETY:` comment".to_string(),
            );
        }
    }
}

/// Rule 4: `no-raw-spawn`.
fn check_no_raw_spawn(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if in_spawn_scope(&file.rel_path) {
        return;
    }
    let toks = &file.code;
    for (i, t) in toks.iter().enumerate() {
        if t.text != "thread" {
            continue;
        }
        let path_next = match (
            toks.get(i + 1).map(|t| t.text.as_str()),
            toks.get(i + 2).map(|t| t.text.as_str()),
            toks.get(i + 3),
        ) {
            (Some(":"), Some(":"), Some(n)) => n,
            _ => continue,
        };
        if path_next.text == "spawn" || path_next.text == "Builder" {
            push(
                out,
                "no-raw-spawn",
                file,
                path_next.line,
                path_next.col,
                format!(
                    "raw `thread::{}` outside audb-par / crates/server",
                    path_next.text
                ),
            );
        }
    }
}

/// Backend entry points reachable by bare name (via `use`).
const BACKEND_FNS: &[&str] = &[
    "sort_ref",
    "topk_ref",
    "window_ref",
    "sort_native",
    "topk_native",
    "window_native",
];

/// Rule 5: `no-direct-backend-call`.
fn check_no_direct_backend_call(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if in_backend_scope(&file.rel_path) {
        return;
    }
    let toks = &file.code;
    for (i, t) in toks.iter().enumerate() {
        let prev = i.checked_sub(1).map(|j| toks[j].text.as_str());
        let next = toks.get(i + 1).map(|t| t.text.as_str());
        let text = t.text.as_str();
        if text == "audb_native" || text == "audb_rewrite" {
            push(
                out,
                "no-direct-backend-call",
                file,
                t.line,
                t.col,
                format!(
                    "direct reference to backend crate `{text}` outside the engine's Backend impls"
                ),
            );
        } else if BACKEND_FNS.contains(&text) && prev != Some("fn") {
            push(
                out,
                "no-direct-backend-call",
                file,
                t.line,
                t.col,
                format!("direct reference to backend entry point `{text}`"),
            );
        } else if text.starts_with("rewr_") && next == Some("(") && prev != Some("fn") {
            push(
                out,
                "no-direct-backend-call",
                file,
                t.line,
                t.col,
                format!("direct call to rewrite backend entry point `{text}`"),
            );
        }
    }
}

/// Rule 7: `no-wallclock-in-kernels`.
fn check_no_wallclock(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !in_kernel_clock_scope(&file.rel_path) {
        return;
    }
    for t in &file.code {
        if t.text == "Instant" || t.text == "SystemTime" {
            push(
                out,
                "no-wallclock-in-kernels",
                file,
                t.line,
                t.col,
                format!("wall-clock type `{}` inside a kernel layer", t.text),
            );
        }
    }
}

/// Rule 8: `error-impls-std-error` (workspace-aggregated).
fn check_error_impls(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    // (name -> first declaration site); names implementing Error anywhere.
    let mut decls: BTreeMap<String, (usize, u32, u32)> = BTreeMap::new();
    let mut impls: BTreeSet<String> = BTreeSet::new();
    for (fi, file) in files.iter().enumerate() {
        let toks = &file.code;
        for (i, t) in toks.iter().enumerate() {
            match t.text.as_str() {
                "pub"
                    if matches!(
                        toks.get(i + 1).map(|t| t.text.as_str()),
                        Some("enum") | Some("struct")
                    ) =>
                {
                    if let Some(name) = toks.get(i + 2) {
                        if name.text.ends_with("Error") {
                            decls
                                .entry(name.text.clone())
                                .or_insert((fi, name.line, name.col));
                        }
                    }
                }
                "for" if i >= 1 && toks[i - 1].text == "Error" => {
                    if let Some(name) = toks.get(i + 1) {
                        impls.insert(name.text.clone());
                    }
                }
                _ => {}
            }
        }
    }
    for (name, (fi, line, col)) in decls {
        if !impls.contains(&name) {
            push(
                out,
                "error-impls-std-error",
                &files[fi],
                line,
                col,
                format!("public error type `{name}` does not implement std::error::Error"),
            );
        }
    }
}

/// External (non-`audb-*`) dependencies each crate may declare, normal
/// and dev alike. Crates not listed here may declare none — in
/// particular `audb-sql`, `audb-server`, `audb-par` and `audb-lint` stay
/// std-only, which is what keeps the SQL frontend, the service layer and
/// this linter trivially auditable and offline-buildable.
const EXTERNAL_DEP_ALLOWLIST: &[(&str, &[&str])] = &[
    ("audb", &["proptest", "rand"]),
    ("audb-bench", &["criterion"]),
    ("audb-competitors", &["rand"]),
    ("audb-conheap", &["proptest"]),
    ("audb-core", &["proptest"]),
    ("audb-rel", &["proptest"]),
    ("audb-workloads", &["rand"]),
    ("audb-worlds", &["rand"]),
];

/// Rule 6: `zero-dep-crates` — a line-oriented scan of one manifest.
fn check_manifest(m: &Manifest, out: &mut Vec<Diagnostic>) {
    let mut crate_name = String::new();
    for line in m.source.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                crate_name = rest.trim().trim_matches('"').to_string();
                break;
            }
        }
    }
    let allowed: &[&str] = EXTERNAL_DEP_ALLOWLIST
        .iter()
        .find(|(n, _)| *n == crate_name)
        .map(|(_, deps)| *deps)
        .unwrap_or(&[]);

    let mut in_dep_section = false;
    for (lineno, raw) in m.source.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            // Only plain [dependencies] / [dev-dependencies] — not
            // [workspace.dependencies], which *defines* the shared set.
            in_dep_section = line == "[dependencies]" || line == "[dev-dependencies]";
            continue;
        }
        if !in_dep_section || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let name: String = line
            .chars()
            .take_while(|c| !matches!(c, '.' | '=' | ' ' | '\t'))
            .collect();
        if name.is_empty() || name == "audb" || name.starts_with("audb-") {
            continue;
        }
        if !allowed.contains(&name.as_str()) {
            out.push(Diagnostic {
                rule: "zero-dep-crates",
                file: m.rel_path.clone(),
                line: lineno as u32 + 1,
                col: 1,
                message: format!(
                    "crate `{crate_name}` declares external dependency `{name}` \
                     not on its allowlist"
                ),
                hint: hint_for("zero-dep-crates"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;

    fn diags_for(path: &str, src: &str) -> Vec<Diagnostic> {
        let ws = Workspace {
            files: vec![SourceFile::parse(path, src)],
            manifests: vec![],
        };
        check_workspace(&ws)
    }

    #[test]
    fn panic_rule_fires_only_in_scope() {
        let src = "fn f(o: Option<u8>) -> u8 { o.unwrap() }";
        assert_eq!(diags_for("crates/server/src/wire.rs", src).len(), 1);
        assert_eq!(diags_for("crates/core/src/physical.rs", src).len(), 1);
        assert!(diags_for("crates/bench/src/perf.rs", src).is_empty());
    }

    #[test]
    fn panic_rule_spares_method_definitions_and_similar_names() {
        // Defining a method *named* expect, or calling unwrap_or, is fine.
        let src =
            "impl P { fn expect(&mut self, b: u8) {} }\nfn g(o: Option<u8>) { o.unwrap_or(0); }";
        assert!(diags_for("crates/server/src/json.rs", src).is_empty());
    }

    #[test]
    fn unreachable_is_deliberately_legal() {
        // `unreachable!` marks proven-dead arms; unlike unwrap/expect it
        // cannot be reached by bad input if the proof holds, and the
        // proof is what the adjacent match is for.
        let src = "fn f(x: u8) { match x { 0 => {} _ => unreachable!() } }";
        assert!(diags_for("crates/core/src/columns.rs", src).is_empty());
    }

    #[test]
    fn atomic_rule_wants_ordering_comment() {
        let bad = "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }";
        let good = "fn f(a: &AtomicU64) {\n    // Relaxed ordering: monotonic counter, no publication.\n    a.load(Ordering::Relaxed);\n}";
        let d = diags_for("crates/x/src/lib.rs", bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "atomic-ordering-justified");
        assert!(diags_for("crates/x/src/lib.rs", good).is_empty());
        // std::cmp::Ordering is not an atomic ordering.
        let cmp = "fn f() { let _ = Ordering::Equal; }";
        assert!(diags_for("crates/x/src/lib.rs", cmp).is_empty());
    }

    #[test]
    fn spawn_rule_scopes_to_par_and_server() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(diags_for("crates/bench/src/serve.rs", src).len(), 1);
        assert!(diags_for("crates/par/src/lib.rs", src).is_empty());
        assert!(diags_for("crates/server/src/server.rs", src).is_empty());
        let builder = "fn f() { std::thread::Builder::new(); }";
        assert_eq!(diags_for("crates/bench/src/serve.rs", builder).len(), 1);
    }

    #[test]
    fn backend_rule_catches_crates_and_bare_names() {
        let d = diags_for(
            "crates/workloads/src/runner.rs",
            "use audb_rewrite::rewr_sort;\nfn f() { sort_native(&r, &o, \"p\"); }",
        );
        assert_eq!(d.len(), 2);
        assert!(diags_for(
            "crates/engine/src/backend.rs",
            "fn f() { audb_native::sort_native(); }"
        )
        .is_empty());
        // Defining a fn with a backend-ish name is not a call.
        assert!(diags_for("crates/x/src/lib.rs", "pub fn rewrite_sort() {}").is_empty());
    }

    /// The optimizer module is inside the backend-call scope (its
    /// soundness tests call per-backend oracles directly), but its
    /// neighbors are not — the scope extension must not leak.
    #[test]
    fn backend_rule_scope_covers_optimizer() {
        let src = "fn f() { let s = sort_ref(&r, &o, \"p\", sem); }";
        assert!(diags_for("crates/engine/src/optimize.rs", src).is_empty());
        assert_eq!(diags_for("crates/engine/src/plan.rs", src).len(), 1);
        assert_eq!(diags_for("crates/engine/src/exec/run.rs", src).len(), 1);
    }

    #[test]
    fn wallclock_rule_scopes_to_kernels() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(diags_for("crates/core/src/expr.rs", src).len(), 1);
        assert_eq!(diags_for("crates/engine/src/exec/lower.rs", src).len(), 1);
        assert!(diags_for("crates/engine/src/exec/run.rs", src).is_empty());
    }

    #[test]
    fn error_impl_rule_aggregates_across_files() {
        let decl = SourceFile::parse("crates/x/src/error.rs", "pub enum FooError { A }");
        let imp = SourceFile::parse(
            "crates/x/src/lib.rs",
            "impl std::error::Error for FooError {}",
        );
        let missing = check_workspace(&Workspace {
            files: vec![SourceFile::parse(
                "crates/x/src/error.rs",
                "pub enum FooError { A }",
            )],
            manifests: vec![],
        });
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].rule, "error-impls-std-error");
        let ok = check_workspace(&Workspace {
            files: vec![decl, imp],
            manifests: vec![],
        });
        assert!(ok.is_empty());
    }

    #[test]
    fn manifest_rule_enforces_allowlist() {
        let m = Manifest {
            rel_path: "crates/sql/Cargo.toml".into(),
            source: "[package]\nname = \"audb-sql\"\n[dependencies]\naudb-rel.workspace = true\nrand.workspace = true\n".into(),
        };
        let ws = Workspace {
            files: vec![],
            manifests: vec![m],
        };
        let d = check_workspace(&ws);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "zero-dep-crates");
        assert_eq!(d[0].line, 5);
        assert!(d[0].message.contains("rand"));
    }

    #[test]
    fn workspace_dependencies_section_is_not_a_dep_section() {
        let m = Manifest {
            rel_path: "Cargo.toml".into(),
            source: "[workspace.dependencies]\nrand = { path = \"vendor/rand\" }\n[package]\nname = \"audb\"\n".into(),
        };
        let d = check_workspace(&Workspace {
            files: vec![],
            manifests: vec![m],
        });
        assert!(d.is_empty());
    }

    #[test]
    fn allow_suppresses_and_malformed_allow_reports() {
        let src = "\
fn f(o: Option<u8>) {\n\
    // lint: allow(no-panic-hot-path) -- bound checked two lines up\n\
    o.unwrap();\n\
    o.unwrap(); // lint: allow(no-panic-hot-path)\n\
}";
        let d = diags_for("crates/server/src/wire.rs", src);
        // Line 3 suppressed; line 4's allow is missing its reason, so both
        // the violation and the malformed directive report.
        assert_eq!(d.len(), 2);
        assert!(d
            .iter()
            .any(|d| d.rule == "no-panic-hot-path" && d.line == 4));
        assert!(d.iter().any(|d| d.rule == "allow-malformed" && d.line == 4));
    }

    #[test]
    fn diagnostics_are_sorted_and_spanned() {
        let src = "fn f(o: Option<u8>) { o.unwrap(); o.expect(\"x\"); }";
        let d = diags_for("crates/server/src/wire.rs", src);
        assert_eq!(d.len(), 2);
        assert!(d[0].col < d[1].col);
        assert_eq!(d[0].line, 1);
        let rendered = d[0].to_string();
        assert!(rendered.starts_with("crates/server/src/wire.rs:1:"));
        assert!(rendered.contains("hint:"));
    }
}
