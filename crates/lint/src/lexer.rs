//! A token-level Rust lexer: just enough lexical structure to tell code
//! from comments and string contents, with line/column spans on every
//! token. Deliberately not a parser — the rules in [`crate::rules`] match
//! short token patterns, which keeps the scanner dependency-free and
//! immune to new syntax it does not need to understand.
//!
//! Handled: line and (nested) block comments, string/char/byte/raw-string
//! literals, raw identifiers, lifetimes vs char literals, numbers with
//! suffixes. Everything else is a single-character punctuation token.

/// What a token is, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `fn`, `unsafe`, `r#type`, ...).
    Ident,
    /// A single punctuation character (`.`, `:`, `(`, `{`, `#`, ...).
    Punct,
    /// String/char/byte/numeric literal. Contents are opaque to rules.
    Literal,
    /// `'a`, `'static` — distinct from char literals.
    Lifetime,
    /// `// ...` (incl. `///` and `//!`).
    LineComment,
    /// `/* ... */`, possibly nested and spanning lines.
    BlockComment,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    /// Token text. For comments this includes the delimiters.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
    /// 1-based line of the token's last character (differs from `line`
    /// only for block comments and multi-line string literals).
    pub end_line: u32,
}

impl Tok {
    /// Whether this token is any kind of comment.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// Comment text without its delimiters (`//`, `/*`, `*/`), trimmed.
    pub fn comment_text(&self) -> &str {
        let t = self.text.as_str();
        let t = t.strip_prefix("//").unwrap_or(t);
        let t = t.strip_prefix("/*").unwrap_or(t);
        let t = t.strip_suffix("*/").unwrap_or(t);
        t.trim()
    }
}

struct Cursor<'a> {
    src: &'a str,
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src,
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`. Never fails: unterminated literals/comments simply run
/// to end of input (the compiler, not the linter, reports those).
pub fn tokenize(src: &str) -> Vec<Tok> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        let start = cur.pos;
        let kind = if c.is_whitespace() {
            cur.bump();
            continue;
        } else if c == '/' && cur.peek(1) == Some('/') {
            while let Some(c) = cur.peek(0) {
                if c == '\n' {
                    break;
                }
                cur.bump();
            }
            TokKind::LineComment
        } else if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        cur.bump();
                        cur.bump();
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            TokKind::BlockComment
        } else if let Some(kind) = lex_prefixed_literal(&mut cur) {
            kind
        } else if is_ident_start(c) {
            while cur.peek(0).map(is_ident_continue) == Some(true) {
                cur.bump();
            }
            TokKind::Ident
        } else if c.is_ascii_digit() {
            lex_number(&mut cur);
            TokKind::Literal
        } else if c == '"' {
            lex_string(&mut cur);
            TokKind::Literal
        } else if c == '\'' {
            lex_quote(&mut cur)
        } else {
            cur.bump();
            TokKind::Punct
        };
        let text: String = cur.chars[start..cur.pos].iter().collect();
        out.push(Tok {
            kind,
            text,
            line,
            col,
            end_line: cur.line,
        });
    }
    // `src` is only held so `tokenize` signatures stay borrow-friendly if
    // a future rule wants byte offsets; silence the otherwise-unused field.
    let _ = cur.src;
    out
}

/// `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'`, `c"..."`, and raw
/// identifiers `r#ident`. Returns `None` when the cursor is not on one.
fn lex_prefixed_literal(cur: &mut Cursor) -> Option<TokKind> {
    let c = cur.peek(0)?;
    let (hash_at, quote_kinds): (usize, bool) = match c {
        'r' | 'c' => (1, true),
        'b' => {
            if cur.peek(1) == Some('r') {
                (2, true)
            } else {
                (1, false)
            }
        }
        _ => return None,
    };
    // Count `#`s after the prefix; then a `"` must follow for a raw
    // string (or, with exactly one `#` and no quote, a raw identifier).
    let mut hashes = 0usize;
    while cur.peek(hash_at + hashes) == Some('#') {
        hashes += 1;
    }
    match cur.peek(hash_at + hashes) {
        Some('"') => {
            for _ in 0..hash_at + hashes + 1 {
                cur.bump();
            }
            if hashes == 0 && !quote_kinds {
                // b"..." — a plain (escaped) byte string.
                lex_string_body(cur);
            } else if hashes == 0 {
                // r"..." / c"..." — no escapes, ends at the next quote.
                while let Some(c) = cur.bump() {
                    if c == '"' {
                        break;
                    }
                }
            } else {
                // r#"..."# — ends at `"` followed by `hashes` hashes.
                'outer: while let Some(c) = cur.bump() {
                    if c == '"' {
                        for i in 0..hashes {
                            if cur.peek(i) != Some('#') {
                                continue 'outer;
                            }
                        }
                        for _ in 0..hashes {
                            cur.bump();
                        }
                        break;
                    }
                }
            }
            Some(TokKind::Literal)
        }
        Some('\'') if c == 'b' && hash_at == 1 => {
            // b'x' byte char.
            cur.bump();
            cur.bump();
            lex_char_body(cur);
            Some(TokKind::Literal)
        }
        Some(n) if hashes == 1 && c == 'r' && is_ident_start(n) => {
            // r#ident raw identifier.
            cur.bump();
            cur.bump();
            while cur.peek(0).map(is_ident_continue) == Some(true) {
                cur.bump();
            }
            Some(TokKind::Ident)
        }
        _ => None,
    }
}

/// Consume a `"..."` string starting at the opening quote.
fn lex_string(cur: &mut Cursor) {
    cur.bump();
    lex_string_body(cur);
}

/// Consume string contents up to and including the closing quote,
/// honouring backslash escapes.
fn lex_string_body(cur: &mut Cursor) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// After `'`: char literal (`'a'`, `'\n'`) or lifetime (`'a`, `'static`).
fn lex_quote(cur: &mut Cursor) -> TokKind {
    cur.bump(); // the opening quote
    match cur.peek(0) {
        Some('\\') => {
            lex_char_body(cur);
            TokKind::Literal
        }
        Some(c) if is_ident_start(c) => {
            // `'a'` is a char; `'a` / `'abc` without a closing quote is a
            // lifetime.
            if cur.peek(1) == Some('\'') {
                cur.bump();
                cur.bump();
                TokKind::Literal
            } else {
                while cur.peek(0).map(is_ident_continue) == Some(true) {
                    cur.bump();
                }
                TokKind::Lifetime
            }
        }
        Some(_) => {
            // `'('`-style single-char literal.
            lex_char_body(cur);
            TokKind::Literal
        }
        None => TokKind::Punct,
    }
}

/// Consume char-literal contents up to and including the closing quote.
fn lex_char_body(cur: &mut Cursor) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '\'' => break,
            _ => {}
        }
    }
}

/// Consume a numeric literal: digits, `_`, suffixes, hex/oct/bin bodies,
/// and a fractional part only when a digit follows the dot (so `1..n`
/// stays three tokens).
fn lex_number(cur: &mut Cursor) {
    while let Some(c) = cur.peek(0) {
        if c.is_ascii_alphanumeric() || c == '_' {
            // `1e-3` / `1E+7`: the sign belongs to the exponent.
            let was_exp = (c == 'e' || c == 'E')
                && matches!(cur.peek(1), Some('+') | Some('-'))
                && cur.peek(2).map(|d| d.is_ascii_digit()) == Some(true);
            cur.bump();
            if was_exp {
                cur.bump();
            }
        } else if c == '.' && cur.peek(1).map(|d| d.is_ascii_digit()) == Some(true) {
            cur.bump();
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_and_positions() {
        let toks = tokenize("let x = a.unwrap();");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["let", "x", "=", "a", ".", "unwrap", "(", ")", ";"]);
        assert_eq!(toks[5].line, 1);
        assert_eq!(toks[5].col, 11);
    }

    #[test]
    fn comments_keep_text_and_span_lines() {
        let toks = tokenize("// SAFETY: fine\n/* a\nb */ x");
        assert_eq!(toks[0].kind, TokKind::LineComment);
        assert_eq!(toks[0].comment_text(), "SAFETY: fine");
        assert_eq!(toks[1].kind, TokKind::BlockComment);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[1].end_line, 3);
        assert_eq!(toks[2].text, "x");
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let toks = tokenize("/* outer /* inner */ still */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].text, "x");
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "unwrap() // not a comment";"#);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Literal).count(),
            1
        );
        assert!(!toks.iter().any(|(k, _)| *k == TokKind::LineComment));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds(r##"let s = r#"panic!("x")"#; let r#type = 1;"##);
        assert!(toks.contains(&(TokKind::Ident, "r#type".to_string())));
        assert!(!toks.iter().any(|(_, t)| t == "panic"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r###"f(b"abc", b'x', br#"raw"#);"###);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Literal).count(),
            3
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'y'; }");
        assert!(toks.contains(&(TokKind::Lifetime, "'a".to_string())));
        assert!(toks.contains(&(TokKind::Literal, "'y'".to_string())));
    }

    #[test]
    fn escaped_quote_in_char_literal() {
        let toks = kinds(r"let c = '\''; let d = '\n';");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Literal).count(),
            2
        );
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = tokenize("for i in 0..n { f(1.5e-3, 0xFFu8); }");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"0"));
        assert!(texts.contains(&"n"));
        assert!(texts.contains(&"1.5e-3"));
        assert!(texts.contains(&"0xFFu8"));
        assert_eq!(texts.iter().filter(|t| **t == ".").count(), 2);
    }
}
