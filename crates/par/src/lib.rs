//! # audb-par — tiny deterministic data-parallel helpers
//!
//! A minimal, dependency-free stand-in for the slice of rayon this project
//! needs: fork–join maps over independent items with **deterministic result
//! order** (output index `i` always holds `f(&items[i])`). Built on
//! `std::thread::scope`, so borrowed inputs work without `'static` bounds.
//!
//! Parallelism is bounded by `std::thread::available_parallelism`, can be
//! overridden with the `AUDB_THREADS` environment variable, and collapses
//! to a plain sequential loop for small inputs (or `AUDB_THREADS=1`) so the
//! embarrassingly parallel outer loops of `audb-native` and
//! `audb-competitors` cost nothing extra on tiny relations.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use (≥ 1).
///
/// `AUDB_THREADS=n` forces `n`; otherwise the machine's available
/// parallelism is used.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("AUDB_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Don't spin up threads for fewer items than this unless forced.
const MIN_ITEMS_PER_THREAD: usize = 2;

/// Map `f` over `items` in parallel, preserving order: `out[i] == f(&items[i])`.
///
/// Work is split into contiguous chunks, one per worker; each worker writes
/// its own chunk of the output, so the result is bit-for-bit identical to
/// the sequential `items.iter().map(f).collect()`.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items, |_, item| f(item))
}

/// Like [`par_map`], but `f` also receives the item's index.
pub fn par_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    let threads = num_threads().min(n / MIN_ITEMS_PER_THREAD.max(1)).max(1);
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Work-stealing by atomic index: threads grab the next unprocessed item,
    // so skewed per-item costs (one huge partition among many small ones)
    // still balance. Results land at their item's index regardless of which
    // worker computed them.
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let slots = SendSlots(out.as_mut_ptr());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let f = &f;
            let next = &next;
            let slots = &slots;
            scope.spawn(move || loop {
                // Relaxed ordering suffices: the counter only hands out
                // unique indices; result publication is ordered by the
                // scope's thread join, not by this RMW.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let v = f(i, &items[i]);
                // SAFETY: each index is claimed by exactly one worker via
                // the atomic counter, so no two threads write the same slot,
                // and the scope guarantees the buffer outlives the workers.
                unsafe { *slots.0.add(i) = Some(v) };
            });
        }
    });
    out.into_iter()
        .map(|v| v.expect("every index was claimed by a worker"))
        .collect()
}

/// Run `n` independent jobs in parallel, collecting results in job order.
pub fn par_run<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let idxs: Vec<usize> = (0..n).collect();
    par_map(&idxs, |&i| f(i))
}

/// Wrapper making a raw output pointer shareable across scoped workers.
struct SendSlots<U>(*mut Option<U>);
// SAFETY: workers write disjoint slots (unique indices from the atomic
// counter) and the scope joins all threads before the buffer is read.
unsafe impl<U: Send> Sync for SendSlots<U> {}
// SAFETY: same argument as Sync above — the pointer is only dereferenced
// at disjoint offsets while the owning scope keeps the buffer alive.
unsafe impl<U: Send> Send for SendSlots<U> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<i64> = (0..10_000).collect();
        let out = par_map(&items, |&x| x * 2);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, items[i] * 2);
        }
    }

    #[test]
    fn matches_sequential_map() {
        let items: Vec<String> = (0..997).map(|i| format!("item-{i}")).collect();
        let par = par_map(&items, |s| {
            s.len() + s.chars().filter(|&c| c == '1').count()
        });
        let seq: Vec<usize> = items
            .iter()
            .map(|s| s.len() + s.chars().filter(|&c| c == '1').count())
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<i64> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[42i64], |&x| x + 1), vec![43]);
    }

    #[test]
    fn indexed_variant_sees_true_indices() {
        let items = vec![5u64; 1000];
        let out = par_map_indexed(&items, |i, &v| i as u64 + v);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 + 5);
        }
    }

    #[test]
    fn par_run_collects_in_order() {
        let out = par_run(257, |i| i * i);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn skewed_workloads_balance() {
        // One expensive item among many cheap ones must not serialize.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| {
            let rounds = if x == 0 { 100_000u64 } else { 10 };
            (0..rounds).fold(x, |a, b| a.wrapping_mul(31).wrapping_add(b))
        });
        assert_eq!(out.len(), 64);
    }
}
