//! Cost-based plan optimization: pure `Plan → Plan` rewrite passes driven
//! by the source table's statistics ([`audb_core::TableStats`]).
//!
//! Three passes run in order, each recording an [`AppliedRule`] with a
//! human-readable reason (shown by `Engine::explain` as a before/after
//! diff):
//!
//! 1. **Select pushdown** below order-based breakers, where AU-DB
//!    semantics allow it. Classic pushdown is *unsound* here in general:
//!    sort, top-k and window outputs encode **position bounds**, and
//!    removing rows early changes which rows can possibly precede a
//!    surviving row. The pass therefore only fires under conditions that
//!    provably leave every surviving row's bounds untouched:
//!    * below **sort/top-k** — a keep-small predicate
//!      `col < lit` / `col ≤ lit` on the *leading order column* where
//!      that column is fully certain (per stats) and the literal is
//!      certain: every dropped row then sorts strictly after every kept
//!      row in every possible world, so kept position bounds (and the
//!      top-k cutoff) are unchanged.
//!    * below **window** — either the frame is exactly `[0, 0]` (each
//!      row's aggregate depends only on itself), or the predicate
//!      touches only fully-certain `PARTITION BY` columns with certain
//!      literals (its truth is then certain and constant per partition,
//!      so whole partitions are kept or dropped and surviving frames are
//!      intact). Anything else is refused — property-pinned in
//!      `tests/pipeline_equivalence.rs`.
//! 2. **Select reordering**: the leading run of selections is stably
//!    re-sorted by estimated selectivity ([`estimate_selectivity`]), most
//!    selective first. Adjacent AU-DB selections commute
//!    (`Mult3::filter` is componentwise), so this is always sound.
//! 3. **Dead-column pruning**: source columns that no downstream operator
//!    reads and that cannot reach the output schema are projected away
//!    right after the leading selections. When the plan has no
//!    projection, every source column reaches the output and the pass is
//!    automatically a no-op.
//!
//! The optimizer rebuilds the rewritten chain through the validating
//! [`Query`] builder — an optimized plan is a first-class plan — and on
//! any rebuild error falls back to the original plan unchanged (rewrites
//! may never turn a valid plan into an error).

use crate::plan::{Agg, ColRef, Op, Plan, Query, WindowSpec};
use audb_core::{estimate_selectivity, AuWindowSpec, RangeExpr, TableStats, WinAgg};
use audb_rel::CmpOp;
use std::sync::Arc;

/// One rewrite the optimizer applied, with the reason it fired.
#[derive(Clone, Debug)]
pub struct AppliedRule {
    /// Stable rule identifier (e.g. `pushdown-select-below-sort`).
    pub rule: &'static str,
    /// Why the rule fired on this plan.
    pub reason: String,
}

/// Optimizer provenance attached to a rewritten plan: the
/// pre-optimization operator chain and the applied rules, so `explain`
/// can render before/after even for plans served from the plan cache.
#[derive(Clone, Debug)]
pub struct OptInfo {
    /// The original operator chain, one rendered operator per entry.
    pub before: Vec<String>,
    /// The rewrites that produced the current chain, in application order.
    pub rules: Vec<AppliedRule>,
}

/// Optimize a plan against its source statistics. Returns the input plan
/// unchanged (a clone sharing the same source `Arc` and caches) when no
/// rule applies.
pub fn optimize(plan: &Plan) -> Plan {
    let stats = Arc::clone(plan.source_stats());
    let src_schema = plan.schemas()[0].clone();
    let mut ops = plan.ops().to_vec();
    let mut rules = Vec::new();

    pushdown_selects(&mut ops, &stats, src_schema.arity(), &mut rules);
    reorder_selects(&mut ops, &stats, &mut rules);
    prune_dead_columns(&mut ops, &src_schema, &mut rules);

    if rules.is_empty() {
        return plan.clone();
    }
    let before: Vec<String> = plan.ops().iter().map(|op| op.to_string()).collect();
    match rebuild(plan, &ops) {
        Ok(rewritten) => rewritten
            .adopt_caches(plan)
            .with_opt(Arc::new(OptInfo { before, rules })),
        // A rewrite that fails validation would be an optimizer bug; never
        // surface it as a user error — run the original plan instead.
        Err(_) => plan.clone(),
    }
}

/// Rebuild an operator chain over the original plan's source through the
/// validating builder.
fn rebuild(plan: &Plan, ops: &[Op]) -> Result<Plan, crate::error::PlanError> {
    let mut q = Query::scan(Arc::clone(plan.source_arc()));
    for op in ops {
        q = match op {
            Op::Select { pred } => q.select(pred.clone()),
            Op::Project { cols } => q.project(cols.iter().map(|&i| ColRef::Index(i))),
            Op::ProjectExprs { exprs } => {
                q.project_exprs(exprs.iter().map(|(e, n)| (e.clone(), n.clone())))
            }
            Op::Sort { order, pos_name } => {
                q.sort_by_as(order.iter().map(|&i| ColRef::Index(i)), pos_name.clone())
            }
            Op::TopK { order, k, pos_name } => q
                .sort_by_as(order.iter().map(|&i| ColRef::Index(i)), pos_name.clone())
                .topk(*k),
            Op::Window {
                spec,
                agg,
                out_name,
            } => q.window(
                WindowSpec::rows(spec.lower, spec.upper)
                    .order_by(spec.order.iter().map(|&i| ColRef::Index(i)))
                    .partition_by(spec.partition.iter().map(|&i| ColRef::Index(i)))
                    .aggregate(Agg::from(*agg))
                    .output(out_name.clone()),
            ),
        };
    }
    q.build()
}

// ---------------------------------------------------------------------
// Pass 1: select pushdown below frame-safe breakers
// ---------------------------------------------------------------------

/// Swap adjacent `(breaker, select)` pairs to a fixpoint wherever the
/// AU-DB soundness conditions in the module docs hold. Every condition
/// additionally requires that all operators before the breaker are
/// selections, so the breaker's input columns are exactly the source
/// columns (same indices, same statistics).
fn pushdown_selects(
    ops: &mut [Op],
    stats: &TableStats,
    src_arity: usize,
    rules: &mut Vec<AppliedRule>,
) {
    loop {
        let mut swapped = false;
        for i in 0..ops.len().saturating_sub(1) {
            if !ops[..i].iter().all(|o| matches!(o, Op::Select { .. })) {
                continue;
            }
            let Op::Select { pred } = &ops[i + 1] else {
                continue;
            };
            let fired =
                match &ops[i] {
                    Op::Sort { order, .. } => sort_pushdown_reason(pred, order, stats, src_arity)
                        .map(|reason| AppliedRule {
                            rule: "pushdown-select-below-sort",
                            reason,
                        }),
                    Op::TopK { order, .. } => sort_pushdown_reason(pred, order, stats, src_arity)
                        .map(|reason| AppliedRule {
                            rule: "pushdown-select-below-topk",
                            reason,
                        }),
                    Op::Window { spec, .. } => window_pushdown_reason(pred, spec, stats, src_arity)
                        .map(|reason| AppliedRule {
                            rule: "pushdown-select-below-window",
                            reason,
                        }),
                    _ => None,
                };
            if let Some(rule) = fired {
                rules.push(rule);
                ops.swap(i, i + 1);
                swapped = true;
                break;
            }
        }
        if !swapped {
            return;
        }
    }
}

/// `Some(col)` iff the predicate is a keep-small comparison
/// `Col(col) < Lit` / `Col(col) ≤ Lit` with a certain literal.
fn keep_small_col(pred: &RangeExpr) -> Option<usize> {
    let RangeExpr::Cmp(op, a, b) = pred else {
        return None;
    };
    if !matches!(op, CmpOp::Lt | CmpOp::Le) {
        return None;
    }
    match (a.as_ref(), b.as_ref()) {
        (RangeExpr::Col(c), RangeExpr::Lit(v)) if v.is_certain() => Some(*c),
        _ => None,
    }
}

/// Soundness check for pushing a select below sort/top-k: keep-small on
/// the fully-certain leading order column (see module docs). Returns the
/// reason string when sound.
fn sort_pushdown_reason(
    pred: &RangeExpr,
    order: &[usize],
    stats: &TableStats,
    src_arity: usize,
) -> Option<String> {
    let c = keep_small_col(pred)?;
    if c >= src_arity {
        return None; // references the appended position column
    }
    if order.first() != Some(&c) {
        return None;
    }
    if !stats.cols.get(c)?.all_certain() {
        return None;
    }
    Some(format!(
        "keep-small predicate on certain leading order column #{c}: \
         dropped rows sort strictly after every kept row, so kept \
         position bounds are unchanged"
    ))
}

/// Soundness check for pushing a select below a window (see module docs):
/// a `[0, 0]` frame, or a certain partition-constant predicate.
fn window_pushdown_reason(
    pred: &RangeExpr,
    spec: &AuWindowSpec,
    stats: &TableStats,
    src_arity: usize,
) -> Option<String> {
    let mut cols = Vec::new();
    expr_cols(pred, &mut cols);
    if cols.iter().any(|&c| c >= src_arity) {
        return None; // references the appended aggregate column
    }
    if spec.lower == 0 && spec.upper == 0 {
        return Some(
            "frame [0, 0]: each row's aggregate depends only on itself, \
             so dropping other rows cannot change it"
                .to_string(),
        );
    }
    let partition_only = cols.iter().all(|c| spec.partition.contains(c));
    let all_certain = cols
        .iter()
        .all(|&c| stats.cols.get(c).is_some_and(|s| s.all_certain()));
    if partition_only && all_certain && expr_lits_certain(pred) {
        return Some(
            "predicate over fully-certain PARTITION BY columns with \
             certain literals: whole partitions are kept or dropped, \
             surviving frames are intact"
                .to_string(),
        );
    }
    None
}

/// Collect every column index an expression references.
fn expr_cols(e: &RangeExpr, out: &mut Vec<usize>) {
    match e {
        RangeExpr::Col(i) => out.push(*i),
        RangeExpr::Lit(_) => {}
        RangeExpr::Neg(a) | RangeExpr::Not(a) => expr_cols(a, out),
        RangeExpr::Add(a, b)
        | RangeExpr::Sub(a, b)
        | RangeExpr::Mul(a, b)
        | RangeExpr::And(a, b)
        | RangeExpr::Or(a, b)
        | RangeExpr::Cmp(_, a, b) => {
            expr_cols(a, out);
            expr_cols(b, out);
        }
    }
}

/// True iff every literal in the expression is a certain range.
fn expr_lits_certain(e: &RangeExpr) -> bool {
    match e {
        RangeExpr::Col(_) => true,
        RangeExpr::Lit(v) => v.is_certain(),
        RangeExpr::Neg(a) | RangeExpr::Not(a) => expr_lits_certain(a),
        RangeExpr::Add(a, b)
        | RangeExpr::Sub(a, b)
        | RangeExpr::Mul(a, b)
        | RangeExpr::And(a, b)
        | RangeExpr::Or(a, b)
        | RangeExpr::Cmp(_, a, b) => expr_lits_certain(a) && expr_lits_certain(b),
    }
}

// ---------------------------------------------------------------------
// Pass 2: selectivity-based select reordering
// ---------------------------------------------------------------------

/// Stably re-sort the leading run of selections by estimated selectivity,
/// most selective first. Sound because adjacent AU-DB selections commute:
/// `Mult3::filter` multiplies componentwise.
fn reorder_selects(ops: &mut [Op], stats: &TableStats, rules: &mut Vec<AppliedRule>) {
    let k = ops
        .iter()
        .take_while(|o| matches!(o, Op::Select { .. }))
        .count();
    if k < 2 {
        return;
    }
    let mut run: Vec<(f64, Op)> = ops[..k]
        .iter()
        .map(|op| {
            let Op::Select { pred } = op else {
                unreachable!()
            };
            (estimate_selectivity(pred, stats), op.clone())
        })
        .collect();
    let before: Vec<f64> = run.iter().map(|(s, _)| *s).collect();
    run.sort_by(|a, b| a.0.total_cmp(&b.0));
    let after: Vec<f64> = run.iter().map(|(s, _)| *s).collect();
    if before == after {
        return;
    }
    for (slot, (_, op)) in ops[..k].iter_mut().zip(run) {
        *slot = op;
    }
    rules.push(AppliedRule {
        rule: "reorder-selects",
        reason: format!("estimated selectivities {before:.2?} re-sorted ascending to {after:.2?}"),
    });
}

// ---------------------------------------------------------------------
// Pass 3: dead-column pruning
// ---------------------------------------------------------------------

/// Project away source columns no downstream operator reads and that
/// cannot reach the output schema, inserting one `Project` right after
/// the leading selections and remapping every later column index.
fn prune_dead_columns(
    ops: &mut Vec<Op>,
    src_schema: &audb_rel::Schema,
    rules: &mut Vec<AppliedRule>,
) {
    let src_arity = src_schema.arity();
    let p = ops
        .iter()
        .take_while(|o| matches!(o, Op::Select { .. }))
        .count();
    if p == ops.len() {
        return; // no downstream op: the full source schema is the output
    }
    if matches!(ops[p], Op::Project { .. } | Op::ProjectExprs { .. }) {
        return; // the plan already prunes at the first opportunity
    }

    // Walk ops[p..] tracking, for every current column, which source
    // column it passes through unchanged (None for appended/computed
    // columns), and mark every source column any operator reads.
    let mut used = vec![false; src_arity];
    let mut origin: Vec<Option<usize>> = (0..src_arity).map(Some).collect();
    let mark = |used: &mut Vec<bool>, o: Option<usize>| {
        if let Some(c) = o {
            used[c] = true;
        }
    };
    for op in &ops[p..] {
        match op {
            Op::Select { pred } => {
                let mut cols = Vec::new();
                expr_cols(pred, &mut cols);
                for c in cols {
                    mark(&mut used, origin[c]);
                }
            }
            Op::Project { cols } => {
                for &c in cols {
                    mark(&mut used, origin[c]);
                }
                origin = cols.iter().map(|&c| origin[c]).collect();
            }
            Op::ProjectExprs { exprs } => {
                for (e, _) in exprs {
                    let mut cols = Vec::new();
                    expr_cols(e, &mut cols);
                    for c in cols {
                        mark(&mut used, origin[c]);
                    }
                }
                origin = exprs
                    .iter()
                    .map(|(e, _)| match e {
                        RangeExpr::Col(i) => origin[*i],
                        _ => None,
                    })
                    .collect();
            }
            Op::Sort { order, .. } | Op::TopK { order, .. } => {
                for &c in order {
                    mark(&mut used, origin[c]);
                }
                origin.push(None);
            }
            Op::Window { spec, agg, .. } => {
                for &c in spec.order.iter().chain(&spec.partition) {
                    mark(&mut used, origin[c]);
                }
                if let WinAgg::Sum(c) | WinAgg::Min(c) | WinAgg::Max(c) | WinAgg::Avg(c) = agg {
                    mark(&mut used, origin[*c]);
                }
                origin.push(None);
            }
        }
    }
    // Whatever still maps to a source column reaches the output schema.
    for &o in &origin {
        mark(&mut used, o);
    }

    let live: Vec<usize> = (0..src_arity).filter(|&c| used[c]).collect();
    if live.len() == src_arity || live.is_empty() {
        return;
    }

    // Remap ops[p..] through the pruned schema: `m[old] = Some(new)` for
    // surviving columns at the current point in the chain.
    let mut m: Vec<Option<usize>> = vec![None; src_arity];
    for (new, &old) in live.iter().enumerate() {
        m[old] = Some(new);
    }
    let mut new_arity = live.len();
    let mut tail: Vec<Op> = Vec::with_capacity(ops.len() - p);
    for op in &ops[p..] {
        let remapped = match op {
            Op::Select { pred } => {
                let Some(pred) = remap_expr(pred, &m) else {
                    return;
                };
                Op::Select { pred }
            }
            Op::Project { cols } => {
                let Some(cols) = remap_indices(cols, &m) else {
                    return;
                };
                new_arity = cols.len();
                m = (0..new_arity).map(Some).collect();
                Op::Project { cols }
            }
            Op::ProjectExprs { exprs } => {
                let mut out = Vec::with_capacity(exprs.len());
                for (e, n) in exprs {
                    let Some(e) = remap_expr(e, &m) else {
                        return;
                    };
                    out.push((e, n.clone()));
                }
                new_arity = out.len();
                m = (0..new_arity).map(Some).collect();
                Op::ProjectExprs { exprs: out }
            }
            Op::Sort { order, pos_name } => {
                let Some(order) = remap_indices(order, &m) else {
                    return;
                };
                m.push(Some(new_arity));
                new_arity += 1;
                Op::Sort {
                    order,
                    pos_name: pos_name.clone(),
                }
            }
            Op::TopK { order, k, pos_name } => {
                let Some(order) = remap_indices(order, &m) else {
                    return;
                };
                m.push(Some(new_arity));
                new_arity += 1;
                Op::TopK {
                    order,
                    k: *k,
                    pos_name: pos_name.clone(),
                }
            }
            Op::Window {
                spec,
                agg,
                out_name,
            } => {
                let (Some(order), Some(partition)) = (
                    remap_indices(&spec.order, &m),
                    remap_indices(&spec.partition, &m),
                ) else {
                    return;
                };
                let remap_agg = |c: usize| m.get(c).copied().flatten();
                let agg = match agg {
                    WinAgg::Sum(c) => match remap_agg(*c) {
                        Some(c) => WinAgg::Sum(c),
                        None => return,
                    },
                    WinAgg::Min(c) => match remap_agg(*c) {
                        Some(c) => WinAgg::Min(c),
                        None => return,
                    },
                    WinAgg::Max(c) => match remap_agg(*c) {
                        Some(c) => WinAgg::Max(c),
                        None => return,
                    },
                    WinAgg::Avg(c) => match remap_agg(*c) {
                        Some(c) => WinAgg::Avg(c),
                        None => return,
                    },
                    WinAgg::Count => WinAgg::Count,
                };
                m.push(Some(new_arity));
                new_arity += 1;
                Op::Window {
                    spec: AuWindowSpec::rows(order, spec.lower, spec.upper).partition_by(partition),
                    agg,
                    out_name: out_name.clone(),
                }
            }
        };
        tail.push(remapped);
    }

    let dropped: Vec<&str> = (0..src_arity)
        .filter(|&c| !used[c])
        .map(|c| src_schema.cols()[c].as_str())
        .collect();
    let mut rewritten = ops[..p].to_vec();
    rewritten.push(Op::Project { cols: live });
    rewritten.extend(tail);
    *ops = rewritten;
    rules.push(AppliedRule {
        rule: "prune-dead-columns",
        reason: format!("source columns {dropped:?} are never read and cannot reach the output"),
    });
}

/// Remap a list of column indices; `None` if any column was pruned
/// (a pass bug — the caller aborts the pass, never corrupts the plan).
fn remap_indices(idxs: &[usize], m: &[Option<usize>]) -> Option<Vec<usize>> {
    idxs.iter().map(|&c| m.get(c).copied().flatten()).collect()
}

/// Remap every column reference in an expression.
fn remap_expr(e: &RangeExpr, m: &[Option<usize>]) -> Option<RangeExpr> {
    Some(match e {
        RangeExpr::Col(i) => RangeExpr::Col(m.get(*i).copied().flatten()?),
        RangeExpr::Lit(v) => RangeExpr::Lit(v.clone()),
        RangeExpr::Neg(a) => RangeExpr::Neg(Box::new(remap_expr(a, m)?)),
        RangeExpr::Not(a) => RangeExpr::Not(Box::new(remap_expr(a, m)?)),
        RangeExpr::Add(a, b) => {
            RangeExpr::Add(Box::new(remap_expr(a, m)?), Box::new(remap_expr(b, m)?))
        }
        RangeExpr::Sub(a, b) => {
            RangeExpr::Sub(Box::new(remap_expr(a, m)?), Box::new(remap_expr(b, m)?))
        }
        RangeExpr::Mul(a, b) => {
            RangeExpr::Mul(Box::new(remap_expr(a, m)?), Box::new(remap_expr(b, m)?))
        }
        RangeExpr::And(a, b) => {
            RangeExpr::And(Box::new(remap_expr(a, m)?), Box::new(remap_expr(b, m)?))
        }
        RangeExpr::Or(a, b) => {
            RangeExpr::Or(Box::new(remap_expr(a, m)?), Box::new(remap_expr(b, m)?))
        }
        RangeExpr::Cmp(op, a, b) => RangeExpr::Cmp(
            *op,
            Box::new(remap_expr(a, m)?),
            Box::new(remap_expr(b, m)?),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_core::{AuRelation, AuTuple, Mult3, RangeValue};
    use audb_rel::Schema;

    /// `n` rows with a certain increasing key `t`, an uncertain value `v`
    /// and a certain group column `g` (`t mod 4`).
    fn rel(n: i64) -> AuRelation {
        AuRelation::from_rows(
            Schema::new(["t", "v", "g"]),
            (0..n).map(|i| {
                (
                    AuTuple::new([
                        RangeValue::certain(i),
                        RangeValue::new(i - 1, i, i + 1),
                        RangeValue::certain(i % 4),
                    ]),
                    Mult3::ONE,
                )
            }),
        )
    }

    fn op_names(plan: &Plan) -> Vec<&'static str> {
        plan.ops().iter().map(|o| o.name()).collect()
    }

    #[test]
    fn keep_small_select_pushes_below_sort_and_topk() {
        let plan = Query::scan(rel(8))
            .sort_by(["t"])
            .select(RangeExpr::col(0).lt(RangeExpr::lit(4)))
            .build()
            .unwrap();
        let opt = optimize(&plan);
        assert_eq!(op_names(&opt), ["select", "sort"]);
        let info = opt.opt().expect("rules applied");
        assert_eq!(info.rules[0].rule, "pushdown-select-below-sort");
        assert_eq!(info.before.len(), 2);

        let plan = Query::scan(rel(8))
            .sort_by(["t"])
            .topk(5)
            .select(RangeExpr::col(0).le(RangeExpr::lit(3)))
            .build()
            .unwrap();
        let opt = optimize(&plan);
        assert_eq!(op_names(&opt), ["select", "topk"]);
    }

    #[test]
    fn pushdown_refuses_unsound_shapes() {
        // Uncertain order column: dropped rows could sort before kept ones.
        let plan = Query::scan(rel(8))
            .sort_by(["v"])
            .select(RangeExpr::col(1).lt(RangeExpr::lit(4)))
            .build()
            .unwrap();
        assert_eq!(op_names(&optimize(&plan)), ["sort", "select"]);

        // Predicate on a non-leading order column.
        let plan = Query::scan(rel(8))
            .sort_by(["t", "g"])
            .select(RangeExpr::col(2).lt(RangeExpr::lit(2)))
            .build()
            .unwrap();
        assert_eq!(op_names(&optimize(&plan)), ["sort", "select"]);

        // Predicate on the appended position column itself.
        let plan = Query::scan(rel(8))
            .sort_by(["t"])
            .select(RangeExpr::col(3).lt(RangeExpr::lit(4)))
            .build()
            .unwrap();
        assert_eq!(op_names(&optimize(&plan)), ["sort", "select"]);

        // Keep-large shape (lit < col) is not the keep-small rule.
        let plan = Query::scan(rel(8))
            .sort_by(["t"])
            .select(RangeExpr::lit(4).lt(RangeExpr::col(0)))
            .build()
            .unwrap();
        assert_eq!(op_names(&optimize(&plan)), ["sort", "select"]);
    }

    #[test]
    fn window_pushdown_fires_on_partition_and_point_frames() {
        // Certain partition-column predicate pushes below a real frame.
        let plan = Query::scan(rel(8))
            .window(
                WindowSpec::rows(-1, 0)
                    .order_by(["t"])
                    .partition_by(["g"])
                    .aggregate(Agg::sum("v"))
                    .output("w"),
            )
            .select(RangeExpr::col(2).lt(RangeExpr::lit(2)))
            .build()
            .unwrap();
        let opt = optimize(&plan);
        assert_eq!(op_names(&opt), ["select", "window"]);
        assert_eq!(
            opt.opt().unwrap().rules[0].rule,
            "pushdown-select-below-window"
        );

        // [0, 0] frame admits any pre-window predicate.
        let plan = Query::scan(rel(8))
            .window(
                WindowSpec::rows(0, 0)
                    .order_by(["t"])
                    .aggregate(Agg::sum("v"))
                    .output("w"),
            )
            .select(RangeExpr::col(1).lt(RangeExpr::lit(4)))
            .build()
            .unwrap();
        assert_eq!(op_names(&optimize(&plan)), ["select", "window"]);
    }

    #[test]
    fn window_pushdown_refuses_frame_unsafe_predicates() {
        // Non-partition predicate under a real frame: dropping rows would
        // change surviving rows' frames.
        let plan = Query::scan(rel(8))
            .window(
                WindowSpec::rows(-1, 0)
                    .order_by(["t"])
                    .partition_by(["g"])
                    .aggregate(Agg::sum("v"))
                    .output("w"),
            )
            .select(RangeExpr::col(0).lt(RangeExpr::lit(4)))
            .build()
            .unwrap();
        assert_eq!(op_names(&optimize(&plan)), ["window", "select"]);

        // Uncertain partition column: partition membership is uncertain.
        let plan = Query::scan(rel(8))
            .window(
                WindowSpec::rows(-1, 0)
                    .order_by(["t"])
                    .partition_by(["v"])
                    .aggregate(Agg::count())
                    .output("w"),
            )
            .select(RangeExpr::col(1).lt(RangeExpr::lit(4)))
            .build()
            .unwrap();
        assert_eq!(op_names(&optimize(&plan)), ["window", "select"]);

        // Predicate on the aggregate output can never move below.
        let plan = Query::scan(rel(8))
            .window(
                WindowSpec::rows(0, 0)
                    .order_by(["t"])
                    .aggregate(Agg::count())
                    .output("w"),
            )
            .select(RangeExpr::col(3).lt(RangeExpr::lit(4)))
            .build()
            .unwrap();
        assert_eq!(op_names(&optimize(&plan)), ["window", "select"]);
    }

    #[test]
    fn selects_reorder_by_estimated_selectivity() {
        use audb_core::ZONE_ROWS;
        let n = 2 * ZONE_ROWS as i64; // two zones so estimates separate
        let wide = RangeExpr::col(0).lt(RangeExpr::lit(n)); // keeps all
        let narrow = RangeExpr::col(0).lt(RangeExpr::lit(4)); // keeps zone 0 partially
        let plan = Query::scan(rel(n))
            .select(wide.clone())
            .select(narrow.clone())
            .build()
            .unwrap();
        let opt = optimize(&plan);
        assert_eq!(
            opt.ops()[0],
            Op::Select {
                pred: narrow.clone()
            }
        );
        assert_eq!(opt.ops()[1], Op::Select { pred: wide.clone() });
        let info = opt.opt().unwrap();
        assert_eq!(info.rules[0].rule, "reorder-selects");

        // Already-ordered selects are left alone (stable, no rule).
        let plan = Query::scan(rel(n))
            .select(narrow)
            .select(wide)
            .build()
            .unwrap();
        assert!(optimize(&plan).opt().is_none());
    }

    #[test]
    fn dead_columns_are_pruned_behind_a_projection() {
        // `v` is never read: select on t, sort by t, project t + pos.
        let plan = Query::scan(rel(8))
            .select(RangeExpr::col(0).lt(RangeExpr::lit(6)))
            .sort_by(["t"])
            .project(["t", "pos"])
            .build()
            .unwrap();
        let opt = optimize(&plan);
        assert_eq!(op_names(&opt), ["select", "project", "sort", "project"]);
        assert_eq!(opt.ops()[1], Op::Project { cols: vec![0] });
        assert!(matches!(&opt.ops()[2], Op::Sort { order, .. } if order == &[0]));
        assert_eq!(opt.ops()[3], Op::Project { cols: vec![0, 1] });
        assert_eq!(opt.schema().cols(), plan.schema().cols());
        let info = opt.opt().unwrap();
        assert!(info.rules.iter().any(|r| r.rule == "prune-dead-columns"));

        // Without a projection every column reaches the output: no-op.
        let plan = Query::scan(rel(8)).sort_by(["t"]).build().unwrap();
        assert!(optimize(&plan).opt().is_none());
    }

    #[test]
    fn optimized_plans_share_source_and_caches() {
        let plan = Query::scan(rel(8))
            .sort_by(["t"])
            .select(RangeExpr::col(0).lt(RangeExpr::lit(4)))
            .build()
            .unwrap();
        let stats_before = Arc::clone(plan.source_stats());
        let opt = optimize(&plan);
        assert!(Arc::ptr_eq(plan.source_arc(), opt.source_arc()));
        assert!(Arc::ptr_eq(&stats_before, opt.source_stats()));
    }
}
