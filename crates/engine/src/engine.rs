//! The [`Engine`] handle: backend selection, per-query [`Explain`] output,
//! and cross-backend [`Engine::run_all`] agreement runs.

use crate::backend::{Backend, Native, Reference, Rewrite};
use crate::error::EngineError;
use crate::exec::{self, ExecMode, ExecTrace, OpTiming, DEFAULT_BATCH_SIZE};
use crate::optimize::OptInfo;
use crate::plan::{Op, Plan};
use audb_core::{estimate_selectivity, AuRelation, CmpSemantics};
// lint: allow(no-direct-backend-call) -- JoinStrategy is a config knob on Engine itself, not an execution entry point
use audb_rewrite::JoinStrategy;
use std::fmt;
use std::time::Duration;

/// Which physical implementation executes plans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendChoice {
    /// Quadratic Defs. 2–3 reference semantics (`audb-core`).
    Reference,
    /// One-pass Sec. 8 algorithms (`audb-native`) — the paper's `Imp`.
    Native,
    /// Sec. 7 SQL-style rewrites over the relational encoding
    /// (`audb-rewrite`) — the paper's `Rewr`.
    Rewrite,
}

impl BackendChoice {
    /// All backends, in baseline-first order (used by
    /// [`Engine::run_all`]).
    pub const ALL: [BackendChoice; 3] = [
        BackendChoice::Reference,
        BackendChoice::Native,
        BackendChoice::Rewrite,
    ];
}

impl fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendChoice::Reference => write!(f, "reference"),
            BackendChoice::Native => write!(f, "native"),
            BackendChoice::Rewrite => write!(f, "rewrite"),
        }
    }
}

/// The single entry point for every method: owns backend selection (with
/// the documented fallback rules), executes validated [`Plan`]s, explains
/// them, and cross-checks all backends against each other.
///
/// ```
/// use audb_engine::{Engine, Query};
/// use audb_core::{AuRelation, AuTuple, Mult3, RangeValue};
/// use audb_rel::Schema;
///
/// let rel = AuRelation::from_rows(
///     Schema::new(["term", "sales"]),
///     [
///         (AuTuple::from([RangeValue::certain(1i64), RangeValue::new(2, 2, 3)]), Mult3::ONE),
///         (AuTuple::from([RangeValue::certain(2i64), RangeValue::new(2, 3, 3)]), Mult3::ONE),
///     ],
/// );
/// let plan = Query::scan(rel).sort_by(["sales"]).topk(1).build()?;
/// let engine = Engine::native();
/// let top = engine.execute(&plan)?;                // one backend
/// let agreed = engine.run_all(&plan)?;             // all three + agreement
/// assert!(top.bag_eq(&agreed.output));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Engine {
    choice: BackendChoice,
    semantics: CmpSemantics,
    join_strategy: JoinStrategy,
    batch_size: usize,
    exec_mode: Option<ExecMode>,
    pruning: bool,
}

/// Below this many source rows the pipelined executor's batching overhead
/// outweighs its wins: the cost model picks materialized execution.
pub const COST_PIPELINE_MIN_ROWS: usize = 512;

/// At and above this many source rows the cost model widens batches to
/// [`COST_LARGE_BATCH_SIZE`] (fewer dispatches; the working set no longer
/// fits in cache either way).
pub const COST_LARGE_ROWS: usize = 65_536;

/// Batch size the cost model picks for [`COST_LARGE_ROWS`]-sized inputs.
pub const COST_LARGE_BATCH_SIZE: usize = 4096;

/// The cost model's decision for one `(plan, backend)` pair: how the plan
/// will execute and why.
#[derive(Clone, Debug)]
pub struct ExecChoice {
    /// Chosen execution mode.
    pub mode: ExecMode,
    /// Chosen batch size (meaningful under pipelined execution).
    pub batch_size: usize,
    /// Why — rendered on `explain`'s `cost:` line.
    pub reason: String,
}

/// Stats-driven execution choice, shared by [`Engine`] and the default
/// [`Backend::execute_traced`]: a forced mode always wins; a backend that
/// prefers materialized execution (the reference oracle) keeps it; tiny
/// inputs run materialized; everything else pipelines, with the batch
/// size widened for large inputs unless the caller pinned one.
pub fn choose_exec(
    plan: &Plan,
    preferred: ExecMode,
    forced: Option<ExecMode>,
    batch_size: usize,
) -> ExecChoice {
    let stats = plan.source_stats();
    let rows = stats.rows;
    let selectivity: f64 = plan
        .ops()
        .iter()
        .take_while(|op| matches!(op, Op::Select { .. }))
        .map(|op| match op {
            Op::Select { pred } => estimate_selectivity(pred, stats),
            _ => unreachable!(),
        })
        .product();
    let breakers = plan
        .ops()
        .iter()
        .filter(|op| matches!(op, Op::Sort { .. } | Op::TopK { .. } | Op::Window { .. }))
        .count();
    let detail = format!("rows={rows} · est. selectivity {selectivity:.2} · {breakers} breaker(s)");
    if let Some(mode) = forced {
        return ExecChoice {
            mode,
            batch_size,
            reason: format!("{detail} → {mode} (forced via with_exec_mode)"),
        };
    }
    if preferred == ExecMode::Materialized {
        return ExecChoice {
            mode: ExecMode::Materialized,
            batch_size,
            reason: format!("{detail} → materialized (backend runs operator-at-a-time)"),
        };
    }
    if rows < COST_PIPELINE_MIN_ROWS {
        return ExecChoice {
            mode: ExecMode::Materialized,
            batch_size,
            reason: format!(
                "{detail} → materialized (below the {COST_PIPELINE_MIN_ROWS}-row \
                 pipelining threshold)"
            ),
        };
    }
    let batch = if batch_size != DEFAULT_BATCH_SIZE {
        batch_size // the caller pinned a size; respect it
    } else if rows >= COST_LARGE_ROWS {
        COST_LARGE_BATCH_SIZE
    } else {
        DEFAULT_BATCH_SIZE
    };
    ExecChoice {
        mode: ExecMode::Pipelined,
        batch_size: batch,
        reason: format!("{detail} → pipelined · batch {batch}"),
    }
}

impl Default for Engine {
    /// The native backend with default settings — the usual production
    /// choice (used by `Session::default()`).
    fn default() -> Self {
        Engine::native()
    }
}

impl Engine {
    /// An engine executing on the given backend with default settings
    /// (interval-lex comparison, interval-index rewrite joins).
    pub fn new(choice: BackendChoice) -> Self {
        Engine {
            choice,
            semantics: CmpSemantics::default(),
            join_strategy: JoinStrategy::default(),
            batch_size: DEFAULT_BATCH_SIZE,
            exec_mode: None,
            pruning: true,
        }
    }

    /// The quadratic reference backend.
    pub fn reference() -> Self {
        Engine::new(BackendChoice::Reference)
    }

    /// The one-pass native backend (the usual production choice).
    pub fn native() -> Self {
        Engine::new(BackendChoice::Native)
    }

    /// The SQL-rewrite backend.
    pub fn rewrite() -> Self {
        Engine::new(BackendChoice::Rewrite)
    }

    /// Override the uncertain-comparison semantics. Only the reference
    /// implements [`CmpSemantics::Syntactic`]; requesting it reroutes every
    /// plan to the reference backend (a fallback visible in
    /// [`Engine::explain`]).
    pub fn with_semantics(mut self, semantics: CmpSemantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Override the rewrite backend's window join strategy.
    pub fn with_join_strategy(mut self, strategy: JoinStrategy) -> Self {
        self.join_strategy = strategy;
        self
    }

    /// Override the pipeline executor's batch size (default
    /// [`DEFAULT_BATCH_SIZE`]). Any batch size produces the same bounds —
    /// this knob trades per-batch dispatch against cache residency, and
    /// lets tests pin degenerate sizes (1, n, > n).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Force an execution mode for every backend, overriding
    /// [`Backend::preferred_mode`]. `Pipelined` runs even the reference
    /// backend through the batch-streaming executor; `Materialized` forces
    /// the original operator-at-a-time loop (the comparison arm of the
    /// pipelined-≡-materialized property test and of `repro bench`).
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = Some(mode);
        self
    }

    /// Enable or disable zone-map batch pruning (default: enabled). The
    /// disabled engine is the within-run comparison baseline of
    /// `repro bench` and the pruned ≡ unpruned property test.
    pub fn with_pruning(mut self, pruning: bool) -> Self {
        self.pruning = pruning;
        self
    }

    /// The pipeline executor's batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// The execution mode a given backend is *capable* of preferring on
    /// this engine: the forced override when [`Engine::with_exec_mode`]
    /// was called, the backend's capability hint otherwise. The actual
    /// per-plan decision is made by `choose_exec` from source
    /// statistics; this method reports the pre-cost-model ceiling.
    pub fn exec_mode_for(&self, backend: &dyn Backend) -> ExecMode {
        self.exec_mode.unwrap_or_else(|| backend.preferred_mode())
    }

    /// The cost model's decision for this plan on this engine's effective
    /// backend.
    pub fn choose_exec(&self, plan: &Plan) -> ExecChoice {
        let backend = self.backend_for(self.effective());
        choose_exec(
            plan,
            backend.preferred_mode(),
            self.exec_mode,
            self.batch_size,
        )
    }

    /// The backend the engine was asked for.
    pub fn requested(&self) -> BackendChoice {
        self.choice
    }

    /// The backend that will actually run, after fallback rules: syntactic
    /// comparison semantics exist only in the reference implementation.
    pub fn effective(&self) -> BackendChoice {
        if self.semantics != CmpSemantics::IntervalLex {
            BackendChoice::Reference
        } else {
            self.choice
        }
    }

    /// Why the effective backend differs from the requested one, if it
    /// does — the reason string `explain()` renders.
    pub fn fallback_reason(&self) -> Option<String> {
        if self.effective() != self.choice {
            Some(format!(
                "{:?} comparison semantics are implemented by the reference backend only",
                self.semantics
            ))
        } else {
            None
        }
    }

    fn backend_for(&self, choice: BackendChoice) -> Box<dyn Backend> {
        match choice {
            BackendChoice::Reference => Box::new(Reference {
                semantics: self.semantics,
            }),
            BackendChoice::Native => Box::new(Native),
            BackendChoice::Rewrite => Box::new(Rewrite {
                strategy: self.join_strategy,
            }),
        }
    }

    /// Execute a plan on the effective backend (through the physical
    /// execution layer, in the backend's — or the forced — mode).
    pub fn execute(&self, plan: &Plan) -> Result<AuRelation, EngineError> {
        self.execute_traced(plan).map(|(rel, _)| rel)
    }

    /// Execute a plan, also returning the executor's per-operator wall
    /// times and batch counts.
    pub fn execute_traced(&self, plan: &Plan) -> Result<(AuRelation, ExecTrace), EngineError> {
        let backend = self.backend_for(self.effective());
        let choice = choose_exec(
            plan,
            backend.preferred_mode(),
            self.exec_mode,
            self.batch_size,
        );
        exec::execute_with(
            &*backend,
            plan,
            choice.mode,
            choice.batch_size,
            self.pruning,
        )
    }

    /// Describe how this engine would run the plan: chosen backend (after
    /// fallbacks), operator chain, per-operator schemas and cost notes.
    pub fn explain(&self, plan: &Plan) -> Explain {
        let effective = self.effective();
        let backend = self.backend_for(effective);
        let mut steps = Vec::with_capacity(plan.ops().len() + 1);
        steps.push(ExplainStep {
            op: format!("scan [{} rows]", plan.source().len()),
            schema: plan.schemas()[0].to_string(),
            note: backend.scan_note(),
        });
        for (op, schema) in plan.ops().iter().zip(&plan.schemas()[1..]) {
            steps.push(ExplainStep {
                op: op.to_string(),
                schema: schema.to_string(),
                note: backend.op_note(op),
            });
        }
        let choice = choose_exec(
            plan,
            backend.preferred_mode(),
            self.exec_mode,
            self.batch_size,
        );
        let pipelines = match choice.mode {
            ExecMode::Pipelined => exec::lower(plan).iter().map(|p| p.describe(plan)).collect(),
            ExecMode::Materialized => Vec::new(),
        };
        Explain {
            requested: self.choice,
            backend: effective,
            fallback: self.fallback_reason(),
            sql: plan.sql().map(str::to_string),
            steps,
            opt: plan.opt().cloned(),
            cost: choice.reason,
            mode: choice.mode,
            batch_size: choice.batch_size,
            pipelines,
        }
    }

    /// Execute the plan on **every** backend (with this engine's
    /// join-strategy setting), timing each run, and assert that all
    /// outputs agree bag-wise — the cross-implementation invariant the
    /// paper's evaluation rests on. Returns the agreed output plus
    /// per-backend timings; disagreement is an
    /// [`EngineError::BackendDisagreement`].
    ///
    /// The invariant is defined under [`CmpSemantics::IntervalLex`] — the
    /// only semantics all three methods implement — so `run_all` pins the
    /// reference to it regardless of [`Engine::with_semantics`] (under
    /// `Syntactic`, every backend reroutes to the same reference run and
    /// there would be nothing cross-implementation to compare).
    pub fn run_all(&self, plan: &Plan) -> Result<RunAll, EngineError> {
        let comparable = Engine {
            semantics: CmpSemantics::IntervalLex,
            ..*self
        };
        let mut output: Option<AuRelation> = None;
        let mut runs = Vec::with_capacity(BackendChoice::ALL.len());
        for choice in BackendChoice::ALL {
            let backend = comparable.backend_for(choice);
            let exec_choice = choose_exec(
                plan,
                backend.preferred_mode(),
                comparable.exec_mode,
                comparable.batch_size,
            );
            let start = std::time::Instant::now();
            let (out, trace) = exec::execute_with(
                &*backend,
                plan,
                exec_choice.mode,
                exec_choice.batch_size,
                comparable.pruning,
            )?;
            let elapsed = start.elapsed();
            runs.push(BackendRun {
                backend: choice,
                mode: exec_choice.mode,
                elapsed,
                rows: out.len(),
                ops: trace.ops,
            });
            match &output {
                None => output = Some(out),
                Some(baseline) => {
                    if !baseline.bag_eq(&out) {
                        return Err(EngineError::BackendDisagreement {
                            baseline: "reference",
                            other: backend.name(),
                            baseline_output: baseline.to_string(),
                            other_output: out.to_string(),
                        });
                    }
                }
            }
        }
        Ok(RunAll {
            output: output.expect("at least one backend ran"),
            runs,
        })
    }
}

/// One backend's timing in a [`RunAll`].
#[derive(Clone, Debug)]
pub struct BackendRun {
    /// Which backend ran.
    pub backend: BackendChoice,
    /// Execution mode the backend ran under.
    pub mode: ExecMode,
    /// Wall-clock execution time of the whole plan.
    pub elapsed: Duration,
    /// Output rows produced (pre-normalization).
    pub rows: usize,
    /// Per-operator wall times and batch counts, in execution order (the
    /// first entry is the scan).
    pub ops: Vec<OpTiming>,
}

/// Result of [`Engine::run_all`]: the agreed output and per-backend
/// timings.
#[derive(Clone, Debug)]
pub struct RunAll {
    /// The (bag-equal) output, as produced by the reference backend.
    pub output: AuRelation,
    /// Per-backend wall-clock timings, in [`BackendChoice::ALL`] order.
    pub runs: Vec<BackendRun>,
}

impl RunAll {
    /// The timing entry for one backend.
    pub fn run(&self, backend: BackendChoice) -> &BackendRun {
        self.runs
            .iter()
            .find(|r| r.backend == backend)
            .expect("run_all executes every backend")
    }
}

/// The stable `run_all` report format (golden-tested in
/// `run_all_report_format_is_stable`):
///
/// ```text
/// all backends agree (N output rows):
///   <backend>  <mode>  <total>
///     · <op label>  <elapsed>  <batches> batches  <rows> rows
/// ```
impl fmt::Display for RunAll {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "all backends agree ({} output rows):", self.output.len())?;
        for r in &self.runs {
            writeln!(
                f,
                "  {:<9} {:<12} {:>12.3?}",
                r.backend.to_string(),
                r.mode.to_string(),
                r.elapsed
            )?;
            for op in &r.ops {
                writeln!(
                    f,
                    "    · {:<26} {:>12.3?}  {:>4} batches {:>7} rows",
                    op.label, op.elapsed, op.batches, op.rows_out
                )?;
            }
        }
        Ok(())
    }
}

/// One step of an [`Explain`].
#[derive(Clone, Debug)]
pub struct ExplainStep {
    /// Operator description.
    pub op: String,
    /// Output schema of the step.
    pub schema: String,
    /// Backend cost/strategy note.
    pub note: String,
}

/// Human-readable plan explanation: originating SQL (when the plan came
/// through the SQL frontend), chosen backend with any fallback reason, and
/// the operator chain with schemas and cost notes.
///
/// The rendered format is stable (tested in `explain_format_is_stable`):
///
/// ```text
/// query:   <sql, whitespace-flattened to one line>       (only when present)
/// backend: <effective>                                   (no fallback)
/// backend: <effective> (requested <requested>; rerouted: <reason>)
///  0. scan [N rows]
///       schema: (...)
///       note:   ...
/// exec:    pipelined · batch 1024 · 2 pipelines          (or `materialized (operator-at-a-time)`)
///       p0: fuse(select · project) ⇒ breaker sort
///       p1: passthrough ⇒ output
/// ```
#[derive(Clone, Debug)]
pub struct Explain {
    /// Backend the engine was configured with.
    pub requested: BackendChoice,
    /// Backend that actually executes (after fallback rules).
    pub backend: BackendChoice,
    /// Why `backend` differs from `requested`, when it does.
    pub fallback: Option<String>,
    /// The SQL text the plan was compiled from, when it came through the
    /// SQL frontend.
    pub sql: Option<String>,
    /// Scan + one step per operator.
    pub steps: Vec<ExplainStep>,
    /// Optimizer provenance when the plan was rewritten: the
    /// pre-optimization operator chain and the applied rules.
    pub opt: Option<OptInfo>,
    /// The cost model's reasoning for the chosen mode and batch size.
    pub cost: String,
    /// Execution mode the plan will run under on this engine.
    pub mode: ExecMode,
    /// Batch size of the pipeline executor.
    pub batch_size: usize,
    /// The lowered physical pipelines (fused stages + breaker
    /// annotations), one rendered line per pipeline; empty under
    /// materialized execution and for scan-only plans.
    pub pipelines: Vec<String>,
}

/// Collapse whitespace runs so a line-wrapped statement renders as one
/// `query:` line (display only — the plan keeps its raw text).
fn one_line(sql: &str) -> String {
    sql.split_whitespace().collect::<Vec<_>>().join(" ")
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(sql) = &self.sql {
            writeln!(f, "query:   {}", one_line(sql))?;
        }
        match &self.fallback {
            None => writeln!(f, "backend: {}", self.backend)?,
            Some(reason) => writeln!(
                f,
                "backend: {} (requested {}; rerouted: {reason})",
                self.backend, self.requested
            )?,
        }
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(f, "{:>2}. {}", i, step.op)?;
            writeln!(f, "      schema: {}", step.schema)?;
            writeln!(f, "      note:   {}", step.note)?;
        }
        if let Some(opt) = &self.opt {
            writeln!(
                f,
                "opt:     {} rewrite{} applied",
                opt.rules.len(),
                if opt.rules.len() == 1 { "" } else { "s" }
            )?;
            writeln!(f, "      before: {}", opt.before.join("  |  "))?;
            let after: Vec<String> = self.steps[1..].iter().map(|s| s.op.clone()).collect();
            writeln!(f, "      after:  {}", after.join("  |  "))?;
            for rule in &opt.rules {
                writeln!(f, "      · {}: {}", rule.rule, rule.reason)?;
            }
        }
        writeln!(f, "cost:    {}", self.cost)?;
        match self.mode {
            ExecMode::Materialized => {
                writeln!(f, "exec:    materialized (operator-at-a-time)")?;
            }
            ExecMode::Pipelined => {
                writeln!(
                    f,
                    "exec:    pipelined · batch {} · {} pipeline{}",
                    self.batch_size,
                    self.pipelines.len(),
                    if self.pipelines.len() == 1 { "" } else { "s" }
                )?;
                for (i, p) in self.pipelines.iter().enumerate() {
                    writeln!(f, "      p{i}: {p}")?;
                }
            }
        }
        Ok(())
    }
}
