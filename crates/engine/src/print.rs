//! The plan pretty-printer: [`Plan`] → SQL text that reparses to the
//! *identical* plan.
//!
//! The printer is the inverse of the binder: it walks the resolved
//! operator chain and packs maximal runs matching the binder's canonical
//! clause order — `select? (window* | project?) (sort [limit])?` — into one
//! SELECT block each, nesting earlier blocks as parenthesized sub-selects.
//! Window and projection operators never share a block (the binder would
//! interleave them), each `Op::Select` gets its own WHERE, and every frame
//! and position-column name is printed explicitly, so
//! `compile(parse(plan_to_sql(p))) ≡ p` operator-for-operator — the
//! round-trip guarantee `tests/sql_roundtrip.rs` property-tests.
//!
//! Known print limitations (documented, not reachable from SQL-built
//! plans): float literals print via Rust's shortest-round-trip `{:?}`,
//! which produces unparseable text for NaN/infinite constants.

use crate::plan::{Op, Plan};
use audb_core::{AuWindowSpec, RangeExpr, RangeValue, WinAgg};
use audb_rel::{CmpOp, Schema, Value};

/// Quote an identifier when needed: keywords (case-insensitively) and
/// anything that is not `[A-Za-z_][A-Za-z0-9_]*` get double quotes.
fn sql_ident(name: &str) -> String {
    let bare = !name.is_empty()
        && name
            .chars()
            .enumerate()
            .all(|(i, c)| c == '_' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit()))
        && !audb_sql::is_keyword(name);
    if bare {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\"\""))
    }
}

fn value_sql(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Bool(true) => "TRUE".to_string(),
        Value::Bool(false) => "FALSE".to_string(),
        Value::Int(i) => i.to_string(),
        // Shortest representation that round-trips through f64 parsing.
        Value::Float(x) => format!("{x:?}"),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

fn range_value_sql(rv: &RangeValue) -> String {
    if rv.is_certain() {
        value_sql(&rv.sg)
    } else {
        format!(
            "RANGE({}, {}, {})",
            value_sql(&rv.lb),
            value_sql(&rv.sg),
            value_sql(&rv.ub)
        )
    }
}

fn cmp_sql(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "<>",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

/// Render a resolved expression. Compound sub-expressions are fully
/// parenthesized — redundant parens cost nothing and make the reparse
/// unambiguous regardless of precedence.
fn expr_sql(e: &RangeExpr, schema: &Schema) -> String {
    match e {
        RangeExpr::Col(i) => sql_ident(&schema.cols()[*i]),
        RangeExpr::Lit(rv) => range_value_sql(rv),
        // The inner parens are load-bearing: `(-5)` would fold into the
        // literal -5 on reparse, but `(-(5))` reparses as Neg(Lit(5)) —
        // keeping Neg-of-literal round-trip exact.
        RangeExpr::Neg(a) => format!("(-({}))", expr_sql(a, schema)),
        RangeExpr::Not(a) => format!("(NOT {})", expr_sql(a, schema)),
        RangeExpr::Add(a, b) => format!("({} + {})", expr_sql(a, schema), expr_sql(b, schema)),
        RangeExpr::Sub(a, b) => format!("({} - {})", expr_sql(a, schema), expr_sql(b, schema)),
        RangeExpr::Mul(a, b) => format!("({} * {})", expr_sql(a, schema), expr_sql(b, schema)),
        RangeExpr::And(a, b) => format!("({} AND {})", expr_sql(a, schema), expr_sql(b, schema)),
        RangeExpr::Or(a, b) => format!("({} OR {})", expr_sql(a, schema), expr_sql(b, schema)),
        RangeExpr::Cmp(op, a, b) => format!(
            "({} {} {})",
            expr_sql(a, schema),
            cmp_sql(*op),
            expr_sql(b, schema)
        ),
    }
}

fn col_list(cols: &[usize], schema: &Schema) -> String {
    cols.iter()
        .map(|&c| sql_ident(&schema.cols()[c]))
        .collect::<Vec<_>>()
        .join(", ")
}

fn frame_bound(offset: i64, following: bool) -> String {
    if offset == 0 {
        "CURRENT ROW".to_string()
    } else if following {
        format!("{offset} FOLLOWING")
    } else {
        format!("{} PRECEDING", -offset)
    }
}

fn window_sql(spec: &AuWindowSpec, agg: WinAgg, out_name: &str, schema: &Schema) -> String {
    let call = match agg {
        WinAgg::Sum(c) => format!("SUM({})", sql_ident(&schema.cols()[c])),
        WinAgg::Count => "COUNT(*)".to_string(),
        WinAgg::Min(c) => format!("MIN({})", sql_ident(&schema.cols()[c])),
        WinAgg::Max(c) => format!("MAX({})", sql_ident(&schema.cols()[c])),
        WinAgg::Avg(c) => format!("AVG({})", sql_ident(&schema.cols()[c])),
    };
    let mut over = String::new();
    if !spec.partition.is_empty() {
        over.push_str(&format!(
            "PARTITION BY {} ",
            col_list(&spec.partition, schema)
        ));
    }
    if !spec.order.is_empty() {
        over.push_str(&format!("ORDER BY {} ", col_list(&spec.order, schema)));
    }
    over.push_str(&format!(
        "ROWS BETWEEN {} AND {}",
        frame_bound(spec.lower, false),
        frame_bound(spec.upper, true)
    ));
    format!("{call} OVER ({over}) AS {}", sql_ident(out_name))
}

/// ` ORDER BY cols [AS pos_name]` — the `AS` is omitted for the default
/// name, which the parser fills back in.
fn order_by_sql(order: &[usize], pos_name: &str, schema: &Schema) -> String {
    let mut s = format!(" ORDER BY {}", col_list(order, schema));
    if pos_name != "pos" {
        s.push_str(&format!(" AS {}", sql_ident(pos_name)));
    }
    s
}

/// Print a plan as SQL over a named source relation. Reparsing (with that
/// name registered to the plan's source) reproduces the identical operator
/// chain and schemas — see [`Plan::same_shape`].
pub fn plan_to_sql(plan: &Plan, table: &str) -> String {
    let ops = plan.ops();
    let schemas = plan.schemas();
    if ops.is_empty() {
        return format!("SELECT * FROM {}", sql_ident(table));
    }
    let mut from = sql_ident(table);
    let mut from_is_atom = true;
    let mut i = 0;
    while i < ops.len() {
        let mut where_sql = String::new();
        let mut windows: Vec<String> = Vec::new();
        let mut list: Option<String> = None;
        let mut tail = String::new();

        if let Op::Select { pred } = &ops[i] {
            where_sql = format!(" WHERE {}", expr_sql(pred, &schemas[i]));
            i += 1;
        }
        while i < ops.len() {
            if let Op::Window {
                spec,
                agg,
                out_name,
            } = &ops[i]
            {
                windows.push(window_sql(spec, *agg, out_name, &schemas[i]));
                i += 1;
            } else {
                break;
            }
        }
        if windows.is_empty() && i < ops.len() {
            match &ops[i] {
                Op::Project { cols } => {
                    list = Some(col_list(cols, &schemas[i]));
                    i += 1;
                }
                Op::ProjectExprs { exprs } => {
                    let s = &schemas[i];
                    list = Some(
                        exprs
                            .iter()
                            .map(|(e, n)| format!("{} AS {}", expr_sql(e, s), sql_ident(n)))
                            .collect::<Vec<_>>()
                            .join(", "),
                    );
                    i += 1;
                }
                _ => {}
            }
        }
        if i < ops.len() {
            match &ops[i] {
                Op::Sort { order, pos_name } => {
                    tail = order_by_sql(order, pos_name, &schemas[i]);
                    i += 1;
                }
                Op::TopK { order, k, pos_name } => {
                    tail = format!("{} LIMIT {k}", order_by_sql(order, pos_name, &schemas[i]));
                    i += 1;
                }
                _ => {}
            }
        }

        let select_list = match (list, windows.is_empty()) {
            (Some(l), _) => l,
            (None, true) => "*".to_string(),
            (None, false) => format!("*, {}", windows.join(", ")),
        };
        let from_part = if from_is_atom {
            from
        } else {
            format!("({from})")
        };
        from = format!("SELECT {select_list} FROM {from_part}{where_sql}{tail}");
        from_is_atom = false;
    }
    from
}

impl Plan {
    /// Print this plan as SQL over a source relation named `table` — the
    /// inverse of `Session::prepare` (round-trip exact; see
    /// [`plan_to_sql`]).
    pub fn to_sql(&self, table: &str) -> String {
        plan_to_sql(self, table)
    }
}

#[cfg(test)]
mod tests {
    use crate::plan::{Agg, Query, WindowSpec};
    use audb_core::{AuRelation, AuTuple, Mult3, RangeExpr, RangeValue};
    use audb_rel::Schema;

    fn rel() -> AuRelation {
        AuRelation::from_rows(
            Schema::new(["a", "select"]),
            [(
                AuTuple::new([RangeValue::certain(1i64), RangeValue::new(1, 2, 3)]),
                Mult3::ONE,
            )],
        )
    }

    #[test]
    fn empty_chain_prints_bare_select() {
        let plan = Query::scan(rel()).build().unwrap();
        assert_eq!(plan.to_sql("t"), "SELECT * FROM t");
    }

    #[test]
    fn blocks_pack_the_canonical_clause_order() {
        let plan = Query::scan(rel())
            .select(RangeExpr::col(1).lt(RangeExpr::lit(5)))
            .sort_by_as(["select", "a"], "rank")
            .topk(2)
            .build()
            .unwrap();
        // Keyword-colliding column names are quoted; WHERE + ORDER BY +
        // LIMIT share one block.
        assert_eq!(
            plan.to_sql("t"),
            "SELECT * FROM t WHERE (\"select\" < 5) ORDER BY \"select\", a AS rank LIMIT 2"
        );
    }

    #[test]
    fn windows_and_projections_get_their_own_blocks() {
        let plan = Query::scan(rel())
            .window(
                WindowSpec::rows(-1, 0)
                    .order_by(["select"])
                    .aggregate(Agg::sum("select"))
                    .output("s"),
            )
            .project(["a", "s"])
            .build()
            .unwrap();
        assert_eq!(
            plan.to_sql("t"),
            "SELECT a, s FROM (SELECT *, SUM(\"select\") OVER (ORDER BY \"select\" \
             ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) AS s FROM t)"
        );
    }

    #[test]
    fn uncertain_literals_print_as_range_calls() {
        let plan = Query::scan(rel())
            .select(RangeExpr::col(0).le(RangeExpr::Lit(RangeValue::new(1, 2, 4))))
            .build()
            .unwrap();
        assert_eq!(
            plan.to_sql("t"),
            "SELECT * FROM t WHERE (a <= RANGE(1, 2, 4))"
        );
    }
}
