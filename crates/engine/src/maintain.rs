//! Live maintained queries: [`crate::Session::subscribe`] compiles a SQL
//! statement once and keeps its result *maintained* under appended rows,
//! re-emitting only the changed output rows as [`Delta`]s.
//!
//! ## Supported shape
//!
//! A maintainable plan is a chain of row-wise operators (select /
//! project) feeding one final [`Op::Window`] or [`Op::TopK`]. Row-wise
//! operators commute with append — running them over each batch and
//! feeding the final operator's incremental state
//! ([`audb_native::MaintainedWindow`] / [`audb_native::TopKMaintain`]) is
//! exactly equivalent to recomputing the chain over the accumulated rows.
//! Any other shape still subscribes, but every append recomputes.
//!
//! ## Strategy selection
//!
//! Each append batch picks [`Strategy::Incremental`] or
//! [`Strategy::Recompute`], visible in [`MaintainedQuery::explain`]:
//!
//! * **Tiny relations recompute.** Below the cutoff (default
//!   [`DEFAULT_INCREMENTAL_CUTOFF`] accumulated rows) a full recompute is
//!   cheaper than maintaining sweep state; the maintained state is built
//!   lazily the first time the relation crosses the cutoff.
//! * **Window maintenance needs the native fast path.** If the engine's
//!   effective backend is not `Native`, or the data hits the documented
//!   native-window fallbacks (duplicate multiplicities after
//!   normalization, uncertain `PARTITION BY` values), maintenance is
//!   disabled *permanently* for the subscription — those conditions don't
//!   un-happen — and every append recomputes on the engine, preserving the
//!   engine's bound-agreement promise.
//! * **Out-of-order appends rebuild.** The window sweep consumes rows in
//!   ascending ORDER BY position; a batch overlapping the accumulated
//!   frontier forces one recompute and a state rebuild (the rebuilt sweep
//!   absorbs everything seen so far as a single batch). Top-k maintenance
//!   accepts appends in any order and never rebuilds.
//!
//! Ground truth is always the engine itself: the recompute path *is*
//! `engine.execute(plan.with_source(accumulated))`, and the property tests
//! pin the incremental path bag-equal to it on all three backends.
//!
//! ## Delta semantics
//!
//! The maintained value is the normalized output bag. A [`Delta`] lists
//! `removed` (key's old row/multiplicity) and `added` (new) for exactly
//! the keys whose normalized entry changed: `value_after = value_before −
//! removed + added`. Replaying every delta from subscription onward
//! reconstructs [`MaintainedQuery::value`].

use crate::backend;
use crate::engine::Engine;
use crate::error::SessionError;
use crate::plan::{Op, Plan};
use audb_core::{AuRelation, AuTuple, Mult3, SortKey};
use audb_native::{MaintainedWindow, TopKMaintain};
use std::collections::BTreeMap;

/// Accumulated row count below which an append recomputes instead of
/// maintaining sweep state (override per subscription with
/// [`MaintainedQuery::with_cutoff`]).
pub const DEFAULT_INCREMENTAL_CUTOFF: usize = 256;

/// How one append batch was absorbed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Strategy {
    /// The batch updated live sweep state in `O(log n)` per row.
    #[default]
    Incremental,
    /// The full plan re-ran over the accumulated relation.
    Recompute,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::Incremental => write!(f, "incremental"),
            Strategy::Recompute => write!(f, "recompute"),
        }
    }
}

/// The changed output rows of one append: `value_after = value_before −
/// removed + added`, as normalized `(row, multiplicity)` entries.
#[derive(Clone, Debug, Default)]
pub struct Delta {
    /// Entries whose old form left the result (or changed multiplicity).
    pub removed: Vec<(AuTuple, Mult3)>,
    /// Entries now in the result (with their new multiplicity).
    pub added: Vec<(AuTuple, Mult3)>,
    /// How this batch was absorbed.
    pub strategy: Strategy,
}

impl Delta {
    /// True iff the append changed nothing in the output.
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.added.is_empty()
    }
}

/// The final maintainable operator of the subscribed plan.
enum MaintainKind {
    Window {
        state: Option<MaintainedWindow>,
    },
    TopK {
        state: Option<TopKMaintain>,
    },
    /// The plan's shape is not maintainable; every append recomputes.
    AlwaysRecompute {
        reason: String,
    },
}

/// A subscribed query: a compiled [`Plan`] whose result stays current
/// under [`MaintainedQuery::append`]ed rows. Obtain one from
/// [`crate::Session::subscribe`].
pub struct MaintainedQuery {
    engine: Engine,
    plan: Plan,
    /// The row-wise prefix of the plan (everything before the final op).
    pre: Plan,
    kind: MaintainKind,
    cutoff: usize,
    /// Raw accumulated source rows (initial relation + every batch).
    accum: AuRelation,
    /// The normalized current result: row key → (row, multiplicity).
    current: BTreeMap<SortKey, (AuTuple, Mult3)>,
    /// Open (provisional) window rows contributed to `current` by the last
    /// incremental append — removed again on the next one.
    open_prev: Vec<(AuTuple, Mult3)>,
    /// Maintenance permanently disabled for this subscription, and why.
    fallback_forever: Option<String>,
    incremental_appends: u64,
    recompute_appends: u64,
    last: Option<(Strategy, usize)>,
}

impl MaintainedQuery {
    pub(crate) fn new(engine: Engine, plan: Plan) -> Result<MaintainedQuery, SessionError> {
        let kind = match plan.ops().last() {
            Some(Op::Window { .. }) | Some(Op::TopK { .. })
                if plan.ops()[..plan.ops().len() - 1].iter().all(|op| {
                    matches!(
                        op,
                        Op::Select { .. } | Op::Project { .. } | Op::ProjectExprs { .. }
                    )
                }) =>
            {
                match plan.ops().last() {
                    Some(Op::Window { .. }) => MaintainKind::Window { state: None },
                    _ => MaintainKind::TopK { state: None },
                }
            }
            Some(op) => MaintainKind::AlwaysRecompute {
                reason: format!("final operator `{}` is not maintainable", op.name()),
            },
            None => MaintainKind::AlwaysRecompute {
                reason: "plan has no maintainable operator".to_string(),
            },
        };
        let pre = plan.prefix(plan.ops().len().saturating_sub(1).min(plan.ops().len()));
        let accum = plan.source().clone();
        let mut q = MaintainedQuery {
            engine,
            pre,
            kind,
            cutoff: DEFAULT_INCREMENTAL_CUTOFF,
            accum,
            current: BTreeMap::new(),
            open_prev: Vec::new(),
            fallback_forever: None,
            incremental_appends: 0,
            recompute_appends: 0,
            last: None,
            plan,
        };
        // Conditions that can only be observed, never un-observed, are
        // checked once up front so explain() is honest from the start.
        if matches!(q.kind, MaintainKind::Window { .. }) {
            if q.engine.effective() != crate::engine::BackendChoice::Native {
                q.fallback_forever = Some(format!(
                    "window maintenance requires the native backend (engine runs {})",
                    q.engine.effective()
                ));
            } else if let Some(Op::Window { spec, .. }) = q.plan.ops().last() {
                let pre_rel = q.engine.execute(&q.pre)?.normalize();
                if backend::Native::window_needs_reference(&pre_rel, spec) {
                    q.fallback_forever = Some(
                        "initial relation needs the reference window \
                         (duplicate multiplicities or uncertain PARTITION BY)"
                            .to_string(),
                    );
                }
            }
        } else if matches!(q.kind, MaintainKind::TopK { .. })
            && q.engine.effective() != crate::engine::BackendChoice::Native
        {
            q.fallback_forever = Some(format!(
                "top-k maintenance requires the native backend (engine runs {})",
                q.engine.effective()
            ));
        }
        q.recompute_current()?;
        Ok(q)
    }

    /// Override the tiny-relation cutoff (accumulated rows below which
    /// appends recompute instead of maintaining sweep state).
    pub fn with_cutoff(mut self, cutoff: usize) -> Self {
        self.cutoff = cutoff;
        self
    }

    /// The compiled plan this subscription maintains.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The current result, normalized, in deterministic row-key order.
    pub fn value(&self) -> AuRelation {
        AuRelation::from_rows(self.plan.schema().clone(), self.current.values().cloned())
    }

    /// Raw accumulated source rows (initial relation plus every appended
    /// batch, in arrival order).
    pub fn accumulated(&self) -> &AuRelation {
        &self.accum
    }

    /// `(incremental, recompute)` append counts so far.
    pub fn strategy_counts(&self) -> (u64, u64) {
        (self.incremental_appends, self.recompute_appends)
    }

    /// Append a batch of source rows and return the changed output rows.
    /// The batch must carry the subscribed table's exact schema.
    pub fn append(&mut self, batch: &AuRelation) -> Result<Delta, SessionError> {
        if batch.schema != self.plan.schemas()[0] {
            return Err(SessionError::Plan(
                crate::error::PlanError::SourceSchemaMismatch {
                    expected: self.plan.schemas()[0].to_string(),
                    got: batch.schema.to_string(),
                },
            ));
        }
        for row in batch.rows() {
            self.accum.push(row.tuple.clone(), row.mult);
        }
        let strategy = self.try_incremental(batch)?;
        let delta = match strategy {
            Strategy::Incremental => {
                self.incremental_appends += 1;
                self.incremental_delta()
            }
            Strategy::Recompute => {
                self.recompute_appends += 1;
                let before = std::mem::take(&mut self.current);
                self.recompute_current()?;
                diff_maps(&before, &self.current)
            }
        };
        self.last = Some((strategy, batch.rows().len()));
        Ok(Delta { strategy, ..delta })
    }

    /// The engine's explain output for the subscribed plan, followed by
    /// stable maintenance lines (strategy, cutoff, append counts).
    pub fn explain(&self) -> String {
        let mut s = self.engine.explain(&self.plan).to_string();
        if !s.ends_with('\n') {
            s.push('\n');
        }
        let mode = match (&self.kind, &self.fallback_forever) {
            (MaintainKind::AlwaysRecompute { reason }, _) => {
                format!("always recompute — {reason}")
            }
            (_, Some(reason)) => format!("always recompute — {reason}"),
            (MaintainKind::Window { .. }, None) => {
                format!("window incremental (cutoff {})", self.cutoff)
            }
            (MaintainKind::TopK { .. }, None) => {
                format!("top-k incremental (cutoff {})", self.cutoff)
            }
        };
        s.push_str(&format!("maintain: {mode}\n"));
        s.push_str(&format!(
            "appends: {} incremental, {} recompute\n",
            self.incremental_appends, self.recompute_appends
        ));
        if let Some((strategy, rows)) = &self.last {
            s.push_str(&format!("last append: {strategy} ({rows} rows)\n"));
        }
        s
    }

    /// Decide the batch's strategy and, when incremental, absorb it into
    /// the live state. The accumulated raw rows are already updated.
    fn try_incremental(&mut self, batch: &AuRelation) -> Result<Strategy, SessionError> {
        if self.fallback_forever.is_some() {
            return Ok(Strategy::Recompute);
        }
        match &self.kind {
            MaintainKind::AlwaysRecompute { .. } => Ok(Strategy::Recompute),
            MaintainKind::Window { .. } => self.try_incremental_window(batch),
            MaintainKind::TopK { .. } => self.try_incremental_topk(batch),
        }
    }

    fn try_incremental_window(&mut self, batch: &AuRelation) -> Result<Strategy, SessionError> {
        if self.accum.rows().len() < self.cutoff {
            // Tiny relation: recompute, and drop any stale state so the
            // next crossing of the cutoff rebuilds from scratch.
            if let MaintainKind::Window { state } = &mut self.kind {
                *state = None;
            }
            return Ok(Strategy::Recompute);
        }
        let Some(Op::Window {
            spec,
            agg,
            out_name,
        }) = self.plan.ops().last().cloned()
        else {
            unreachable!("kind is Window only for window plans");
        };
        // Row-wise prefix over the batch alone ≡ its contribution to the
        // prefix over the accumulated relation.
        let pre_batch = self.engine.execute(&self.pre.with_source(batch.clone())?)?;
        let pre_batch = pre_batch.normalize();
        // The native window's documented fallbacks are sticky: a duplicate
        // multiplicity or uncertain partition value stays in the data.
        if pre_batch.rows().iter().any(|r| r.mult.ub > 1) {
            self.fallback_forever =
                Some("appended rows carry duplicate multiplicities (k↑ > 1)".to_string());
            if let MaintainKind::Window { state } = &mut self.kind {
                *state = None;
            }
            return Ok(Strategy::Recompute);
        }
        let MaintainKind::Window { state } = &mut self.kind else {
            unreachable!();
        };
        if let Some(m) = state {
            match m.check_batch(&pre_batch) {
                Ok(()) => {
                    m.apply(&pre_batch);
                    return Ok(Strategy::Incremental);
                }
                Err(reason) => {
                    if reason.contains("PARTITION BY") {
                        self.fallback_forever = Some(reason);
                        *state = None;
                        return Ok(Strategy::Recompute);
                    }
                    // Frontier overlap: rebuild below, recompute this round.
                    *state = None;
                }
            }
        }
        // Build (or rebuild) the sweep from everything seen so far as one
        // batch; this append is answered by recompute, the next in-order
        // batch goes incremental.
        let pre_all = self
            .engine
            .execute(&self.pre.with_source(self.accum.clone())?)?
            .normalize();
        if backend::Native::window_needs_reference(&pre_all, &spec) {
            self.fallback_forever = Some(
                "accumulated relation needs the reference window \
                 (duplicate multiplicities or uncertain PARTITION BY)"
                    .to_string(),
            );
            return Ok(Strategy::Recompute);
        }
        let mut m = MaintainedWindow::new(pre_all.schema.clone(), spec, agg, &out_name);
        m.apply(&pre_all);
        // This round's recompute covers everything the fresh sweep has
        // already closed — mark it drained so the next incremental append
        // emits only genuinely new closes.
        let _ = m.drain_new_closed();
        let MaintainKind::Window { state } = &mut self.kind else {
            unreachable!();
        };
        *state = Some(m);
        self.open_prev = Vec::new();
        Ok(Strategy::Recompute)
    }

    fn try_incremental_topk(&mut self, batch: &AuRelation) -> Result<Strategy, SessionError> {
        if self.accum.rows().len() < self.cutoff {
            if let MaintainKind::TopK { state } = &mut self.kind {
                *state = None;
            }
            return Ok(Strategy::Recompute);
        }
        let Some(Op::TopK { order, k, pos_name }) = self.plan.ops().last().cloned() else {
            unreachable!("kind is TopK only for top-k plans");
        };
        let pre_batch = self.engine.execute(&self.pre.with_source(batch.clone())?)?;
        let MaintainKind::TopK { state } = &mut self.kind else {
            unreachable!();
        };
        if let Some(m) = state {
            m.apply(&pre_batch);
            return Ok(Strategy::Incremental);
        }
        // First crossing of the cutoff: seed from the accumulated rows.
        let pre_all = self
            .engine
            .execute(&self.pre.with_source(self.accum.clone())?)?;
        let mut m = TopKMaintain::new(pre_all.schema.clone(), order, k, &pos_name);
        m.apply(&pre_all);
        *state = Some(m);
        Ok(Strategy::Recompute)
    }

    /// Rebuild the result map via the ground-truth path: the full plan
    /// over the accumulated relation, normalized.
    fn recompute_current(&mut self) -> Result<(), SessionError> {
        let out = self
            .engine
            .execute(&self.plan.with_source(self.accum.clone())?)?
            .normalize();
        self.current = BTreeMap::new();
        for row in out.rows() {
            self.current
                .insert(SortKey::of_row(&row.tuple), (row.tuple.clone(), row.mult));
        }
        // The map no longer tracks which entries came from open windows;
        // the next incremental append resyncs from the live state.
        self.open_prev = Vec::new();
        if let MaintainKind::Window { state: Some(m) } = &self.kind {
            self.open_prev = m.open_result();
        }
        Ok(())
    }

    /// After an incremental window/top-k apply: retract the previous open
    /// rows, add the newly closed and currently open rows, and report the
    /// keys whose normalized entry changed. `O(changed)`, not `O(n)`.
    fn incremental_delta(&mut self) -> Delta {
        let (additions, removals) = match &mut self.kind {
            MaintainKind::Window { state: Some(m) } => {
                let mut additions = m.drain_new_closed();
                let open_now = m.open_result();
                additions.extend(open_now.iter().cloned());
                let removals = std::mem::replace(&mut self.open_prev, open_now);
                (additions, removals)
            }
            MaintainKind::TopK { state: Some(m) } => {
                // The whole top-k band is the changed region; diff it
                // against the previous map wholesale (O(k), not O(n)).
                let out = m.result().normalize();
                let mut next = BTreeMap::new();
                for row in out.rows() {
                    next.insert(SortKey::of_row(&row.tuple), (row.tuple.clone(), row.mult));
                }
                let before = std::mem::replace(&mut self.current, next);
                return diff_maps(&before, &self.current);
            }
            _ => unreachable!("incremental_delta requires live state"),
        };
        let mut touched: BTreeMap<SortKey, Option<(AuTuple, Mult3)>> = BTreeMap::new();
        let touch = |current: &BTreeMap<SortKey, (AuTuple, Mult3)>,
                     touched: &mut BTreeMap<SortKey, Option<(AuTuple, Mult3)>>,
                     key: &SortKey| {
            if !touched.contains_key(key) {
                touched.insert(key.clone(), current.get(key).cloned());
            }
        };
        for (t, mult) in removals {
            let key = SortKey::of_row(&t);
            touch(&self.current, &mut touched, &key);
            sub_entry(&mut self.current, key, &t, mult);
        }
        for (t, mult) in additions {
            let key = SortKey::of_row(&t);
            touch(&self.current, &mut touched, &key);
            add_entry(&mut self.current, key, t, mult);
        }
        let mut delta = Delta::default();
        for (key, before) in touched {
            let after = self.current.get(&key);
            match (before, after) {
                (Some(b), Some(a)) if &b == a => {}
                (before, after) => {
                    if let Some(b) = before {
                        delta.removed.push(b);
                    }
                    if let Some(a) = after {
                        delta.added.push(a.clone());
                    }
                }
            }
        }
        delta
    }
}

impl std::fmt::Debug for MaintainedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaintainedQuery")
            .field("rows", &self.accum.rows().len())
            .field("result_rows", &self.current.len())
            .field("incremental", &self.incremental_appends)
            .field("recompute", &self.recompute_appends)
            .finish()
    }
}

fn add_entry(map: &mut BTreeMap<SortKey, (AuTuple, Mult3)>, key: SortKey, t: AuTuple, mult: Mult3) {
    let e = map.entry(key).or_insert_with(|| (t, Mult3::new(0, 0, 0)));
    e.1 = Mult3::new(e.1.lb + mult.lb, e.1.sg + mult.sg, e.1.ub + mult.ub);
}

fn sub_entry(
    map: &mut BTreeMap<SortKey, (AuTuple, Mult3)>,
    key: SortKey,
    t: &AuTuple,
    mult: Mult3,
) {
    let e = map
        .get_mut(&key)
        .unwrap_or_else(|| panic!("retracting a row that is not in the maintained result: {t:?}"));
    e.1 = Mult3::new(e.1.lb - mult.lb, e.1.sg - mult.sg, e.1.ub - mult.ub);
    if e.1.ub == 0 {
        map.remove(&key);
    }
}

/// Full map diff (the recompute path's delta): every key present in either
/// map whose entry changed.
fn diff_maps(
    before: &BTreeMap<SortKey, (AuTuple, Mult3)>,
    after: &BTreeMap<SortKey, (AuTuple, Mult3)>,
) -> Delta {
    let mut delta = Delta::default();
    for (key, b) in before {
        match after.get(key) {
            Some(a) if a == b => {}
            _ => delta.removed.push(b.clone()),
        }
    }
    for (key, a) in after {
        match before.get(key) {
            Some(b) if a == b => {}
            _ => delta.added.push(a.clone()),
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::session::Session;
    use audb_core::RangeValue;
    use audb_rel::Schema;
    use std::sync::Arc as StdArc;

    fn rv(lb: i64, sg: i64, ub: i64) -> RangeValue {
        RangeValue::new(lb, sg, ub)
    }

    fn stream_rows(n: usize, seed: u64) -> Vec<(AuTuple, Mult3)> {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        (0..n)
            .map(|i| {
                let o = 10 * i as i64;
                let j = (step() % 5) as i64;
                let v = (step() % 100) as i64 - 50;
                (
                    AuTuple::new([rv(o - j, o, o + j), rv(v, v, v + (step() % 3) as i64)]),
                    if step() % 4 == 0 {
                        Mult3::new(0, 1, 1)
                    } else {
                        Mult3::ONE
                    },
                )
            })
            .collect()
    }

    fn rel_of(rows: &[(AuTuple, Mult3)]) -> AuRelation {
        AuRelation::from_rows(Schema::new(["o", "v"]), rows.iter().cloned())
    }

    const ROLLING_SQL: &str = "SELECT *, SUM(v) OVER (ORDER BY o \
         ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) AS roll FROM s";

    fn subscribe(rows: &[(AuTuple, Mult3)], cutoff: usize) -> MaintainedQuery {
        let session = Session::new(Engine::native());
        session.register("s", rel_of(rows));
        session.subscribe(ROLLING_SQL).unwrap().with_cutoff(cutoff)
    }

    #[test]
    fn value_tracks_recompute_and_deltas_replay() {
        let rows = stream_rows(60, 5);
        let mut q = subscribe(&rows[..20], 16);
        let session = Session::new(Engine::native());
        // Replay target: apply every delta to the initial value's map.
        let mut replay: BTreeMap<SortKey, (AuTuple, Mult3)> = q.current.clone();
        for chunk in rows[20..].chunks(7) {
            let delta = q.append(&rel_of(chunk)).unwrap();
            for (t, m) in &delta.removed {
                sub_entry(&mut replay, SortKey::of_row(t), t, *m);
            }
            for (t, m) in &delta.added {
                add_entry(&mut replay, SortKey::of_row(t), t.clone(), *m);
            }
            // Ground truth: full recompute over the accumulated rows.
            session.register("s", q.accumulated().clone());
            let truth = session.sql(ROLLING_SQL).unwrap();
            let value = q.value();
            assert!(value.bag_eq(&truth), "value:\n{value}\ntruth:\n{truth}");
            assert_eq!(replay, q.current, "deltas must replay to the value");
        }
        let (inc, rec) = q.strategy_counts();
        assert!(inc >= 4, "expected mostly incremental appends, got {inc}");
        assert!(rec >= 1, "cutoff crossing recomputes once, got {rec}");
    }

    #[test]
    fn cutoff_governs_strategy_and_explain_reports_it() {
        let rows = stream_rows(40, 11);
        let mut q = subscribe(&rows[..4], 12);
        // Below the cutoff: recompute.
        let d = q.append(&rel_of(&rows[4..8])).unwrap();
        assert_eq!(d.strategy, Strategy::Recompute);
        // Crossing the cutoff: one recompute that seeds the state...
        let d = q.append(&rel_of(&rows[8..16])).unwrap();
        assert_eq!(d.strategy, Strategy::Recompute);
        // ...then in-order appends go incremental.
        let d = q.append(&rel_of(&rows[16..24])).unwrap();
        assert_eq!(d.strategy, Strategy::Incremental);
        let text = q.explain();
        assert!(
            text.contains("maintain: window incremental (cutoff 12)"),
            "{text}"
        );
        assert!(
            text.contains("appends: 1 incremental, 2 recompute"),
            "{text}"
        );
        assert!(text.contains("last append: incremental (8 rows)"), "{text}");
    }

    #[test]
    fn out_of_order_appends_recompute_then_resume_incremental() {
        let rows = stream_rows(40, 3);
        let mut q = subscribe(&rows[..24], 8);
        assert_eq!(
            q.append(&rel_of(&rows[24..30])).unwrap().strategy,
            Strategy::Recompute,
            "first append seeds the state"
        );
        assert_eq!(
            q.append(&rel_of(&rows[30..34])).unwrap().strategy,
            Strategy::Incremental
        );
        // An overlapping (out-of-order) batch forces a recompute + rebuild…
        let overlap = vec![(AuTuple::new([rv(5, 7, 9), rv(1, 1, 1)]), Mult3::ONE)];
        assert_eq!(
            q.append(&rel_of(&overlap)).unwrap().strategy,
            Strategy::Recompute
        );
        // …but is not sticky: the next in-order batch is incremental again.
        assert_eq!(
            q.append(&rel_of(&rows[34..38])).unwrap().strategy,
            Strategy::Incremental
        );
        let session = Session::new(Engine::native());
        session.register("s", q.accumulated().clone());
        let truth = session.sql(ROLLING_SQL).unwrap();
        assert!(q.value().bag_eq(&truth));
    }

    #[test]
    fn duplicate_multiplicities_disable_maintenance_permanently() {
        let rows = stream_rows(30, 17);
        let mut q = subscribe(&rows[..20], 8);
        q.append(&rel_of(&rows[20..24])).unwrap();
        assert_eq!(
            q.append(&rel_of(&rows[24..26])).unwrap().strategy,
            Strategy::Incremental
        );
        // k↑ = 2 hits the native window's documented fallback — sticky.
        let dup = vec![(
            AuTuple::new([rv(400, 400, 400), rv(1, 1, 1)]),
            Mult3::new(1, 1, 2),
        )];
        assert_eq!(
            q.append(&rel_of(&dup)).unwrap().strategy,
            Strategy::Recompute
        );
        assert_eq!(
            q.append(&rel_of(&rows[26..28])).unwrap().strategy,
            Strategy::Recompute,
            "fallback is permanent"
        );
        assert!(q.explain().contains("always recompute"), "{}", q.explain());
        let session = Session::new(Engine::native());
        session.register("s", q.accumulated().clone());
        assert!(q.value().bag_eq(&session.sql(ROLLING_SQL).unwrap()));
    }

    #[test]
    fn topk_subscription_accepts_any_order() {
        let rows = stream_rows(50, 23);
        let session = Session::new(Engine::native());
        session.register("s", rel_of(&rows[..20]));
        let sql = "SELECT * FROM s ORDER BY v AS rank LIMIT 5";
        let mut q = session.subscribe(sql).unwrap().with_cutoff(8);
        // Appends in reverse order: top-k maintenance has no frontier.
        let mut chunks: Vec<&[(AuTuple, Mult3)]> = rows[20..].chunks(6).collect();
        chunks.reverse();
        let mut saw_incremental = false;
        for chunk in chunks {
            let d = q.append(&rel_of(chunk)).unwrap();
            saw_incremental |= d.strategy == Strategy::Incremental;
            session.register("s", q.accumulated().clone());
            let truth = session.sql(sql).unwrap();
            assert!(q.value().bag_eq(&truth), "{}\nvs\n{truth}", q.value());
        }
        assert!(saw_incremental);
        assert!(q.explain().contains("top-k incremental"), "{}", q.explain());
    }

    #[test]
    fn non_maintainable_and_non_native_shapes_always_recompute() {
        let rows = stream_rows(20, 29);
        let session = Session::new(Engine::native());
        session.register("s", rel_of(&rows[..10]));
        // Final op is a plain sort — not maintainable.
        let mut q = session
            .subscribe("SELECT * FROM s ORDER BY o AS p")
            .unwrap()
            .with_cutoff(1);
        let d = q.append(&rel_of(&rows[10..15])).unwrap();
        assert_eq!(d.strategy, Strategy::Recompute);
        assert!(
            q.explain()
                .contains("always recompute — final operator `sort`"),
            "{}",
            q.explain()
        );
        // Reference engine: window maintenance requires the native backend.
        let ref_session = Session::new(Engine::reference());
        ref_session.register("s", rel_of(&rows[..10]));
        let mut q = ref_session.subscribe(ROLLING_SQL).unwrap().with_cutoff(1);
        assert_eq!(
            q.append(&rel_of(&rows[10..15])).unwrap().strategy,
            Strategy::Recompute
        );
        assert!(q.explain().contains("requires the native backend"));
        let check = Session::new(Engine::reference());
        check.register("s", q.accumulated().clone());
        assert!(q.value().bag_eq(&check.sql(ROLLING_SQL).unwrap()));
    }

    #[test]
    fn append_rejects_mismatched_schemas() {
        let rows = stream_rows(10, 31);
        let mut q = subscribe(&rows, 8);
        let bad = AuRelation::empty(Schema::new(["o", "v", "extra"]));
        let e = q.append(&bad).unwrap_err();
        assert_eq!(e.kind(), "schema_mismatch");
        // Pre-oped plans survive: the subscription still answers.
        let _ = StdArc::new(q.value());
    }
}
