//! The [`Session`] handle: a [`Catalog`] plus an [`Engine`], speaking SQL.
//!
//! ```
//! use audb_engine::{Engine, Session};
//! use audb_core::{AuRelation, AuTuple, Mult3, RangeValue};
//! use audb_rel::Schema;
//!
//! let mut session = Session::new(Engine::native());
//! session.register("products", AuRelation::from_rows(
//!     Schema::new(["sku", "price"]),
//!     [
//!         (AuTuple::from([RangeValue::certain(1i64), RangeValue::new(9, 10, 12)]), Mult3::ONE),
//!         (AuTuple::from([RangeValue::certain(2i64), RangeValue::new(8, 11, 11)]), Mult3::ONE),
//!     ],
//! ));
//! let top = session.sql("SELECT * FROM products ORDER BY price AS rank LIMIT 1")?;
//! assert_eq!(top.schema.cols(), &["sku", "price", "rank"]);
//! println!("{}", session.explain_sql("SELECT sku FROM products")?);
//! # Ok::<(), audb_engine::SessionError>(())
//! ```

use crate::bind;
use crate::catalog::{Catalog, SharedCatalog};
use crate::engine::{Engine, Explain, RunAll};
use crate::error::SessionError;
use crate::maintain::MaintainedQuery;
use crate::plan::Plan;
use crate::plancache::PlanCache;
use audb_core::AuRelation;
use std::sync::Arc;

/// A compiled, reusable statement: the validated [`Plan`] plus its source
/// text. Prepare once, execute many times (the plan shares its scanned
/// relation behind an `Arc`, so neither step copies data).
#[derive(Clone, Debug)]
pub struct Prepared {
    plan: Plan,
}

impl Prepared {
    pub(crate) fn from_plan(plan: Plan) -> Prepared {
        Prepared { plan }
    }

    /// The compiled plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The originating SQL text.
    pub fn sql(&self) -> &str {
        self.plan
            .sql()
            .expect("prepared statements carry their SQL")
    }
}

/// A catalog of named AU-relations bound to an engine: the textual front
/// door. `register` relations, then drive everything with SQL strings —
/// `sql` executes, `prepare` compiles for reuse, `explain_sql` shows the
/// chosen backend/fallbacks, `run_all_sql` cross-checks all three
/// backends.
///
/// The catalog is a [`SharedCatalog`]: cloning a `Session` (or building
/// several via [`Session::with_catalog`]) yields sessions over the *same*
/// namespace, which is how the server gives every connection its own
/// session handle without copying tables. Each `prepare` pins one catalog
/// snapshot, so concurrent `register` calls never disturb a statement that
/// is already compiled or running.
#[derive(Clone, Debug, Default)]
pub struct Session {
    engine: Engine,
    catalog: SharedCatalog,
}

impl Session {
    /// A session on the given engine with an empty catalog.
    pub fn new(engine: Engine) -> Self {
        Session {
            engine,
            catalog: SharedCatalog::new(),
        }
    }

    /// A session on the given engine over an existing shared catalog
    /// (typically one handed out by another session's
    /// [`Session::shared_catalog`]).
    pub fn with_catalog(engine: Engine, catalog: SharedCatalog) -> Self {
        Session { engine, catalog }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Swap the engine (e.g. to a different backend); the catalog is kept.
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// The current catalog snapshot. The returned `Arc` is immutable:
    /// registrations made after this call publish *new* snapshots and are
    /// not visible through it.
    pub fn catalog(&self) -> Arc<Catalog> {
        self.catalog.snapshot()
    }

    /// The shared catalog handle itself — clone it to build more sessions
    /// over the same namespace.
    pub fn shared_catalog(&self) -> &SharedCatalog {
        &self.catalog
    }

    /// Register a relation under a name (replacing any previous one) by
    /// publishing a new catalog snapshot. In-flight queries and already
    /// prepared statements keep their pinned snapshot; statements prepared
    /// after this call see the new table.
    pub fn register(&self, name: impl Into<String>, rel: impl Into<Arc<AuRelation>>) {
        self.catalog.register(name, rel);
    }

    /// Remove a named relation (again by snapshot publication).
    pub fn deregister(&self, name: &str) -> Option<Arc<AuRelation>> {
        self.catalog.deregister(name)
    }

    /// Compile one statement to a reusable [`Prepared`] plan against the
    /// current catalog snapshot, then run the stats-driven plan rewrites
    /// ([`crate::optimize::optimize`]).
    pub fn prepare(&self, sql: &str) -> Result<Prepared, SessionError> {
        let stmt = audb_sql::parse(sql)?;
        Ok(Prepared {
            plan: crate::optimize::optimize(&bind::compile(&stmt, &self.catalog.snapshot())?),
        })
    }

    /// Compile one statement through a shared [`PlanCache`], so repeated
    /// (even differently-whitespaced) texts skip parse + bind. Returns the
    /// prepared statement and whether it was a cache hit.
    pub fn prepare_cached(
        &self,
        cache: &PlanCache,
        sql: &str,
    ) -> Result<(Prepared, bool), SessionError> {
        cache.get_or_prepare(&self.catalog, sql)
    }

    /// Compile every statement of a `;`-separated script. The whole script
    /// binds against a single catalog snapshot, so a concurrent `register`
    /// cannot make later statements see different tables than earlier ones.
    pub fn prepare_script(&self, sql: &str) -> Result<Vec<Prepared>, SessionError> {
        let snapshot = self.catalog.snapshot();
        audb_sql::parse_script(sql)?
            .iter()
            .map(|stmt| {
                Ok(Prepared {
                    plan: crate::optimize::optimize(&bind::compile(stmt, &snapshot)?),
                })
            })
            .collect()
    }

    /// Execute a prepared statement on the session's engine.
    pub fn execute(&self, prepared: &Prepared) -> Result<AuRelation, SessionError> {
        Ok(self.engine.execute(prepared.plan())?)
    }

    /// Parse, bind and execute one statement.
    pub fn sql(&self, sql: &str) -> Result<AuRelation, SessionError> {
        let prepared = self.prepare(sql)?;
        self.execute(&prepared)
    }

    /// Explain how the engine would run a statement (includes the SQL text
    /// and any backend-fallback reason).
    pub fn explain_sql(&self, sql: &str) -> Result<Explain, SessionError> {
        let prepared = self.prepare(sql)?;
        Ok(self.engine.explain(prepared.plan()))
    }

    /// Execute a statement on **all three** backends, asserting their
    /// bounds agree (see [`Engine::run_all`]).
    pub fn run_all_sql(&self, sql: &str) -> Result<RunAll, SessionError> {
        let prepared = self.prepare(sql)?;
        Ok(self.engine.run_all(prepared.plan())?)
    }

    /// Compile a statement and keep its result live under appended rows:
    /// the returned [`MaintainedQuery`] accepts batches via
    /// [`MaintainedQuery::append`] and re-emits only the changed output
    /// rows as [`crate::Delta`]s, maintaining window/top-k sweep state
    /// incrementally where the plan's shape allows (see the
    /// [`crate::maintain`] module docs).
    ///
    /// The subscription pins the catalog snapshot current at subscribe
    /// time; later `register`/`append` calls on the catalog do not feed it
    /// — rows reach it only through [`MaintainedQuery::append`].
    pub fn subscribe(&self, sql: &str) -> Result<MaintainedQuery, SessionError> {
        let prepared = self.prepare(sql)?;
        MaintainedQuery::new(self.engine, prepared.plan().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::BackendChoice;
    use crate::error::PlanError;
    use audb_core::{AuTuple, Mult3, RangeValue};
    use audb_rel::Schema;

    fn products() -> AuRelation {
        AuRelation::from_rows(
            Schema::new(["sku", "price"]),
            [
                (
                    AuTuple::from([RangeValue::certain(1i64), RangeValue::new(9, 10, 12)]),
                    Mult3::ONE,
                ),
                (
                    AuTuple::from([RangeValue::certain(2i64), RangeValue::new(8, 11, 11)]),
                    Mult3::ONE,
                ),
                (
                    AuTuple::from([RangeValue::certain(3i64), RangeValue::certain(15i64)]),
                    Mult3::new(0, 1, 1),
                ),
            ],
        )
    }

    fn session() -> Session {
        let s = Session::new(Engine::native());
        s.register("products", products());
        s
    }

    #[test]
    fn sql_matches_builder_plan() {
        use crate::plan::Query;
        let s = session();
        let via_sql = s
            .sql("SELECT * FROM products ORDER BY price AS rank LIMIT 2")
            .unwrap();
        let plan = Query::scan(products())
            .sort_by_as(["price"], "rank")
            .topk(2)
            .build()
            .unwrap();
        let via_builder = Engine::native().execute(&plan).unwrap();
        assert!(via_sql.bag_eq(&via_builder), "{via_sql}\n{via_builder}");
    }

    #[test]
    fn prepare_reuses_and_carries_sql() {
        let s = session();
        let p = s
            .prepare("SELECT sku, price FROM products WHERE price < 12;")
            .unwrap();
        assert_eq!(p.sql(), "SELECT sku, price FROM products WHERE price < 12");
        let a = s.execute(&p).unwrap();
        let b = s.execute(&p).unwrap();
        assert!(a.bag_eq(&b));
        // The prepared plan shares the registered relation, no copy.
        assert!(Arc::ptr_eq(
            p.plan().source_arc(),
            s.catalog().get("products").unwrap()
        ));
    }

    #[test]
    fn window_sql_runs_on_all_backends() {
        let s = session();
        let all = s
            .run_all_sql(
                "SELECT *, SUM(price) OVER (ORDER BY price \
                 ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) AS roll FROM products",
            )
            .unwrap();
        assert_eq!(all.runs.len(), 3);
        assert_eq!(all.output.schema.cols(), &["sku", "price", "roll"]);
    }

    #[test]
    fn session_errors_are_structured() {
        let s = session();
        // Catalog miss.
        let e = s.sql("SELECT * FROM nope").unwrap_err();
        assert!(
            matches!(&e, SessionError::UnknownTable { name, known }
                if name == "nope" && known == &["products".to_string()]),
            "{e}"
        );
        assert_eq!((e.kind(), e.span()), ("unknown_table", None));
        // Plan validation flows through unchanged.
        let e = s.sql("SELECT missing FROM products").unwrap_err();
        assert!(
            matches!(&e, SessionError::Plan(PlanError::UnknownColumn { name, .. }) if name == "missing"),
            "{e}"
        );
        let e = s.sql("SELECT * FROM products LIMIT 3").unwrap_err();
        assert!(matches!(e, SessionError::Plan(PlanError::TopKWithoutSort)));
        // Parse errors carry spans, surfaced through kind()/span() for the
        // HTTP error mapping.
        let e = s.sql("SELECT * FROM").unwrap_err();
        assert!(
            e.to_string().starts_with("SQL error at line 1, column 14"),
            "{e}"
        );
        assert_eq!(e.kind(), "sql");
        let span = e.span().expect("parse errors carry a span");
        assert_eq!((span.line, span.col), (1, 14));
        let e = s.sql("SELECT missing FROM products").unwrap_err();
        assert_eq!(e.kind(), "unknown_column");
        // Compound expressions need aliases.
        let e = s.sql("SELECT price + 1 FROM products").unwrap_err();
        assert!(matches!(e, SessionError::ExpressionNeedsAlias { .. }));
        // Bad range literal.
        let e = s
            .sql("SELECT * FROM products WHERE price < RANGE(3, 2, 1)")
            .unwrap_err();
        assert!(matches!(e, SessionError::InvalidRangeLiteral { .. }));
    }

    /// The satellite contract: scripts with trailing semicolons and blank
    /// `;;` statements compile cleanly; a script with no statements is an
    /// empty (not failing) preparation; and the single-statement entry
    /// points report the empty-statement edge as a span-carrying
    /// `SqlError` pointing at the end of input.
    #[test]
    fn prepare_script_accepts_trailing_semicolons_and_blank_statements() {
        let s = session();
        let prepared = s
            .prepare_script(
                ";;\nSELECT * FROM products;;\n;\n-- comment\nSELECT sku FROM products;\n;;",
            )
            .unwrap();
        assert_eq!(prepared.len(), 2);
        assert_eq!(prepared[1].sql(), "SELECT sku FROM products");
        for p in &prepared {
            s.execute(p).unwrap();
        }

        // No statements at all: an empty preparation, not an error.
        assert!(s.prepare_script("").unwrap().is_empty());
        assert!(s
            .prepare_script(" ;; \n ; -- just a comment\n")
            .unwrap()
            .is_empty());

        // The single-statement path reports the empty edge with a span at
        // the end of the input.
        let e = s.sql(";;\n ").unwrap_err();
        let SessionError::Sql(sql_err) = &e else {
            panic!("expected SqlError, got {e}");
        };
        assert_eq!(sql_err.kind, audb_sql::SqlErrorKind::EmptyStatement);
        assert_eq!((sql_err.span.line, sql_err.span.col), (2, 2));
        assert!(
            e.to_string().starts_with("SQL error at line 2, column 2"),
            "{e}"
        );
    }

    /// The visibility rule, deterministically: a statement prepared before
    /// a `register` executes against its pinned snapshot; a statement
    /// prepared after sees the new data; sessions built over the same
    /// shared catalog observe each other's registrations.
    #[test]
    fn registration_publishes_snapshots_without_disturbing_prepared_plans() {
        let s = session();
        let p = s.prepare("SELECT sku FROM products").unwrap();
        let before = s.execute(&p).unwrap();
        assert_eq!(before.rows().len(), 3);

        // Re-register under the same name with one row: the prepared plan
        // keeps its pinned relation, a fresh statement sees the new one.
        let one_row = AuRelation::from_rows(
            Schema::new(["sku", "price"]),
            [(
                AuTuple::from([RangeValue::certain(9i64), RangeValue::certain(1i64)]),
                Mult3::ONE,
            )],
        );
        let peer = Session::with_catalog(Engine::native(), s.shared_catalog().clone());
        peer.register("products", one_row);
        assert!(s.shared_catalog().same_catalog(peer.shared_catalog()));

        assert_eq!(s.execute(&p).unwrap().rows().len(), 3);
        assert_eq!(s.sql("SELECT sku FROM products").unwrap().rows().len(), 1);

        // Deregistration likewise only affects future preparations.
        s.deregister("products");
        assert_eq!(s.execute(&p).unwrap().rows().len(), 3);
        assert!(matches!(
            peer.sql("SELECT sku FROM products").unwrap_err(),
            SessionError::UnknownTable { .. }
        ));
    }

    #[test]
    fn subqueries_chain_operator_blocks() {
        let s = session();
        let out = s
            .sql(
                "SELECT sku, rank FROM \
                   (SELECT * FROM products WHERE price >= 8 ORDER BY price AS rank) \
                 WHERE rank < 2",
            )
            .unwrap();
        assert_eq!(out.schema.cols(), &["sku", "rank"]);
        let p = s
            .prepare(
                "SELECT sku, rank FROM \
                   (SELECT * FROM products WHERE price >= 8 ORDER BY price AS rank) \
                 WHERE rank < 2",
            )
            .unwrap();
        assert_eq!(
            p.plan().ops().iter().map(|o| o.name()).collect::<Vec<_>>(),
            ["select", "sort", "select", "project"]
        );
    }

    #[test]
    fn explain_sql_shows_query_and_backend() {
        let s = session();
        let ex = s
            .explain_sql("SELECT * FROM products ORDER BY price")
            .unwrap();
        assert_eq!(ex.backend, BackendChoice::Native);
        let text = ex.to_string();
        assert!(
            text.contains("query:   SELECT * FROM products ORDER BY price"),
            "{text}"
        );
    }
}
