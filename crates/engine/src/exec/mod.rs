//! The physical execution layer between [`Plan`](crate::Plan) and the
//! backends: batch-streaming pipelines with fused scans running
//! morsel-parallel, materializing only at pipeline breakers.
//!
//! Logical plans are linear operator chains. Before this layer existed,
//! every backend executed them operator-at-a-time, materializing a full
//! [`AuRelation`](audb_core::AuRelation) between steps — a
//! `scan → select → project → window` query paid three intermediate
//! relation builds before the window operator even started. The executor
//! here removes that: a [`lower`] pass splits the chain into
//! [`Pipeline`]s, fusing adjacent `select`/`project`/`project_exprs`
//! operators into a single per-batch closure chain, and marking the
//! order-based operators (`sort`, `topk`, `window`) as **pipeline
//! breakers** — the only points where state is materialized.
//!
//! Execution ([`execute`]) columnarizes each fused stage's input
//! ([`audb_core::AuColumns`] — cached on the plan when the stage reads
//! the scan source unchanged) and streams cache-sized zero-copy
//! column-slice [`AuBatch`](audb_core::AuBatch) morsels through the
//! fused chain in parallel (via `audb-par`, with deterministic output
//! order) as vectorized column sweeps, then hands the single
//! materialized build side to the backend's breaker hook. Per-operator wall times and
//! batch counts are collected in an [`ExecTrace`], surfaced by
//! `Engine::run_all` and the `repro bench` harness.
//!
//! The semantic contract, property-tested in `tests/pipeline_equivalence.rs`:
//! for every plan, backend and batch size, pipelined execution is bag-equal
//! to materialized operator-at-a-time execution.

mod lower;
mod run;

pub use lower::{is_breaker, lower, Pipeline};
pub use run::{execute, execute_with, ExecMode, ExecTrace, OpTiming, DEFAULT_BATCH_SIZE};
