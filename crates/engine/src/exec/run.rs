//! The batch-streaming executor and its materialized twin.
//!
//! [`execute`] runs a validated plan on any [`Backend`] in one of two
//! modes:
//!
//! * [`ExecMode::Materialized`] — the original operator-at-a-time loop: a
//!   full [`AuRelation`] between every step. Kept as the semantic oracle
//!   (the [`Reference`](crate::Reference) backend's mode) and as the
//!   comparison arm of the pipelined-≡-materialized property test.
//! * [`ExecMode::Pipelined`] — the lowered [`Pipeline`]s: the input of
//!   each pipeline's fused select/project chain is columnarized once
//!   ([`AuColumns`]), then every step is a **vectorized column sweep**
//!   over cache-sized zero-copy batch views ([`AuBatch`]), with the
//!   batches of one stage processed **morsel-parallel** through
//!   [`audb_par::par_map`] (deterministic output order: batch `i`'s rows
//!   always precede batch `i + 1`'s). Only breakers materialize rows.
//!
//! Both modes collect an [`ExecTrace`]: per-operator wall time, batch
//! count and output cardinality, surfaced by `Engine::run_all` and
//! `repro bench`.

use super::lower::{fuse_label, lower, Pipeline};
use crate::backend::Backend;
use crate::error::EngineError;
use crate::plan::{Op, Plan};
use audb_core::{range_verdict, AuBatch, AuColumns, AuRelation, Mult3, TableStats, ZoneVerdict};
use audb_rel::Schema;
use std::borrow::Cow;
use std::fmt;
use std::time::{Duration, Instant};

/// Default number of rows per batch: small enough that a batch of tuples
/// plus its fused-stage output stays cache-resident, large enough to
/// amortize per-batch dispatch.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// How a backend runs plans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Operator-at-a-time with a materialized relation between steps.
    Materialized,
    /// Batch-streaming pipelines with fused stages and breaker-only
    /// materialization.
    Pipelined,
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecMode::Materialized => write!(f, "materialized"),
            ExecMode::Pipelined => write!(f, "pipelined"),
        }
    }
}

/// One physical operator's measured execution.
#[derive(Clone, Debug)]
pub struct OpTiming {
    /// Stable label: `scan`, a breaker's operator name, or
    /// `fuse(select · project)` for a fused stage.
    pub label: String,
    /// Wall-clock time spent in this operator.
    pub elapsed: Duration,
    /// Batches processed (materialized operators count their single
    /// materialized input as one batch).
    pub batches: usize,
    /// Rows flowing out of the operator.
    pub rows_out: usize,
}

/// The measured physical execution of one plan on one backend.
#[derive(Clone, Debug)]
pub struct ExecTrace {
    /// Mode the plan ran under.
    pub mode: ExecMode,
    /// Batch size used (also reported for materialized runs, where it only
    /// affects the nominal scan batch count).
    pub batch_size: usize,
    /// Number of pipelines the plan lowered to (0 for materialized runs
    /// and scan-only plans).
    pub pipelines: usize,
    /// Batches the pipelined executor skipped outright because the source
    /// zone maps proved a fused selection false over the whole batch
    /// (always 0 for materialized runs and with pruning disabled).
    pub batches_skipped: usize,
    /// Batches the fused stages actually evaluated (0 for materialized
    /// runs, which do not batch their operator inputs).
    pub batches_scanned: usize,
    /// Per-operator timings, in execution order (first entry is the scan).
    pub ops: Vec<OpTiming>,
}

/// Execute `plan` on `backend` in the given mode, collecting a trace.
/// Zone-map batch pruning is on — [`execute_with`] exposes the switch.
pub fn execute<B: Backend + ?Sized>(
    backend: &B,
    plan: &Plan,
    mode: ExecMode,
    batch_size: usize,
) -> Result<(AuRelation, ExecTrace), EngineError> {
    execute_with(backend, plan, mode, batch_size, true)
}

/// Execute `plan` on `backend` in the given mode, with zone-map batch
/// pruning explicitly enabled or disabled (the disabled arm is the
/// within-run comparison baseline of `repro bench` and the pruned ≡
/// unpruned property test).
pub fn execute_with<B: Backend + ?Sized>(
    backend: &B,
    plan: &Plan,
    mode: ExecMode,
    batch_size: usize,
    prune: bool,
) -> Result<(AuRelation, ExecTrace), EngineError> {
    match mode {
        ExecMode::Materialized => run_materialized(backend, plan, batch_size),
        ExecMode::Pipelined => run_pipelined(backend, plan, batch_size, prune),
    }
}

/// Dispatch one breaker operator to its backend hook.
fn run_breaker<B: Backend + ?Sized>(
    backend: &B,
    op: &Op,
    input: &AuRelation,
) -> Result<AuRelation, EngineError> {
    match op {
        Op::Sort { order, pos_name } => backend.sort(input, order, pos_name),
        Op::TopK { order, k, pos_name } => backend.topk(input, order, *k, pos_name),
        Op::Window {
            spec,
            agg,
            out_name,
        } => backend.window(input, spec, *agg, out_name),
        _ => unreachable!("only order-based operators are pipeline breakers"),
    }
}

/// The operator-at-a-time loop: every step materializes.
fn run_materialized<B: Backend + ?Sized>(
    backend: &B,
    plan: &Plan,
    batch_size: usize,
) -> Result<(AuRelation, ExecTrace), EngineError> {
    let mut ops = Vec::with_capacity(plan.ops().len() + 1);
    let start = Instant::now();
    let mut cur: Cow<'_, AuRelation> = backend.scan(plan.source())?;
    ops.push(OpTiming {
        label: "scan".to_string(),
        elapsed: start.elapsed(),
        batches: cur.batch_count(batch_size),
        rows_out: cur.len(),
    });
    for op in plan.ops() {
        let start = Instant::now();
        let next = match op {
            Op::Select { pred } => audb_core::au_select(&cur, pred),
            Op::Project { cols } => audb_core::au_project_cols(&cur, cols),
            Op::ProjectExprs { exprs } => {
                let borrowed: Vec<(audb_core::RangeExpr, &str)> =
                    exprs.iter().map(|(e, n)| (e.clone(), n.as_str())).collect();
                audb_core::au_project(&cur, &borrowed)
            }
            breaker => run_breaker(backend, breaker, &cur)?,
        };
        cur = Cow::Owned(next);
        ops.push(OpTiming {
            label: op.name().to_string(),
            elapsed: start.elapsed(),
            batches: 1,
            rows_out: cur.len(),
        });
    }
    Ok((
        cur.into_owned(),
        ExecTrace {
            mode: ExecMode::Materialized,
            batch_size,
            pipelines: 0,
            batches_skipped: 0,
            batches_scanned: 0,
            ops,
        },
    ))
}

/// Zone-map verdicts for one batch of the first fused stage: whether the
/// whole batch can be skipped (some fused selection is provably false
/// over the batch's bound box), and per fused step whether its predicate
/// is provably true for every row (the evaluation short-circuits; the
/// certainty bitmap and annotations are untouched because
/// `Mult3::filter(TRUE)` is the identity).
struct BatchVerdict {
    skip: bool,
    all_true: Vec<bool>,
}

/// Compute the verdicts for the leading `Select` steps of a fused chain
/// over source rows `[start, start + len)`. Only the selects *before* the
/// first projection see source columns (projections reshape the schema,
/// so statistics column indices stop applying there).
fn batch_verdict(
    steps: &[(&Op, &Schema)],
    stats: &TableStats,
    start: usize,
    len: usize,
) -> BatchVerdict {
    let mut all_true = vec![false; steps.len()];
    for (si, (op, _)) in steps.iter().enumerate() {
        let Op::Select { pred } = op else {
            break;
        };
        match range_verdict(pred, stats, start, len) {
            ZoneVerdict::AllFalse => {
                return BatchVerdict {
                    skip: true,
                    all_true,
                }
            }
            ZoneVerdict::AllTrue => all_true[si] = true,
            ZoneVerdict::Mixed => {}
        }
    }
    BatchVerdict {
        skip: false,
        all_true,
    }
}

/// Apply a fused chain of streamable operators to one columnar batch,
/// producing the surviving (possibly reshaped) rows — as owned columns —
/// in input order. Each `(op, output schema)` step is one vectorized
/// column sweep over the current base (the borrowed batch view for the
/// leading steps — zero-copy — then the owned columns of the last
/// projection).
///
/// Semantics mirror the materialized operators exactly (pinned by the
/// pipelined-≡-materialized property test):
/// * `select` filters the multiplicity triple by the predicate's
///   vectorized truth column and drops rows whose filtered annotation is
///   `(0, 0, 0)`;
/// * both projections drop rows whose (current) annotation is zero, then
///   gather / recompute columns — a bare column reference in a computed
///   projection copies the column instead of re-evaluating per cell.
fn apply_fused(steps: &[(&Op, &Schema)], batch: &AuBatch<'_>, all_true: &[bool]) -> AuColumns {
    // Selections never copy a value: they fold into a pending selection
    // vector (surviving batch-relative indices + filtered annotations)
    // over the current base — the borrowed input batch, or the owned
    // columns the last projection produced. Projections resolve the
    // pending selection in their gather, so a `select · project` chain
    // copies each surviving cell exactly once.
    enum StepOut {
        Selected(Vec<usize>, Vec<Mult3>),
        Projected(AuColumns),
    }
    let mut owned: Option<AuColumns> = None;
    let mut pending: Option<(Vec<usize>, Vec<Mult3>)> = None;
    for (si, (op, out_schema)) in steps.iter().enumerate() {
        let out = {
            let base = match &owned {
                Some(cols) => cols.as_batch(),
                None => *batch,
            };
            match op {
                // A zone-map `AllTrue` verdict short-circuits the
                // predicate: `Mult3::filter(TRUE)` is the identity, so the
                // step only drops already-zero annotations (exactly the
                // materialized select's drop rule) and never evaluates.
                Op::Select { .. } if all_true.get(si).copied().unwrap_or(false) => {
                    match pending.take() {
                        Some((sel, mults)) => StepOut::Selected(sel, mults),
                        None => {
                            let (keep, mults) = nonzero_rows(&base);
                            StepOut::Selected(keep, mults)
                        }
                    }
                }
                Op::Select { pred } => match pending.take() {
                    // Fold into the previous selection: evaluate the
                    // predicate over its surviving rows only and
                    // re-filter their annotations.
                    Some((sel, mults)) => {
                        let truths = pred.truth_batch_at(&base, &sel);
                        let mut keep = Vec::with_capacity(sel.len());
                        let mut kept_mults = Vec::with_capacity(sel.len());
                        for ((&i, m), truth) in sel.iter().zip(&mults).zip(truths) {
                            let m = m.filter(truth);
                            if !m.is_zero() {
                                keep.push(i);
                                kept_mults.push(m);
                            }
                        }
                        StepOut::Selected(keep, kept_mults)
                    }
                    None => {
                        let truths = pred.truth_batch(&base);
                        let mut keep = Vec::with_capacity(base.len());
                        let mut mults = Vec::with_capacity(base.len());
                        for (i, truth) in truths.into_iter().enumerate() {
                            let m = base.mult(i).filter(truth);
                            if !m.is_zero() {
                                keep.push(i);
                                mults.push(m);
                            }
                        }
                        StepOut::Selected(keep, mults)
                    }
                },
                Op::Project { cols } => {
                    let (keep, mults) = pending.take().unwrap_or_else(|| nonzero_rows(&base));
                    StepOut::Projected(base.gather_cols(cols, (*out_schema).clone(), &keep, &mults))
                }
                Op::ProjectExprs { exprs } => {
                    let (keep, mults) = pending.take().unwrap_or_else(|| nonzero_rows(&base));
                    let cols = exprs
                        .iter()
                        .map(|(e, _)| match e {
                            // A bare column reference copies the column;
                            // computed expressions evaluate only the kept
                            // rows, straight into a typed output column
                            // when the kernel stays monomorphic.
                            audb_core::RangeExpr::Col(c) => base.gather_col(*c, &keep),
                            computed => computed.eval_batch_column(&base, &keep),
                        })
                        .collect();
                    StepOut::Projected(AuColumns::from_cols((*out_schema).clone(), cols, &mults))
                }
                _ => unreachable!("breakers are never fused"),
            }
        };
        match out {
            StepOut::Selected(keep, mults) => pending = Some((keep, mults)),
            StepOut::Projected(cols) => owned = Some(cols),
        }
    }
    match (owned, pending) {
        // Trailing selection: resolve it with one gather from the base.
        (Some(cols), Some((keep, mults))) => cols.as_batch().gather(&keep, &mults),
        (None, Some((keep, mults))) => batch.gather(&keep, &mults),
        (Some(cols), None) => cols,
        (None, None) => unreachable!("fused chains are non-empty"),
    }
}

/// The batch-relative indices and annotations of the rows a projection
/// keeps (`k↑ > 0` — the materialized operators' drop rule).
fn nonzero_rows(b: &AuBatch<'_>) -> (Vec<usize>, Vec<Mult3>) {
    let mut keep = Vec::with_capacity(b.len());
    let mut mults = Vec::with_capacity(b.len());
    for i in 0..b.len() {
        let m = b.mult(i);
        if !m.is_zero() {
            keep.push(i);
            mults.push(m);
        }
    }
    (keep, mults)
}

/// The batch-streaming executor: fused stages morsel-parallel per batch,
/// breakers via the backend hooks.
fn run_pipelined<B: Backend + ?Sized>(
    backend: &B,
    plan: &Plan,
    batch_size: usize,
    prune: bool,
) -> Result<(AuRelation, ExecTrace), EngineError> {
    let pipelines: Vec<Pipeline> = lower(plan);
    let mut ops = Vec::with_capacity(plan.ops().len() + 1);
    let mut batches_skipped = 0usize;
    let mut batches_scanned = 0usize;
    let start = Instant::now();
    let mut cur: Cow<'_, AuRelation> = backend.scan(plan.source())?;
    ops.push(OpTiming {
        label: "scan".to_string(),
        elapsed: start.elapsed(),
        batches: cur.batch_count(batch_size),
        rows_out: cur.len(),
    });
    for pipeline in &pipelines {
        if !pipeline.fused.is_empty() {
            let start = Instant::now();
            // Each fused step carries its output schema (`schemas()[i + 1]`
            // is the schema *after* operator `i`).
            let steps: Vec<(&Op, &Schema)> = pipeline
                .fused
                .iter()
                .map(|&i| (&plan.ops()[i], &plan.schemas()[i + 1]))
                .collect();
            // Output schema of the last fused operator.
            let out_schema = plan.schemas()[pipeline.fused.last().unwrap() + 1].clone();
            // Columnarize once per fused stage; every step inside the
            // stage is then a vectorized column sweep. When the stage
            // reads the plan's source unchanged (the common scan →
            // select/project head), the plan's cached columnar form is
            // used — transposed once, shared across executions, the
            // stand-in for columnar base-table storage.
            let cols_local;
            let (cols, on_source): (&AuColumns, bool) = match &cur {
                Cow::Borrowed(rel) if std::ptr::eq(*rel, plan.source()) => {
                    (plan.source_columns(), true)
                }
                _ => {
                    cols_local = cur.to_columns();
                    (&cols_local, false)
                }
            };
            let batches: Vec<audb_core::AuBatch<'_>> = cols.batches(batch_size).collect();
            let n_batches = batches.len();
            // Zone-map pruning applies only when this stage reads the
            // plan's source unchanged: the statistics describe source
            // rows, so batch `i` covers rows `[i·batch, i·batch + len)`
            // of exactly the relation the zones were built over.
            let verdicts: Option<Vec<BatchVerdict>> = if prune && on_source {
                let stats = plan.source_stats();
                (stats.rows == cols.len()).then(|| {
                    batches
                        .iter()
                        .map(|b| batch_verdict(&steps, stats, b.index() * batch_size, b.len()))
                        .collect()
                })
            } else {
                None
            };
            let skipped = verdicts
                .as_ref()
                .map_or(0, |vs| vs.iter().filter(|v| v.skip).count());
            batches_skipped += skipped;
            batches_scanned += n_batches - skipped;
            let no_hints: Vec<bool> = Vec::new();
            // Morsel-parallel: each batch runs the whole fused chain
            // independently; par_map guarantees chunk `i`'s rows land
            // before chunk `i + 1`'s, so the output order is exactly the
            // sequential one. A skipped batch contributes no rows, in
            // order, without touching its columns.
            let chunks = audb_par::par_map(&batches, |b| {
                match verdicts.as_ref().map(|vs| &vs[b.index()]) {
                    Some(v) if v.skip => AuColumns::empty(out_schema.clone()),
                    Some(v) => apply_fused(&steps, b, &v.all_true),
                    None => apply_fused(&steps, b, &no_hints),
                }
            });
            let mut merged = AuColumns::empty(out_schema);
            for chunk in chunks {
                merged.append(chunk);
            }
            cur = Cow::Owned(merged.to_rows());
            ops.push(OpTiming {
                label: fuse_label(steps.iter().map(|(op, _)| op.name())),
                elapsed: start.elapsed(),
                batches: n_batches,
                rows_out: cur.len(),
            });
        }
        if let Some(b) = pipeline.breaker {
            let start = Instant::now();
            let op = &plan.ops()[b];
            let next = run_breaker(backend, op, &cur)?;
            cur = Cow::Owned(next);
            ops.push(OpTiming {
                label: op.name().to_string(),
                elapsed: start.elapsed(),
                batches: 1,
                rows_out: cur.len(),
            });
        }
    }
    Ok((
        cur.into_owned(),
        ExecTrace {
            mode: ExecMode::Pipelined,
            batch_size,
            pipelines: pipelines.len(),
            batches_skipped,
            batches_scanned,
            ops,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Native, Reference, Rewrite};
    use crate::plan::{Agg, Query, WindowSpec};
    use audb_core::{AuTuple, Mult3, RangeExpr, RangeValue};
    use audb_rel::Schema;

    fn rel(n: usize) -> AuRelation {
        AuRelation::from_rows(
            Schema::new(["a", "b"]),
            (0..n).map(|i| {
                (
                    AuTuple::new([
                        RangeValue::new(i as i64, i as i64 + 1, i as i64 + 2),
                        RangeValue::certain((i % 5) as i64),
                    ]),
                    if i % 3 == 0 {
                        Mult3::new(0, 1, 1)
                    } else {
                        Mult3::ONE
                    },
                )
            }),
        )
    }

    fn fused_plan(n: usize) -> Plan {
        Query::scan(rel(n))
            .select(RangeExpr::col(1).lt(RangeExpr::lit(4)))
            .project_exprs([
                (RangeExpr::col(0), "a".to_string()),
                (
                    RangeExpr::Add(Box::new(RangeExpr::col(1)), Box::new(RangeExpr::lit(1))),
                    "b1".to_string(),
                ),
            ])
            .sort_by(["b1", "a"])
            .topk(4)
            .build()
            .unwrap()
    }

    /// The batch-boundary contract: batch size 1 (every row its own
    /// morsel), exactly n (one full batch), and > n (one short batch) all
    /// produce the materialized result, on every backend.
    #[test]
    fn batch_boundaries_are_bag_equal_to_materialized() {
        let n = 23;
        let plan = fused_plan(n);
        let backends: [&dyn Backend; 3] = [&Reference::default(), &Native, &Rewrite::default()];
        for backend in backends {
            let (materialized, trace) =
                execute(backend, &plan, ExecMode::Materialized, DEFAULT_BATCH_SIZE).unwrap();
            assert_eq!(trace.mode, ExecMode::Materialized);
            // scan + select + project + topk
            assert_eq!(trace.ops.len(), 4);
            for batch_size in [1, n, n + 10] {
                let (pipelined, trace) =
                    execute(backend, &plan, ExecMode::Pipelined, batch_size).unwrap();
                assert!(
                    pipelined.bag_eq(&materialized),
                    "backend {} batch {batch_size}:\n{pipelined}\nvs\n{materialized}",
                    backend.name()
                );
                assert_eq!(trace.pipelines, 1);
                // scan, fused stage, breaker.
                assert_eq!(trace.ops.len(), 3);
                assert_eq!(trace.ops[1].label, "fuse(select · project)");
                assert_eq!(trace.ops[2].label, "topk");
                let expected_batches = if batch_size == 1 { n } else { 1 };
                assert_eq!(trace.ops[1].batches, expected_batches);
            }
        }
    }

    /// Fused chains replicate the drop rules of the materialized
    /// operators: select drops zero filtered annotations, projections drop
    /// zero input annotations, and rows that never pass a dropping
    /// operator survive untouched.
    #[test]
    fn fused_chain_matches_operator_composition() {
        let rel = AuRelation::from_rows(
            Schema::new(["a"]),
            [
                (AuTuple::new([RangeValue::certain(1i64)]), Mult3::ONE),
                (AuTuple::new([RangeValue::certain(9i64)]), Mult3::ONE),
                (AuTuple::new([RangeValue::certain(2i64)]), Mult3::ZERO),
            ],
        );
        // Zero-annotation rows survive an empty chain (no pipeline at all)…
        let plan = Query::scan(rel.clone()).build().unwrap();
        let (out, trace) = execute(&Native, &plan, ExecMode::Pipelined, 2).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(trace.pipelines, 0);
        // …but a projection drops them, exactly like au_project_cols.
        let plan = Query::scan(rel.clone()).project(["a"]).build().unwrap();
        let (out, _) = execute(&Native, &plan, ExecMode::Pipelined, 2).unwrap();
        assert!(out.bag_eq(&audb_core::au_project_cols(&rel, &[0])));
        assert_eq!(out.len(), 2);
        // A select ahead of the projection drops non-matching rows first.
        let plan = Query::scan(rel.clone())
            .select(RangeExpr::col(0).lt(RangeExpr::lit(5)))
            .project(["a"])
            .build()
            .unwrap();
        let (out, _) = execute(&Native, &plan, ExecMode::Pipelined, 1).unwrap();
        let step = audb_core::au_select(&rel, &RangeExpr::col(0).lt(RangeExpr::lit(5)));
        assert!(out.bag_eq(&audb_core::au_project_cols(&step, &[0])));
        assert_eq!(out.len(), 1);
    }

    /// Uncertain predicates weaken annotations instead of dropping rows —
    /// the fused select must carry the filtered (not original) triple into
    /// the downstream projection.
    #[test]
    fn fused_select_filters_annotations() {
        let rel = AuRelation::from_rows(
            Schema::new(["a"]),
            [(
                AuTuple::new([RangeValue::new(1, 2, 9)]),
                Mult3::new(2, 2, 2),
            )],
        );
        let pred = RangeExpr::col(0).le(RangeExpr::lit(4));
        let plan = Query::scan(rel.clone())
            .select(pred.clone())
            .project(["a"])
            .build()
            .unwrap();
        let (out, _) = execute(&Native, &plan, ExecMode::Pipelined, 8).unwrap();
        // Possibly-true predicate: certain multiplicity drops to 0.
        assert_eq!(out.rows()[0].mult, Mult3::new(0, 2, 2));
        let materialized = audb_core::au_project_cols(&audb_core::au_select(&rel, &pred), &[0]);
        assert!(out.bag_eq(&materialized));
    }

    /// Zone-map pruning on clustered data skips provably-false batches and
    /// short-circuits provably-true ones, with output identical to the
    /// unpruned run (and the skip/scan counters surfaced in the trace).
    #[test]
    fn zone_pruning_skips_batches_and_preserves_output() {
        use audb_core::ZONE_ROWS;
        // Clustered certain key in col 0 (zone maps are tight), uncertain
        // payload in col 1, some zero annotations sprinkled in.
        let n = 4 * ZONE_ROWS;
        let rel = AuRelation::from_rows(
            Schema::new(["t", "v"]),
            (0..n).map(|i| {
                (
                    AuTuple::new([
                        RangeValue::certain(i as i64),
                        RangeValue::new(i as i64 - 1, i as i64, i as i64 + 1),
                    ]),
                    if i % 7 == 0 { Mult3::ZERO } else { Mult3::ONE },
                )
            }),
        );
        // Keeps only the first zone: three of four batches prune away.
        let plan = Query::scan(rel)
            .select(RangeExpr::col(0).lt(RangeExpr::lit(ZONE_ROWS as i64)))
            .project(["t", "v"])
            .build()
            .unwrap();
        let (pruned, trace) =
            execute_with(&Native, &plan, ExecMode::Pipelined, ZONE_ROWS, true).unwrap();
        assert_eq!(trace.batches_skipped, 3);
        assert_eq!(trace.batches_scanned, 1);
        let (unpruned, off) =
            execute_with(&Native, &plan, ExecMode::Pipelined, ZONE_ROWS, false).unwrap();
        assert_eq!(off.batches_skipped, 0);
        assert_eq!(off.batches_scanned, 4);
        assert!(pruned.bag_eq(&unpruned));
        let (materialized, _) = execute(&Native, &plan, ExecMode::Materialized, ZONE_ROWS).unwrap();
        assert!(pruned.bag_eq(&materialized));

        // An always-true predicate short-circuits: nothing skips, the
        // output still drops the zero-annotation rows.
        let plan2 = Query::scan(plan.source_arc().clone())
            .select(RangeExpr::col(0).lt(RangeExpr::lit(n as i64)))
            .project(["t"])
            .build()
            .unwrap();
        let (pruned, trace) =
            execute_with(&Native, &plan2, ExecMode::Pipelined, ZONE_ROWS, true).unwrap();
        assert_eq!(trace.batches_skipped, 0);
        let (materialized, _) =
            execute(&Native, &plan2, ExecMode::Materialized, ZONE_ROWS).unwrap();
        assert!(pruned.bag_eq(&materialized));

        // A batch size misaligned with the zones stays correct: verdicts
        // combine every overlapping zone.
        let (odd, trace) = execute_with(
            &Native,
            &plan,
            ExecMode::Pipelined,
            ZONE_ROWS / 3 + 11,
            true,
        )
        .unwrap();
        assert!(odd.bag_eq(&unpruned));
        assert!(trace.batches_skipped > 0);
    }

    /// Multi-breaker plans: every pipeline runs, intermediate fused stages
    /// see the previous breaker's output schema.
    #[test]
    fn multi_breaker_plan_pipelines_end_to_end() {
        let plan = Query::scan(rel(17))
            .sort_by_as(["b"], "r1")
            .select(RangeExpr::col(2).lt(RangeExpr::lit(10)))
            .window(
                WindowSpec::rows(-1, 0)
                    .order_by(["a"])
                    .aggregate(Agg::sum("b"))
                    .output("s"),
            )
            .project(["a", "s"])
            .build()
            .unwrap();
        for backend in [&Native as &dyn Backend, &Reference::default()] {
            let (pipelined, trace) = execute(backend, &plan, ExecMode::Pipelined, 4).unwrap();
            let (materialized, _) = execute(backend, &plan, ExecMode::Materialized, 4).unwrap();
            assert!(pipelined.bag_eq(&materialized), "{}", backend.name());
            assert_eq!(trace.pipelines, 3);
            let labels: Vec<&str> = trace.ops.iter().map(|o| o.label.as_str()).collect();
            assert_eq!(
                labels,
                ["scan", "sort", "fuse(select)", "window", "fuse(project)"]
            );
        }
    }
}
