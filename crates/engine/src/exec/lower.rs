//! The lowering pass: `Plan → Vec<Pipeline>`.
//!
//! A [`Pipeline`] is a maximal run of streamable operators (selection and
//! projection — they look at one tuple at a time) terminated by at most one
//! *pipeline breaker* (sort / top-k / window — they need the whole input
//! before emitting anything). Lowering never reorders operators, so the
//! fused chain applies them in exactly the logical plan's order and the
//! result is bag-identical to operator-at-a-time execution.

use crate::plan::{Op, Plan};

/// True iff the operator must see its entire input before producing output
/// — the order-based operators whose position/aggregate bounds depend on
/// every other row.
pub fn is_breaker(op: &Op) -> bool {
    matches!(op, Op::Sort { .. } | Op::TopK { .. } | Op::Window { .. })
}

/// One physical pipeline: a fused chain of streamable operators feeding an
/// optional breaker. Operators are referenced by index into
/// [`Plan::ops`] so the executor and `explain` share one lowered form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pipeline {
    /// Indices of the fused `select`/`project`/`project_exprs` operators,
    /// in plan order (possibly empty: a breaker directly after the scan or
    /// after another breaker).
    pub fused: Vec<usize>,
    /// Index of the terminating breaker (`sort`/`topk`/`window`), or
    /// `None` for the final pipeline that streams straight to the output.
    pub breaker: Option<usize>,
}

/// The stable label of a fused stage, e.g. `fuse(select · project)` — the
/// single source for both [`Pipeline::describe`] (explain output) and the
/// executor's [`OpTiming`](super::OpTiming) labels, which are
/// golden-tested to match.
pub(super) fn fuse_label<'a>(op_names: impl Iterator<Item = &'a str>) -> String {
    format!("fuse({})", op_names.collect::<Vec<_>>().join(" · "))
}

impl Pipeline {
    /// Render this pipeline against its plan, in the stable format
    /// `explain` prints: `fuse(select · project) ⇒ breaker sort` or
    /// `passthrough ⇒ output`.
    pub fn describe(&self, plan: &Plan) -> String {
        let stage = if self.fused.is_empty() {
            "passthrough".to_string()
        } else {
            fuse_label(self.fused.iter().map(|&i| plan.ops()[i].name()))
        };
        match self.breaker {
            Some(b) => format!("{stage} ⇒ breaker {}", plan.ops()[b].name()),
            None => format!("{stage} ⇒ output"),
        }
    }
}

/// Split a plan's operator chain into pipelines: streamable operators
/// accumulate into the current pipeline's fused chain; each breaker closes
/// the pipeline it terminates. A plan with no operators lowers to no
/// pipelines (the scan alone is the result).
pub fn lower(plan: &Plan) -> Vec<Pipeline> {
    let mut out = Vec::new();
    let mut fused: Vec<usize> = Vec::new();
    for (i, op) in plan.ops().iter().enumerate() {
        if is_breaker(op) {
            out.push(Pipeline {
                fused: std::mem::take(&mut fused),
                breaker: Some(i),
            });
        } else {
            fused.push(i);
        }
    }
    if !fused.is_empty() {
        out.push(Pipeline {
            fused,
            breaker: None,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Agg, Query, WindowSpec};
    use audb_core::{AuRelation, AuTuple, Mult3, RangeExpr, RangeValue};
    use audb_rel::Schema;

    fn rel() -> AuRelation {
        AuRelation::from_rows(
            Schema::new(["a", "b"]),
            [(
                AuTuple::new([RangeValue::certain(1i64), RangeValue::new(1, 2, 3)]),
                Mult3::ONE,
            )],
        )
    }

    /// The satellite fusion-order contract: adjacent select/project fuse
    /// into one chain **in plan order**, breakers terminate pipelines, and
    /// trailing streamable operators form a final output pipeline.
    #[test]
    fn fuses_adjacent_streamables_in_order() {
        let plan = Query::scan(rel())
            .select(RangeExpr::col(1).lt(RangeExpr::lit(9)))
            .project(["b", "a"])
            .sort_by(["b"])
            .select(RangeExpr::col(2).lt(RangeExpr::lit(2)))
            .window(
                WindowSpec::rows(-1, 0)
                    .order_by(["b"])
                    .aggregate(Agg::sum("b"))
                    .output("s"),
            )
            .project(["s"])
            .build()
            .unwrap();
        let pipelines = lower(&plan);
        assert_eq!(
            pipelines,
            vec![
                Pipeline {
                    fused: vec![0, 1],
                    breaker: Some(2)
                },
                Pipeline {
                    fused: vec![3],
                    breaker: Some(4)
                },
                Pipeline {
                    fused: vec![5],
                    breaker: None
                },
            ]
        );
        assert_eq!(
            pipelines[0].describe(&plan),
            "fuse(select · project) ⇒ breaker sort"
        );
        assert_eq!(pipelines[2].describe(&plan), "fuse(project) ⇒ output");
    }

    #[test]
    fn breaker_only_and_empty_plans() {
        let plan = Query::scan(rel()).sort_by(["a"]).topk(2).build().unwrap();
        let pipelines = lower(&plan);
        assert_eq!(
            pipelines,
            vec![Pipeline {
                fused: vec![],
                breaker: Some(0)
            }]
        );
        assert_eq!(pipelines[0].describe(&plan), "passthrough ⇒ breaker topk");

        let scan_only = Query::scan(rel()).build().unwrap();
        assert!(lower(&scan_only).is_empty());
    }

    #[test]
    fn consecutive_breakers_get_empty_stages() {
        let plan = Query::scan(rel())
            .sort_by_as(["a"], "p1")
            .sort_by_as(["b"], "p2")
            .build()
            .unwrap();
        assert_eq!(
            lower(&plan),
            vec![
                Pipeline {
                    fused: vec![],
                    breaker: Some(0)
                },
                Pipeline {
                    fused: vec![],
                    breaker: Some(1)
                },
            ]
        );
    }
}
