//! # audb-engine — one entry point for every uncertain-ranking method
//!
//! The paper's evaluation rests on one invariant: the quadratic reference
//! semantics (Defs. 2–3), the one-pass native operators (Sec. 8) and the
//! SQL-style rewrites (Sec. 7) all bound the *same* set of possible worlds.
//! This crate turns that invariant into an API:
//!
//! * [`Query`] — a typed logical-plan builder
//!   (`Query::scan(rel).select(p).sort_by(cols).topk(k)` /
//!   `.window(spec)`) that validates schemas and column references at
//!   build time and returns structured [`PlanError`]s instead of operator
//!   panics;
//! * [`Backend`] — the physical-implementation trait
//!   (`execute(&Plan) -> Result<AuRelation, EngineError>`), implemented by
//!   [`Reference`], [`Native`] (with fallback rules for the cases the
//!   one-pass operators do not cover) and [`Rewrite`] (which scans through
//!   the relational encoding, as a DBMS executing Figs. 7–8 would);
//! * [`Engine`] — the handle that owns backend selection, renders
//!   per-query [`Engine::explain`] output, and cross-checks every backend
//!   against every other via [`Engine::run_all`].
//! * [`exec`] — the physical execution layer between plans and backends:
//!   logical chains lower to batch-streaming [`Pipeline`]s whose fused
//!   select/project stages run morsel-parallel as vectorized column
//!   sweeps over cache-sized columnar [`audb_core::AuBatch`] views
//!   ([`audb_core::AuColumns`] storage), with the order-based operators
//!   as the only materializing pipeline breakers. The production backends (native,
//!   rewrite) execute pipelined; the reference oracle stays materialized;
//!   both modes are property-tested bag-equal on every plan.
//!
//! Everything downstream of the operator crates — examples, workload
//! drivers, benchmarks — constructs its sort/top-k/window queries through
//! this crate, so plan construction is written exactly once.

mod backend;
mod bind;
mod catalog;
mod engine;
mod error;
pub mod exec;
pub mod maintain;
pub mod optimize;
mod plan;
mod plancache;
mod print;
mod session;

pub use backend::{Backend, Native, Reference, Rewrite};
pub use catalog::{Catalog, CatalogAppendError, SharedCatalog};
pub use engine::{BackendChoice, BackendRun, Engine, Explain, ExplainStep, RunAll};
pub use error::{EngineError, PlanError, SessionError};
pub use exec::{ExecMode, ExecTrace, OpTiming, Pipeline, DEFAULT_BATCH_SIZE};
pub use maintain::{Delta, MaintainedQuery, Strategy, DEFAULT_INCREMENTAL_CUTOFF};
pub use optimize::{optimize, AppliedRule, OptInfo};
pub use plan::{Agg, ColRef, Op, Plan, Query, WindowSpec};
pub use plancache::{CacheStats, PlanCache};
pub use print::plan_to_sql;
pub use session::{Prepared, Session};

// Re-exported so engine users can configure backends without importing the
// operator crates directly. `IntervalIndex` rides along for callers that
// measure the `Rewr(index)` strategy's index-build cost separately, as the
// paper does. `SqlError` completes the error surface of the SQL front
// door (`Session`).
pub use audb_core::CmpSemantics;
// lint: allow(no-direct-backend-call) -- re-export of config/measurement types; execution still flows through Engine
pub use audb_rewrite::{IntervalIndex, JoinStrategy};
pub use audb_sql::{Span, SqlError, SqlErrorKind};

#[cfg(test)]
mod tests {
    use super::*;
    use audb_core::{AuRelation, AuTuple, Mult3, RangeValue, WinAgg};
    use audb_rel::Schema;

    fn rv(lb: i64, sg: i64, ub: i64) -> RangeValue {
        RangeValue::new(lb, sg, ub)
    }

    /// Paper Example 6 input.
    fn example6() -> AuRelation {
        AuRelation::from_rows(
            Schema::new(["a", "b"]),
            [
                (
                    AuTuple::new([RangeValue::certain(1i64), rv(1, 1, 3)]),
                    Mult3::new(1, 1, 2),
                ),
                (
                    AuTuple::new([rv(2, 3, 3), RangeValue::certain(15i64)]),
                    Mult3::new(0, 1, 1),
                ),
                (
                    AuTuple::new([rv(1, 1, 2), RangeValue::certain(2i64)]),
                    Mult3::ONE,
                ),
            ],
        )
    }

    /// A `select → project → sort` plan over `n` rows — large enough to
    /// clear the cost model's pipelining threshold when `n ≥ 512`.
    fn large_plan(n: usize) -> Plan {
        use audb_core::RangeExpr;
        let rows = (0..n).map(|i| {
            (
                AuTuple::new([
                    RangeValue::certain(i as i64),
                    rv(i as i64, i as i64, i as i64 + 1),
                ]),
                Mult3::ONE,
            )
        });
        let rel = AuRelation::from_rows(Schema::new(["a", "b"]), rows);
        Query::scan(rel)
            .select(RangeExpr::col(0).le(RangeExpr::lit(i64::MAX / 2)))
            .project(["a", "b"])
            .sort_by(["a"])
            .build()
            .unwrap()
    }

    /// The acceptance-criteria test: explain() and run_all() agreement
    /// through the unified API, on the paper's own example.
    #[test]
    fn explain_and_run_all_agree_on_example6() {
        let plan = Query::scan(example6())
            .sort_by_as(["a", "b"], "pos")
            .build()
            .unwrap();

        let engine = Engine::native();
        let explain = engine.explain(&plan);
        assert_eq!(explain.backend, BackendChoice::Native);
        let text = explain.to_string();
        assert!(text.contains("backend: native"), "{text}");
        assert!(text.contains("sort"), "{text}");
        assert!(text.contains("Algorithm 1"), "{text}");

        let all = engine.run_all(&plan).unwrap();
        assert_eq!(all.runs.len(), 3);
        // The agreed output is the reference output.
        let reference = Engine::reference().execute(&plan).unwrap();
        assert!(all.output.bag_eq(&reference));
    }

    #[test]
    fn run_all_agreement_covers_topk_and_windows() {
        let topk = Query::scan(example6())
            .sort_by(["a", "b"])
            .topk(2)
            .build()
            .unwrap();
        Engine::native()
            .run_all(&topk)
            .expect("top-k backends agree");

        let win = Query::scan(example6())
            .window(
                WindowSpec::rows(-1, 0)
                    .order_by(["b"])
                    .aggregate(Agg::sum("b"))
                    .output("s"),
            )
            .build()
            .unwrap();
        // example6 has a duplicate multiplicity (1,1,2): the native backend
        // must reroute that window to the reference semantics, keeping
        // run_all's exact agreement.
        Engine::native()
            .run_all(&win)
            .expect("window backends agree");
    }

    /// Regression: identical rows *stored separately* with unit
    /// multiplicities normalize into one row with a duplicate multiplicity
    /// inside the native operators — the fallback check must look at the
    /// normalized relation, or the native backend silently diverges from
    /// the reference bounds.
    #[test]
    fn native_window_falls_back_on_split_duplicate_rows() {
        let dup = AuTuple::new([rv(1, 2, 4), RangeValue::certain(10i64)]);
        let rel = AuRelation::from_rows(
            Schema::new(["a", "b"]),
            [
                (dup.clone(), Mult3::ONE),
                (dup, Mult3::ONE),
                (
                    AuTuple::new([rv(2, 3, 5), RangeValue::certain(7i64)]),
                    Mult3::ONE,
                ),
            ],
        );
        let plan = Query::scan(rel)
            .window(
                WindowSpec::rows(-1, 0)
                    .order_by(["a"])
                    .aggregate(Agg::sum("b"))
                    .output("s"),
            )
            .build()
            .unwrap();
        let native = Engine::native().execute(&plan).unwrap();
        let reference = Engine::reference().execute(&plan).unwrap();
        assert!(
            native.bag_eq(&reference),
            "native:\n{native}\nreference:\n{reference}"
        );
        Engine::native().run_all(&plan).expect("backends agree");
    }

    /// Regression: `run_all` compares the IntervalLex invariant even when
    /// the engine is configured with Syntactic semantics (under which the
    /// reference alone computes looser bounds — previously a spurious
    /// BackendDisagreement).
    #[test]
    fn run_all_pins_interval_lex_under_syntactic_semantics() {
        // Certainty flows through a possible tie: IntervalLex sees it,
        // Syntactic does not (cmp.rs doc example).
        let rel = AuRelation::from_rows(
            Schema::new(["a", "b"]),
            [
                (
                    AuTuple::new([rv(1, 1, 2), RangeValue::certain(2i64)]),
                    Mult3::ONE,
                ),
                (
                    AuTuple::new([rv(2, 3, 3), RangeValue::certain(15i64)]),
                    Mult3::ONE,
                ),
            ],
        );
        let plan = Query::scan(rel).sort_by(["a", "b"]).build().unwrap();
        let engine = Engine::native().with_semantics(CmpSemantics::Syntactic);
        let all = engine.run_all(&plan).expect("run_all compares IntervalLex");
        // The agreed output is the IntervalLex result, not the looser
        // Syntactic one the same engine's execute() produces.
        let interval = Engine::reference().execute(&plan).unwrap();
        assert!(all.output.bag_eq(&interval));
        let syntactic = engine.execute(&plan).unwrap();
        assert!(!syntactic.bag_eq(&interval), "inputs chosen to differ");
    }

    #[test]
    fn native_window_falls_back_on_uncertain_partition() {
        // Uncertain partition attribute: window_native would assert; the
        // engine reroutes to the reference instead of panicking.
        let rel = AuRelation::from_rows(
            Schema::new(["g", "o", "v"]),
            [
                (
                    AuTuple::new([rv(0, 0, 1), RangeValue::certain(1i64), rv(1, 2, 3)]),
                    Mult3::ONE,
                ),
                (
                    AuTuple::new([
                        RangeValue::certain(1i64),
                        RangeValue::certain(2i64),
                        rv(4, 5, 6),
                    ]),
                    Mult3::ONE,
                ),
            ],
        );
        let plan = Query::scan(rel)
            .window(
                WindowSpec::rows(-1, 0)
                    .order_by(["o"])
                    .partition_by(["g"])
                    .aggregate(Agg::sum("v"))
                    .output("s"),
            )
            .build()
            .unwrap();
        let native = Engine::native().execute(&plan).unwrap();
        let reference = Engine::reference().execute(&plan).unwrap();
        assert!(native.bag_eq(&reference));
    }

    #[test]
    fn syntactic_semantics_reroute_to_reference() {
        let engine = Engine::native().with_semantics(CmpSemantics::Syntactic);
        assert_eq!(engine.effective(), BackendChoice::Reference);
        let plan = Query::scan(example6()).sort_by(["a"]).build().unwrap();
        let explain = engine.explain(&plan);
        assert_eq!(explain.requested, BackendChoice::Native);
        assert_eq!(explain.backend, BackendChoice::Reference);
        assert!(explain.to_string().contains("rerouted"), "{explain}");
        assert!(
            explain.to_string().contains(
                "backend: reference (requested native; rerouted: \
                 Syntactic comparison semantics are implemented by the reference backend only)"
            ),
            "{explain}"
        );
        // And the output matches the reference run under the same
        // semantics.
        let reference = Engine::reference().with_semantics(CmpSemantics::Syntactic);
        assert!(engine
            .execute(&plan)
            .unwrap()
            .bag_eq(&reference.execute(&plan).unwrap()));
    }

    /// The engine's operator chain matches hand-wired operator calls — the
    /// backends are thin adapters, not re-implementations.
    /// The satellite contract: explain output has ONE stable shape —
    /// optional `query:` line (the originating SQL), then the `backend:`
    /// line carrying the fallback reason when rerouted, then numbered
    /// steps. Consumers (CI golden files, scripts) may rely on it.
    #[test]
    fn explain_format_is_stable() {
        let session = Session::new(Engine::native().with_semantics(CmpSemantics::Syntactic));
        session.register("r", example6());
        let explain = session.explain_sql("SELECT * FROM r ORDER BY a").unwrap();
        let text = explain.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "query:   SELECT * FROM r ORDER BY a");
        assert_eq!(
            lines[1],
            "backend: reference (requested native; rerouted: Syntactic comparison \
             semantics are implemented by the reference backend only)"
        );
        assert_eq!(lines[2], " 0. scan [3 rows]");
        assert!(lines[3].starts_with("      schema: "), "{text}");
        assert!(lines[4].starts_with("      note:   "), "{text}");
        // The cost model explains its mode choice, then the exec line
        // states it. The reference oracle always runs materialized.
        assert_eq!(
            lines[lines.len() - 2],
            "cost:    rows=3 · est. selectivity 1.00 · 1 breaker(s) → materialized \
             (backend runs operator-at-a-time)"
        );
        assert_eq!(
            lines.last().unwrap(),
            &"exec:    materialized (operator-at-a-time)"
        );

        // Without SQL provenance and without fallback: no query line, bare
        // backend line. The cost model keeps tiny inputs materialized even
        // on the production backend.
        let plan = Query::scan(example6())
            .select(audb_core::RangeExpr::col(0).le(audb_core::RangeExpr::lit(9)))
            .project(["a", "b"])
            .sort_by(["a"])
            .build()
            .unwrap();
        let text = Engine::native().explain(&plan).to_string();
        assert_eq!(text.lines().next().unwrap(), "backend: native");
        assert!(!text.contains("query:"), "{text}");
        let tail: Vec<&str> = text.lines().rev().take(2).collect();
        assert_eq!(tail[0], "exec:    materialized (operator-at-a-time)");
        assert!(
            tail[1].starts_with("cost:    rows=3 · est. selectivity "),
            "{text}"
        );

        // A large input clears the threshold: the production backend
        // pipelines, and the physical pipeline plan (fused stages and
        // breaker annotations) is printed.
        let text = Engine::native().explain(&large_plan(4096)).to_string();
        let tail: Vec<&str> = text.lines().rev().take(2).collect();
        assert_eq!(tail[1], "exec:    pipelined · batch 1024 · 1 pipeline");
        assert_eq!(tail[0], "      p0: fuse(select · project) ⇒ breaker sort");
    }

    /// The satellite contract for `run_all`: ONE stable report format —
    /// per-backend totals with execution mode, then per-operator wall
    /// times with batch counts and cardinalities. Built from synthetic
    /// timings so the golden string is exact.
    #[test]
    fn run_all_report_format_is_stable() {
        use crate::exec::{ExecMode, OpTiming};
        use std::time::Duration;
        let report = RunAll {
            output: example6(),
            runs: vec![
                BackendRun {
                    backend: BackendChoice::Reference,
                    mode: ExecMode::Materialized,
                    elapsed: Duration::from_micros(1500),
                    rows: 3,
                    ops: vec![
                        OpTiming {
                            label: "scan".into(),
                            elapsed: Duration::from_micros(500),
                            batches: 1,
                            rows_out: 3,
                        },
                        OpTiming {
                            label: "sort".into(),
                            elapsed: Duration::from_micros(1000),
                            batches: 1,
                            rows_out: 3,
                        },
                    ],
                },
                BackendRun {
                    backend: BackendChoice::Native,
                    mode: ExecMode::Pipelined,
                    elapsed: Duration::from_micros(800),
                    rows: 3,
                    ops: vec![OpTiming {
                        label: "fuse(select · project)".into(),
                        elapsed: Duration::from_micros(300),
                        batches: 2,
                        rows_out: 1234,
                    }],
                },
            ],
        };
        assert_eq!(
            report.to_string(),
            "all backends agree (3 output rows):\n\
             \x20 reference materialized      1.500ms\n\
             \x20   · scan                          500.000µs     1 batches       3 rows\n\
             \x20   · sort                            1.000ms     1 batches       3 rows\n\
             \x20 native    pipelined       800.000µs\n\
             \x20   · fuse(select · project)        300.000µs     2 batches    1234 rows\n"
        );
    }

    /// `run_all` executes each backend under the cost model's choice
    /// (materialized for tiny inputs, pipelined on the production
    /// backends once the input clears the threshold) and carries
    /// per-operator timings for every run.
    #[test]
    fn run_all_reports_modes_and_op_timings() {
        use crate::exec::ExecMode;
        let plan = Query::scan(example6())
            .select(audb_core::RangeExpr::col(0).le(audb_core::RangeExpr::lit(9)))
            .sort_by(["a"])
            .build()
            .unwrap();
        let all = Engine::native().run_all(&plan).unwrap();
        // 3 rows sit below the pipelining threshold: every backend runs
        // materialized.
        let modes: Vec<ExecMode> = all.runs.iter().map(|r| r.mode).collect();
        assert_eq!(
            modes,
            [
                ExecMode::Materialized,
                ExecMode::Materialized,
                ExecMode::Materialized
            ]
        );
        for run in &all.runs {
            let labels: Vec<&str> = run.ops.iter().map(|o| o.label.as_str()).collect();
            assert_eq!(labels, ["scan", "select", "sort"]);
        }

        // A large input pipelines on the production backends; the
        // reference oracle stays materialized.
        let all = Engine::native().run_all(&large_plan(1024)).unwrap();
        let modes: Vec<ExecMode> = all.runs.iter().map(|r| r.mode).collect();
        assert_eq!(
            modes,
            [
                ExecMode::Materialized,
                ExecMode::Pipelined,
                ExecMode::Pipelined
            ]
        );
        for run in &all.runs {
            let labels: Vec<&str> = run.ops.iter().map(|o| o.label.as_str()).collect();
            match run.mode {
                ExecMode::Materialized => {
                    assert_eq!(labels, ["scan", "select", "project", "sort"])
                }
                ExecMode::Pipelined => {
                    assert_eq!(labels, ["scan", "fuse(select · project)", "sort"])
                }
            }
        }
    }

    #[test]
    fn backends_are_faithful_adapters() {
        let rel = example6();
        let plan = Query::scan(rel.clone())
            .sort_by_as(["a", "b"], "pos")
            .build()
            .unwrap();
        let native = Engine::native().execute(&plan).unwrap();
        assert!(native.bag_eq(&audb_native::sort_native(&rel, &[0, 1], "pos")));

        let rewrite = Engine::rewrite().execute(&plan).unwrap();
        assert!(rewrite.bag_eq(&audb_rewrite::rewr_sort(&rel, &[0, 1], "pos")));

        let win_plan = Query::scan(rel.clone())
            .window(
                WindowSpec::rows(-1, 0)
                    .order_by(["b"])
                    .aggregate(WinAgg::Sum(1))
                    .output("s"),
            )
            .build()
            .unwrap();
        let reference = Engine::reference().execute(&win_plan).unwrap();
        assert!(reference.bag_eq(&audb_core::window_ref(
            &rel,
            &audb_core::AuWindowSpec::rows(vec![1], -1, 0),
            WinAgg::Sum(1),
            "s",
            CmpSemantics::IntervalLex,
        )));
    }

    #[test]
    fn multi_op_plan_executes_end_to_end() {
        use audb_core::RangeExpr;
        let plan = Query::scan(example6())
            .project_exprs([
                (RangeExpr::col(0), "a".to_string()),
                (RangeExpr::col(1), "b".to_string()),
                (
                    RangeExpr::Neg(Box::new(RangeExpr::col(1))),
                    "neg_b".to_string(),
                ),
            ])
            .select(RangeExpr::col(0).le(RangeExpr::lit(3)))
            .sort_by_as(["neg_b"], "rank")
            .topk(2)
            .build()
            .unwrap();
        assert_eq!(plan.schema().cols(), &["a", "b", "neg_b", "rank"]);
        let all = Engine::native().run_all(&plan).unwrap();
        assert!(!all.output.is_empty());
        for row in all.output.rows() {
            let (lb, _, _) = row.tuple.get(3).as_i64_triple();
            assert!(lb < 2, "top-2 rows sit possibly below rank 2");
        }
    }

    #[test]
    fn plan_is_cheap_to_share() {
        use std::sync::Arc;
        let shared = Arc::new(example6());
        let p1 = Query::scan(Arc::clone(&shared))
            .sort_by(["a"])
            .build()
            .unwrap();
        let p2 = Query::scan(shared).sort_by(["b"]).build().unwrap();
        // Both plans borrow the same source allocation — no data copies.
        assert!(std::ptr::eq(p1.source(), p2.source()));
        assert!(Engine::native().execute(&p2).unwrap().len() >= 3);
    }
}
