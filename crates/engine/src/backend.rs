//! The [`Backend`] trait and its three implementations.
//!
//! Every backend executes the *same* logical [`Plan`] and must produce the
//! *same* bounds — the paper's "one semantics, interchangeable
//! implementations" story, made a trait:
//!
//! * [`Reference`] — the quadratic Defs. 2–3 semantics of `audb-core`,
//!   parameterized by [`CmpSemantics`]. The ground truth.
//! * [`Native`] — the one-pass Sec. 8 algorithms of `audb-native`
//!   (`O(n log n)` sorts, connected-heap window sweeps). Falls back to the
//!   reference for the cases the native operators do not cover: uncertain
//!   `PARTITION BY` attributes and window inputs with duplicate
//!   multiplicities (where the native duplicate-offset treatment is
//!   tighter-but-different; the engine contract is reference bounds).
//! * [`Rewrite`] — the Sec. 7 SQL-style rewrites of `audb-rewrite`. Its
//!   scan round-trips the source through the relational encoding of
//!   `audb_core::encode` (three columns per attribute + the multiplicity
//!   triple), exactly the representation a DBMS executing Figs. 7–8 would
//!   hold.
//!
//! Selection and projection have a single shared implementation
//! (`audb-core`'s \[24\] semantics) — only the order-based operators differ
//! between methods, so those are the trait's required methods.

use crate::error::EngineError;
use crate::exec::{self, ExecMode, ExecTrace, DEFAULT_BATCH_SIZE};
use crate::plan::{Op, Plan};
use audb_core::encode::{decode, encode};
use audb_core::{
    au_select, sort_ref, window_ref, AuRelation, AuWindowSpec, CmpSemantics, RangeValue, WinAgg,
};
use audb_rewrite::JoinStrategy;
use std::borrow::Cow;

/// A physical implementation of the logical plan language. `execute` runs
/// the operator chain through the physical execution layer
/// ([`crate::exec`]) in the backend's [`Backend::preferred_mode`]; the
/// per-operator hooks are what distinguish the three methods.
pub trait Backend {
    /// Stable backend name (used in explain output and disagreement
    /// reports).
    fn name(&self) -> &'static str;

    /// Materialize the scanned source. The default borrows it unchanged;
    /// [`Rewrite`] overrides this with the relational-encoding round-trip.
    fn scan<'a>(&self, rel: &'a AuRelation) -> Result<Cow<'a, AuRelation>, EngineError> {
        Ok(Cow::Borrowed(rel))
    }

    /// `sort_{O→τ}` (Def. 2).
    fn sort(
        &self,
        rel: &AuRelation,
        order: &[usize],
        pos_name: &str,
    ) -> Result<AuRelation, EngineError>;

    /// Top-k (Sec. 5) with position bounds capped at `k`.
    fn topk(
        &self,
        rel: &AuRelation,
        order: &[usize],
        k: u64,
        pos_name: &str,
    ) -> Result<AuRelation, EngineError>;

    /// `ω[l,u]` row-based windowed aggregation (Def. 3).
    fn window(
        &self,
        rel: &AuRelation,
        spec: &AuWindowSpec,
        agg: WinAgg,
        out_name: &str,
    ) -> Result<AuRelation, EngineError>;

    /// One-line cost/strategy note for an operator, shown by
    /// [`crate::Engine::explain`].
    fn op_note(&self, op: &Op) -> String;

    /// One-line note describing what `scan` does in this backend.
    fn scan_note(&self) -> String {
        "borrow the AU-relation in place".to_string()
    }

    /// How this backend runs plans: the batch-streaming pipeline executor
    /// for the production backends, materialized operator-at-a-time for
    /// the semantic oracle. Both modes are bag-equal on every plan
    /// (property-tested); they differ only in intermediate materialization
    /// and parallelism.
    fn preferred_mode(&self) -> ExecMode {
        ExecMode::Materialized
    }

    /// Execute a validated plan through the physical execution layer in
    /// this backend's preferred mode. Selection and projection are shared
    /// across backends (the \[24\] semantics of `audb-core`, fused into
    /// per-batch chains under [`ExecMode::Pipelined`]); the order-based
    /// operators dispatch to the backend hooks as pipeline breakers.
    fn execute(&self, plan: &Plan) -> Result<AuRelation, EngineError> {
        self.execute_traced(plan).map(|(rel, _)| rel)
    }

    /// Like [`Backend::execute`], also returning the per-operator wall
    /// times and batch counts the executor measured. The default routes
    /// through the cost model (`choose_exec`) so bare
    /// backends make the same stats-driven mode/batch-size choice the
    /// [`crate::Engine`] does.
    fn execute_traced(&self, plan: &Plan) -> Result<(AuRelation, ExecTrace), EngineError> {
        let choice =
            crate::engine::choose_exec(plan, self.preferred_mode(), None, DEFAULT_BATCH_SIZE);
        exec::execute(self, plan, choice.mode, choice.batch_size)
    }
}

/// Cap the selected-guess and upper position bounds of a top-k output at
/// `k` — the paper's Algorithm 1 `emit` step. `topk_native` already does
/// this internally; applying the same cap to the reference and rewrite
/// outputs makes all three backends bit-identical (the surviving rows'
/// lower bounds are `< k` by the `σ_{τ < k}` filter, so only `sg`/`ub` can
/// exceed `k`).
fn cap_topk_positions(mut rel: AuRelation, k: u64) -> AuRelation {
    let pos_col = rel.schema.arity() - 1;
    let k = k as i64;
    for row in rel.rows_mut() {
        let (lb, sg, ub) = row.tuple.0[pos_col].as_i64_triple();
        if sg > k || ub > k {
            row.tuple.0[pos_col] = RangeValue::from_i64s(lb, sg.min(k), ub.min(k));
        }
    }
    rel
}

/// The quadratic reference semantics (`audb-core`, Defs. 2–3), under a
/// configurable comparison semantics.
#[derive(Clone, Copy, Debug, Default)]
pub struct Reference {
    /// Uncertain-comparison semantics for position bounds.
    pub semantics: CmpSemantics,
}

impl Backend for Reference {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn sort(
        &self,
        rel: &AuRelation,
        order: &[usize],
        pos_name: &str,
    ) -> Result<AuRelation, EngineError> {
        Ok(sort_ref(rel, order, pos_name, self.semantics))
    }

    fn topk(
        &self,
        rel: &AuRelation,
        order: &[usize],
        k: u64,
        pos_name: &str,
    ) -> Result<AuRelation, EngineError> {
        // topk_ref hard-codes the "pos" column name; re-sort under the
        // requested name and apply the σ_{τ < k} filter here.
        let sorted = sort_ref(rel, order, pos_name, self.semantics);
        let pos_col = sorted.schema.arity() - 1;
        let filtered = au_select(
            &sorted,
            &audb_core::RangeExpr::col(pos_col).lt(audb_core::RangeExpr::lit(k as i64)),
        );
        Ok(cap_topk_positions(filtered, k))
    }

    fn window(
        &self,
        rel: &AuRelation,
        spec: &AuWindowSpec,
        agg: WinAgg,
        out_name: &str,
    ) -> Result<AuRelation, EngineError> {
        Ok(window_ref(rel, spec, agg, out_name, self.semantics))
    }

    fn op_note(&self, op: &Op) -> String {
        match op {
            Op::Select { .. } | Op::Project { .. } | Op::ProjectExprs { .. } => {
                "shared AU-DB operator ([24] semantics)".into()
            }
            Op::Sort { .. } => format!(
                "Def. 2 pairwise position bounds, O(n²), {:?} comparison",
                self.semantics
            ),
            Op::TopK { .. } => "Def. 2 sort + σ_{τ<k}, positions capped at k".into(),
            Op::Window { .. } => "Def. 3 per-target membership scan, O(n²)–O(n³)".into(),
        }
    }
}

/// The one-pass native algorithms (`audb-native`, Sec. 8), with documented
/// fallbacks to [`Reference`] where the native operators do not apply.
#[derive(Clone, Copy, Debug, Default)]
pub struct Native;

impl Native {
    fn reference() -> Reference {
        Reference {
            semantics: CmpSemantics::IntervalLex,
        }
    }

    /// The native window requires certain `PARTITION BY` attributes
    /// (`window_native` asserts otherwise) and treats duplicate
    /// multiplicities by position offsets — tighter than, but different
    /// from, the expand-first Def. 3 reference the engine promises. Both
    /// cases fall back. Callers must pass a **normalized** relation:
    /// separately stored copies of one hypercube merge into a duplicate
    /// multiplicity, so checking raw rows would miss them.
    pub(crate) fn window_needs_reference(rel: &AuRelation, spec: &AuWindowSpec) -> bool {
        debug_assert!(rel.is_normalized());
        rel.rows().iter().any(|row| {
            row.mult.ub > 1
                || spec
                    .partition
                    .iter()
                    .any(|&g| !row.tuple.get(g).is_certain())
        })
    }
}

impl Backend for Native {
    fn name(&self) -> &'static str {
        "native"
    }

    /// Production backend: batch-streaming pipelines with fused
    /// select/project chains.
    fn preferred_mode(&self) -> ExecMode {
        ExecMode::Pipelined
    }

    fn sort(
        &self,
        rel: &AuRelation,
        order: &[usize],
        pos_name: &str,
    ) -> Result<AuRelation, EngineError> {
        Ok(audb_native::sort_native(rel, order, pos_name))
    }

    fn topk(
        &self,
        rel: &AuRelation,
        order: &[usize],
        k: u64,
        pos_name: &str,
    ) -> Result<AuRelation, EngineError> {
        Ok(audb_native::topk_native(rel, order, k, pos_name))
    }

    fn window(
        &self,
        rel: &AuRelation,
        spec: &AuWindowSpec,
        agg: WinAgg,
        out_name: &str,
    ) -> Result<AuRelation, EngineError> {
        // Normalize first (borrow when already canonical): identical rows
        // stored separately merge into duplicate multiplicities, which the
        // fallback check must see. The inner operators skip their own
        // normalization pass on the already-canonical input, and both
        // window_native and window_ref are normalization-invariant, so
        // this changes no output — only the fallback decision.
        let rel = rel.normalized();
        if Self::window_needs_reference(&rel, spec) {
            return Self::reference().window(&rel, spec, agg, out_name);
        }
        Ok(audb_native::window_native(&rel, spec, agg, out_name))
    }

    fn op_note(&self, op: &Op) -> String {
        match op {
            Op::Select { .. } | Op::Project { .. } | Op::ProjectExprs { .. } => {
                "shared AU-DB operator ([24] semantics)".into()
            }
            Op::Sort { .. } => "one-pass corner sweep (Algorithm 1), O(n log n)".into(),
            Op::TopK { .. } => {
                "one-pass sweep with early termination at rank↓ ≥ k (Algorithm 1)".into()
            }
            Op::Window { .. } => "connected-heap sweep (Algorithm 3), O(N·n log n); \
                 falls back to reference on uncertain PARTITION BY \
                 or duplicate multiplicities"
                .into(),
        }
    }
}

/// The SQL-style rewrites (`audb-rewrite`, Sec. 7) over the relational
/// encoding of AU-DBs.
#[derive(Clone, Copy, Debug, Default)]
pub struct Rewrite {
    /// Join strategy for the Fig. 8 window rewrite's range-overlap
    /// self-join.
    pub strategy: JoinStrategy,
}

impl Backend for Rewrite {
    fn name(&self) -> &'static str {
        "rewrite"
    }

    /// The rewrites execute over materialized encodings per breaker, but
    /// the streamable stages between them pipeline like the native
    /// backend's.
    fn preferred_mode(&self) -> ExecMode {
        ExecMode::Pipelined
    }

    /// Round-trip the source through the flat relational encoding (three
    /// columns per attribute + the `ℕ³` triple) — the representation the
    /// Sec. 7 rewrites are defined over. Structurally a no-op on the AU
    /// level (`decode ∘ encode = id`, property-tested in `audb-core`), but
    /// it keeps this backend honest: everything it consumes fits in a
    /// deterministic DBMS table.
    fn scan<'a>(&self, rel: &'a AuRelation) -> Result<Cow<'a, AuRelation>, EngineError> {
        Ok(Cow::Owned(decode(&encode(rel), &rel.schema)))
    }

    fn scan_note(&self) -> String {
        "relational-encoding round-trip (3·arity + 3 flat columns)".to_string()
    }

    fn sort(
        &self,
        rel: &AuRelation,
        order: &[usize],
        pos_name: &str,
    ) -> Result<AuRelation, EngineError> {
        Ok(audb_rewrite::rewr_sort(rel, order, pos_name))
    }

    fn topk(
        &self,
        rel: &AuRelation,
        order: &[usize],
        k: u64,
        pos_name: &str,
    ) -> Result<AuRelation, EngineError> {
        Ok(cap_topk_positions(
            audb_rewrite::rewr_topk(rel, order, k, pos_name),
            k,
        ))
    }

    fn window(
        &self,
        rel: &AuRelation,
        spec: &AuWindowSpec,
        agg: WinAgg,
        out_name: &str,
    ) -> Result<AuRelation, EngineError> {
        Ok(audb_rewrite::rewr_window(
            rel,
            spec,
            agg,
            out_name,
            self.strategy,
        ))
    }

    fn op_note(&self, op: &Op) -> String {
        match op {
            Op::Select { .. } | Op::Project { .. } | Op::ProjectExprs { .. } => {
                "shared AU-DB operator ([24] semantics)".into()
            }
            Op::Sort { .. } => "Fig. 7 endpoint union + running sums over the encoding".into(),
            Op::TopK { .. } => "Fig. 7 endpoint rewrite + σ_{τ<k}, positions capped at k".into(),
            Op::Window { .. } => format!(
                "Fig. 8 range-overlap self-join ({:?} strategy)",
                self.strategy
            ),
        }
    }
}
