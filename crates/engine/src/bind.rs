//! The binder: `audb_sql` AST → validated [`Plan`], through the [`Query`]
//! builder.
//!
//! Binding follows one canonical clause order per SELECT block —
//!
//! ```text
//! FROM → WHERE → window items → select-list projection → ORDER BY → LIMIT
//! ```
//!
//! — so a statement compiles to the operator chain `scan → select? →
//! window* → project? → sort? → topk?` and nested sub-selects concatenate
//! chains. Because everything goes through [`Query`], the SQL frontend
//! inherits every [`crate::PlanError`] check (unknown columns, duplicate
//! output names, invalid frames, `LIMIT` without `ORDER BY`, ...) for
//! free.
//!
//! Binding rules:
//! * `WHERE` binds against the FROM schema; window items against the
//!   post-`WHERE` schema; `ORDER BY` against the post-projection schema
//!   (so it can reference window outputs and aliases).
//! * A window item's output column is its `AS` alias, defaulting to the
//!   aggregate's name (`sum`, `count`, ...).
//! * `SELECT *` keeps every column; `SELECT *, <windows>` appends the
//!   window outputs; an explicit list of bare columns (and window items)
//!   compiles to a plain projection; any alias or compound expression
//!   makes the whole list a generalized projection, and compound
//!   expressions then require an `AS` alias.
//! * `ORDER BY` is the AU-DB sort (Def. 2): it appends a position-range
//!   column named by its optional `AS` (default `pos`).

use crate::catalog::Catalog;
use crate::error::{PlanError, SessionError};
use crate::plan::{Agg, Plan, Query, WindowSpec};
use audb_core::{RangeExpr, RangeValue};
use audb_rel::Schema;
use audb_sql::ast;
use std::sync::Arc;

/// Compile one parsed statement against a catalog. The root table's
/// catalog statistics (computed at publication) are attached to the plan
/// so the optimizer and the cost model never rescan the data.
pub fn compile(stmt: &ast::Select, catalog: &Catalog) -> Result<Plan, SessionError> {
    let plan = compile_query(stmt, catalog)?.build()?;
    if let Some(stats) = catalog.stats(root_table(stmt)) {
        plan.attach_stats(Arc::clone(stats));
    }
    Ok(plan.with_sql(stmt.text.clone()))
}

/// The name the statement ultimately scans (sub-selects nest, so recurse
/// to the innermost FROM).
fn root_table(stmt: &ast::Select) -> &str {
    match &stmt.from {
        ast::TableRef::Name(name) => name,
        ast::TableRef::Subquery(inner) => root_table(inner),
    }
}

fn compile_query(stmt: &ast::Select, catalog: &Catalog) -> Result<Query, SessionError> {
    let mut q = match &stmt.from {
        ast::TableRef::Name(name) => match catalog.get(name) {
            Some(rel) => Query::scan(Arc::clone(rel)),
            None => {
                return Err(SessionError::UnknownTable {
                    name: name.clone(),
                    known: catalog.names().map(String::from).collect(),
                })
            }
        },
        ast::TableRef::Subquery(inner) => compile_query(inner, catalog)?,
    };

    if let Some(pred) = &stmt.r#where {
        // A `None` schema means an earlier builder call already failed;
        // skip binding and let that first error surface from build().
        if let Some(schema) = q.schema().cloned() {
            q = q.select(bind_expr(pred, &schema)?);
        }
    }

    let items = match &stmt.items {
        ast::SelectList::Star { windows } => {
            for w in windows {
                q = q.window(window_spec(w));
            }
            None
        }
        ast::SelectList::Items(items) => {
            for item in items {
                if let ast::SelectItem::Window(w) = item {
                    q = q.window(window_spec(w));
                }
            }
            Some(items)
        }
    };
    if let Some(items) = items {
        q = project_items(q, items)?;
    }

    if let Some(ob) = &stmt.order_by {
        q = q.sort_by_as(
            ob.cols.iter().map(String::as_str),
            ob.pos_name.as_deref().unwrap_or("pos"),
        );
    }
    if let Some(k) = stmt.limit {
        // LIMIT without ORDER BY is PlanError::TopKWithoutSort at build().
        q = q.topk(k);
    }
    Ok(q)
}

/// A window item's output column name.
fn window_name(w: &ast::WindowItem) -> &str {
    w.alias.as_deref().unwrap_or(w.agg.default_name())
}

fn window_spec(w: &ast::WindowItem) -> WindowSpec {
    let agg = match &w.agg {
        ast::AggCall::Sum(c) => Agg::sum(c.as_str()),
        ast::AggCall::Count => Agg::count(),
        ast::AggCall::Min(c) => Agg::min(c.as_str()),
        ast::AggCall::Max(c) => Agg::max(c.as_str()),
        ast::AggCall::Avg(c) => Agg::avg(c.as_str()),
    };
    WindowSpec::rows(w.frame.0, w.frame.1)
        .order_by(w.order_by.iter().map(String::as_str))
        .partition_by(w.partition_by.iter().map(String::as_str))
        .aggregate(agg)
        .output(window_name(w))
}

fn project_items(q: Query, items: &[ast::SelectItem]) -> Result<Query, SessionError> {
    let all_bare = items.iter().all(|i| {
        matches!(
            i,
            ast::SelectItem::Expr {
                expr: ast::Expr::Col(_),
                alias: None
            } | ast::SelectItem::Window(_)
        )
    });
    if all_bare {
        let names: Vec<&str> = items
            .iter()
            .map(|i| match i {
                ast::SelectItem::Expr {
                    expr: ast::Expr::Col(n),
                    ..
                } => n.as_str(),
                ast::SelectItem::Window(w) => window_name(w),
                ast::SelectItem::Expr { .. } => unreachable!("all_bare checked"),
            })
            .collect();
        return Ok(q.project(names));
    }
    let Some(schema) = q.schema().cloned() else {
        return Ok(q); // earlier error wins at build()
    };
    let mut exprs: Vec<(RangeExpr, String)> = Vec::with_capacity(items.len());
    for item in items {
        match item {
            ast::SelectItem::Expr { expr, alias } => {
                let name = match (alias, expr) {
                    (Some(a), _) => a.clone(),
                    (None, ast::Expr::Col(n)) => n.clone(),
                    (None, e) => {
                        return Err(SessionError::ExpressionNeedsAlias {
                            item: format!("{e:?}"),
                        })
                    }
                };
                exprs.push((bind_expr(expr, &schema)?, name));
            }
            ast::SelectItem::Window(w) => {
                let name = window_name(w);
                // The window output was appended to the schema above; the
                // projection just forwards it by reference.
                exprs.push((
                    bind_expr(&ast::Expr::Col(name.into()), &schema)?,
                    name.into(),
                ));
            }
        }
    }
    Ok(q.project_exprs(exprs))
}

/// Resolve an AST expression to a [`RangeExpr`] against a schema.
fn bind_expr(e: &ast::Expr, schema: &Schema) -> Result<RangeExpr, SessionError> {
    Ok(match e {
        ast::Expr::Col(name) => {
            RangeExpr::Col(
                schema
                    .index_of(name)
                    .ok_or_else(|| PlanError::UnknownColumn {
                        name: name.clone(),
                        schema: schema.to_string(),
                    })?,
            )
        }
        ast::Expr::Lit(v) => RangeExpr::Lit(RangeValue::certain(v.clone())),
        ast::Expr::Range(lb, sg, ub) => {
            if !(lb <= sg && sg <= ub) {
                return Err(SessionError::InvalidRangeLiteral {
                    lit: format!("RANGE({lb}, {sg}, {ub})"),
                });
            }
            RangeExpr::Lit(RangeValue::new(lb.clone(), sg.clone(), ub.clone()))
        }
        ast::Expr::Neg(a) => RangeExpr::Neg(Box::new(bind_expr(a, schema)?)),
        ast::Expr::Not(a) => RangeExpr::Not(Box::new(bind_expr(a, schema)?)),
        ast::Expr::Bin(op, a, b) => {
            let (a, b) = (
                Box::new(bind_expr(a, schema)?),
                Box::new(bind_expr(b, schema)?),
            );
            match op {
                ast::BinOp::Add => RangeExpr::Add(a, b),
                ast::BinOp::Sub => RangeExpr::Sub(a, b),
                ast::BinOp::Mul => RangeExpr::Mul(a, b),
            }
        }
        ast::Expr::Cmp(op, a, b) => RangeExpr::Cmp(
            *op,
            Box::new(bind_expr(a, schema)?),
            Box::new(bind_expr(b, schema)?),
        ),
        ast::Expr::And(a, b) => RangeExpr::And(
            Box::new(bind_expr(a, schema)?),
            Box::new(bind_expr(b, schema)?),
        ),
        ast::Expr::Or(a, b) => RangeExpr::Or(
            Box::new(bind_expr(a, schema)?),
            Box::new(bind_expr(b, schema)?),
        ),
    })
}
