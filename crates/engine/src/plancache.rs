//! A bounded, shared [`PlanCache`]: normalized-SQL → compiled plan, so a
//! server answering the same hot queries skips parse + bind entirely.
//!
//! Keying: entries are keyed on `(catalog version, canonical SQL)`, where
//! the canonical form is [`Plan::to_sql`](crate::Plan::to_sql) of the
//! *bound* plan — two texts that differ only in whitespace, optional
//! semicolons, or other surface syntax normalize to the same key and share
//! one entry (the second text counts as a **hit**: its bind work is done
//! once, then the plan is found already cached). Because the catalog
//! version is part of the key, any `register`/`deregister` invalidates
//! every cached plan at once — a plan can never serve stale data, and two
//! queries over different tables can never collide (the table name is part
//! of the canonical text).
//!
//! A raw-text alias map (`whitespace-flattened text → canonical key`)
//! fronts the canonical map, so the common case — the *same* string
//! arriving again — is a single hash probe with no parsing at all.
//!
//! Eviction is LRU at a fixed capacity. All state sits behind one
//! [`Mutex`]; compilation of a missing entry happens *outside* the lock,
//! so a slow bind never blocks other sessions' cache hits.

use crate::catalog::SharedCatalog;
use crate::error::SessionError;
use crate::session::Prepared;
use audb_sql::ast;
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// Cache key: catalog publication version + canonical (or flattened) text.
type Key = (u64, String);

/// Hit/miss counters plus occupancy, as surfaced in server responses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (including normalized-equivalent
    /// texts whose plan was already resident).
    pub hits: u64,
    /// Lookups that compiled a fresh plan.
    pub misses: u64,
    /// Plans currently resident.
    pub len: usize,
    /// Maximum resident plans before LRU eviction.
    pub capacity: usize,
}

#[derive(Debug, Default)]
struct CacheState {
    /// Canonical key → compiled plan.
    plans: HashMap<Key, Prepared>,
    /// LRU order over `plans` keys: front = coldest, back = hottest.
    order: VecDeque<Key>,
    /// Raw-text fast path: flattened text → canonical key.
    aliases: HashMap<Key, Key>,
    hits: u64,
    misses: u64,
}

/// A bounded LRU of compiled plans keyed on normalized SQL; see the
/// module docs for the keying and invalidation rules. Share one per
/// engine/server (e.g. behind an `Arc`) and call
/// [`crate::Session::prepare_cached`] instead of `prepare`.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    state: Mutex<CacheState>,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(PlanCache::DEFAULT_CAPACITY)
    }
}

impl PlanCache {
    /// Default bound: plenty for a dashboard-style workload of repeated
    /// statements, small enough that eviction is exercised in tests.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// A cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            state: Mutex::new(CacheState::default()),
        }
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let s = self.state.lock().expect("plan cache lock poisoned");
        CacheStats {
            hits: s.hits,
            misses: s.misses,
            len: s.plans.len(),
            capacity: self.capacity,
        }
    }

    /// Look up (or compile and insert) the plan for `sql` against the
    /// current snapshot of `catalog`. Returns the prepared statement and
    /// whether it was served from the cache.
    pub fn get_or_prepare(
        &self,
        catalog: &SharedCatalog,
        sql: &str,
    ) -> Result<(Prepared, bool), SessionError> {
        let (version, snapshot) = catalog.snapshot_versioned();
        let raw_key = (version, flatten(sql));

        {
            let mut s = self.state.lock().expect("plan cache lock poisoned");
            if let Some(canonical) = s.aliases.get(&raw_key).cloned() {
                if let Some(prepared) = s.plans.get(&canonical).cloned() {
                    s.touch(&canonical);
                    s.hits += 1;
                    return Ok((prepared, true));
                }
            }
        }

        // Miss on the fast path: parse + bind outside the lock. The
        // canonical key is rendered from the plan *before* optimization —
        // normalized-equivalent texts share one entry regardless of which
        // rewrites fire — while the cached entry stores the *optimized*
        // plan. Stats changes (register/append) bump the catalog version,
        // so a stale optimization can never be served.
        let stmt = audb_sql::parse(sql)?;
        let plan = crate::bind::compile(&stmt, &snapshot)?;
        let canonical = (version, plan.to_sql(root_table(&stmt)));
        let prepared = Prepared::from_plan(crate::optimize::optimize(&plan));

        let mut s = self.state.lock().expect("plan cache lock poisoned");
        s.remember_alias(raw_key, canonical.clone(), self.capacity);
        if let Some(existing) = s.plans.get(&canonical).cloned() {
            // A normalized-equivalent text (or a racing thread) already
            // resident: reuse its plan, count the normalization hit.
            s.touch(&canonical);
            s.hits += 1;
            return Ok((existing, true));
        }
        s.plans.insert(canonical.clone(), prepared.clone());
        s.order.push_back(canonical);
        s.misses += 1;
        while s.plans.len() > self.capacity {
            if let Some(coldest) = s.order.pop_front() {
                s.plans.remove(&coldest);
                s.aliases.retain(|_, v| *v != coldest);
            }
        }
        Ok((prepared, false))
    }
}

impl CacheState {
    /// Move `key` to the hot end of the LRU order.
    fn touch(&mut self, key: &Key) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            self.order.remove(pos);
            self.order.push_back(key.clone());
        }
    }

    fn remember_alias(&mut self, raw: Key, canonical: Key, capacity: usize) {
        // The alias map is only a fast path; re-derivable, so bound it by
        // wholesale reset rather than its own LRU bookkeeping.
        if self.aliases.len() >= capacity * 4 {
            self.aliases.clear();
        }
        self.aliases.insert(raw, canonical);
    }
}

/// Collapse all whitespace runs to single spaces and trim, so the byte-y
/// fast path tolerates the formatting differences clients actually send.
fn flatten(sql: &str) -> String {
    sql.split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
        .trim_end_matches(';')
        .trim()
        .to_string()
}

/// The innermost FROM table: the scan the whole operator chain hangs off,
/// and the table name [`crate::Plan::to_sql`] needs to print.
fn root_table(stmt: &ast::Select) -> &str {
    match &stmt.from {
        ast::TableRef::Name(name) => name,
        ast::TableRef::Subquery(inner) => root_table(inner),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::session::Session;
    use audb_core::{AuRelation, AuTuple, Mult3, RangeValue};
    use audb_rel::Schema;

    fn rel(rows: i64) -> AuRelation {
        AuRelation::from_rows(
            Schema::new(["x"]),
            (0..rows).map(|i| (AuTuple::from([RangeValue::certain(i)]), Mult3::ONE)),
        )
    }

    fn session() -> Session {
        let s = Session::new(Engine::native());
        s.register("a", rel(3));
        s.register("b", rel(3));
        s
    }

    #[test]
    fn hits_on_identical_and_normalized_equivalent_sql() {
        let s = session();
        let cache = PlanCache::new(8);

        let (_, hit) = s
            .prepare_cached(&cache, "SELECT x FROM a WHERE x < 2")
            .unwrap();
        assert!(!hit);
        // Same text: raw-alias fast path.
        let (_, hit) = s
            .prepare_cached(&cache, "SELECT x FROM a WHERE x < 2")
            .unwrap();
        assert!(hit);
        // Whitespace / trailing-semicolon variants flatten to the same key.
        let (_, hit) = s
            .prepare_cached(&cache, "  SELECT   x\nFROM a\tWHERE x < 2 ; ")
            .unwrap();
        assert!(hit);
        // A genuinely different surface form (same operator chain spelled
        // through a pass-through subquery) normalizes through the bound
        // plan's canonical SQL and still hits.
        let (_, hit) = s
            .prepare_cached(&cache, "SELECT x FROM (SELECT * FROM a WHERE x < 2)")
            .unwrap();
        assert!(hit, "normalized-equivalent text should hit");

        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (3, 1));
        assert_eq!(stats.len, 1);
    }

    #[test]
    fn no_cross_table_false_hits() {
        let s = session();
        let cache = PlanCache::new(8);
        let (pa, hit_a) = s.prepare_cached(&cache, "SELECT x FROM a").unwrap();
        let (pb, hit_b) = s.prepare_cached(&cache, "SELECT x FROM b").unwrap();
        assert!(
            !hit_a && !hit_b,
            "same shape over different tables must not collide"
        );
        assert!(!std::sync::Arc::ptr_eq(
            pa.plan().source_arc(),
            pb.plan().source_arc()
        ));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn evicts_least_recently_used_at_capacity() {
        let s = session();
        let cache = PlanCache::new(2);
        s.prepare_cached(&cache, "SELECT x FROM a WHERE x < 1")
            .unwrap();
        s.prepare_cached(&cache, "SELECT x FROM a WHERE x < 2")
            .unwrap();
        // Touch the first so the second is coldest...
        let (_, hit) = s
            .prepare_cached(&cache, "SELECT x FROM a WHERE x < 1")
            .unwrap();
        assert!(hit);
        // ...then a third entry evicts `x < 2`.
        s.prepare_cached(&cache, "SELECT x FROM a WHERE x < 3")
            .unwrap();
        assert_eq!(cache.stats().len, 2);
        let (_, hit) = s
            .prepare_cached(&cache, "SELECT x FROM a WHERE x < 1")
            .unwrap();
        assert!(hit, "recently used entry should survive eviction");
        let (_, hit) = s
            .prepare_cached(&cache, "SELECT x FROM a WHERE x < 2")
            .unwrap();
        assert!(!hit, "coldest entry should have been evicted");
    }

    #[test]
    fn registration_invalidates_by_version() {
        let s = session();
        let cache = PlanCache::new(8);
        let (p, _) = s.prepare_cached(&cache, "SELECT x FROM a").unwrap();
        assert_eq!(s.execute(&p).unwrap().rows().len(), 3);

        s.register("a", rel(5));
        let (p2, hit) = s.prepare_cached(&cache, "SELECT x FROM a").unwrap();
        assert!(!hit, "version bump must invalidate cached plans");
        assert_eq!(s.execute(&p2).unwrap().rows().len(), 5);
        // The old prepared statement still runs on its pinned snapshot.
        assert_eq!(s.execute(&p).unwrap().rows().len(), 3);
    }

    /// The cache stores the *optimized* plan under the pre-optimization
    /// canonical key, and a publication-driven stats change invalidates
    /// it through the version bump: the re-prepared plan is re-optimized
    /// against the new stats.
    #[test]
    fn stats_change_invalidates_optimized_plans() {
        let s = session();
        let cache = PlanCache::new(8);
        let sql = "SELECT * FROM (SELECT * FROM a ORDER BY x) WHERE x < 1";

        // `x` is certain in `a`, so the keep-small select is pushed below
        // the sort — the cached entry is the optimized plan.
        let (p, hit) = s.prepare_cached(&cache, sql).unwrap();
        assert!(!hit);
        let opt = p.plan().opt().expect("pushdown should fire");
        assert!(opt
            .rules
            .iter()
            .any(|r| r.rule == "pushdown-select-below-sort"));
        let (p2, hit) = s.prepare_cached(&cache, sql).unwrap();
        assert!(hit, "same version: optimized plan served from cache");
        assert!(p2.plan().opt().is_some());

        // Republish `a` with an uncertain `x`: the version bump
        // invalidates the entry, and re-optimization against the new
        // stats refuses the (now unsound) pushdown.
        s.register(
            "a",
            AuRelation::from_rows(
                Schema::new(["x"]),
                (0..3).map(|i| {
                    (
                        AuTuple::from([RangeValue::from_i64s(i, i, i + 1)]),
                        Mult3::ONE,
                    )
                }),
            ),
        );
        let (p3, hit) = s.prepare_cached(&cache, sql).unwrap();
        assert!(!hit, "stats change must invalidate via version bump");
        assert!(
            p3.plan().opt().is_none(),
            "pushdown must be refused on uncertain order column"
        );
    }

    #[test]
    fn parse_and_bind_errors_are_not_cached() {
        let s = session();
        let cache = PlanCache::new(8);
        assert!(s.prepare_cached(&cache, "SELECT nope FROM a").is_err());
        assert!(s.prepare_cached(&cache, "SELEKT").is_err());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (0, 0, 0));
    }
}
