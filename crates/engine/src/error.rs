//! Structured errors for plan construction and execution.
//!
//! The pre-engine API surfaced every misuse as a panic deep inside an
//! operator (`Schema::col` panics on a missing attribute, `AuWindowSpec::
//! rows` asserts on bad frames, `window_native` asserts on uncertain
//! partition attributes, a colliding position-column name silently produced
//! a schema with two identically-named attributes). The [`crate::Query`]
//! builder turns all of these into values of [`PlanError`] at plan-build
//! time; backends report execution-level problems as [`EngineError`].

use std::error::Error;
use std::fmt;

/// A plan could not be built: a schema or column reference is invalid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// A column was referenced by a name the current schema does not have.
    UnknownColumn {
        /// The name that failed to resolve.
        name: String,
        /// Display form of the schema it was resolved against.
        schema: String,
    },
    /// A column was referenced by an index past the current arity.
    ColumnOutOfRange {
        /// The out-of-range index.
        index: usize,
        /// Arity of the schema it was resolved against.
        arity: usize,
    },
    /// A new output column (sort position, window aggregate, projection
    /// alias) collides with an attribute already in the schema — or the
    /// scanned relation's own schema repeats a name.
    DuplicateColumn {
        /// The colliding name.
        name: String,
    },
    /// `sort_by` / `window` was given an empty ORDER BY list.
    EmptyOrderBy,
    /// A projection with no output columns.
    EmptyProjection,
    /// `topk(k)` must directly follow `sort_by(...)`.
    TopKWithoutSort,
    /// Row windows must contain the current row: `lower ≤ 0 ≤ upper`.
    InvalidWindowFrame {
        /// Window start offset.
        lower: i64,
        /// Window end offset.
        upper: i64,
    },
    /// [`crate::Plan::with_source`] was given a relation whose schema
    /// differs from the one the plan was compiled against (appended rows
    /// must match the subscribed table's schema exactly).
    SourceSchemaMismatch {
        /// Display form of the schema the plan was compiled against.
        expected: String,
        /// Display form of the schema actually supplied.
        got: String,
    },
}

impl PlanError {
    /// A stable machine-readable tag for this error variant, as used in
    /// the server's structured error responses (`{"error": {"kind": ...}}`).
    pub fn kind(&self) -> &'static str {
        match self {
            PlanError::UnknownColumn { .. } => "unknown_column",
            PlanError::ColumnOutOfRange { .. } => "column_out_of_range",
            PlanError::DuplicateColumn { .. } => "duplicate_column",
            PlanError::EmptyOrderBy => "empty_order_by",
            PlanError::EmptyProjection => "empty_projection",
            PlanError::TopKWithoutSort => "topk_without_sort",
            PlanError::InvalidWindowFrame { .. } => "invalid_window_frame",
            PlanError::SourceSchemaMismatch { .. } => "schema_mismatch",
        }
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownColumn { name, schema } => {
                write!(f, "unknown column {name:?} in schema {schema}")
            }
            PlanError::ColumnOutOfRange { index, arity } => {
                write!(f, "column index {index} out of range for arity {arity}")
            }
            PlanError::DuplicateColumn { name } => {
                write!(f, "duplicate column name {name:?}")
            }
            PlanError::EmptyOrderBy => write!(f, "ORDER BY list is empty"),
            PlanError::EmptyProjection => write!(f, "projection has no output columns"),
            PlanError::TopKWithoutSort => {
                write!(f, "topk(k) must directly follow sort_by(...)")
            }
            PlanError::InvalidWindowFrame { lower, upper } => write!(
                f,
                "window frame [{lower}, {upper}] must contain the current row (lower ≤ 0 ≤ upper)"
            ),
            PlanError::SourceSchemaMismatch { expected, got } => write!(
                f,
                "source schema {got} does not match the plan's schema {expected}"
            ),
        }
    }
}

impl Error for PlanError {}

/// A plan failed at execution time.
#[derive(Clone, Debug)]
pub enum EngineError {
    /// The plan itself was invalid (reported when a caller bypasses
    /// [`crate::Query::build`] error handling, e.g. via `run_all`).
    Plan(PlanError),
    /// `run_all` detected two backends producing different bounds for the
    /// same plan — a broken bound-agreement invariant.
    BackendDisagreement {
        /// Backend whose output is taken as the baseline.
        baseline: &'static str,
        /// Backend that disagreed with it.
        other: &'static str,
        /// Display form of the baseline output.
        baseline_output: String,
        /// Display form of the disagreeing output.
        other_output: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Plan(e) => write!(f, "invalid plan: {e}"),
            EngineError::BackendDisagreement {
                baseline,
                other,
                baseline_output,
                other_output,
            } => write!(
                f,
                "backend {other} disagrees with {baseline}:\n--- {baseline} ---\n{baseline_output}\n--- {other} ---\n{other_output}"
            ),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Plan(e) => Some(e),
            EngineError::BackendDisagreement { .. } => None,
        }
    }
}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        EngineError::Plan(e)
    }
}

/// A SQL-session operation failed: anywhere from the lexer to execution.
///
/// The session funnels every layer's failure into one uniform
/// `std::error::Error` value — [`audb_sql::SqlError`] (with line/column
/// spans) for text-level problems, [`PlanError`] for binding/validation,
/// [`EngineError`] for execution — plus the catalog- and binder-level
/// conditions that only exist at the session layer.
#[derive(Clone, Debug)]
pub enum SessionError {
    /// The query text failed to lex or parse.
    Sql(audb_sql::SqlError),
    /// The FROM clause names a relation the catalog does not have.
    UnknownTable {
        /// The missing name.
        name: String,
        /// The catalog's registered names (for the error message).
        known: Vec<String>,
    },
    /// A compound select-list expression has no `AS` alias to name its
    /// output column.
    ExpressionNeedsAlias {
        /// Display form of the unnamed expression's SQL.
        item: String,
    },
    /// A `RANGE(lb, sg, ub)` literal violating `lb ≤ sg ≤ ub`.
    InvalidRangeLiteral {
        /// Display form of the offending literal.
        lit: String,
    },
    /// The statement failed plan validation (unknown column, duplicate
    /// output name, bad frame, ...).
    Plan(PlanError),
    /// The plan failed at execution time.
    Engine(EngineError),
}

impl SessionError {
    /// A stable machine-readable tag ("kind") classifying the failure,
    /// independent of its human-readable message. The HTTP layer maps
    /// these onto status codes and clients match on them programmatically,
    /// so values here are a compatibility surface: extend, don't rename.
    pub fn kind(&self) -> &'static str {
        match self {
            SessionError::Sql(_) => "sql",
            SessionError::UnknownTable { .. } => "unknown_table",
            SessionError::ExpressionNeedsAlias { .. } => "needs_alias",
            SessionError::InvalidRangeLiteral { .. } => "invalid_range_literal",
            SessionError::Plan(e) => e.kind(),
            SessionError::Engine(EngineError::Plan(e)) => e.kind(),
            SessionError::Engine(EngineError::BackendDisagreement { .. }) => "backend_disagreement",
        }
    }

    /// The line/column span of the failure, when the error originates in
    /// the query text (lex/parse errors carry one; semantic errors do not).
    pub fn span(&self) -> Option<audb_sql::Span> {
        match self {
            SessionError::Sql(e) => Some(e.span),
            _ => None,
        }
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Sql(e) => write!(f, "{e}"),
            SessionError::UnknownTable { name, known } => {
                write!(f, "unknown table {name:?}; registered: ")?;
                if known.is_empty() {
                    write!(f, "(none)")
                } else {
                    write!(f, "{}", known.join(", "))
                }
            }
            SessionError::ExpressionNeedsAlias { item } => {
                write!(f, "select-list expression {item} needs an AS alias")
            }
            SessionError::InvalidRangeLiteral { lit } => {
                write!(f, "range literal {lit} violates lb \u{2264} sg \u{2264} ub")
            }
            SessionError::Plan(e) => write!(f, "invalid plan: {e}"),
            SessionError::Engine(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl Error for SessionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SessionError::Sql(e) => Some(e),
            SessionError::Plan(e) => Some(e),
            SessionError::Engine(e) => Some(e),
            SessionError::UnknownTable { .. }
            | SessionError::ExpressionNeedsAlias { .. }
            | SessionError::InvalidRangeLiteral { .. } => None,
        }
    }
}

impl From<audb_sql::SqlError> for SessionError {
    fn from(e: audb_sql::SqlError) -> Self {
        SessionError::Sql(e)
    }
}

impl From<PlanError> for SessionError {
    fn from(e: PlanError) -> Self {
        SessionError::Plan(e)
    }
}

impl From<EngineError> for SessionError {
    fn from(e: EngineError) -> Self {
        SessionError::Engine(e)
    }
}
