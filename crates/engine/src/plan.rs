//! Typed logical plans: the [`Query`] builder, the resolved operator IR
//! ([`Op`]), and the validated [`Plan`] every backend executes.
//!
//! A plan is a linear operator chain over one scanned [`AuRelation`]:
//!
//! ```text
//! scan → (select | project | sort → [topk] | window)*
//! ```
//!
//! The builder resolves every column reference (by name or index) against
//! the *evolving* schema at build time and returns a structured
//! [`PlanError`] instead of the scattered panics of the free-function API —
//! a plan that builds cannot reference a missing attribute, shadow an
//! existing column with a position/aggregate output, or carry a window
//! frame that excludes the current row. The resolved IR is purely
//! index-based, so backends never re-resolve names.

use crate::error::PlanError;
use crate::optimize::OptInfo;
use audb_core::{AuRelation, AuWindowSpec, RangeExpr, TableStats, WinAgg};
use audb_rel::Schema;
use std::fmt;
use std::sync::Arc;

/// A column reference: by attribute name (resolved against the schema at
/// the point in the chain where it is used) or by positional index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ColRef {
    /// Reference by attribute name.
    Name(String),
    /// Reference by 0-based position.
    Index(usize),
}

impl From<&str> for ColRef {
    fn from(s: &str) -> Self {
        ColRef::Name(s.to_string())
    }
}

impl From<String> for ColRef {
    fn from(s: String) -> Self {
        ColRef::Name(s)
    }
}

impl From<usize> for ColRef {
    fn from(i: usize) -> Self {
        ColRef::Index(i)
    }
}

impl ColRef {
    fn resolve(&self, schema: &Schema) -> Result<usize, PlanError> {
        match self {
            ColRef::Name(name) => schema
                .index_of(name)
                .ok_or_else(|| PlanError::UnknownColumn {
                    name: name.clone(),
                    schema: schema.to_string(),
                }),
            ColRef::Index(i) => {
                if *i < schema.arity() {
                    Ok(*i)
                } else {
                    Err(PlanError::ColumnOutOfRange {
                        index: *i,
                        arity: schema.arity(),
                    })
                }
            }
        }
    }
}

/// A window aggregate with an unresolved input column (resolved to a
/// [`WinAgg`] when the plan is built).
#[derive(Clone, Debug)]
pub enum Agg {
    /// `sum(A)`.
    Sum(ColRef),
    /// `count(*)`.
    Count,
    /// `min(A)`.
    Min(ColRef),
    /// `max(A)`.
    Max(ColRef),
    /// `avg(A)` (sound envelope; see DESIGN.md §3.4).
    Avg(ColRef),
}

impl Agg {
    /// `sum(col)`.
    pub fn sum(col: impl Into<ColRef>) -> Self {
        Agg::Sum(col.into())
    }
    /// `count(*)`.
    pub fn count() -> Self {
        Agg::Count
    }
    /// `min(col)`.
    pub fn min(col: impl Into<ColRef>) -> Self {
        Agg::Min(col.into())
    }
    /// `max(col)`.
    pub fn max(col: impl Into<ColRef>) -> Self {
        Agg::Max(col.into())
    }
    /// `avg(col)`.
    pub fn avg(col: impl Into<ColRef>) -> Self {
        Agg::Avg(col.into())
    }

    fn resolve(&self, schema: &Schema) -> Result<WinAgg, PlanError> {
        Ok(match self {
            Agg::Sum(c) => WinAgg::Sum(c.resolve(schema)?),
            Agg::Count => WinAgg::Count,
            Agg::Min(c) => WinAgg::Min(c.resolve(schema)?),
            Agg::Max(c) => WinAgg::Max(c.resolve(schema)?),
            Agg::Avg(c) => WinAgg::Avg(c.resolve(schema)?),
        })
    }
}

impl From<WinAgg> for Agg {
    /// Lift an already-resolved aggregate (as used by the operator crates)
    /// into the builder's unresolved form.
    fn from(agg: WinAgg) -> Self {
        match agg {
            WinAgg::Sum(c) => Agg::Sum(ColRef::Index(c)),
            WinAgg::Count => Agg::Count,
            WinAgg::Min(c) => Agg::Min(ColRef::Index(c)),
            WinAgg::Max(c) => Agg::Max(ColRef::Index(c)),
            WinAgg::Avg(c) => Agg::Avg(ColRef::Index(c)),
        }
    }
}

/// Builder-level row-window specification (`ROWS BETWEEN -lower PRECEDING
/// AND upper FOLLOWING`), with unresolved column references and the
/// aggregate + output name folded in — [`Query::window`] takes exactly one
/// of these.
#[derive(Clone, Debug)]
pub struct WindowSpec {
    order: Vec<ColRef>,
    partition: Vec<ColRef>,
    lower: i64,
    upper: i64,
    agg: Agg,
    out_name: String,
}

impl WindowSpec {
    /// A `[lower, upper]` row frame; defaults to `count(*)` into a column
    /// named `"x"` until [`Self::aggregate`] / [`Self::output`] override it.
    pub fn rows(lower: i64, upper: i64) -> Self {
        WindowSpec {
            order: Vec::new(),
            partition: Vec::new(),
            lower,
            upper,
            agg: Agg::Count,
            out_name: "x".to_string(),
        }
    }

    /// ORDER BY columns.
    pub fn order_by<C: Into<ColRef>>(mut self, cols: impl IntoIterator<Item = C>) -> Self {
        self.order = cols.into_iter().map(Into::into).collect();
        self
    }

    /// PARTITION BY columns.
    pub fn partition_by<C: Into<ColRef>>(mut self, cols: impl IntoIterator<Item = C>) -> Self {
        self.partition = cols.into_iter().map(Into::into).collect();
        self
    }

    /// The window aggregate to compute.
    pub fn aggregate(mut self, agg: impl Into<Agg>) -> Self {
        self.agg = agg.into();
        self
    }

    /// Name of the appended output column (default `"x"`).
    pub fn output(mut self, name: impl Into<String>) -> Self {
        self.out_name = name.into();
        self
    }
}

/// One resolved operator of a [`Plan`]. All column references are indices
/// into the operator's input schema.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// AU-DB selection `σ_pred` (\[24\] semantics).
    Select {
        /// The predicate (column indices refer to the input schema).
        pred: RangeExpr,
    },
    /// Projection onto existing columns.
    Project {
        /// Input column indices, in output order.
        cols: Vec<usize>,
    },
    /// Generalized projection through range expressions.
    ProjectExprs {
        /// `(expression, output name)` pairs.
        exprs: Vec<(RangeExpr, String)>,
    },
    /// AU-DB sort (Def. 2): appends a position-range column.
    Sort {
        /// ORDER BY column indices.
        order: Vec<usize>,
        /// Name of the appended position column.
        pos_name: String,
    },
    /// Top-k (Sec. 5): sort + `σ_{τ < k}`, position bounds capped at `k`
    /// (the paper's Algorithm 1 `emit` step — applied uniformly by every
    /// backend so their outputs are identical).
    TopK {
        /// ORDER BY column indices.
        order: Vec<usize>,
        /// Number of rows to keep per world.
        k: u64,
        /// Name of the appended position column.
        pos_name: String,
    },
    /// Row-based windowed aggregation (Def. 3): appends an aggregate-range
    /// column.
    Window {
        /// The resolved window specification.
        spec: AuWindowSpec,
        /// The resolved aggregate.
        agg: WinAgg,
        /// Name of the appended output column.
        out_name: String,
    },
}

impl Op {
    /// Short operator name for explain output.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Select { .. } => "select",
            Op::Project { .. } | Op::ProjectExprs { .. } => "project",
            Op::Sort { .. } => "sort",
            Op::TopK { .. } => "topk",
            Op::Window { .. } => "window",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Select { .. } => write!(f, "select σ"),
            Op::Project { cols } => write!(f, "project {cols:?}"),
            Op::ProjectExprs { exprs } => write!(
                f,
                "project [{}]",
                exprs
                    .iter()
                    .map(|(_, n)| n.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Op::Sort { order, pos_name } => write!(f, "sort {order:?} → {pos_name}"),
            Op::TopK { order, k, pos_name } => {
                write!(f, "topk k={k} {order:?} → {pos_name}")
            }
            Op::Window {
                spec,
                agg,
                out_name,
            } => write!(
                f,
                "window [{}, {}] {agg:?} over {:?} partition {:?} → {out_name}",
                spec.lower, spec.upper, spec.order, spec.partition
            ),
        }
    }
}

/// A validated logical plan: a scanned source plus a resolved operator
/// chain. Cheap to clone (the source is shared behind an [`Arc`]); execute
/// it through [`crate::Engine`] or any [`crate::Backend`].
#[derive(Clone, Debug)]
pub struct Plan {
    source: Arc<AuRelation>,
    ops: Vec<Op>,
    /// Schema after each op: `schemas\[0\]` is the source schema,
    /// `schemas[i + 1]` the output of `ops[i]`.
    schemas: Vec<Schema>,
    /// The SQL text this plan was compiled from, when it came through the
    /// SQL frontend (shown by `Engine::explain`).
    sql: Option<String>,
    /// Lazily built columnar form of the source, shared across clones and
    /// executions — the plan-level stand-in for columnar base-table
    /// storage: the pipeline executor's first fused stage reads it instead
    /// of re-transposing the row source on every run.
    source_cols: Arc<std::sync::OnceLock<audb_core::AuColumns>>,
    /// Statistics of the scanned source: attached by the binder when the
    /// catalog already computed them at publish time, otherwise computed
    /// lazily on first use and shared across clones (same lifetime rules
    /// as `source_cols`).
    stats: Arc<std::sync::OnceLock<Arc<TableStats>>>,
    /// Optimizer provenance: the pre-optimization rendering and the
    /// applied rewrites, attached by [`crate::optimize::optimize`] so
    /// `explain` can show before/after even for cached plans.
    opt: Option<Arc<OptInfo>>,
}

impl Plan {
    /// The scanned source relation.
    pub fn source(&self) -> &AuRelation {
        &self.source
    }

    /// The scanned source in columnar form, transposed on first use and
    /// cached for the plan's lifetime (shared across clones). Executors
    /// use this when their scan borrows the source unchanged; backends
    /// whose scan rewrites the relation (e.g. the rewrite backend's
    /// encoding round-trip) transpose their own scan output instead.
    pub fn source_columns(&self) -> &audb_core::AuColumns {
        self.source_cols.get_or_init(|| self.source.to_columns())
    }

    /// The scanned source, shared (for re-registering a plan's input, e.g.
    /// when compiling its printed SQL back against a catalog).
    pub fn source_arc(&self) -> &Arc<AuRelation> {
        &self.source
    }

    /// Statistics of the scanned source. Prefers the block the binder
    /// attached (computed once at catalog publish time); otherwise sweeps
    /// the source on first use — over the columnar form when it is already
    /// materialized — and caches the result for the plan's lifetime.
    pub fn source_stats(&self) -> &Arc<TableStats> {
        self.stats.get_or_init(|| {
            Arc::new(match self.source_cols.get() {
                Some(cols) => TableStats::of_columns(cols),
                None => TableStats::of_relation(&self.source),
            })
        })
    }

    /// Attach pre-computed source statistics (the binder's hook: the
    /// catalog computes them at publish time). A no-op when statistics
    /// were already computed or attached.
    pub fn attach_stats(&self, stats: Arc<TableStats>) {
        let _ = self.stats.set(stats);
    }

    /// Optimizer provenance, when [`crate::optimize::optimize`] rewrote
    /// this plan.
    pub fn opt(&self) -> Option<&OptInfo> {
        self.opt.as_deref()
    }

    /// Attach optimizer provenance (used by [`crate::optimize`]).
    pub(crate) fn with_opt(mut self, info: Arc<OptInfo>) -> Plan {
        self.opt = Some(info);
        self
    }

    /// Adopt the shared caches and SQL provenance of the plan this one was
    /// rewritten from. Sound only when both scan the same source `Arc` —
    /// the optimizer rebuilds over `source_arc()`, so the columnar form
    /// and statistics transfer as-is.
    pub(crate) fn adopt_caches(mut self, original: &Plan) -> Plan {
        debug_assert!(Arc::ptr_eq(&self.source, &original.source));
        self.sql = original.sql.clone();
        self.source_cols = Arc::clone(&original.source_cols);
        self.stats = Arc::clone(&original.stats);
        self
    }

    /// The resolved operator chain.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Schema of the plan's output.
    pub fn schema(&self) -> &Schema {
        self.schemas.last().expect("plan has a source schema")
    }

    /// Schema after each operator: index 0 is the source schema, index
    /// `i + 1` the output schema of `ops()[i]`.
    pub fn schemas(&self) -> &[Schema] {
        &self.schemas
    }

    /// The originating SQL text, if this plan came through the SQL
    /// frontend.
    pub fn sql(&self) -> Option<&str> {
        self.sql.as_deref()
    }

    /// Attach the originating SQL text (used by `Session`).
    pub fn with_sql(mut self, sql: impl Into<String>) -> Self {
        self.sql = Some(sql.into());
        self
    }

    /// Structural equality: same operator chain and same per-operator
    /// schemas (the scanned data and SQL provenance are ignored). This is
    /// the `parse ∘ print = id` round-trip invariant's notion of "the same
    /// plan".
    pub fn same_shape(&self, other: &Plan) -> bool {
        self.ops == other.ops && self.schemas == other.schemas
    }

    /// The same operator chain over a different source relation — the plan
    /// a maintained query recomputes against its accumulated rows, and the
    /// pre-operator plan it runs over each appended batch. The resolved IR
    /// is index-based, so the only thing to re-validate is that the new
    /// source carries the schema the chain was compiled against.
    pub fn with_source(&self, source: impl Into<Arc<AuRelation>>) -> Result<Plan, PlanError> {
        let source: Arc<AuRelation> = source.into();
        if source.schema != self.schemas[0] {
            return Err(PlanError::SourceSchemaMismatch {
                expected: self.schemas[0].to_string(),
                got: source.schema.to_string(),
            });
        }
        Ok(Plan {
            source,
            ops: self.ops.clone(),
            schemas: self.schemas.clone(),
            sql: self.sql.clone(),
            source_cols: Arc::new(std::sync::OnceLock::new()),
            stats: Arc::new(std::sync::OnceLock::new()),
            opt: None,
        })
    }

    /// The plan truncated to its first `n` operators (the row-wise
    /// pre-operator chain of a maintained query).
    pub(crate) fn prefix(&self, n: usize) -> Plan {
        Plan {
            source: Arc::clone(&self.source),
            ops: self.ops[..n].to_vec(),
            schemas: self.schemas[..=n].to_vec(),
            sql: None,
            source_cols: Arc::clone(&self.source_cols),
            stats: Arc::clone(&self.stats),
            opt: None,
        }
    }
}

/// Fluent, validating builder for [`Plan`]s.
///
/// Every call validates its column references against the schema at that
/// point in the chain; the first failure is remembered and returned by
/// [`Query::build`] (subsequent calls become no-ops), so the chain style
/// stays panic-free end to end:
///
/// ```
/// use audb_engine::{Query, PlanError};
/// use audb_core::{AuRelation, AuTuple, Mult3, RangeValue};
/// use audb_rel::Schema;
///
/// let rel = AuRelation::from_rows(
///     Schema::new(["sku", "price"]),
///     [(AuTuple::from([RangeValue::certain(1i64), RangeValue::new(9, 10, 12)]), Mult3::ONE)],
/// );
/// let plan = Query::scan(rel.clone()).sort_by(["price"]).topk(2).build().unwrap();
/// assert_eq!(plan.schema().cols(), &["sku", "price", "pos"]);
///
/// // A colliding position column is a structured error, not a panic:
/// let err = Query::scan(rel).sort_by_as(["price"], "sku").build().unwrap_err();
/// assert_eq!(err, PlanError::DuplicateColumn { name: "sku".into() });
/// ```
#[derive(Clone, Debug)]
pub struct Query {
    state: Result<QueryState, PlanError>,
}

#[derive(Clone, Debug)]
struct QueryState {
    source: Arc<AuRelation>,
    ops: Vec<Op>,
    schemas: Vec<Schema>,
}

impl QueryState {
    fn schema(&self) -> &Schema {
        self.schemas.last().expect("schemas is never empty")
    }
}

/// Validate that every column reference inside a range expression is within
/// the schema's arity.
fn validate_expr(e: &RangeExpr, arity: usize) -> Result<(), PlanError> {
    match e {
        RangeExpr::Col(i) => {
            if *i < arity {
                Ok(())
            } else {
                Err(PlanError::ColumnOutOfRange { index: *i, arity })
            }
        }
        RangeExpr::Lit(_) => Ok(()),
        RangeExpr::Neg(a) | RangeExpr::Not(a) => validate_expr(a, arity),
        RangeExpr::Add(a, b)
        | RangeExpr::Sub(a, b)
        | RangeExpr::Mul(a, b)
        | RangeExpr::And(a, b)
        | RangeExpr::Or(a, b)
        | RangeExpr::Cmp(_, a, b) => {
            validate_expr(a, arity)?;
            validate_expr(b, arity)
        }
    }
}

/// A new column name must not shadow an existing attribute.
fn check_new_name(schema: &Schema, name: &str) -> Result<(), PlanError> {
    if schema.index_of(name).is_some() {
        Err(PlanError::DuplicateColumn {
            name: name.to_string(),
        })
    } else {
        Ok(())
    }
}

impl Query {
    /// Start a plan by scanning an AU-relation. Accepts an owned relation
    /// or an `Arc` (share the `Arc` to build many plans over one source
    /// without copying the data). The source schema itself is validated:
    /// repeated attribute names are rejected up front, because every
    /// downstream name resolution would silently bind to the first.
    pub fn scan(rel: impl Into<Arc<AuRelation>>) -> Query {
        let source: Arc<AuRelation> = rel.into();
        let mut seen: Vec<&str> = Vec::with_capacity(source.schema.arity());
        for c in source.schema.cols() {
            if seen.contains(&c.as_str()) {
                return Query {
                    state: Err(PlanError::DuplicateColumn { name: c.clone() }),
                };
            }
            seen.push(c);
        }
        let schema = source.schema.clone();
        Query {
            state: Ok(QueryState {
                source,
                ops: Vec::new(),
                schemas: vec![schema],
            }),
        }
    }

    fn try_push(mut self, f: impl FnOnce(&QueryState) -> Result<(Op, Schema), PlanError>) -> Self {
        if let Ok(state) = &mut self.state {
            match f(state) {
                Ok((op, schema)) => {
                    state.ops.push(op);
                    state.schemas.push(schema);
                }
                Err(e) => self.state = Err(e),
            }
        }
        self
    }

    /// AU-DB selection `σ_pred` — filters each row's multiplicity triple by
    /// the predicate's truth triple.
    pub fn select(self, pred: RangeExpr) -> Self {
        self.try_push(|state| {
            validate_expr(&pred, state.schema().arity())?;
            Ok((Op::Select { pred }, state.schema().clone()))
        })
    }

    /// Project onto existing columns (by name or index).
    pub fn project<C: Into<ColRef>>(self, cols: impl IntoIterator<Item = C>) -> Self {
        let cols: Vec<ColRef> = cols.into_iter().map(Into::into).collect();
        self.try_push(|state| {
            if cols.is_empty() {
                return Err(PlanError::EmptyProjection);
            }
            let schema = state.schema();
            let idxs = cols
                .iter()
                .map(|c| c.resolve(schema))
                .collect::<Result<Vec<_>, _>>()?;
            let names: Vec<String> = idxs.iter().map(|&i| schema.cols()[i].clone()).collect();
            for (i, n) in names.iter().enumerate() {
                if names[..i].contains(n) {
                    return Err(PlanError::DuplicateColumn { name: n.clone() });
                }
            }
            Ok((Op::Project { cols: idxs }, Schema::new(names)))
        })
    }

    /// Generalized projection: compute each output column from a range
    /// expression over the input.
    pub fn project_exprs(
        self,
        exprs: impl IntoIterator<Item = (RangeExpr, impl Into<String>)>,
    ) -> Self {
        let exprs: Vec<(RangeExpr, String)> =
            exprs.into_iter().map(|(e, n)| (e, n.into())).collect();
        self.try_push(|state| {
            if exprs.is_empty() {
                return Err(PlanError::EmptyProjection);
            }
            let arity = state.schema().arity();
            for (i, (e, n)) in exprs.iter().enumerate() {
                validate_expr(e, arity)?;
                if exprs[..i].iter().any(|(_, m)| m == n) {
                    return Err(PlanError::DuplicateColumn { name: n.clone() });
                }
            }
            let schema = Schema::new(exprs.iter().map(|(_, n)| n.clone()));
            Ok((Op::ProjectExprs { exprs }, schema))
        })
    }

    /// Sort (Def. 2), appending position ranges in a column named `"pos"`.
    pub fn sort_by<C: Into<ColRef>>(self, order: impl IntoIterator<Item = C>) -> Self {
        self.sort_by_as(order, "pos")
    }

    /// Sort with an explicit position-column name.
    pub fn sort_by_as<C: Into<ColRef>>(
        self,
        order: impl IntoIterator<Item = C>,
        pos_name: impl Into<String>,
    ) -> Self {
        let order: Vec<ColRef> = order.into_iter().map(Into::into).collect();
        let pos_name = pos_name.into();
        self.try_push(|state| {
            if order.is_empty() {
                return Err(PlanError::EmptyOrderBy);
            }
            let schema = state.schema();
            let order = order
                .iter()
                .map(|c| c.resolve(schema))
                .collect::<Result<Vec<_>, _>>()?;
            check_new_name(schema, &pos_name)?;
            let out = schema.with(pos_name.clone());
            Ok((Op::Sort { order, pos_name }, out))
        })
    }

    /// Restrict the directly preceding [`Query::sort_by`] to the top `k`
    /// rows (`σ_{τ < k}` with position bounds capped at `k`, the paper's
    /// Algorithm 1 `emit` step). Calling it anywhere else is a
    /// [`PlanError::TopKWithoutSort`].
    pub fn topk(mut self, k: u64) -> Self {
        if let Ok(state) = &mut self.state {
            match state.ops.pop() {
                Some(Op::Sort { order, pos_name }) => {
                    state.ops.push(Op::TopK { order, k, pos_name });
                }
                other => {
                    if let Some(op) = other {
                        state.ops.push(op);
                    }
                    self.state = Err(PlanError::TopKWithoutSort);
                }
            }
        }
        self
    }

    /// Row-based windowed aggregation (Def. 3).
    pub fn window(self, spec: WindowSpec) -> Self {
        self.try_push(|state| {
            let schema = state.schema();
            if spec.order.is_empty() {
                return Err(PlanError::EmptyOrderBy);
            }
            if spec.lower > 0 || spec.upper < 0 {
                return Err(PlanError::InvalidWindowFrame {
                    lower: spec.lower,
                    upper: spec.upper,
                });
            }
            let order = spec
                .order
                .iter()
                .map(|c| c.resolve(schema))
                .collect::<Result<Vec<_>, _>>()?;
            let partition = spec
                .partition
                .iter()
                .map(|c| c.resolve(schema))
                .collect::<Result<Vec<_>, _>>()?;
            let agg = spec.agg.resolve(schema)?;
            check_new_name(schema, &spec.out_name)?;
            let au_spec = AuWindowSpec::rows(order, spec.lower, spec.upper).partition_by(partition);
            let out = schema.with(spec.out_name.clone());
            Ok((
                Op::Window {
                    spec: au_spec,
                    agg,
                    out_name: spec.out_name.clone(),
                },
                out,
            ))
        })
    }

    /// The schema at the current point of the chain, or `None` if an
    /// earlier call already failed (the error surfaces from
    /// [`Query::build`]). Lets external compilers — the SQL binder — resolve
    /// names mid-chain exactly like the builder itself does.
    pub fn schema(&self) -> Option<&Schema> {
        self.state.as_ref().ok().map(|s| s.schema())
    }

    /// Finish the chain, returning the validated plan or the first error
    /// encountered while building it.
    pub fn build(self) -> Result<Plan, PlanError> {
        let state = self.state?;
        Ok(Plan {
            source: state.source,
            ops: state.ops,
            schemas: state.schemas,
            sql: None,
            source_cols: Arc::new(std::sync::OnceLock::new()),
            stats: Arc::new(std::sync::OnceLock::new()),
            opt: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_core::{AuTuple, Mult3, RangeValue};

    fn rel() -> AuRelation {
        AuRelation::from_rows(
            Schema::new(["a", "b"]),
            [(
                AuTuple::new([RangeValue::certain(1i64), RangeValue::new(1, 2, 3)]),
                Mult3::ONE,
            )],
        )
    }

    #[test]
    fn builds_and_tracks_schemas() {
        let plan = Query::scan(rel())
            .select(RangeExpr::col(1).lt(RangeExpr::lit(10)))
            .sort_by(["b", "a"])
            .topk(3)
            .build()
            .unwrap();
        assert_eq!(plan.ops().len(), 2);
        assert_eq!(plan.schema().cols(), &["a", "b", "pos"]);
        assert_eq!(plan.schemas()[0].cols(), &["a", "b"]);
        assert!(matches!(&plan.ops()[1], Op::TopK { k: 3, order, .. } if order == &[1, 0]));
    }

    /// The satellite regression: a position/aggregate column that collides
    /// with an existing attribute is a `DuplicateColumn` error, not a
    /// silently double-named schema (and no panic anywhere).
    #[test]
    fn duplicate_position_and_window_columns_are_errors() {
        let err = Query::scan(rel())
            .sort_by_as(["a"], "b")
            .build()
            .unwrap_err();
        assert_eq!(err, PlanError::DuplicateColumn { name: "b".into() });

        let err = Query::scan(rel())
            .window(
                WindowSpec::rows(-1, 0)
                    .order_by(["b"])
                    .aggregate(Agg::sum("b"))
                    .output("a"),
            )
            .build()
            .unwrap_err();
        assert_eq!(err, PlanError::DuplicateColumn { name: "a".into() });

        // A duplicate-named *source* is caught at scan.
        let dup = AuRelation::empty(Schema::new(["x", "x"]));
        let err = Query::scan(dup).build().unwrap_err();
        assert_eq!(err, PlanError::DuplicateColumn { name: "x".into() });
    }

    #[test]
    fn unknown_and_out_of_range_columns() {
        let err = Query::scan(rel()).sort_by(["nope"]).build().unwrap_err();
        assert!(matches!(err, PlanError::UnknownColumn { name, .. } if name == "nope"));

        let err = Query::scan(rel()).sort_by([7usize]).build().unwrap_err();
        assert_eq!(err, PlanError::ColumnOutOfRange { index: 7, arity: 2 });

        let err = Query::scan(rel())
            .select(RangeExpr::col(5).lt(RangeExpr::lit(1)))
            .build()
            .unwrap_err();
        assert_eq!(err, PlanError::ColumnOutOfRange { index: 5, arity: 2 });
    }

    #[test]
    fn structural_errors() {
        let err = Query::scan(rel()).topk(2).build().unwrap_err();
        assert_eq!(err, PlanError::TopKWithoutSort);

        let err = Query::scan(rel())
            .select(RangeExpr::lit(true))
            .topk(2)
            .build()
            .unwrap_err();
        assert_eq!(err, PlanError::TopKWithoutSort);

        let err = Query::scan(rel())
            .sort_by(Vec::<usize>::new())
            .build()
            .unwrap_err();
        assert_eq!(err, PlanError::EmptyOrderBy);

        let err = Query::scan(rel())
            .window(WindowSpec::rows(1, 2).order_by(["a"]))
            .build()
            .unwrap_err();
        assert_eq!(err, PlanError::InvalidWindowFrame { lower: 1, upper: 2 });

        let err = Query::scan(rel())
            .project(Vec::<usize>::new())
            .build()
            .unwrap_err();
        assert_eq!(err, PlanError::EmptyProjection);
    }

    #[test]
    fn first_error_wins_and_chain_stays_usable() {
        // The unknown column is reported even though a later call would
        // also fail; no panic anywhere in the chain.
        let err = Query::scan(rel())
            .sort_by(["nope"])
            .topk(1)
            .build()
            .unwrap_err();
        assert!(matches!(err, PlanError::UnknownColumn { .. }));
    }

    #[test]
    fn projection_resolution() {
        let plan = Query::scan(rel()).project(["b"]).build().unwrap();
        assert_eq!(plan.schema().cols(), &["b"]);

        let err = Query::scan(rel()).project(["a", "a"]).build().unwrap_err();
        assert_eq!(err, PlanError::DuplicateColumn { name: "a".into() });

        let plan = Query::scan(rel())
            .project_exprs([
                (RangeExpr::col(0), "a"),
                (RangeExpr::Neg(Box::new(RangeExpr::col(1))), "neg_b"),
            ])
            .build()
            .unwrap();
        assert_eq!(plan.schema().cols(), &["a", "neg_b"]);
    }
}
