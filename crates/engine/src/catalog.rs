//! A [`Catalog`] of named AU-relations — the FROM-clause namespace of the
//! SQL frontend.

use audb_core::AuRelation;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Named AU-relations, shared cheaply behind [`Arc`]s. Names are
/// case-sensitive (quote mixed-case names in SQL as `"MyTable"`); lookups
/// iterate in name order, so catalog listings are deterministic.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<AuRelation>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a relation under a name, replacing (and returning) any
    /// previous relation of that name.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        rel: impl Into<Arc<AuRelation>>,
    ) -> Option<Arc<AuRelation>> {
        self.tables.insert(name.into(), rel.into())
    }

    /// Remove a named relation, returning it if it was registered.
    pub fn deregister(&mut self, name: &str) -> Option<Arc<AuRelation>> {
        self.tables.remove(name)
    }

    /// Look up a relation by name.
    pub fn get(&self, name: &str) -> Option<&Arc<AuRelation>> {
        self.tables.get(name)
    }

    /// Registered names, in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// `(name, relation)` pairs, in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<AuRelation>)> {
        self.tables.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True iff nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_rel::Schema;

    #[test]
    fn register_lookup_deregister() {
        let mut cat = Catalog::new();
        let rel = Arc::new(AuRelation::empty(Schema::new(["a"])));
        assert!(cat.register("t", Arc::clone(&rel)).is_none());
        assert!(Arc::ptr_eq(cat.get("t").unwrap(), &rel));
        // Re-registering returns the replaced relation.
        let rel2 = AuRelation::empty(Schema::new(["b"]));
        let old = cat.register("t", rel2).unwrap();
        assert!(Arc::ptr_eq(&old, &rel));
        assert_eq!(cat.names().collect::<Vec<_>>(), ["t"]);
        assert!(cat.deregister("t").is_some());
        assert!(cat.is_empty() && cat.get("t").is_none());
    }
}
