//! The FROM-clause namespace of the SQL frontend: an immutable-once-read
//! [`Catalog`] of named AU-relations, and the snapshot-swappable
//! [`SharedCatalog`] many concurrent sessions read through.

use audb_core::AuRelation;
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// Named AU-relations, shared cheaply behind [`Arc`]s. Names are
/// case-sensitive (quote mixed-case names in SQL as `"MyTable"`); lookups
/// iterate in name order, so catalog listings are deterministic.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<AuRelation>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a relation under a name, replacing (and returning) any
    /// previous relation of that name.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        rel: impl Into<Arc<AuRelation>>,
    ) -> Option<Arc<AuRelation>> {
        self.tables.insert(name.into(), rel.into())
    }

    /// Remove a named relation, returning it if it was registered.
    pub fn deregister(&mut self, name: &str) -> Option<Arc<AuRelation>> {
        self.tables.remove(name)
    }

    /// Look up a relation by name.
    pub fn get(&self, name: &str) -> Option<&Arc<AuRelation>> {
        self.tables.get(name)
    }

    /// Registered names, in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// `(name, relation)` pairs, in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<AuRelation>)> {
        self.tables.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True iff nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

/// A catalog shared by many concurrent sessions, updated by **snapshot
/// publication**: readers take an [`Arc`]'d snapshot of the whole catalog
/// (one `Arc::clone` under a read lock — no lock is held while a query
/// binds or executes), and registration is copy-on-write (clone the
/// current [`Catalog`], apply the change, swap the `Arc` and bump the
/// version under the write lock).
///
/// **Visibility rule:** a statement binds against the snapshot current at
/// `prepare` time and its plan pins the scanned relation behind an `Arc`,
/// so in-flight queries finish on their pinned snapshot; a `register`
/// becomes visible to statements *prepared after* publication, never to
/// ones already running. Nothing blocks: readers never wait on writers
/// beyond the snapshot clone, writers never wait on running queries.
///
/// Cloning a `SharedCatalog` shares the underlying catalog (that is the
/// point — many sessions, one namespace); [`SharedCatalog::snapshot`]
/// gives a private immutable view.
#[derive(Clone, Debug, Default)]
pub struct SharedCatalog {
    // (version, snapshot) swap together so a cache keyed on the version
    // can never observe a torn pair.
    current: Arc<RwLock<(u64, Arc<Catalog>)>>,
}

impl SharedCatalog {
    /// An empty shared catalog at version 0.
    pub fn new() -> Self {
        SharedCatalog::default()
    }

    /// Wrap an existing catalog as the initial snapshot.
    pub fn from_catalog(catalog: Catalog) -> Self {
        SharedCatalog {
            current: Arc::new(RwLock::new((0, Arc::new(catalog)))),
        }
    }

    /// The current snapshot. Callers hold it as long as they like; it
    /// never changes under them.
    pub fn snapshot(&self) -> Arc<Catalog> {
        Arc::clone(&self.current.read().expect("catalog lock poisoned").1)
    }

    /// The current snapshot together with its version (the pair is
    /// coherent — the plan cache keys on the version).
    pub fn snapshot_versioned(&self) -> (u64, Arc<Catalog>) {
        let guard = self.current.read().expect("catalog lock poisoned");
        (guard.0, Arc::clone(&guard.1))
    }

    /// The current publication version: bumped by every
    /// [`SharedCatalog::register`] / [`SharedCatalog::deregister`].
    pub fn version(&self) -> u64 {
        self.current.read().expect("catalog lock poisoned").0
    }

    /// True iff two handles publish into the same underlying catalog.
    pub fn same_catalog(&self, other: &SharedCatalog) -> bool {
        Arc::ptr_eq(&self.current, &other.current)
    }

    /// Publish a new snapshot with `name` registered (copy-on-write:
    /// the table map is cloned, each relation stays shared behind its
    /// `Arc`). Returns the replaced relation, if any.
    pub fn register(
        &self,
        name: impl Into<String>,
        rel: impl Into<Arc<AuRelation>>,
    ) -> Option<Arc<AuRelation>> {
        self.publish(|cat| cat.register(name, rel))
    }

    /// Publish a new snapshot with `name` removed, returning it if it was
    /// registered.
    pub fn deregister(&self, name: &str) -> Option<Arc<AuRelation>> {
        self.publish(|cat| cat.deregister(name))
    }

    fn publish<T>(&self, change: impl FnOnce(&mut Catalog) -> T) -> T {
        let mut guard = self.current.write().expect("catalog lock poisoned");
        let mut next = (*guard.1).clone();
        let out = change(&mut next);
        *guard = (guard.0 + 1, Arc::new(next));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_rel::Schema;

    #[test]
    fn shared_catalog_publishes_snapshots() {
        let shared = SharedCatalog::new();
        assert_eq!(shared.version(), 0);
        let before = shared.snapshot();

        let rel = Arc::new(AuRelation::empty(Schema::new(["a"])));
        shared.register("t", Arc::clone(&rel));
        assert_eq!(shared.version(), 1);

        // The pre-registration snapshot is immutable — readers pinned to
        // it never see the new table.
        assert!(before.get("t").is_none());
        let after = shared.snapshot();
        assert!(Arc::ptr_eq(after.get("t").unwrap(), &rel));

        // Deregistration publishes another snapshot; `after` is pinned.
        assert!(shared.deregister("t").is_some());
        assert_eq!(shared.version(), 2);
        assert!(after.get("t").is_some());
        assert!(shared.snapshot().get("t").is_none());

        // Clones share the catalog; from_catalog starts a fresh one.
        let clone = shared.clone();
        assert!(clone.same_catalog(&shared));
        clone.register("u", AuRelation::empty(Schema::new(["b"])));
        assert!(shared.snapshot().get("u").is_some());
        assert!(!SharedCatalog::from_catalog(Catalog::new()).same_catalog(&shared));
    }

    #[test]
    fn register_lookup_deregister() {
        let mut cat = Catalog::new();
        let rel = Arc::new(AuRelation::empty(Schema::new(["a"])));
        assert!(cat.register("t", Arc::clone(&rel)).is_none());
        assert!(Arc::ptr_eq(cat.get("t").unwrap(), &rel));
        // Re-registering returns the replaced relation.
        let rel2 = AuRelation::empty(Schema::new(["b"]));
        let old = cat.register("t", rel2).unwrap();
        assert!(Arc::ptr_eq(&old, &rel));
        assert_eq!(cat.names().collect::<Vec<_>>(), ["t"]);
        assert!(cat.deregister("t").is_some());
        assert!(cat.is_empty() && cat.get("t").is_none());
    }
}
