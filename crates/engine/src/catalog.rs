//! The FROM-clause namespace of the SQL frontend: an immutable-once-read
//! [`Catalog`] of named AU-relations, and the snapshot-swappable
//! [`SharedCatalog`] many concurrent sessions read through.

use audb_core::{AuRelation, TableStats};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// A registered relation together with the column statistics computed
/// when it was published. Statistics are recomputed on every
/// registration (including the append path, which re-registers the grown
/// table), so a snapshot's stats always describe the relation it holds.
#[derive(Clone, Debug)]
struct TableEntry {
    rel: Arc<AuRelation>,
    stats: Arc<TableStats>,
}

/// Named AU-relations, shared cheaply behind [`Arc`]s. Names are
/// case-sensitive (quote mixed-case names in SQL as `"MyTable"`); lookups
/// iterate in name order, so catalog listings are deterministic.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, TableEntry>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a relation under a name, replacing (and returning) any
    /// previous relation of that name. Column statistics (zone maps,
    /// certain fractions — [`TableStats`]) are computed eagerly here, so
    /// binding and optimization never scan the data to obtain them.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        rel: impl Into<Arc<AuRelation>>,
    ) -> Option<Arc<AuRelation>> {
        let rel = rel.into();
        let stats = Arc::new(TableStats::of_relation(&rel));
        self.tables
            .insert(name.into(), TableEntry { rel, stats })
            .map(|e| e.rel)
    }

    /// Remove a named relation, returning it if it was registered.
    pub fn deregister(&mut self, name: &str) -> Option<Arc<AuRelation>> {
        self.tables.remove(name).map(|e| e.rel)
    }

    /// Look up a relation by name.
    pub fn get(&self, name: &str) -> Option<&Arc<AuRelation>> {
        self.tables.get(name).map(|e| &e.rel)
    }

    /// The statistics computed when the named relation was registered.
    pub fn stats(&self, name: &str) -> Option<&Arc<TableStats>> {
        self.tables.get(name).map(|e| &e.stats)
    }

    /// Registered names, in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// `(name, relation)` pairs, in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<AuRelation>)> {
        self.tables.iter().map(|(n, e)| (n.as_str(), &e.rel))
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True iff nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

/// A catalog shared by many concurrent sessions, updated by **snapshot
/// publication**: readers take an [`Arc`]'d snapshot of the whole catalog
/// (one `Arc::clone` under a read lock — no lock is held while a query
/// binds or executes), and registration is copy-on-write (clone the
/// current [`Catalog`], apply the change, swap the `Arc` and bump the
/// version under the write lock).
///
/// **Visibility rule:** a statement binds against the snapshot current at
/// `prepare` time and its plan pins the scanned relation behind an `Arc`,
/// so in-flight queries finish on their pinned snapshot; a `register`
/// becomes visible to statements *prepared after* publication, never to
/// ones already running. Nothing blocks: readers never wait on writers
/// beyond the snapshot clone, writers never wait on running queries.
///
/// Cloning a `SharedCatalog` shares the underlying catalog (that is the
/// point — many sessions, one namespace); [`SharedCatalog::snapshot`]
/// gives a private immutable view.
#[derive(Clone, Debug, Default)]
pub struct SharedCatalog {
    // (version, snapshot) swap together so a cache keyed on the version
    // can never observe a torn pair.
    current: Arc<RwLock<(u64, Arc<Catalog>)>>,
}

impl SharedCatalog {
    /// An empty shared catalog at version 0.
    pub fn new() -> Self {
        SharedCatalog::default()
    }

    /// Wrap an existing catalog as the initial snapshot.
    pub fn from_catalog(catalog: Catalog) -> Self {
        SharedCatalog {
            current: Arc::new(RwLock::new((0, Arc::new(catalog)))),
        }
    }

    /// The current snapshot. Callers hold it as long as they like; it
    /// never changes under them.
    pub fn snapshot(&self) -> Arc<Catalog> {
        Arc::clone(&self.current.read().expect("catalog lock poisoned").1)
    }

    /// The current snapshot together with its version (the pair is
    /// coherent — the plan cache keys on the version).
    pub fn snapshot_versioned(&self) -> (u64, Arc<Catalog>) {
        let guard = self.current.read().expect("catalog lock poisoned");
        (guard.0, Arc::clone(&guard.1))
    }

    /// The current publication version: bumped by every
    /// [`SharedCatalog::register`] / [`SharedCatalog::deregister`].
    pub fn version(&self) -> u64 {
        self.current.read().expect("catalog lock poisoned").0
    }

    /// True iff two handles publish into the same underlying catalog.
    pub fn same_catalog(&self, other: &SharedCatalog) -> bool {
        Arc::ptr_eq(&self.current, &other.current)
    }

    /// Publish a new snapshot with `name` registered (copy-on-write:
    /// the table map is cloned, each relation stays shared behind its
    /// `Arc`). Returns the replaced relation, if any.
    pub fn register(
        &self,
        name: impl Into<String>,
        rel: impl Into<Arc<AuRelation>>,
    ) -> Option<Arc<AuRelation>> {
        self.publish(|cat| cat.register(name, rel))
    }

    /// Publish a new snapshot with `name` removed, returning it if it was
    /// registered.
    pub fn deregister(&self, name: &str) -> Option<Arc<AuRelation>> {
        self.publish(|cat| cat.deregister(name))
    }

    fn publish<T>(&self, change: impl FnOnce(&mut Catalog) -> T) -> T {
        let mut guard = self.current.write().expect("catalog lock poisoned");
        let mut next = (*guard.1).clone();
        let out = change(&mut next);
        *guard = (guard.0 + 1, Arc::new(next));
        out
    }

    /// Publish a new snapshot with `batch`'s rows appended to the named
    /// table — the ingest path of the streaming API. The append is
    /// copy-on-write like [`SharedCatalog::register`]: the table is cloned
    /// with the new rows, the snapshot `Arc` is swapped, and the version
    /// bump invalidates any [`crate::PlanCache`] keyed on it. In-flight
    /// queries keep their pinned pre-append relation.
    ///
    /// Validation happens before anything is published: a failed append
    /// does **not** bump the version. Returns the table's new total row
    /// count and the new catalog version.
    pub fn append(
        &self,
        name: &str,
        batch: &AuRelation,
    ) -> Result<(usize, u64), CatalogAppendError> {
        let mut guard = self.current.write().expect("catalog lock poisoned");
        let Some(current) = guard.1.get(name) else {
            return Err(CatalogAppendError::UnknownTable {
                name: name.to_string(),
                known: guard.1.names().map(String::from).collect(),
            });
        };
        if current.schema != batch.schema {
            return Err(CatalogAppendError::SchemaMismatch {
                table: name.to_string(),
                expected: current.schema.to_string(),
                got: batch.schema.to_string(),
            });
        }
        let mut grown = (**current).clone();
        for row in batch.rows() {
            grown.push(row.tuple.clone(), row.mult);
        }
        let total = grown.rows().len();
        let mut next = (*guard.1).clone();
        next.register(name, grown);
        *guard = (guard.0 + 1, Arc::new(next));
        Ok((total, guard.0))
    }
}

/// An append could not be published (nothing changed, no version bump).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CatalogAppendError {
    /// The named table is not registered.
    UnknownTable {
        /// The missing name.
        name: String,
        /// The catalog's registered names (for the error message).
        known: Vec<String>,
    },
    /// The appended rows carry a different schema than the table.
    SchemaMismatch {
        /// The table appended to.
        table: String,
        /// Display form of the table's schema.
        expected: String,
        /// Display form of the batch's schema.
        got: String,
    },
}

impl CatalogAppendError {
    /// A stable machine-readable tag, as used in the server's structured
    /// error responses.
    pub fn kind(&self) -> &'static str {
        match self {
            CatalogAppendError::UnknownTable { .. } => "unknown_table",
            CatalogAppendError::SchemaMismatch { .. } => "schema_mismatch",
        }
    }
}

impl std::fmt::Display for CatalogAppendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogAppendError::UnknownTable { name, known } => {
                write!(f, "unknown table {name:?}; registered: ")?;
                if known.is_empty() {
                    write!(f, "(none)")
                } else {
                    write!(f, "{}", known.join(", "))
                }
            }
            CatalogAppendError::SchemaMismatch {
                table,
                expected,
                got,
            } => write!(
                f,
                "appended rows have schema {got}, but table {table:?} has schema {expected}"
            ),
        }
    }
}

impl std::error::Error for CatalogAppendError {}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_rel::Schema;

    #[test]
    fn shared_catalog_publishes_snapshots() {
        let shared = SharedCatalog::new();
        assert_eq!(shared.version(), 0);
        let before = shared.snapshot();

        let rel = Arc::new(AuRelation::empty(Schema::new(["a"])));
        shared.register("t", Arc::clone(&rel));
        assert_eq!(shared.version(), 1);

        // The pre-registration snapshot is immutable — readers pinned to
        // it never see the new table.
        assert!(before.get("t").is_none());
        let after = shared.snapshot();
        assert!(Arc::ptr_eq(after.get("t").unwrap(), &rel));

        // Deregistration publishes another snapshot; `after` is pinned.
        assert!(shared.deregister("t").is_some());
        assert_eq!(shared.version(), 2);
        assert!(after.get("t").is_some());
        assert!(shared.snapshot().get("t").is_none());

        // Clones share the catalog; from_catalog starts a fresh one.
        let clone = shared.clone();
        assert!(clone.same_catalog(&shared));
        clone.register("u", AuRelation::empty(Schema::new(["b"])));
        assert!(shared.snapshot().get("u").is_some());
        assert!(!SharedCatalog::from_catalog(Catalog::new()).same_catalog(&shared));
    }

    #[test]
    fn append_publishes_grown_snapshots_and_validates_first() {
        use audb_core::{AuTuple, Mult3, RangeValue};
        let shared = SharedCatalog::new();
        let schema = Schema::new(["a"]);
        let row = |v: i64| (AuTuple::new([RangeValue::certain(v)]), Mult3::ONE);
        shared.register("t", AuRelation::from_rows(schema.clone(), [row(1)]));
        assert_eq!(shared.version(), 1);
        let pinned = shared.snapshot();

        let batch = AuRelation::from_rows(schema.clone(), [row(2), row(3)]);
        let (total, version) = shared.append("t", &batch).unwrap();
        assert_eq!((total, version), (3, 2));
        assert_eq!(shared.snapshot().get("t").unwrap().rows().len(), 3);
        // Pinned snapshots keep the pre-append relation.
        assert_eq!(pinned.get("t").unwrap().rows().len(), 1);

        // Failed appends change nothing — not even the version.
        let miss = shared.append("nope", &batch).unwrap_err();
        assert_eq!(miss.kind(), "unknown_table");
        let bad = AuRelation::empty(Schema::new(["a", "b"]));
        let mismatch = shared.append("t", &bad).unwrap_err();
        assert_eq!(mismatch.kind(), "schema_mismatch");
        assert!(mismatch.to_string().contains("(a)"), "{mismatch}");
        assert_eq!(shared.version(), 2);
        assert_eq!(shared.snapshot().get("t").unwrap().rows().len(), 3);
    }

    /// Stats are computed at registration and recomputed when the append
    /// path re-registers the grown table — a snapshot's stats always
    /// describe the rows it holds.
    #[test]
    fn stats_track_publication() {
        use audb_core::{AuTuple, Mult3, RangeValue};
        let shared = SharedCatalog::new();
        let schema = Schema::new(["a"]);
        let row = |v: i64| (AuTuple::new([RangeValue::certain(v)]), Mult3::ONE);
        shared.register("t", AuRelation::from_rows(schema.clone(), [row(1), row(2)]));
        let before = shared.snapshot();
        assert_eq!(before.stats("t").unwrap().rows, 2);

        let batch = AuRelation::from_rows(schema, [row(3)]);
        shared.append("t", &batch).unwrap();
        let after = shared.snapshot();
        assert_eq!(after.stats("t").unwrap().rows, 3);
        // The pinned pre-append snapshot keeps its own (still-accurate)
        // stats.
        assert_eq!(before.stats("t").unwrap().rows, 2);
        assert!(after.stats("missing").is_none());
    }

    #[test]
    fn register_lookup_deregister() {
        let mut cat = Catalog::new();
        let rel = Arc::new(AuRelation::empty(Schema::new(["a"])));
        assert!(cat.register("t", Arc::clone(&rel)).is_none());
        assert!(Arc::ptr_eq(cat.get("t").unwrap(), &rel));
        // Re-registering returns the replaced relation.
        let rel2 = AuRelation::empty(Schema::new(["b"]));
        let old = cat.register("t", rel2).unwrap();
        assert!(Arc::ptr_eq(&old, &rel));
        assert_eq!(cat.names().collect::<Vec<_>>(), ["t"]);
        assert!(cat.deregister("t").is_some());
        assert!(cat.is_empty() && cat.get("t").is_none());
    }
}
