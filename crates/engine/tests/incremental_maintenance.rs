//! Property tests for the incremental-maintenance layer: under random
//! interleaved append/query sequences, [`MaintainedQuery`]'s value must
//! stay bag-equal to a full recompute of the same plan over the
//! accumulated rows — on all three backends — and replaying the emitted
//! deltas must reconstruct the value exactly. The generators cover
//! in-order streams (incremental fast path), out-of-order batches
//! (rebuild and recompute), partition churn, and duplicate multiplicities
//! (permanent fallback).

use audb_core::{AuRelation, AuTuple, Mult3, RangeValue};
use audb_engine::{BackendChoice, Delta, Engine, Session, SharedCatalog, Strategy};
use audb_rel::Schema;
use std::collections::BTreeMap;

/// Deterministic xorshift64* stream — tests must not depend on ambient
/// randomness.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn sensor_schema() -> Schema {
    Schema::new(["g", "o", "v"])
}

/// One reading: certain partition `g`, uncertain order key around `t`,
/// uncertain value. `tight` keeps the order-key spread below the stride so
/// consecutive rows never overlap in ORDER BY.
fn reading(rng: &mut Rng, g: i64, t: i64, tight: bool) -> (AuTuple, Mult3) {
    let spread = if tight { rng.below(3) as i64 } else { 6 };
    let v = rng.below(40) as i64 - 20;
    let vs = rng.below(4) as i64;
    let mult = if rng.below(4) == 0 {
        Mult3::new(0, 1, 1)
    } else {
        Mult3::ONE
    };
    (
        AuTuple::new([
            RangeValue::certain(g),
            RangeValue::new(t, t + spread / 2, t + spread),
            RangeValue::new(v, v + vs / 2, v + vs),
        ]),
        mult,
    )
}

fn session_with(sql_table: &AuRelation) -> Session {
    let catalog = SharedCatalog::new();
    catalog.register("s", sql_table.clone());
    Session::with_catalog(Engine::native(), catalog)
}

/// Full recompute of the subscription's plan over its accumulated rows on
/// `choice` — the ground truth the maintained value is pinned against.
fn recompute_on(q: &audb_engine::MaintainedQuery, choice: BackendChoice) -> AuRelation {
    let plan = q
        .plan()
        .with_source(q.accumulated().clone())
        .expect("accumulated rows always match the plan schema");
    Engine::new(choice).execute(&plan).unwrap().normalize()
}

fn assert_matches_all_backends(q: &audb_engine::MaintainedQuery, ctx: &str) {
    let value = q.value().normalize();
    for choice in [
        BackendChoice::Reference,
        BackendChoice::Native,
        BackendChoice::Rewrite,
    ] {
        let truth = recompute_on(q, choice);
        assert!(
            value.clone().bag_eq(&truth),
            "{ctx}: maintained value diverged from {choice} recompute\n\
             maintained:\n{value}\ntruth:\n{truth}"
        );
    }
}

/// Replays deltas over a snapshot: `value_after = value_before − removed +
/// added`, keyed on the row's full triple-of-bounds identity.
#[derive(Default)]
struct Replay(BTreeMap<String, (AuTuple, Mult3)>);

impl Replay {
    fn from_value(rel: &AuRelation) -> Replay {
        let mut map = BTreeMap::new();
        for row in rel.clone().normalize().rows() {
            map.insert(format!("{:?}", row.tuple), (row.tuple.clone(), row.mult));
        }
        Replay(map)
    }
    fn apply(&mut self, delta: &Delta) {
        for (tuple, mult) in &delta.removed {
            let key = format!("{tuple:?}");
            let (_, have) = self.0.remove(&key).unwrap_or_else(|| {
                panic!("delta removed a row the replay does not have: {tuple:?}")
            });
            assert_eq!(
                (have.lb, have.sg, have.ub),
                (mult.lb, mult.sg, mult.ub),
                "delta removed {tuple:?} with the wrong old multiplicity"
            );
        }
        for (tuple, mult) in &delta.added {
            let prev = self.0.insert(format!("{tuple:?}"), (tuple.clone(), *mult));
            assert!(
                prev.is_none(),
                "delta added {tuple:?} on top of an existing entry (missing removal)"
            );
        }
    }
    fn value(&self, schema: Schema) -> AuRelation {
        AuRelation::from_rows(schema, self.0.values().cloned())
    }
}

const ROLLING: &str = "SELECT *, SUM(v) OVER (ORDER BY o \
                       ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS roll FROM s";
const PARTITIONED: &str = "SELECT *, COUNT(*) OVER (PARTITION BY g ORDER BY o \
                           ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS c FROM s";
const TOPK: &str = "SELECT g, v FROM s ORDER BY v AS pos LIMIT 4";

#[test]
fn in_order_stream_stays_incremental_and_exact() {
    let mut rng = Rng::new(0xA11CE);
    let session = session_with(&AuRelation::empty(sensor_schema()));
    let mut q = session.subscribe(ROLLING).unwrap().with_cutoff(8);
    let mut replay = Replay::from_value(&q.value());

    let mut t = 0i64;
    for step in 0..40 {
        let rows: Vec<_> = (0..1 + rng.below(6))
            .map(|_| {
                t += 4; // stride 4 > max tight spread 2: strictly in order
                reading(&mut rng, 0, t, true)
            })
            .collect();
        let batch = AuRelation::from_rows(sensor_schema(), rows);
        let delta = q.append(&batch).unwrap();
        replay.apply(&delta);
        // Interleave full checks with cheap delta-only steps so the test
        // also covers appends nobody queries between.
        if rng.below(3) == 0 || step > 35 {
            assert_matches_all_backends(&q, &format!("rolling step {step}"));
            assert!(
                replay
                    .value(q.value().schema.clone())
                    .bag_eq(&q.value().normalize()),
                "rolling step {step}: delta replay diverged from value()"
            );
        }
    }
    let (incr, rec) = q.strategy_counts();
    assert!(
        incr > rec,
        "an in-order stream over the cutoff should mostly maintain ({incr} incremental, {rec} recompute)"
    );
    assert!(
        q.explain().contains("window incremental"),
        "{}",
        q.explain()
    );
}

#[test]
fn out_of_order_and_in_order_interleave_exactly() {
    let mut rng = Rng::new(0xB0B);
    let session = session_with(&AuRelation::empty(sensor_schema()));
    let mut q = session.subscribe(ROLLING).unwrap().with_cutoff(4);
    let mut replay = Replay::from_value(&q.value());

    let mut t = 0i64;
    for step in 0..30 {
        let out_of_order = rng.below(4) == 0 && t > 20;
        let rows: Vec<_> = (0..1 + rng.below(4))
            .map(|_| {
                let at = if out_of_order {
                    // Land strictly inside the accumulated range: forces a
                    // frontier overlap, a recompute, and a state rebuild.
                    rng.below(t.max(1) as u64) as i64
                } else {
                    t += 4;
                    t
                };
                reading(&mut rng, 0, at, true)
            })
            .collect();
        let batch = AuRelation::from_rows(sensor_schema(), rows);
        let delta = q.append(&batch).unwrap();
        if out_of_order {
            assert_eq!(
                delta.strategy,
                Strategy::Recompute,
                "step {step}: an overlapping batch must recompute"
            );
        }
        replay.apply(&delta);
        assert_matches_all_backends(&q, &format!("interleaved step {step}"));
        assert!(
            replay
                .value(q.value().schema.clone())
                .bag_eq(&q.value().normalize()),
            "interleaved step {step}: delta replay diverged"
        );
    }
    let (incr, _) = q.strategy_counts();
    assert!(incr > 0, "in-order stretches should resume maintenance");
}

#[test]
fn partition_churn_stays_exact() {
    let mut rng = Rng::new(0x5EED);
    let session = session_with(&AuRelation::empty(sensor_schema()));
    let mut q = session.subscribe(PARTITIONED).unwrap().with_cutoff(6);
    let mut replay = Replay::from_value(&q.value());

    let mut t = 0i64;
    for step in 0..30 {
        // Partitions appear over time: step 10 has seen up to 4 groups,
        // step 29 up to 10 — each batch may open brand-new sweeps.
        let live = 2 + (step as u64) / 3;
        let rows: Vec<_> = (0..1 + rng.below(5))
            .map(|_| {
                t += 4;
                let g = rng.below(live) as i64;
                reading(&mut rng, g, t, true)
            })
            .collect();
        let batch = AuRelation::from_rows(sensor_schema(), rows);
        let delta = q.append(&batch).unwrap();
        replay.apply(&delta);
        if rng.below(2) == 0 || step > 25 {
            assert_matches_all_backends(&q, &format!("churn step {step}"));
            assert!(
                replay
                    .value(q.value().schema.clone())
                    .bag_eq(&q.value().normalize()),
                "churn step {step}: delta replay diverged"
            );
        }
    }
    let (incr, _) = q.strategy_counts();
    assert!(
        incr > 0,
        "partition churn alone must not disable maintenance"
    );
}

#[test]
fn duplicate_multiplicities_fall_back_for_good() {
    let mut rng = Rng::new(0xD0D0);
    let session = session_with(&AuRelation::empty(sensor_schema()));
    let mut q = session.subscribe(ROLLING).unwrap().with_cutoff(4);
    let mut replay = Replay::from_value(&q.value());

    let mut t = 0i64;
    for step in 0..20 {
        let poison = step == 7; // one batch with k↑ > 1
        let rows: Vec<_> = (0..2)
            .map(|_| {
                t += 4;
                let (tuple, mut mult) = reading(&mut rng, 0, t, true);
                if poison {
                    mult = Mult3::new(0, 1, 2);
                }
                (tuple, mult)
            })
            .collect();
        let batch = AuRelation::from_rows(sensor_schema(), rows);
        let delta = q.append(&batch).unwrap();
        if step >= 7 {
            assert_eq!(
                delta.strategy,
                Strategy::Recompute,
                "step {step}: duplicate multiplicities disable maintenance permanently"
            );
        }
        replay.apply(&delta);
        assert_matches_all_backends(&q, &format!("dup-mult step {step}"));
        assert!(
            replay
                .value(q.value().schema.clone())
                .bag_eq(&q.value().normalize()),
            "dup-mult step {step}: delta replay diverged"
        );
    }
    assert!(q.explain().contains("always recompute"), "{}", q.explain());
}

#[test]
fn topk_subscription_is_exact_in_any_order() {
    let mut rng = Rng::new(0x70CC);
    let session = session_with(&AuRelation::empty(sensor_schema()));
    let mut q = session.subscribe(TOPK).unwrap().with_cutoff(6);
    let mut replay = Replay::from_value(&q.value());

    for step in 0..30 {
        // No order discipline at all: top-k maintenance accepts any
        // arrival order, including duplicates of earlier rows.
        let rows: Vec<_> = (0..1 + rng.below(5))
            .map(|_| {
                let t = rng.below(200) as i64;
                let g = rng.below(3) as i64;
                reading(&mut rng, g, t, false)
            })
            .collect();
        let batch = AuRelation::from_rows(sensor_schema(), rows);
        let delta = q.append(&batch).unwrap();
        replay.apply(&delta);
        if rng.below(2) == 0 || step > 25 {
            assert_matches_all_backends(&q, &format!("topk step {step}"));
            assert!(
                replay
                    .value(q.value().schema.clone())
                    .bag_eq(&q.value().normalize()),
                "topk step {step}: delta replay diverged"
            );
        }
    }
    let (incr, _) = q.strategy_counts();
    assert!(
        incr > 0,
        "top-k over the cutoff should maintain incrementally"
    );
}

#[test]
fn maintained_value_matches_a_fresh_subscription_midstream() {
    // Subscribing to the already-grown table must equal the value carried
    // by a subscription that lived through every append.
    let mut rng = Rng::new(0xCAFE);
    let session = session_with(&AuRelation::empty(sensor_schema()));
    let mut live = session.subscribe(ROLLING).unwrap().with_cutoff(4);

    let mut t = 0i64;
    let mut all: Vec<(AuTuple, Mult3)> = Vec::new();
    for _ in 0..15 {
        let rows: Vec<_> = (0..2 + rng.below(3))
            .map(|_| {
                t += 4;
                reading(&mut rng, 0, t, true)
            })
            .collect();
        all.extend(rows.iter().cloned());
        live.append(&AuRelation::from_rows(sensor_schema(), rows))
            .unwrap();
    }

    let fresh_session = session_with(&AuRelation::from_rows(sensor_schema(), all));
    let fresh = fresh_session.subscribe(ROLLING).unwrap();
    assert!(
        live.value().normalize().bag_eq(&fresh.value().normalize()),
        "live subscription diverged from a fresh one over the same rows"
    );
}
