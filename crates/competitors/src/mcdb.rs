//! The MCDB baseline \[34\]: Monte-Carlo evaluation over sampled worlds.
//!
//! MCDB samples `S` possible worlds, runs the *deterministic* query on each
//! (here: the `audb-rel` engine — the same substrate the `Det` baseline
//! uses), and reports per-input-tuple result envelopes: the smallest and
//! largest answer observed across samples. As in the paper's evaluation,
//! these envelopes *under-approximate* the tight bounds (a sample may miss
//! extreme worlds), which is exactly what the recall metrics of Figs. 12/13
//! and 18/19 measure. `MCDB10` / `MCDB20` are `S = 10` / `S = 20`.
//!
//! Worlds are independent, so sampling is embarrassingly parallel: each
//! sample gets its own generator deterministically derived from `(seed,
//! sample index)` (`audb_par::par_run` fans the samples out across cores),
//! and the per-tuple envelopes are merged with commutative min/max folds —
//! results are identical regardless of thread count or schedule.

use audb_core::WinAgg;
use audb_rel::{sort_to_pos, window_rows, AggFunc, Relation, Tuple, Value, WindowSpec};
use audb_worlds::XTupleTable;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-input-tuple observed `[min, max]` sort positions across `samples`
/// sampled worlds (`None` = the tuple never appeared in any sample).
pub fn mcdb_sort_bounds(
    table: &XTupleTable,
    order: &[usize],
    samples: usize,
    seed: u64,
) -> Vec<Option<(u64, u64)>> {
    let id_col = table.schema.arity(); // provenance appended after the data
    let per_sample = audb_par::par_run(samples, |s| {
        let world = tagged_world(table, sample_rng(seed, s));
        let sorted = sort_to_pos(&world, order, "pos");
        let pos_col = sorted.schema.arity() - 1;
        sorted
            .rows
            .iter()
            .map(|row| {
                let id = row.tuple.get(id_col).as_i64().expect("provenance") as usize;
                let p = row.tuple.get(pos_col).as_i64().expect("position") as u64;
                (id, p)
            })
            .collect::<Vec<_>>()
    });
    let mut bounds: Vec<Option<(u64, u64)>> = vec![None; table.len()];
    for obs in per_sample {
        for (id, p) in obs {
            bounds[id] = Some(match bounds[id] {
                None => (p, p),
                Some((lo, hi)) => (lo.min(p), hi.max(p)),
            });
        }
    }
    bounds
}

/// Per-input-tuple observed `[min, max]` windowed aggregates across samples.
pub fn mcdb_window_bounds(
    table: &XTupleTable,
    order: &[usize],
    agg: WinAgg,
    l: i64,
    u: i64,
    samples: usize,
    seed: u64,
) -> Vec<Option<(Value, Value)>> {
    let id_col = table.schema.arity();
    let dagg = match agg {
        WinAgg::Sum(c) => AggFunc::Sum(c),
        WinAgg::Count => AggFunc::Count,
        WinAgg::Min(c) => AggFunc::Min(c),
        WinAgg::Max(c) => AggFunc::Max(c),
        WinAgg::Avg(c) => AggFunc::Avg(c),
    };
    let per_sample = audb_par::par_run(samples, |s| {
        let world = tagged_world(table, sample_rng(seed, s));
        let spec = WindowSpec::rows(order.to_vec(), l, u);
        let out = window_rows(&world, &spec, dagg, "x");
        let x_col = out.schema.arity() - 1;
        out.rows
            .iter()
            .map(|row| {
                let id = row.tuple.get(id_col).as_i64().expect("provenance") as usize;
                (id, row.tuple.get(x_col).clone())
            })
            .collect::<Vec<_>>()
    });
    let mut bounds: Vec<Option<(Value, Value)>> = vec![None; table.len()];
    for obs in per_sample {
        for (id, v) in obs {
            bounds[id] = Some(match bounds[id].take() {
                None => (v.clone(), v),
                Some((lo, hi)) => (lo.min(v.clone()), hi.max(v)),
            });
        }
    }
    bounds
}

/// MCDB top-k: how often each input tuple appeared in the deterministic
/// top-k across samples (frequency estimate of `Pr[t ∈ top-k]`).
pub fn mcdb_topk_frequencies(
    table: &XTupleTable,
    order: &[usize],
    k: u64,
    samples: usize,
    seed: u64,
) -> Vec<f64> {
    let id_col = table.schema.arity();
    let per_sample = audb_par::par_run(samples, |s| {
        let world = tagged_world(table, sample_rng(seed, s));
        let top = audb_rel::ops::sort::topk_with_pos(&world, order, k);
        top.rows
            .iter()
            .map(|row| row.tuple.get(id_col).as_i64().expect("provenance") as usize)
            .collect::<Vec<_>>()
    });
    let mut hits = vec![0usize; table.len()];
    for obs in per_sample {
        for id in obs {
            hits[id] += 1;
        }
    }
    hits.iter().map(|&h| h as f64 / samples as f64).collect()
}

/// The generator for sample `s`: derived from the user seed and the sample
/// index so every sample is reproducible independently of which thread
/// draws it (and of how many samples precede it).
fn sample_rng(seed: u64, s: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (s as u64).wrapping_mul(0x9E3779B97F4A7C15))
}

/// Realize one world with a trailing provenance column. The provenance sits
/// *after* every data attribute, so order-by indices are unchanged (it only
/// participates in the final tie-break, where it is harmless: distinct ids
/// only break ties between otherwise identical tuples).
fn tagged_world(table: &XTupleTable, mut rng: StdRng) -> Relation {
    let schema = table.schema.with("__xid");
    let rows = table
        .sample_world_tagged(&mut rng)
        .into_iter()
        .map(|(id, t)| (t.with(Value::Int(id as i64)), 1))
        .collect::<Vec<(Tuple, u64)>>();
    Relation::from_rows(schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_rel::Schema;
    use audb_worlds::{exact_position_bounds, XTuple};

    fn table() -> XTupleTable {
        XTupleTable::new(
            Schema::new(["k", "v"]),
            vec![
                XTuple::certain(Tuple::from([10i64, 1])),
                XTuple::uniform([Tuple::from([5i64, 2]), Tuple::from([25i64, 2])]),
                XTuple::certain(Tuple::from([20i64, 3])),
            ],
        )
    }

    /// MCDB envelopes are always contained in the exact tight bounds.
    #[test]
    fn sampled_positions_within_exact_bounds() {
        let t = table();
        let exact = exact_position_bounds(&t, &[0]);
        let mc = mcdb_sort_bounds(&t, &[0], 20, 7);
        for (i, b) in mc.iter().enumerate() {
            let (elo, ehi) = exact[i].unwrap();
            if let Some((lo, hi)) = b {
                assert!(
                    *lo >= elo && *hi <= ehi,
                    "tuple {i}: [{lo},{hi}] ⊄ [{elo},{ehi}]"
                );
            }
        }
    }

    /// With enough samples the envelope of a 2-alternative tuple converges
    /// to the exact bounds.
    #[test]
    fn envelopes_converge() {
        let t = table();
        let exact = exact_position_bounds(&t, &[0]);
        let mc = mcdb_sort_bounds(&t, &[0], 500, 3);
        assert_eq!(mc[1].unwrap(), exact[1].unwrap());
    }

    #[test]
    fn window_bounds_are_observed_values() {
        let t = table();
        let mc = mcdb_window_bounds(&t, &[0], WinAgg::Sum(1), -1, 0, 50, 11);
        // The certain tuple (k=10) has windows {1} (x2 at 25) or {2+1}
        // (x2 at 5): sums 1 or 3.
        let (lo, hi) = mc[0].clone().unwrap();
        assert_eq!(lo, Value::Int(1));
        assert_eq!(hi, Value::Int(3));
    }

    #[test]
    fn topk_frequencies_sum_reasonably() {
        let t = table();
        let f = mcdb_topk_frequencies(&t, &[0], 1, 400, 5);
        // Top-1 is x2 (k=5) half the time, else x1 (k=10).
        assert!((f[1] - 0.5).abs() < 0.1, "{f:?}");
        assert!((f[0] - 0.5).abs() < 0.1, "{f:?}");
        assert!(f[2] < 0.01);
    }
}
