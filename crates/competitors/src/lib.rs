//! # audb-competitors — the baselines of the paper's evaluation
//!
//! Every method the paper compares against, implemented from scratch over
//! the x-tuple model of `audb-worlds`:
//!
//! | paper name | here | nature |
//! |---|---|---|
//! | `MCDB` \[34\] | [`mcdb`] | Monte-Carlo over sampled worlds (10/20 samples); *under*-approximates bounds |
//! | `PT-k` \[32\] | [`ptk`] | exact `Pr[t ∈ top-k]` via Poisson-binomial DP; `PT(1)`/`PT(0)` = certain/possible answers |
//! | `Symb` \[12, 9\] | [`symb`] | exact bounds via symbolic-style reasoning (Z3 stand-in, see DESIGN.md §2) |
//! | U-Top / U-Rank \[56\] | [`ranks`] | most likely top-k sequence / per-rank winners (Fig. 1b/1c) |
//! | Global-Topk \[64\] | [`ranks::global_topk`] | k most likely top-k members |
//! | Expected rank \[19\] | [`ranks::expected_ranks`] | rank expectation ordering |
//!
//! The `Det` baseline is simply the `audb-rel` engine on the most likely
//! world ([`audb_worlds::XTupleTable::most_likely_world`]).

pub mod mcdb;
pub mod ptk;
pub mod ranks;
pub mod symb;

pub use mcdb::{mcdb_sort_bounds, mcdb_topk_frequencies, mcdb_window_bounds};
pub use ptk::{ptk_certain, ptk_possible, ptk_query, ptk_topk_probs};
pub use ranks::{expected_rank_topk, expected_ranks, global_topk, urank, utop};
pub use symb::{symb_sort_bounds, symb_window_bounds};
