//! The uncertain top-k semantics zoo of the paper's introduction and
//! related work (Fig. 1b–1e): U-Top \[56\], U-Rank \[56\], Global-Topk \[64\] and
//! Expected Rank \[19\]. Each picks a different trade-off; none simultaneously
//! reports certain *and* possible answers — the motivation for AU-DBs.

use crate::ptk::ptk_topk_probs;
use audb_rel::ops::sort::{topk_with_pos, total_order};
use audb_rel::Tuple;
use audb_worlds::{enumerate_worlds, XTupleTable};
use std::collections::HashMap;

/// U-Top \[56\]: the most likely top-k *sequence* (Fig. 1b). Computed exactly
/// by world enumeration — use only on small inputs (`cap` worlds).
pub fn utop(table: &XTupleTable, order: &[usize], k: u64, cap: u128) -> Vec<Tuple> {
    let worlds = enumerate_worlds(table, cap);
    let mut weights: HashMap<Vec<Tuple>, f64> = HashMap::new();
    for w in &worlds {
        let top = topk_with_pos(&w.relation, order, k);
        let arity = w.relation.schema.arity();
        let seq: Vec<Tuple> = top
            .rows
            .iter()
            .map(|r| r.tuple.project(&(0..arity).collect::<Vec<_>>()))
            .collect();
        *weights.entry(seq).or_insert(0.0) += w.prob;
    }
    // Exact weight ties happen (e.g. two coin-flip alternatives splitting a
    // podium); break them toward the lexicographically smallest sequence so
    // the answer doesn't depend on HashMap iteration order.
    weights
        .into_iter()
        .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
        .map(|(seq, _)| seq)
        .unwrap_or_default()
}

/// U-Rank \[56\]: for each rank `i < k`, the tuple most likely to occupy it
/// (Fig. 1c) — the same tuple may win several ranks. Exact `O(n² k A)` via
/// the Poisson-binomial DP (`Pr[t at rank i] = Pr[exactly i others precede]`).
pub fn urank(table: &XTupleTable, order: &[usize], k: u64) -> Vec<Option<usize>> {
    let total_idxs = total_order(table.schema.arity(), order);
    let n = table.len();
    let alt_keys: Vec<Vec<Tuple>> = table
        .tuples
        .iter()
        .map(|t| {
            t.alternatives
                .iter()
                .map(|a| a.tuple.project(&total_idxs))
                .collect()
        })
        .collect();

    // rank_prob[t][i] = Pr[t exists and exactly i others precede].
    let k = k as usize;
    let mut winners: Vec<Option<(usize, f64)>> = vec![None; k];
    for ti in 0..n {
        let mut at_rank = vec![0.0f64; k];
        for (ai, alt) in table.tuples[ti].alternatives.iter().enumerate() {
            if alt.prob <= 0.0 {
                continue;
            }
            let key = (&alt_keys[ti][ai], ti);
            let mut dp = vec![0.0f64; k + 1];
            dp[0] = 1.0;
            for u in 0..n {
                if u == ti {
                    continue;
                }
                let q: f64 = table.tuples[u]
                    .alternatives
                    .iter()
                    .zip(&alt_keys[u])
                    .filter(|&(_, uk)| (uk, u) < key)
                    .map(|(ua, _)| ua.prob)
                    .sum();
                if q <= 0.0 {
                    continue;
                }
                for j in (0..=k).rev() {
                    let from_prev = if j > 0 { dp[j - 1] * q } else { 0.0 };
                    dp[j] = if j == k {
                        dp[k] + from_prev
                    } else {
                        dp[j] * (1.0 - q) + from_prev
                    };
                }
            }
            for (i, r) in at_rank.iter_mut().enumerate() {
                *r += alt.prob * dp[i];
            }
        }
        for (i, &p) in at_rank.iter().enumerate() {
            if winners[i].is_none_or(|(_, best)| p > best) {
                winners[i] = Some((ti, p));
            }
        }
    }
    winners.into_iter().map(|w| w.map(|(t, _)| t)).collect()
}

/// Global-Topk \[64\]: the `k` tuples with the highest `Pr[t ∈ top-k]`
/// (ties broken by index).
pub fn global_topk(table: &XTupleTable, order: &[usize], k: u64) -> Vec<usize> {
    let probs = ptk_topk_probs(table, order, k);
    let mut idx: Vec<usize> = (0..table.len()).collect();
    idx.sort_by(|&a, &b| probs[b].total_cmp(&probs[a]).then(a.cmp(&b)));
    idx.truncate(k as usize);
    idx
}

/// Expected rank \[19\] (conditional on existence): `Σ_u Pr[u precedes t]`,
/// averaged over `t`'s alternatives. Returns the per-tuple expected rank;
/// the expected-rank top-k are the `k` smallest.
pub fn expected_ranks(table: &XTupleTable, order: &[usize]) -> Vec<f64> {
    let total_idxs = total_order(table.schema.arity(), order);
    let n = table.len();
    let alt_keys: Vec<Vec<Tuple>> = table
        .tuples
        .iter()
        .map(|t| {
            t.alternatives
                .iter()
                .map(|a| a.tuple.project(&total_idxs))
                .collect()
        })
        .collect();
    (0..n)
        .map(|ti| {
            let presence = table.tuples[ti].presence_prob();
            if presence <= 0.0 {
                return f64::INFINITY;
            }
            let mut er = 0.0;
            for (ai, alt) in table.tuples[ti].alternatives.iter().enumerate() {
                let key = (&alt_keys[ti][ai], ti);
                let preceding: f64 = (0..n)
                    .filter(|&u| u != ti)
                    .map(|u| {
                        table.tuples[u]
                            .alternatives
                            .iter()
                            .zip(&alt_keys[u])
                            .filter(|&(_, uk)| (uk, u) < key)
                            .map(|(ua, _)| ua.prob)
                            .sum::<f64>()
                    })
                    .sum();
                er += (alt.prob / presence) * preceding;
            }
            er
        })
        .collect()
}

/// Top-k under expected-rank semantics: the `k` tuples of smallest
/// expected rank.
pub fn expected_rank_topk(table: &XTupleTable, order: &[usize], k: u64) -> Vec<usize> {
    let er = expected_ranks(table, order);
    let mut idx: Vec<usize> = (0..table.len()).collect();
    idx.sort_by(|&a, &b| er[a].total_cmp(&er[b]).then(a.cmp(&b)));
    idx.truncate(k as usize);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_rel::Schema;
    use audb_worlds::XTuple;

    fn certain_table() -> XTupleTable {
        XTupleTable::new(
            Schema::new(["s"]),
            (0..4)
                .map(|i: i64| XTuple::certain(Tuple::from([i * 10])))
                .collect(),
        )
    }

    #[test]
    fn all_semantics_agree_on_certain_data() {
        let t = certain_table();
        assert_eq!(global_topk(&t, &[0], 2), vec![0, 1]);
        assert_eq!(expected_rank_topk(&t, &[0], 2), vec![0, 1]);
        assert_eq!(urank(&t, &[0], 2), vec![Some(0), Some(1)]);
        let seq = utop(&t, &[0], 2, 10);
        assert_eq!(seq.len(), 2);
        assert_eq!(seq[0], Tuple::from([0i64]));
    }

    #[test]
    fn urank_can_repeat_a_tuple() {
        // Paper Fig. 1c: the same element may be the most likely at several
        // ranks. x0 is very likely tiny; x1 certainly 5; x2 mostly absent.
        let t = XTupleTable::new(
            Schema::new(["s"]),
            vec![
                XTuple::uniform([Tuple::from([1i64]), Tuple::from([9i64])]),
                XTuple::new(vec![audb_worlds::Alternative {
                    tuple: Tuple::from([5i64]),
                    prob: 0.4,
                }]),
            ],
        );
        let r = urank(&t, &[0], 2);
        // Rank 0: x0 (prob 0.5·1 + ... ≥ x1's 0.4·0.5); rank 1 contested.
        assert_eq!(r[0], Some(0));
    }

    #[test]
    fn expected_ranks_order_by_dominance() {
        let t = XTupleTable::new(
            Schema::new(["s"]),
            vec![
                XTuple::uniform([Tuple::from([1i64]), Tuple::from([3i64])]),
                XTuple::certain(Tuple::from([10i64])),
            ],
        );
        let er = expected_ranks(&t, &[0]);
        assert!(er[0] < er[1]);
        assert_eq!(er[1], 1.0);
    }
}
