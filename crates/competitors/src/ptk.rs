//! Probabilistic Threshold Top-k (PT-k, Hua et al. \[32\]).
//!
//! PT-k returns every tuple whose probability of being among the top-k
//! exceeds a threshold `p`. With `p = 1` this is the set of *certain*
//! answers, with `p → 0` the set of *possible* answers (paper Fig. 1d/1e) —
//! the configuration used as the exact competitor in Sec. 9.
//!
//! For a block-independent table, `Pr[t ∈ top-k]` decomposes over `t`'s
//! alternatives: conditioned on `t` realizing alternative `a`, every other
//! x-tuple independently precedes `t` with probability `q_u(a)` (the mass
//! of `u`'s alternatives ordered before `a`), and `t` is in the top-k iff
//! fewer than `k` others precede it — a Poisson-binomial tail evaluated by
//! the standard `O(n·k)` dynamic program. Total cost `O(n² · k · A)`:
//! exact, and deliberately expensive (this is the slow exact baseline of
//! Figs. 14/17).

use audb_rel::ops::sort::total_order;
use audb_rel::Tuple;
use audb_worlds::XTupleTable;

/// `Pr[tuple ∈ top-k]` for every x-tuple, ascending order on `order`.
pub fn ptk_topk_probs(table: &XTupleTable, order: &[usize], k: u64) -> Vec<f64> {
    let total_idxs = total_order(table.schema.arity(), order);
    let n = table.len();
    // Pre-project every alternative's key once.
    let alt_keys: Vec<Vec<Tuple>> = table
        .tuples
        .iter()
        .map(|t| {
            t.alternatives
                .iter()
                .map(|a| a.tuple.project(&total_idxs))
                .collect()
        })
        .collect();

    (0..n)
        .map(|ti| {
            let mut prob = 0.0;
            for (ai, alt) in table.tuples[ti].alternatives.iter().enumerate() {
                if alt.prob <= 0.0 {
                    continue;
                }
                let key = (&alt_keys[ti][ai], ti);
                // q_u = Pr[u strictly precedes t | t = alt].
                let qs = (0..n).filter(|&u| u != ti).map(|u| {
                    table.tuples[u]
                        .alternatives
                        .iter()
                        .zip(&alt_keys[u])
                        .filter(|&(_, uk)| (uk, u) < key)
                        .map(|(ua, _)| ua.prob)
                        .sum::<f64>()
                });
                prob += alt.prob * poisson_binomial_tail(qs, k);
            }
            prob
        })
        .collect()
}

/// `Pr[fewer than k of the given independent events occur]`.
fn poisson_binomial_tail(qs: impl Iterator<Item = f64>, k: u64) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let k = k as usize;
    // dp[j] = Pr[exactly j events so far], truncated at j = k (once k
    // others precede, the tuple is out regardless of the rest).
    let mut dp = vec![0.0f64; k + 1];
    dp[0] = 1.0;
    for q in qs {
        if q <= 0.0 {
            continue;
        }
        for j in (0..=k).rev() {
            let from_prev = if j > 0 { dp[j - 1] * q } else { 0.0 };
            dp[j] = if j == k {
                dp[k] + from_prev // the ≥k bucket absorbs and never leaves
            } else {
                dp[j] * (1.0 - q) + from_prev
            };
        }
    }
    dp[..k].iter().sum()
}

/// The PT-k answer: indices of tuples with `Pr[t ∈ top-k] ≥ threshold`.
pub fn ptk_query(table: &XTupleTable, order: &[usize], k: u64, threshold: f64) -> Vec<usize> {
    ptk_topk_probs(table, order, k)
        .into_iter()
        .enumerate()
        .filter(|&(_, p)| p >= threshold)
        .map(|(i, _)| i)
        .collect()
}

/// Certain top-k answers (`PT(1)`, numerically `p ≥ 1 − ε`).
pub fn ptk_certain(table: &XTupleTable, order: &[usize], k: u64) -> Vec<usize> {
    ptk_query(table, order, k, 1.0 - 1e-9)
}

/// Possible top-k answers (`PT(0⁺)`).
pub fn ptk_possible(table: &XTupleTable, order: &[usize], k: u64) -> Vec<usize> {
    ptk_query(table, order, k, 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_rel::{ops::sort::topk_with_pos, Schema, Value};
    use audb_worlds::{enumerate_worlds, XTuple};

    fn table() -> XTupleTable {
        // Fig. 1-like: three uncertain terms racing for the top.
        XTupleTable::new(
            Schema::new(["score"]),
            vec![
                XTuple::uniform([Tuple::from([2i64]), Tuple::from([3i64])]),
                XTuple::certain(Tuple::from([5i64])),
                XTuple::uniform([Tuple::from([1i64]), Tuple::from([6i64])]),
            ],
        )
    }

    /// The DP must agree with brute-force world enumeration.
    #[test]
    fn probabilities_match_enumeration() {
        let t = table();
        for k in 1..=3u64 {
            let probs = ptk_topk_probs(&t, &[0], k);
            let worlds = enumerate_worlds(&t, 1000);
            for (i, p) in probs.iter().enumerate() {
                let mut truth = 0.0;
                for w in &worlds {
                    let Some(ai) = w.choices[i] else { continue };
                    let realized = &t.tuples[i].alternatives[ai].tuple;
                    let top = topk_with_pos(&w.relation, &[0], k);
                    let hit = top.rows.iter().any(|r| &r.tuple.project(&[0]) == realized);
                    if hit {
                        truth += w.prob;
                    }
                }
                assert!(
                    (p - truth).abs() < 1e-9,
                    "tuple {i}, k={k}: dp={p} enum={truth}"
                );
            }
        }
    }

    #[test]
    fn thresholds_generalize_certain_and_possible() {
        let t = table();
        // k=1 ascending: the winner is whoever has the smallest score.
        let certain = ptk_certain(&t, &[0], 1);
        let possible = ptk_possible(&t, &[0], 1);
        // No tuple is certainly rank-0 (x0 at 2/3, x2 at 1/6 compete).
        assert!(certain.is_empty(), "{certain:?}");
        // x0 (score ≤ 3 < 5) and x2 (score 1) can be first; x1 (5) can be
        // first only if... x0 always exists with score ≤ 3 < 5, so never.
        assert_eq!(possible, vec![0, 2]);
    }

    #[test]
    fn certain_table_degenerates_to_deterministic_topk() {
        let t = XTupleTable::new(
            Schema::new(["s"]),
            (0..5)
                .map(|i| XTuple::certain(Tuple::new([Value::Int(i * 10)])))
                .collect(),
        );
        let certain = ptk_certain(&t, &[0], 2);
        assert_eq!(certain, vec![0, 1]);
        assert_eq!(ptk_possible(&t, &[0], 2), vec![0, 1]);
    }
}
