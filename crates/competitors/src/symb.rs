//! The `Symb` baseline: exact certain/possible bounds from a symbolic-style
//! computation.
//!
//! The paper encodes ranks and aggregates as symbolic expressions and asks
//! Z3 for tight bounds — exact, but orders of magnitude slower than the
//! AU-DB operators, and infeasible beyond ~1k rows for windows. Our
//! stand-in preserves both properties (DESIGN.md §2):
//!
//! * [`symb_sort_bounds`] reasons per tuple over all pairwise precedence
//!   possibilities — a generic `O(n²·A²)` computation that yields *tight*
//!   position bounds (the same values as the closed form in
//!   `audb_worlds::exact`, which is what we test it against);
//! * [`symb_window_bounds`] delegates to the capped local enumeration of
//!   [`audb_worlds::exact_window_bounds`] — exact, exponential in local
//!   uncertainty, and prone to blowing its budget exactly like Z3 blew its
//!   stack in the paper's Fig. 15 setup.

use audb_core::WinAgg;
use audb_rel::ops::sort::total_order;
use audb_rel::Tuple;
use audb_worlds::{exact_window_bounds, WindowTruth, XTupleTable};

/// Tight `[pos_min, pos_max]` per tuple by pairwise precedence reasoning
/// (deliberately generic and quadratic — the exact-competitor cost profile).
pub fn symb_sort_bounds(table: &XTupleTable, order: &[usize]) -> Vec<Option<(u64, u64)>> {
    let total_idxs = total_order(table.schema.arity(), order);
    let n = table.len();
    let alt_keys: Vec<Vec<Tuple>> = table
        .tuples
        .iter()
        .map(|t| {
            t.alternatives
                .iter()
                .map(|a| a.tuple.project(&total_idxs))
                .collect()
        })
        .collect();

    (0..n)
        .map(|ti| {
            if alt_keys[ti].is_empty() {
                return None;
            }
            let (mut lo, mut hi) = (0u64, 0u64);
            for u in 0..n {
                if u == ti {
                    continue;
                }
                if alt_keys[u].is_empty() {
                    continue;
                }
                // u unavoidably precedes ti iff u always exists and every
                // (u-alt, ti-alt) pair orders u strictly first; u possibly
                // precedes iff some pair does. Key ties count as neither
                // (consistent with the strict corner comparisons of the
                // interval-lex semantics and `exact_position_bounds`).
                let mut always = table.tuples[u].certainly_exists();
                let mut sometimes = false;
                for (uai, uk) in alt_keys[u].iter().enumerate() {
                    let up = table.tuples[u].alternatives[uai].prob;
                    if up <= 0.0 {
                        continue;
                    }
                    for tk in &alt_keys[ti] {
                        if uk < tk {
                            sometimes = true;
                        } else {
                            always = false;
                        }
                    }
                }
                if always {
                    lo += 1;
                }
                if sometimes {
                    hi += 1;
                }
            }
            Some((lo, hi))
        })
        .collect()
}

/// Tight window-aggregate bounds (exact local enumeration, capped).
/// Returns `None` for tuples without alternatives, [`WindowTruth::Skipped`]
/// when the local neighbourhood exceeds `enum_cap` joint outcomes.
pub fn symb_window_bounds(
    table: &XTupleTable,
    order: &[usize],
    agg: WinAgg,
    l: i64,
    u: i64,
    enum_cap: u128,
) -> Vec<Option<WindowTruth>> {
    exact_window_bounds(table, order, agg, l, u, enum_cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_rel::Schema;
    use audb_worlds::{exact_position_bounds, XTuple};

    fn table() -> XTupleTable {
        XTupleTable::new(
            Schema::new(["k"]),
            vec![
                XTuple::certain(Tuple::from([10i64])),
                XTuple::uniform([Tuple::from([5i64]), Tuple::from([15i64])]),
                XTuple::new(vec![audb_worlds::Alternative {
                    tuple: Tuple::from([12i64]),
                    prob: 0.5,
                }]),
                XTuple::certain(Tuple::from([20i64])),
            ],
        )
    }

    /// The pairwise symbolic computation reproduces the closed-form tight
    /// bounds exactly.
    #[test]
    fn agrees_with_closed_form() {
        let t = table();
        assert_eq!(symb_sort_bounds(&t, &[0]), exact_position_bounds(&t, &[0]));
    }
}
