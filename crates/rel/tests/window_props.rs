//! Property tests for the deterministic engine: the optimized windowed
//! aggregation (prefix sums / monotonic deques) must agree with a
//! brute-force evaluation of the Fig. 3 semantics, and the algebraic
//! operators must satisfy the K-relation laws.

use audb_rel::{
    aggregate, difference, select, union, window_range, window_rows, AggFunc, Expr,
    RangeWindowSpec, Relation, Schema, Tuple, Value, WindowSpec,
};
use proptest::prelude::*;

fn relation_strategy() -> impl Strategy<Value = Relation> {
    proptest::collection::vec(((0i64..20, -10i64..10), 1u64..3), 0..12).prop_map(|rows| {
        Relation::from_rows(
            Schema::new(["o", "v"]),
            rows.into_iter().map(|((o, v), m)| (Tuple::from([o, v]), m)),
        )
    })
}

/// Direct quadratic implementation of Fig. 3 row windows.
fn brute_window(rel: &Relation, l: i64, u: i64, f: AggFunc) -> Relation {
    let mut expanded: Vec<&Tuple> = Vec::new();
    for row in &rel.rows {
        for _ in 0..row.mult {
            expanded.push(&row.tuple);
        }
    }
    expanded.sort();
    let n = expanded.len() as i64;
    let mut out = Relation::empty(rel.schema.with("x"));
    for (i, t) in expanded.iter().enumerate() {
        let lo = (i as i64 + l).max(0);
        let hi = (i as i64 + u).min(n - 1);
        let slice: Vec<&Value> = (lo..=hi)
            .filter(|_| lo <= hi)
            .map(|j| expanded[j as usize].get(1))
            .collect();
        let val = match f {
            AggFunc::Sum(_) => {
                if slice.is_empty() {
                    Value::Null
                } else {
                    slice.iter().fold(Value::Int(0), |a, v| a.add(v))
                }
            }
            AggFunc::Count => Value::Int(slice.len() as i64),
            AggFunc::Min(_) => slice
                .iter()
                .min()
                .map(|v| (*v).clone())
                .unwrap_or(Value::Null),
            AggFunc::Max(_) => slice
                .iter()
                .max()
                .map(|v| (*v).clone())
                .unwrap_or(Value::Null),
            AggFunc::Avg(_) => unreachable!(),
        };
        out.push(t.with(val), 1);
    }
    out.normalize()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn window_rows_matches_bruteforce(
        rel in relation_strategy(),
        lu in prop_oneof![Just((-2i64, 0i64)), Just((0, 2)), Just((-1, 1)), Just((-4, -1)), Just((1, 3))],
        f in prop_oneof![Just(AggFunc::Sum(1)), Just(AggFunc::Count), Just(AggFunc::Min(1)), Just(AggFunc::Max(1))],
    ) {
        let (l, u) = lu;
        let spec = WindowSpec::rows(vec![0], l, u);
        let fast = window_rows(&rel, &spec, f, "x");
        let brute = brute_window(&rel, l, u, f);
        prop_assert!(fast.bag_eq(&brute), "l={l} u={u} f={f:?}\nfast:\n{fast}\nbrute:\n{brute}");
    }

    #[test]
    fn range_window_matches_filter_definition(rel in relation_strategy(), w in 0i64..5) {
        let spec = RangeWindowSpec::new(0, -w, w);
        let out = window_range(&rel, &spec, AggFunc::Sum(1), "x");
        // Definition: sum over tuples with |o' − o| ≤ w, weighted by mult.
        for row in &rel.rows {
            if row.mult == 0 { continue; }
            let o = row.tuple.get(0).as_i64().unwrap();
            let expected: i64 = rel
                .rows
                .iter()
                .filter(|r| {
                    let k = r.tuple.get(0).as_i64().unwrap();
                    k >= o - w && k <= o + w
                })
                .map(|r| r.tuple.get(1).as_i64().unwrap() * r.mult as i64)
                .sum();
            let t = row.tuple.with(Value::Int(expected));
            prop_assert!(out.mult_of(&t) >= row.mult, "o={o} w={w}\n{out}");
        }
    }

    /// Semiring laws observable through the operators: union commutes,
    /// selection distributes over union, difference is monus.
    #[test]
    fn algebraic_laws(a in relation_strategy(), b in relation_strategy()) {
        prop_assert!(union(&a, &b).bag_eq(&union(&b, &a)));
        let p = Expr::col(1).lt(Expr::lit(0));
        let lhs = select(&union(&a, &b), &p);
        let rhs = union(&select(&a, &p), &select(&b, &p));
        prop_assert!(lhs.bag_eq(&rhs));
        // (A − B) has multiplicity max(0, A(t) − B(t)).
        let d = difference(&a, &b);
        for row in &a.clone().normalize().rows {
            let expect = row.mult.saturating_sub(b.mult_of(&row.tuple));
            prop_assert_eq!(d.mult_of(&row.tuple), expect);
        }
    }

    /// Aggregation totals: sum of group counts equals total multiplicity.
    #[test]
    fn aggregate_count_partitions(rel in relation_strategy()) {
        let out = aggregate(&rel, &[0], &[(AggFunc::Count, "n")]);
        let total: i64 = out
            .rows
            .iter()
            .map(|r| r.tuple.get(1).as_i64().unwrap())
            .sum();
        prop_assert_eq!(total as u64, rel.total_mult());
    }
}
