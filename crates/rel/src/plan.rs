//! Logical query plans: a composable algebra tree over the engine's
//! operators, with an `EXPLAIN`-style rendering and a small rule-based
//! optimizer (selection fusion and pushdown).
//!
//! The SQL-rewrite method of the paper (Sec. 7) compiles uncertain sorting
//! and windowed aggregation into trees of ordinary relational operators;
//! this module is the shape such trees take over the `audb-rel` engine, and
//! it doubles as a convenient way to compose deterministic queries in
//! examples and tests.

use crate::expr::Expr;
use crate::ops::aggregate::{aggregate, AggFunc};
use crate::ops::join::join;
use crate::ops::project::project;
use crate::ops::select::select;
use crate::ops::sort::{sort_to_pos, topk_with_pos};
use crate::ops::union::{difference, union};
use crate::ops::window::{window_rows, WindowSpec};
use crate::relation::Relation;
use crate::schema::Schema;
use std::fmt;
use std::sync::Arc;

/// A logical plan node. Build fluently with the methods on this type, then
/// [`LogicalPlan::execute`].
#[derive(Clone, Debug)]
pub enum LogicalPlan {
    /// A base relation (inline data).
    Scan {
        /// Display name.
        name: String,
        /// The data (shared so plans clone cheaply).
        relation: Arc<Relation>,
    },
    /// `σ_pred(input)`.
    Select {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// The predicate.
        pred: Expr,
    },
    /// Generalized projection.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Output expressions with names.
        exprs: Vec<(Expr, String)>,
    },
    /// Theta join.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join predicate over the concatenated schema.
        theta: Expr,
    },
    /// Bag union.
    Union {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// Bag difference (monus).
    Difference {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// Grouping aggregation.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-by column indices.
        group: Vec<usize>,
        /// Aggregates with output names.
        aggs: Vec<(AggFunc, String)>,
    },
    /// Row-based windowed aggregation (paper Fig. 3).
    Window {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// The window specification.
        spec: WindowSpec,
        /// The aggregate.
        agg: AggFunc,
        /// Output column name.
        out: String,
    },
    /// Sort-to-position (paper Def. 1).
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Order-by column indices.
        order: Vec<usize>,
        /// Name of the position column.
        pos_name: String,
    },
    /// Top-k (first `k` rows under the order, position retained).
    Limit {
        /// Input plan (must be a `Sort` conceptually; here any plan with an
        /// order specification).
        input: Box<LogicalPlan>,
        /// Order-by column indices.
        order: Vec<usize>,
        /// How many rows to keep.
        k: u64,
    },
}

impl LogicalPlan {
    /// Start a plan from a relation.
    pub fn scan(name: impl Into<String>, relation: Relation) -> Self {
        LogicalPlan::Scan {
            name: name.into(),
            relation: Arc::new(relation),
        }
    }

    /// `σ_pred`.
    pub fn select(self, pred: Expr) -> Self {
        LogicalPlan::Select {
            input: Box::new(self),
            pred,
        }
    }

    /// `π_exprs`.
    pub fn project(self, exprs: Vec<(Expr, &str)>) -> Self {
        LogicalPlan::Project {
            input: Box::new(self),
            exprs: exprs.into_iter().map(|(e, n)| (e, n.to_string())).collect(),
        }
    }

    /// `⋈_theta`.
    pub fn join(self, right: LogicalPlan, theta: Expr) -> Self {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            theta,
        }
    }

    /// `∪`.
    pub fn union(self, right: LogicalPlan) -> Self {
        LogicalPlan::Union {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Bag difference.
    pub fn difference(self, right: LogicalPlan) -> Self {
        LogicalPlan::Difference {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// `γ_{group; aggs}`.
    pub fn aggregate(self, group: Vec<usize>, aggs: Vec<(AggFunc, &str)>) -> Self {
        LogicalPlan::Aggregate {
            input: Box::new(self),
            group,
            aggs: aggs.into_iter().map(|(f, n)| (f, n.to_string())).collect(),
        }
    }

    /// `ω[l,u]`.
    pub fn window(self, spec: WindowSpec, agg: AggFunc, out: &str) -> Self {
        LogicalPlan::Window {
            input: Box::new(self),
            spec,
            agg,
            out: out.to_string(),
        }
    }

    /// `sort_{O→τ}`.
    pub fn sort(self, order: Vec<usize>, pos_name: &str) -> Self {
        LogicalPlan::Sort {
            input: Box::new(self),
            order,
            pos_name: pos_name.to_string(),
        }
    }

    /// Top-k.
    pub fn limit(self, order: Vec<usize>, k: u64) -> Self {
        LogicalPlan::Limit {
            input: Box::new(self),
            order,
            k,
        }
    }

    /// The output schema of this plan.
    pub fn schema(&self) -> Schema {
        match self {
            LogicalPlan::Scan { relation, .. } => relation.schema.clone(),
            LogicalPlan::Select { input, .. } => input.schema(),
            LogicalPlan::Project { exprs, .. } => Schema::new(exprs.iter().map(|(_, n)| n.clone())),
            LogicalPlan::Join { left, right, .. } => left.schema().concat(&right.schema()),
            LogicalPlan::Union { left, .. } | LogicalPlan::Difference { left, .. } => left.schema(),
            LogicalPlan::Aggregate { input, group, aggs } => {
                let in_schema = input.schema();
                let mut cols: Vec<String> =
                    group.iter().map(|&i| in_schema.cols()[i].clone()).collect();
                cols.extend(aggs.iter().map(|(_, n)| n.clone()));
                Schema::new(cols)
            }
            LogicalPlan::Window { input, out, .. } => input.schema().with(out.clone()),
            LogicalPlan::Sort {
                input, pos_name, ..
            } => input.schema().with(pos_name.clone()),
            LogicalPlan::Limit { input, .. } => input.schema().with("pos"),
        }
    }

    /// Evaluate the plan bottom-up.
    pub fn execute(&self) -> Relation {
        match self {
            LogicalPlan::Scan { relation, .. } => (**relation).clone(),
            LogicalPlan::Select { input, pred } => select(&input.execute(), pred),
            LogicalPlan::Project { input, exprs } => {
                let borrowed: Vec<(Expr, &str)> =
                    exprs.iter().map(|(e, n)| (e.clone(), n.as_str())).collect();
                project(&input.execute(), &borrowed)
            }
            LogicalPlan::Join { left, right, theta } => {
                join(&left.execute(), &right.execute(), theta)
            }
            LogicalPlan::Union { left, right } => union(&left.execute(), &right.execute()),
            LogicalPlan::Difference { left, right } => {
                difference(&left.execute(), &right.execute())
            }
            LogicalPlan::Aggregate { input, group, aggs } => {
                let borrowed: Vec<(AggFunc, &str)> =
                    aggs.iter().map(|(f, n)| (*f, n.as_str())).collect();
                aggregate(&input.execute(), group, &borrowed)
            }
            LogicalPlan::Window {
                input,
                spec,
                agg,
                out,
            } => window_rows(&input.execute(), spec, *agg, out),
            LogicalPlan::Sort {
                input,
                order,
                pos_name,
            } => sort_to_pos(&input.execute(), order, pos_name),
            LogicalPlan::Limit { input, order, k } => topk_with_pos(&input.execute(), order, *k),
        }
    }

    /// Columns referenced by an expression.
    fn expr_cols(e: &Expr, out: &mut Vec<usize>) {
        match e {
            Expr::Col(i) => out.push(*i),
            Expr::Lit(_) => {}
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Cmp(_, a, b) => {
                Self::expr_cols(a, out);
                Self::expr_cols(b, out);
            }
            Expr::Neg(a) | Expr::Not(a) => Self::expr_cols(a, out),
            Expr::If(c, a, b) => {
                Self::expr_cols(c, out);
                Self::expr_cols(a, out);
                Self::expr_cols(b, out);
            }
        }
    }

    /// Rule-based optimization: fuse stacked selections and push selections
    /// through unions and into the applicable side of a join. Semantics
    /// preserving (property-tested).
    pub fn optimize(self) -> LogicalPlan {
        match self {
            LogicalPlan::Select { input, pred } => {
                let input = input.optimize();
                match input {
                    // σ_p(σ_q(R)) → σ_{p ∧ q}(R)
                    LogicalPlan::Select {
                        input: inner,
                        pred: q,
                    } => LogicalPlan::Select {
                        input: inner,
                        pred: pred.and(q),
                    }
                    .optimize(),
                    // σ_p(R ∪ S) → σ_p(R) ∪ σ_p(S)
                    LogicalPlan::Union { left, right } => LogicalPlan::Union {
                        left: Box::new(left.select(pred.clone()).optimize()),
                        right: Box::new(right.select(pred).optimize()),
                    },
                    // σ_p(R ⋈ S) → σ_p-on-one-side pushed when columns allow.
                    LogicalPlan::Join { left, right, theta } => {
                        let lar = left.schema().arity();
                        let mut cols = Vec::new();
                        Self::expr_cols(&pred, &mut cols);
                        if cols.iter().all(|&c| c < lar) {
                            LogicalPlan::Join {
                                left: Box::new(left.select(pred).optimize()),
                                right,
                                theta,
                            }
                        } else if cols.iter().all(|&c| c >= lar) {
                            let shifted = shift_expr(&pred, -(lar as i64));
                            LogicalPlan::Join {
                                left,
                                right: Box::new(right.select(shifted).optimize()),
                                theta,
                            }
                        } else {
                            LogicalPlan::Select {
                                input: Box::new(LogicalPlan::Join { left, right, theta }),
                                pred,
                            }
                        }
                    }
                    other => LogicalPlan::Select {
                        input: Box::new(other),
                        pred,
                    },
                }
            }
            LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
                input: Box::new(input.optimize()),
                exprs,
            },
            LogicalPlan::Join { left, right, theta } => LogicalPlan::Join {
                left: Box::new(left.optimize()),
                right: Box::new(right.optimize()),
                theta,
            },
            LogicalPlan::Union { left, right } => LogicalPlan::Union {
                left: Box::new(left.optimize()),
                right: Box::new(right.optimize()),
            },
            LogicalPlan::Difference { left, right } => LogicalPlan::Difference {
                left: Box::new(left.optimize()),
                right: Box::new(right.optimize()),
            },
            LogicalPlan::Aggregate { input, group, aggs } => LogicalPlan::Aggregate {
                input: Box::new(input.optimize()),
                group,
                aggs,
            },
            LogicalPlan::Window {
                input,
                spec,
                agg,
                out,
            } => LogicalPlan::Window {
                input: Box::new(input.optimize()),
                spec,
                agg,
                out,
            },
            LogicalPlan::Sort {
                input,
                order,
                pos_name,
            } => LogicalPlan::Sort {
                input: Box::new(input.optimize()),
                order,
                pos_name,
            },
            LogicalPlan::Limit { input, order, k } => LogicalPlan::Limit {
                input: Box::new(input.optimize()),
                order,
                k,
            },
            leaf @ LogicalPlan::Scan { .. } => leaf,
        }
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let line = match self {
            LogicalPlan::Scan { name, relation } => {
                format!("Scan {name} {} [{} rows]", relation.schema, relation.len())
            }
            LogicalPlan::Select { .. } => "Select".to_string(),
            LogicalPlan::Project { exprs, .. } => format!(
                "Project [{}]",
                exprs
                    .iter()
                    .map(|(_, n)| n.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            LogicalPlan::Join { .. } => "Join".to_string(),
            LogicalPlan::Union { .. } => "Union".to_string(),
            LogicalPlan::Difference { .. } => "Difference".to_string(),
            LogicalPlan::Aggregate { group, aggs, .. } => {
                format!("Aggregate group={group:?} aggs={}", aggs.len())
            }
            LogicalPlan::Window { spec, out, .. } => {
                format!("Window [{}, {}] -> {out}", spec.lower, spec.upper)
            }
            LogicalPlan::Sort { order, .. } => format!("Sort {order:?}"),
            LogicalPlan::Limit { k, .. } => format!("Limit {k}"),
        };
        out.push_str(&pad);
        out.push_str(&line);
        out.push('\n');
        match self {
            LogicalPlan::Scan { .. } => {}
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Window { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.explain_into(depth + 1, out),
            LogicalPlan::Join { left, right, .. }
            | LogicalPlan::Union { left, right }
            | LogicalPlan::Difference { left, right } => {
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
        }
    }
}

/// Shift every column reference by `delta` (used when pushing a predicate
/// below a join into the right input).
fn shift_expr(e: &Expr, delta: i64) -> Expr {
    match e {
        Expr::Col(i) => Expr::Col((*i as i64 + delta) as usize),
        Expr::Lit(v) => Expr::Lit(v.clone()),
        Expr::Add(a, b) => Expr::Add(
            Box::new(shift_expr(a, delta)),
            Box::new(shift_expr(b, delta)),
        ),
        Expr::Sub(a, b) => Expr::Sub(
            Box::new(shift_expr(a, delta)),
            Box::new(shift_expr(b, delta)),
        ),
        Expr::Mul(a, b) => Expr::Mul(
            Box::new(shift_expr(a, delta)),
            Box::new(shift_expr(b, delta)),
        ),
        Expr::Div(a, b) => Expr::Div(
            Box::new(shift_expr(a, delta)),
            Box::new(shift_expr(b, delta)),
        ),
        Expr::Neg(a) => Expr::Neg(Box::new(shift_expr(a, delta))),
        Expr::Cmp(op, a, b) => Expr::Cmp(
            *op,
            Box::new(shift_expr(a, delta)),
            Box::new(shift_expr(b, delta)),
        ),
        Expr::And(a, b) => Expr::And(
            Box::new(shift_expr(a, delta)),
            Box::new(shift_expr(b, delta)),
        ),
        Expr::Or(a, b) => Expr::Or(
            Box::new(shift_expr(a, delta)),
            Box::new(shift_expr(b, delta)),
        ),
        Expr::Not(a) => Expr::Not(Box::new(shift_expr(a, delta))),
        Expr::If(c, a, b) => Expr::If(
            Box::new(shift_expr(c, delta)),
            Box::new(shift_expr(a, delta)),
            Box::new(shift_expr(b, delta)),
        ),
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.explain_into(0, &mut s);
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use crate::Tuple;

    fn sales() -> Relation {
        Relation::from_values(
            Schema::new(["region", "amount"]),
            [[1i64, 100], [1, 50], [2, 200], [2, 10], [3, 70]],
        )
    }

    #[test]
    fn plan_matches_direct_operator_calls() {
        let plan = LogicalPlan::scan("sales", sales())
            .select(Expr::col(1).cmp(crate::CmpOp::Ge, Expr::lit(50)))
            .aggregate(vec![0], vec![(AggFunc::Sum(1), "total")]);
        let got = plan.execute();
        let direct = aggregate(
            &select(&sales(), &Expr::col(1).cmp(crate::CmpOp::Ge, Expr::lit(50))),
            &[0],
            &[(AggFunc::Sum(1), "total")],
        );
        assert!(got.bag_eq(&direct));
    }

    #[test]
    fn optimization_preserves_semantics() {
        let left = LogicalPlan::scan("l", sales());
        let right = LogicalPlan::scan("r", sales());
        let plan = left
            .join(right, Expr::col(0).eq(Expr::col(2)))
            .select(Expr::col(1).cmp(crate::CmpOp::Gt, Expr::lit(40)))
            .select(Expr::col(3).cmp(crate::CmpOp::Gt, Expr::lit(40)));
        let plain = plan.execute();
        let optimized_plan = plan.optimize();
        let optimized = optimized_plan.execute();
        assert!(plain.bag_eq(&optimized), "{plain}\nvs\n{optimized}");
        // The selections should now sit below the join.
        let explained = optimized_plan.to_string();
        let join_line = explained.lines().position(|l| l.contains("Join")).unwrap();
        let select_lines: Vec<usize> = explained
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains("Select"))
            .map(|(i, _)| i)
            .collect();
        assert!(
            select_lines.iter().all(|&i| i > join_line),
            "selections not pushed below join:\n{explained}"
        );
    }

    #[test]
    fn select_fusion() {
        let plan = LogicalPlan::scan("s", sales())
            .select(Expr::col(0).eq(Expr::lit(1)))
            .select(Expr::col(1).cmp(crate::CmpOp::Gt, Expr::lit(60)))
            .optimize();
        // One fused Select over the scan.
        let s = plan.to_string();
        assert_eq!(s.matches("Select").count(), 1, "{s}");
        let out = plan.execute();
        assert_eq!(out.total_mult(), 1);
        assert_eq!(out.rows[0].tuple, Tuple::from([1i64, 100]));
    }

    #[test]
    fn union_pushdown() {
        let plan = LogicalPlan::scan("a", sales())
            .union(LogicalPlan::scan("b", sales()))
            .select(Expr::col(0).eq(Expr::lit(2)))
            .optimize();
        let s = plan.to_string();
        // Selection duplicated into both branches.
        assert_eq!(s.matches("Select").count(), 2, "{s}");
        assert_eq!(plan.execute().total_mult(), 4);
    }

    #[test]
    fn window_and_limit_in_plans() {
        let plan = LogicalPlan::scan("s", sales())
            .window(WindowSpec::rows(vec![1], -1, 0), AggFunc::Sum(1), "rolling")
            .limit(vec![1], 2);
        let out = plan.execute();
        assert_eq!(out.total_mult(), 2);
        assert_eq!(out.schema.cols().last().unwrap(), "pos");
    }

    #[test]
    fn explain_renders_tree() {
        let plan = LogicalPlan::scan("s", sales())
            .select(Expr::col(0).eq(Expr::lit(1)))
            .project(vec![(Expr::col(1), "amount")]);
        let s = plan.to_string();
        assert!(s.starts_with("Project"));
        assert!(s.contains("Scan s"));
    }

    #[test]
    fn schema_propagation() {
        let plan = LogicalPlan::scan("s", sales())
            .aggregate(vec![0], vec![(AggFunc::Count, "n")])
            .sort(vec![1], "rank");
        assert_eq!(plan.schema().cols(), &["region", "n", "rank"]);
        let _ = Value::Int(0);
    }
}
