//! Relation schemas: ordered lists of attribute names.

use std::fmt;
use std::sync::Arc;

/// An ordered list of attribute names. Cloning is cheap (shared `Arc`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Schema {
    cols: Arc<[String]>,
}

impl Schema {
    /// Build a schema from attribute names.
    pub fn new<S: Into<String>>(cols: impl IntoIterator<Item = S>) -> Self {
        Schema {
            cols: cols.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of attributes (`arity(Sch(R))` in the paper).
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Attribute names in order.
    pub fn cols(&self) -> &[String] {
        &self.cols
    }

    /// Index of a named attribute.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|c| c == name)
    }

    /// Index of a named attribute, panicking with a helpful message if absent.
    pub fn col(&self, name: &str) -> usize {
        self.index_of(name)
            .unwrap_or_else(|| panic!("schema {:?} has no column {name:?}", self.cols))
    }

    /// Concatenate two schemas (`Sch(R) ∘ X`).
    pub fn concat(&self, other: &Schema) -> Schema {
        Schema::new(self.cols.iter().chain(other.cols.iter()).cloned())
    }

    /// Extend with one more attribute.
    pub fn with(&self, name: impl Into<String>) -> Schema {
        Schema::new(self.cols.iter().cloned().chain([name.into()]))
    }

    /// Indices of all attributes *not* in `subset` (used for the `<total_O`
    /// tie-breaker which extends the order-by list by the remaining columns).
    pub fn complement(&self, subset: &[usize]) -> Vec<usize> {
        (0..self.arity()).filter(|i| !subset.contains(i)).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})", self.cols.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_concat() {
        let s = Schema::new(["a", "b"]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.col("b"), 1);
        assert_eq!(s.index_of("z"), None);
        let t = s.concat(&Schema::new(["c"]));
        assert_eq!(t.cols(), &["a", "b", "c"]);
        assert_eq!(s.with("pos").cols(), &["a", "b", "pos"]);
    }

    #[test]
    fn complement_indices() {
        let s = Schema::new(["a", "b", "c", "d"]);
        assert_eq!(s.complement(&[1, 3]), vec![0, 2]);
        assert_eq!(s.complement(&[]), vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "has no column")]
    fn missing_column_panics() {
        Schema::new(["a"]).col("nope");
    }
}
