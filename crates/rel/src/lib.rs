//! # audb-rel — deterministic bag-relational algebra over ℕ-annotated relations
//!
//! This crate is the deterministic substrate of the AU-DB reproduction. It
//! implements *K-relations* (Green et al., PODS'07) specialized to the
//! natural-numbers semiring ℕ: every tuple carries a multiplicity, and the
//! positive relational algebra is expressed through semiring operations
//! (paper Fig. 2). On top of `RA+` it provides:
//!
//! * grouping aggregation (`sum`, `count`, `min`, `max`, `avg`),
//! * the **row-based windowed aggregation operator** `ω[l,u]_{f(A)→X; G; O}`
//!   of paper Fig. 3, including duplicate explosion and total-order
//!   tie-breaking `<total_O`,
//! * the **sort operator** `sort_{O→τ}` of paper Def. 1 (positions
//!   materialized as data) and top-k as sort + selection,
//! * a scalar expression language with a total value order.
//!
//! The engine evaluates eagerly and in memory; relations are plain data.
//! It doubles as the `Det` baseline of the paper's evaluation and as the
//! executor for the SQL-rewrite method (crate `audb-rewrite`).

pub mod csv;
pub mod expr;
pub mod ops;
pub mod plan;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

pub use csv::{read_csv, read_csv_lines, write_csv};
pub use expr::{CmpOp, Expr};
pub use ops::aggregate::{aggregate, AggFunc};
pub use ops::join::{join, product};
pub use ops::project::project;
pub use ops::select::select;
pub use ops::sort::{sort_to_pos, topk};
pub use ops::union::{difference, union};
pub use ops::window::{window_rows, WindowSpec};
pub use ops::window_range::{window_range, RangeWindowSpec};
pub use plan::LogicalPlan;
pub use relation::{Relation, Row};
pub use schema::Schema;
pub use tuple::Tuple;
pub use value::{cmp_float_float, cmp_int_float, Value};
