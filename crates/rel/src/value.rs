//! Scalar values with a total order.
//!
//! The sort and window operators of the paper assume "a total order < for
//! the domains of all attributes" (Sec. 4). We therefore equip [`Value`]
//! with a total order across *all* variants:
//!
//! ```text
//! Null  <  Bool(false) < Bool(true)  <  numbers (Int/Float, numerically)  <  strings
//! ```
//!
//! `Int` and `Float` compare numerically against each other, and `Eq`/`Hash`
//! are kept consistent with that comparison (an integral float hashes like
//! the corresponding integer). `NaN` sorts after every other number.
//!
//! The order is a genuine *total order* — transitive including the float
//! edge cases: all `NaN` payloads compare equal (and after every non-NaN
//! number, so int-vs-NaN and float-vs-NaN agree), and `-0.0 == 0.0 ==
//! Int(0)`. This matters beyond hygiene: `audb_core::sortkey` encodes
//! values into memcmp-comparable byte strings whose byte order must match
//! `Value::cmp` exactly, which is impossible if the comparison is
//! intransitive (as `f64::total_cmp` mixed with numeric int–float
//! comparison would be).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A scalar database value.
#[derive(Clone, Debug)]
pub enum Value {
    /// Absent / unknown value. Sorts before everything else.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float, totally ordered numerically (`-0.0 == 0.0`, every NaN
    /// equal and greater than all other numbers) with cross-type numeric
    /// comparison against `Int`.
    Float(f64),
    /// Interned string; clones are cheap reference bumps.
    Str(Arc<str>),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (`Int`/`Float` only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view (`Int` only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view (`Bool` only).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Truthiness used by selection predicates: `Bool(true)` is true,
    /// everything else (including `Null`) is false.
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    fn variant_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }

    /// Addition with numeric promotion; `Null` is absorbing.
    pub fn add(&self, other: &Value) -> Value {
        numeric_binop(self, other, |a, b| a.checked_add(b), |a, b| a + b)
    }

    /// Subtraction with numeric promotion; `Null` is absorbing.
    pub fn sub(&self, other: &Value) -> Value {
        numeric_binop(self, other, |a, b| a.checked_sub(b), |a, b| a - b)
    }

    /// Multiplication with numeric promotion; `Null` is absorbing.
    pub fn mul(&self, other: &Value) -> Value {
        numeric_binop(self, other, |a, b| a.checked_mul(b), |a, b| a * b)
    }

    /// Division. Integer division truncates; division by zero yields `Null`.
    pub fn div(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a.wrapping_div(*b))
                }
            }
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a / b)
                    }
                }
                _ => Value::Null,
            },
        }
    }

    /// Numeric negation; `Null` otherwise.
    pub fn neg(&self) -> Value {
        match self {
            Value::Int(i) => Value::Int(i.wrapping_neg()),
            Value::Float(f) => Value::Float(-f),
            _ => Value::Null,
        }
    }

    /// Multiply by a (non-negative) multiplicity, used by aggregation over
    /// bags: a tuple with multiplicity `n` contributes `n * value` to a sum.
    pub fn scale(&self, n: u64) -> Value {
        match self {
            Value::Int(i) => Value::Int(i.wrapping_mul(n as i64)),
            Value::Float(f) => Value::Float(f * n as f64),
            _ => Value::Null,
        }
    }
}

fn numeric_binop(
    a: &Value,
    b: &Value,
    int_op: impl Fn(i64, i64) -> Option<i64>,
    float_op: impl Fn(f64, f64) -> f64,
) -> Value {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => match int_op(*x, *y) {
            Some(v) => Value::Int(v),
            None => Value::Float(float_op(*x as f64, *y as f64)),
        },
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => Value::Float(float_op(x, y)),
            _ => Value::Null,
        },
    }
}

/// Compare two `f64`s numerically and totally: `-0.0 == 0.0`, and every
/// NaN (any sign/payload) is equal to every other NaN and greater than
/// every non-NaN. Unlike `f64::total_cmp`, this is consistent with the
/// numeric int–float comparison below (which cannot observe NaN payloads),
/// keeping the whole `Value` order transitive.
///
/// Public because the typed (monomorphic) column kernels in `audb-core`
/// compare raw `f64` lanes and must reproduce `Value::cmp` bit for bit.
#[inline]
pub fn cmp_float_float(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.partial_cmp(&b).expect("non-NaN floats compare"),
    }
}

/// Compare an `i64` against an `f64` numerically and totally (the other
/// monomorphic mirror of `Value::cmp`, see [`cmp_float_float`]).
#[inline]
pub fn cmp_int_float(i: i64, f: f64) -> Ordering {
    if f.is_nan() {
        // NaN sorts after all numbers.
        return Ordering::Less;
    }
    // i64 -> f64 may lose precision for |i| > 2^53; compare via partial_cmp
    // on the widened value and fall back to exact integer comparison.
    let fi = i as f64;
    match fi.partial_cmp(&f) {
        Some(Ordering::Equal) => {
            // f might be fractional or out of i64 range even when fi == f is
            // reported; re-check exactly when f is integral and in range.
            if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                i.cmp(&(f as i64))
            } else {
                Ordering::Equal
            }
        }
        Some(o) => o,
        None => Ordering::Less,
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => cmp_float_float(*a, *b),
            (Int(a), Float(b)) => cmp_int_float(*a, *b),
            (Float(a), Int(b)) => cmp_int_float(*b, *a).reverse(),
            (Str(a), Str(b)) => a.cmp(b),
            _ => self.variant_rank().cmp(&other.variant_rank()),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            Value::Int(i) => {
                state.write_u8(2);
                i.hash(state);
            }
            Value::Float(f) => {
                // Keep Hash consistent with Eq: integral floats equal ints,
                // and all NaNs are equal (so they must hash alike).
                if f.is_nan() {
                    state.write_u8(3);
                    f64::NAN.to_bits().hash(state);
                } else if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                    state.write_u8(2);
                    (*f as i64).hash(state);
                } else {
                    state.write_u8(3);
                    f.to_bits().hash(state);
                }
            }
            Value::Str(s) => {
                state.write_u8(4);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn total_order_across_variants() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-3),
            Value::Float(2.5),
            Value::Int(3),
            Value::str("a"),
            Value::str("b"),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{:?} < {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn int_float_cross_comparison() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.9) < Value::Int(2));
        assert!(Value::Int(2) < Value::Float(f64::NAN));
    }

    #[test]
    fn hash_consistent_with_eq() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
        assert_eq!(Value::Int(7), Value::Float(7.0));
    }

    #[test]
    fn arithmetic_promotion_and_null() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)), Value::Int(5));
        assert_eq!(Value::Int(2).add(&Value::Float(0.5)), Value::Float(2.5));
        assert!(Value::Int(2).add(&Value::Null).is_null());
        assert!(Value::Int(2).div(&Value::Int(0)).is_null());
        assert_eq!(Value::Int(7).div(&Value::Int(2)), Value::Int(3));
    }

    #[test]
    fn overflow_promotes_to_float() {
        let big = Value::Int(i64::MAX);
        match big.add(&Value::Int(1)) {
            Value::Float(f) => assert!(f >= i64::MAX as f64),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn scale_by_multiplicity() {
        assert_eq!(Value::Int(4).scale(3), Value::Int(12));
        assert_eq!(Value::Float(1.5).scale(2), Value::Float(3.0));
    }

    #[test]
    fn nan_sorts_last_among_floats() {
        assert!(Value::Float(f64::INFINITY) < Value::Float(f64::NAN));
        assert!(Value::Float(f64::NAN) < Value::str(""));
    }

    #[test]
    fn float_edge_cases_are_totally_ordered() {
        // All NaNs are one equivalence class after every number, regardless
        // of sign or payload, and they hash alike.
        assert_eq!(Value::Float(f64::NAN), Value::Float(-f64::NAN));
        assert_eq!(
            hash_of(&Value::Float(f64::NAN)),
            hash_of(&Value::Float(-f64::NAN))
        );
        assert!(Value::Float(-f64::NAN) > Value::Float(f64::INFINITY));
        assert!(Value::Int(i64::MAX) < Value::Float(f64::NAN));
        // Signed zeros are numerically equal to each other and to Int(0).
        assert_eq!(Value::Float(-0.0), Value::Float(0.0));
        assert_eq!(Value::Float(-0.0), Value::Int(0));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Int(0)));
    }
}
