//! Scalar expressions over tuples.
//!
//! Expressions are built from attribute references, constants, arithmetic,
//! boolean connectives, comparisons and a conditional. Evaluation is total:
//! type mismatches yield [`Value::Null`], and predicates treat anything but
//! `Bool(true)` as false. Comparisons use the total value order of
//! [`crate::value`], mirroring the paper's assumption of totally ordered
//! attribute domains.

use crate::tuple::Tuple;
use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply to an [`Ordering`].
    pub fn test(self, o: Ordering) -> bool {
        match self {
            CmpOp::Eq => o == Ordering::Equal,
            CmpOp::Ne => o != Ordering::Equal,
            CmpOp::Lt => o == Ordering::Less,
            CmpOp::Le => o != Ordering::Greater,
            CmpOp::Gt => o == Ordering::Greater,
            CmpOp::Ge => o != Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A scalar expression tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Attribute reference by position.
    Col(usize),
    /// Constant.
    Lit(Value),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Division (by-zero yields `Null`).
    Div(Box<Expr>, Box<Expr>),
    /// Numeric negation.
    Neg(Box<Expr>),
    /// Comparison under the total value order.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Conjunction (non-true operands count as false).
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation of a boolean.
    Not(Box<Expr>),
    /// `if cond then a else b`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Attribute reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Constant.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// `self op other`.
    pub fn cmp(self, op: CmpOp, other: Expr) -> Expr {
        Expr::Cmp(op, Box::new(self), Box::new(other))
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Eq, other)
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Lt, other)
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Le, other)
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `self + other`.
    pub fn add(self, other: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(other))
    }

    /// `self - other`.
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(other))
    }

    /// `self * other`.
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(other))
    }

    /// Evaluate against a tuple.
    pub fn eval(&self, t: &Tuple) -> Value {
        match self {
            Expr::Col(i) => t.get(*i).clone(),
            Expr::Lit(v) => v.clone(),
            Expr::Add(a, b) => a.eval(t).add(&b.eval(t)),
            Expr::Sub(a, b) => a.eval(t).sub(&b.eval(t)),
            Expr::Mul(a, b) => a.eval(t).mul(&b.eval(t)),
            Expr::Div(a, b) => a.eval(t).div(&b.eval(t)),
            Expr::Neg(a) => a.eval(t).neg(),
            Expr::Cmp(op, a, b) => {
                let (va, vb) = (a.eval(t), b.eval(t));
                if va.is_null() || vb.is_null() {
                    Value::Null
                } else {
                    Value::Bool(op.test(va.cmp(&vb)))
                }
            }
            Expr::And(a, b) => Value::Bool(a.eval(t).is_true() && b.eval(t).is_true()),
            Expr::Or(a, b) => Value::Bool(a.eval(t).is_true() || b.eval(t).is_true()),
            Expr::Not(a) => Value::Bool(!a.eval(t).is_true()),
            Expr::If(c, a, b) => {
                if c.eval(t).is_true() {
                    a.eval(t)
                } else {
                    b.eval(t)
                }
            }
        }
    }

    /// Evaluate as a predicate (non-`Bool(true)` results are false).
    pub fn holds(&self, t: &Tuple) -> bool {
        self.eval(t).is_true()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Value::Int(v)))
    }

    #[test]
    fn arithmetic_and_comparison() {
        let e = Expr::col(0).add(Expr::lit(10)).lt(Expr::col(1));
        assert!(e.holds(&t(&[1, 20])));
        assert!(!e.holds(&t(&[15, 20])));
    }

    #[test]
    fn boolean_connectives() {
        let e = Expr::col(0)
            .eq(Expr::lit(1))
            .and(Expr::Not(Box::new(Expr::col(1).eq(Expr::lit(2)))));
        assert!(e.holds(&t(&[1, 3])));
        assert!(!e.holds(&t(&[1, 2])));
        let o = Expr::col(0)
            .eq(Expr::lit(9))
            .or(Expr::col(1).eq(Expr::lit(3)));
        assert!(o.holds(&t(&[1, 3])));
    }

    #[test]
    fn conditional() {
        let e = Expr::If(
            Box::new(Expr::col(0).lt(Expr::lit(0))),
            Box::new(Expr::Neg(Box::new(Expr::col(0)))),
            Box::new(Expr::col(0)),
        );
        assert_eq!(e.eval(&t(&[-5])), Value::Int(5));
        assert_eq!(e.eval(&t(&[5])), Value::Int(5));
    }

    #[test]
    fn null_propagates_through_comparison() {
        let e = Expr::Lit(Value::Null).lt(Expr::lit(1));
        assert_eq!(e.eval(&t(&[0])), Value::Null);
        assert!(!e.holds(&t(&[0])));
    }
}
