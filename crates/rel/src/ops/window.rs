//! Row-based windowed aggregation `ω[l,u]_{f(A)→X; G; O}` (paper Fig. 3).
//!
//! Each duplicate of each input tuple defines a window: within the tuple's
//! partition (equal values on the partition-by attributes `G`), rows are
//! ordered by `<total_O` and the window covers the sort positions
//! `[pos + l, pos + u]` of the defining duplicate. The duplicate is extended
//! with `f(A)` computed over the window's rows. Sum-like aggregates are
//! evaluated with prefix sums, min/max with a monotonic deque, so a full
//! pass over a partition of `m` rows costs `O(m log m)` (the sort) —
//! this implements the efficient deterministic baseline (`Det` in Sec. 9).
//!
//! A dense-rank variant `Ω` ([`window_groups`]) is provided for completeness:
//! there, windows contain whole *tuple groups* whose dense rank lies within
//! `[l, u]` of the defining tuple's group.

use crate::ops::aggregate::{Accumulator, AggFunc};
use crate::ops::sort::total_order;
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

/// A row-based window specification.
#[derive(Clone, Debug)]
pub struct WindowSpec {
    /// Partition-by attribute indices (`G`).
    pub partition: Vec<usize>,
    /// Order-by attribute indices (`O`).
    pub order: Vec<usize>,
    /// Window start offset `l` (e.g. `-2` = 2 PRECEDING).
    pub lower: i64,
    /// Window end offset `u` (e.g. `0` = CURRENT ROW, `1` = 1 FOLLOWING).
    pub upper: i64,
}

impl WindowSpec {
    /// `ROWS BETWEEN -l PRECEDING AND u FOLLOWING` ordered on `order`.
    pub fn rows(order: Vec<usize>, lower: i64, upper: i64) -> Self {
        WindowSpec {
            partition: Vec::new(),
            order,
            lower,
            upper,
        }
    }

    /// Add a PARTITION BY clause.
    pub fn partition_by(mut self, partition: Vec<usize>) -> Self {
        self.partition = partition;
        self
    }

    /// Number of rows a full window holds (`size([l,u])` in the paper).
    pub fn size(&self) -> i64 {
        self.upper - self.lower + 1
    }
}

/// Aggregate `vals[lo(i)..=hi(i)]` for the sliding ranges induced by a
/// `[l, u]` window over `0..n`, clamped to valid indices. Uses prefix sums
/// for sum/count/avg and monotonic deques for min/max.
fn sliding_aggregate(vals: &[Value], l: i64, u: i64, f: AggFunc) -> Vec<Value> {
    let n = vals.len() as i64;
    let bounds = |i: i64| -> Option<(usize, usize)> {
        let lo = (i + l).max(0);
        let hi = (i + u).min(n - 1);
        (lo <= hi).then_some((lo as usize, hi as usize))
    };
    match f {
        AggFunc::Sum(_) | AggFunc::Avg(_) | AggFunc::Count => {
            // Prefix accumulators over (int sum, float sum, non-null count).
            let mut int_pre = vec![0i128; vals.len() + 1];
            let mut float_pre = vec![0f64; vals.len() + 1];
            let mut nn_pre = vec![0u64; vals.len() + 1];
            let mut saw_float = false;
            for (i, v) in vals.iter().enumerate() {
                let (mut di, mut df, mut dn) = (0i128, 0f64, 0u64);
                match v {
                    Value::Int(x) => {
                        di = *x as i128;
                        dn = 1;
                    }
                    Value::Float(x) => {
                        df = *x;
                        dn = 1;
                        saw_float = true;
                    }
                    _ => {}
                }
                int_pre[i + 1] = int_pre[i] + di;
                float_pre[i + 1] = float_pre[i] + df;
                nn_pre[i + 1] = nn_pre[i] + dn;
            }
            (0..n)
                .map(|i| {
                    let Some((lo, hi)) = bounds(i) else {
                        return match f {
                            AggFunc::Count => Value::Int(0),
                            _ => Value::Null,
                        };
                    };
                    let count = (hi - lo + 1) as i64;
                    let nn = nn_pre[hi + 1] - nn_pre[lo];
                    let isum = int_pre[hi + 1] - int_pre[lo];
                    let fsum = float_pre[hi + 1] - float_pre[lo];
                    match f {
                        AggFunc::Count => Value::Int(count),
                        AggFunc::Sum(_) if nn == 0 => Value::Null,
                        AggFunc::Sum(_) if saw_float => Value::Float(fsum + isum as f64),
                        AggFunc::Sum(_) => i64::try_from(isum)
                            .map(Value::Int)
                            .unwrap_or(Value::Float(isum as f64)),
                        AggFunc::Avg(_) if nn == 0 => Value::Null,
                        AggFunc::Avg(_) => Value::Float((fsum + isum as f64) / nn as f64),
                        _ => unreachable!(),
                    }
                })
                .collect()
        }
        AggFunc::Min(_) | AggFunc::Max(_) => {
            let is_min = matches!(f, AggFunc::Min(_));
            // Monotonic deque over the two-pointer sweep: both window
            // endpoints are non-decreasing in i, so each index enters and
            // leaves the deque once.
            let mut out = Vec::with_capacity(vals.len());
            let mut deque: std::collections::VecDeque<usize> = Default::default();
            let mut next = 0usize; // first index not yet pushed
            for i in 0..n {
                let Some((lo, hi)) = bounds(i) else {
                    out.push(Value::Null);
                    continue;
                };
                while next <= hi {
                    if !vals[next].is_null() {
                        while let Some(&back) = deque.back() {
                            let dominated = if is_min {
                                vals[back] >= vals[next]
                            } else {
                                vals[back] <= vals[next]
                            };
                            if dominated {
                                deque.pop_back();
                            } else {
                                break;
                            }
                        }
                        deque.push_back(next);
                    }
                    next += 1;
                }
                while deque.front().is_some_and(|&f| f < lo) {
                    deque.pop_front();
                }
                out.push(match deque.front() {
                    Some(&idx) => vals[idx].clone(),
                    None => Value::Null,
                });
            }
            out
        }
    }
}

/// `ω[l,u]_{f(A)→X; G; O}(R)`: row-based windowed aggregation per Fig. 3.
/// The output schema is `Sch(R) ∘ (out_name)`; the result is normalized
/// (duplicates of a tuple whose windows agree merge back together, as the
/// final projection in Fig. 3 does).
pub fn window_rows(rel: &Relation, spec: &WindowSpec, f: AggFunc, out_name: &str) -> Relation {
    let arity = rel.schema.arity();
    let cmp_idxs = total_order(arity, &spec.order);

    // Partition the exploded duplicates.
    let mut partitions: HashMap<Tuple, Vec<&Tuple>> = HashMap::new();
    for row in &rel.rows {
        if row.mult == 0 {
            continue;
        }
        let key = row.tuple.project(&spec.partition);
        let bucket = partitions.entry(key).or_default();
        for _ in 0..row.mult {
            bucket.push(&row.tuple);
        }
    }

    let schema = rel.schema.with(out_name);
    let mut rows: Vec<(Tuple, u64)> = Vec::with_capacity(rel.total_mult() as usize);
    for bucket in partitions.values_mut() {
        bucket.sort_by(|a, b| a.cmp_on(b, &cmp_idxs));
        let vals: Vec<Value> = match f.input_col() {
            Some(c) => bucket.iter().map(|t| t.get(c).clone()).collect(),
            None => bucket.iter().map(|_| Value::Int(1)).collect(),
        };
        let aggs = sliding_aggregate(&vals, spec.lower, spec.upper, f);
        for (t, a) in bucket.iter().zip(aggs) {
            rows.push((t.with(a), 1));
        }
    }
    Relation::from_rows(schema, rows).normalize()
}

/// Dense-rank windowed aggregation `Ω[l,u]_{f(A)→X; G; O}(R)` (paper Fig. 3,
/// top): the window of `t` contains every tuple group whose dense rank in
/// `t`'s partition is within `[l, u]` of `t`'s group, with multiplicities
/// taken directly from the relation.
pub fn window_groups(rel: &Relation, spec: &WindowSpec, f: AggFunc, out_name: &str) -> Relation {
    let mut partitions: HashMap<Tuple, Vec<(&Tuple, u64)>> = HashMap::new();
    for row in &rel.rows {
        if row.mult == 0 {
            continue;
        }
        partitions
            .entry(row.tuple.project(&spec.partition))
            .or_default()
            .push((&row.tuple, row.mult));
    }

    let schema = rel.schema.with(out_name);
    let mut rows: Vec<(Tuple, u64)> = Vec::new();
    for bucket in partitions.values_mut() {
        bucket.sort_by(|a, b| a.0.cmp_on(b.0, &spec.order));
        // Dense ranks: consecutive group index per distinct order-by value.
        let mut ranks = Vec::with_capacity(bucket.len());
        let mut rank = 0usize;
        for (i, (t, _)) in bucket.iter().enumerate() {
            if i > 0 && bucket[i - 1].0.cmp_on(t, &spec.order) != std::cmp::Ordering::Equal {
                rank += 1;
            }
            ranks.push(rank);
        }
        for (i, (t, m)) in bucket.iter().enumerate() {
            let mut acc = Accumulator::default();
            for (j, (t2, m2)) in bucket.iter().enumerate() {
                // Offset of t2's group relative to the defining tuple's
                // group; [lower, upper] selects preceding/following groups
                // with the same sign convention as row windows.
                let d = ranks[j] as i64 - ranks[i] as i64;
                if d >= spec.lower && d <= spec.upper {
                    match f.input_col() {
                        Some(c) => acc.add(t2.get(c), *m2),
                        None => acc.add(&Value::Null, *m2),
                    }
                }
            }
            rows.push((t.with(acc.finish(f)), *m));
        }
    }
    Relation::from_rows(schema, rows).normalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    /// Paper Example 5: sum(B) over `ROWS BETWEEN 2 PRECEDING AND CURRENT
    /// ROW`, ordered on A. The tuple (a,5,3) has multiplicity 3 and its
    /// three duplicates get sums 5, 10, 15; (b,3,1) gets 13; (b,3,4) gets 11.
    #[test]
    fn example_5_row_windows() {
        let r = Relation::from_rows(
            Schema::new(["a", "b", "c"]),
            [
                (
                    Tuple::new([Value::str("a"), Value::Int(5), Value::Int(3)]),
                    3,
                ),
                (
                    Tuple::new([Value::str("b"), Value::Int(3), Value::Int(1)]),
                    1,
                ),
                (
                    Tuple::new([Value::str("b"), Value::Int(3), Value::Int(4)]),
                    1,
                ),
            ],
        );
        let spec = WindowSpec::rows(vec![0], -2, 0);
        let out = window_rows(&r, &spec, AggFunc::Sum(1), "sum_b");
        let expect = |a: &str, b: i64, c: i64, s: i64, m: u64| {
            let t = Tuple::new([Value::str(a), Value::Int(b), Value::Int(c), Value::Int(s)]);
            assert_eq!(out.mult_of(&t), m, "({a},{b},{c}) -> {s}");
        };
        expect("a", 5, 3, 5, 1);
        expect("a", 5, 3, 10, 1);
        expect("a", 5, 3, 15, 1);
        expect("b", 3, 1, 13, 1);
        expect("b", 3, 4, 11, 1);
    }

    #[test]
    fn partition_by_isolates_groups() {
        let r = Relation::from_values(
            Schema::new(["g", "v"]),
            [[1i64, 10], [1, 20], [2, 100], [2, 200]],
        );
        let spec = WindowSpec::rows(vec![1], -10, 0).partition_by(vec![0]);
        let out = window_rows(&r, &spec, AggFunc::Sum(1), "s");
        assert_eq!(out.mult_of(&Tuple::from([1i64, 20, 30])), 1);
        assert_eq!(out.mult_of(&Tuple::from([2i64, 200, 300])), 1);
    }

    #[test]
    fn min_max_windows_match_bruteforce() {
        let vals: Vec<i64> = vec![5, 1, 4, 4, 8, 2, 7, 3, 6, 0];
        let r = Relation::from_values(
            Schema::new(["i", "v"]),
            vals.iter()
                .enumerate()
                .map(|(i, &v)| [i as i64, v])
                .collect::<Vec<_>>(),
        );
        for (l, u) in [(-2i64, 0i64), (-1, 1), (0, 3), (-5, -1)] {
            let spec = WindowSpec::rows(vec![0], l, u);
            let got_min = window_rows(&r, &spec, AggFunc::Min(1), "m");
            let got_max = window_rows(&r, &spec, AggFunc::Max(1), "m");
            for (i, _) in vals.iter().enumerate() {
                let lo = (i as i64 + l).max(0) as usize;
                let hi = ((i as i64 + u).min(vals.len() as i64 - 1)).max(-1);
                let (emin, emax) = if hi < lo as i64 {
                    (Value::Null, Value::Null)
                } else {
                    let slice = &vals[lo..=hi as usize];
                    (
                        Value::Int(*slice.iter().min().unwrap()),
                        Value::Int(*slice.iter().max().unwrap()),
                    )
                };
                let tmin = Tuple::new([Value::Int(i as i64), Value::Int(vals[i]), emin]);
                let tmax = Tuple::new([Value::Int(i as i64), Value::Int(vals[i]), emax]);
                assert_eq!(got_min.mult_of(&tmin), 1, "min i={i} l={l} u={u}");
                assert_eq!(got_max.mult_of(&tmax), 1, "max i={i} l={l} u={u}");
            }
        }
    }

    #[test]
    fn count_over_clamped_windows() {
        let r = Relation::from_values(Schema::new(["v"]), [[10i64], [20], [30]]);
        let spec = WindowSpec::rows(vec![0], -1, 0);
        let out = window_rows(&r, &spec, AggFunc::Count, "c");
        assert_eq!(out.mult_of(&Tuple::from([10i64, 1])), 1);
        assert_eq!(out.mult_of(&Tuple::from([20i64, 2])), 1);
        assert_eq!(out.mult_of(&Tuple::from([30i64, 2])), 1);
    }

    #[test]
    fn following_windows() {
        let r = Relation::from_values(Schema::new(["v"]), [[1i64], [2], [3]]);
        let spec = WindowSpec::rows(vec![0], 0, 1);
        let out = window_rows(&r, &spec, AggFunc::Sum(0), "s");
        assert_eq!(out.mult_of(&Tuple::from([1i64, 3])), 1);
        assert_eq!(out.mult_of(&Tuple::from([2i64, 5])), 1);
        assert_eq!(out.mult_of(&Tuple::from([3i64, 3])), 1);
    }

    #[test]
    fn dense_rank_windows() {
        // Two tuples share order-by value 3 → same group.
        let r = Relation::from_values(
            Schema::new(["o", "v"]),
            [[1i64, 10], [3, 1], [3, 2], [5, 100]],
        );
        let spec = WindowSpec::rows(vec![0], -1, 0);
        let out = window_groups(&r, &spec, AggFunc::Sum(1), "s");
        // Group ranks: 1 -> 0, 3 -> 1, 5 -> 2.
        assert_eq!(out.mult_of(&Tuple::from([1i64, 10, 10])), 1);
        assert_eq!(out.mult_of(&Tuple::from([3i64, 1, 13])), 1);
        assert_eq!(out.mult_of(&Tuple::from([3i64, 2, 13])), 1);
        assert_eq!(out.mult_of(&Tuple::from([5i64, 100, 103])), 1);
    }

    #[test]
    fn window_entirely_out_of_range_is_empty_aggregate() {
        let r = Relation::from_values(Schema::new(["v"]), [[1i64], [2]]);
        let spec = WindowSpec::rows(vec![0], -5, -3);
        let out = window_rows(&r, &spec, AggFunc::Sum(0), "s");
        for row in &out.rows {
            assert!(row.tuple.get(1).is_null());
        }
        let outc = window_rows(&r, &spec, AggFunc::Count, "c");
        for row in &outc.rows {
            assert_eq!(row.tuple.get(1), &Value::Int(0));
        }
    }
}
