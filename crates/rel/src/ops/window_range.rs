//! Range-based windowed aggregation: `RANGE BETWEEN x PRECEDING AND y
//! FOLLOWING`. The window of a tuple contains every tuple of its partition
//! whose *order-by value* lies within `[o(t) + l, o(t) + u]` — membership is
//! by value distance, not by row count (paper Sec. 4.1 notes range windows
//! are strictly simpler than row windows; we implement them for
//! completeness).
//!
//! Requires a single numeric order-by attribute. Evaluated per partition
//! with a sort + two-pointer sweep and prefix accumulators: `O(m log m)`.

use crate::ops::aggregate::{Accumulator, AggFunc};
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

/// A range (value-distance) window specification.
#[derive(Clone, Debug)]
pub struct RangeWindowSpec {
    /// Partition-by attribute indices.
    pub partition: Vec<usize>,
    /// The single numeric order-by attribute.
    pub order: usize,
    /// Value offset of the window start (e.g. `-10` = 10 PRECEDING).
    pub lower: i64,
    /// Value offset of the window end.
    pub upper: i64,
}

impl RangeWindowSpec {
    /// `RANGE BETWEEN -l PRECEDING AND u FOLLOWING` on `order`.
    pub fn new(order: usize, lower: i64, upper: i64) -> Self {
        assert!(lower <= upper, "empty range window");
        RangeWindowSpec {
            partition: Vec::new(),
            order,
            lower,
            upper,
        }
    }

    /// Add a PARTITION BY clause.
    pub fn partition_by(mut self, partition: Vec<usize>) -> Self {
        self.partition = partition;
        self
    }
}

/// `ω^range[l,u]_{f(A)→X; G; o}(R)`: every duplicate is extended with the
/// aggregate over the tuples of its partition whose order value is within
/// `[o + l, o + u]`. Output is normalized.
pub fn window_range(
    rel: &Relation,
    spec: &RangeWindowSpec,
    f: AggFunc,
    out_name: &str,
) -> Relation {
    let mut partitions: HashMap<Tuple, Vec<(&Tuple, u64)>> = HashMap::new();
    for row in &rel.rows {
        if row.mult == 0 {
            continue;
        }
        partitions
            .entry(row.tuple.project(&spec.partition))
            .or_default()
            .push((&row.tuple, row.mult));
    }

    let schema = rel.schema.with(out_name);
    let mut rows: Vec<(Tuple, u64)> = Vec::new();
    for bucket in partitions.values_mut() {
        bucket.sort_by(|a, b| a.0.get(spec.order).cmp(b.0.get(spec.order)));
        let keys: Vec<i64> = bucket
            .iter()
            .map(|(t, _)| {
                t.get(spec.order)
                    .as_i64()
                    .expect("range windows need an integer order attribute")
            })
            .collect();
        // Two-pointer sweep: both edges are monotone in the target key.
        let (mut lo, mut hi) = (0usize, 0usize);
        let mut acc = Accumulator::default();
        let mut rebuild = true; // Accumulator cannot retract; rebuild on move
        for (i, (t, m)) in bucket.iter().enumerate() {
            let (wl, wu) = (keys[i] + spec.lower, keys[i] + spec.upper);
            let new_lo = keys.partition_point(|&k| k < wl);
            let new_hi = keys.partition_point(|&k| k <= wu);
            if new_lo != lo || rebuild {
                // Window start moved: rebuild the accumulator.
                acc = Accumulator::default();
                for j in new_lo..new_hi {
                    add(&mut acc, bucket[j], f);
                }
                rebuild = false;
            } else {
                for j in hi..new_hi {
                    add(&mut acc, bucket[j], f);
                }
            }
            (lo, hi) = (new_lo, new_hi);
            rows.push((t.with(acc.finish(f)), *m));
        }
    }
    Relation::from_rows(schema, rows).normalize()
}

fn add(acc: &mut Accumulator, (t, m): (&Tuple, u64), f: AggFunc) {
    match f.input_col() {
        Some(c) => acc.add(t.get(c), m),
        None => acc.add(&Value::Null, m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn rel() -> Relation {
        Relation::from_values(
            Schema::new(["o", "v"]),
            [[1i64, 10], [2, 20], [5, 50], [6, 60], [20, 200]],
        )
    }

    #[test]
    fn value_distance_membership() {
        // RANGE BETWEEN 1 PRECEDING AND 1 FOLLOWING.
        let out = window_range(
            &rel(),
            &RangeWindowSpec::new(0, -1, 1),
            AggFunc::Sum(1),
            "s",
        );
        let expect = [(1, 30), (2, 30), (5, 110), (6, 110), (20, 200)];
        for (o, s) in expect {
            assert_eq!(
                out.mult_of(&Tuple::from([o, value_of(o), s])),
                1,
                "o={o}: {out}"
            );
        }
        fn value_of(o: i64) -> i64 {
            o * 10
        }
    }

    #[test]
    fn matches_bruteforce() {
        let r = rel();
        for (l, u) in [(-3i64, 0i64), (0, 4), (-2, 2), (-100, 100)] {
            let out = window_range(&r, &RangeWindowSpec::new(0, l, u), AggFunc::Sum(1), "s");
            for row in &r.rows {
                let o = row.tuple.get(0).as_i64().unwrap();
                let expected: i64 = r
                    .rows
                    .iter()
                    .filter(|x| {
                        let k = x.tuple.get(0).as_i64().unwrap();
                        k >= o + l && k <= o + u
                    })
                    .map(|x| x.tuple.get(1).as_i64().unwrap())
                    .sum();
                let t = row.tuple.with(Value::Int(expected));
                assert_eq!(out.mult_of(&t), 1, "o={o} l={l} u={u}: {out}");
            }
        }
    }

    #[test]
    fn duplicates_share_the_window() {
        // Unlike row windows, all duplicates of a tuple see the same range
        // window (value distance is identical), so they stay merged.
        let r = Relation::from_rows(
            Schema::new(["o", "v"]),
            [(Tuple::from([1i64, 10]), 3), (Tuple::from([2i64, 1]), 1)],
        );
        let out = window_range(&r, &RangeWindowSpec::new(0, -1, 1), AggFunc::Sum(1), "s");
        // Window of o=1: all three duplicates (30) + the o=2 tuple (1) = 31.
        assert_eq!(out.mult_of(&Tuple::from([1i64, 10, 31])), 3);
        assert_eq!(out.mult_of(&Tuple::from([2i64, 1, 31])), 1);
    }

    #[test]
    fn partitioned_range_windows() {
        let r = Relation::from_values(
            Schema::new(["g", "o", "v"]),
            [[1i64, 1, 10], [1, 2, 20], [2, 1, 100], [2, 3, 300]],
        );
        let spec = RangeWindowSpec::new(1, -1, 1).partition_by(vec![0]);
        let out = window_range(&r, &spec, AggFunc::Sum(2), "s");
        assert_eq!(out.mult_of(&Tuple::from([1i64, 1, 10, 30])), 1);
        assert_eq!(out.mult_of(&Tuple::from([2i64, 1, 100, 100])), 1);
        assert_eq!(out.mult_of(&Tuple::from([2i64, 3, 300, 300])), 1);
    }

    #[test]
    fn min_max_over_ranges() {
        let out = window_range(
            &rel(),
            &RangeWindowSpec::new(0, -4, 0),
            AggFunc::Min(1),
            "m",
        );
        assert_eq!(out.mult_of(&Tuple::from([5i64, 50, 10])), 1);
        assert_eq!(out.mult_of(&Tuple::from([20i64, 200, 200])), 1);
    }
}
