//! Bag union `R ∪ S` (annotations add) and bag difference (monus).

use crate::relation::Relation;
use crate::tuple::Tuple;
use std::collections::HashMap;

/// `R ∪ S`: `⟦R ∪ S⟧(t) = R(t) + S(t)` (paper Fig. 2). Keeps the left
/// schema; arities must match.
pub fn union(left: &Relation, right: &Relation) -> Relation {
    assert_eq!(
        left.schema.arity(),
        right.schema.arity(),
        "union arity mismatch"
    );
    let mut rows: Vec<(Tuple, u64)> = Vec::with_capacity(left.rows.len() + right.rows.len());
    rows.extend(left.rows.iter().map(|r| (r.tuple.clone(), r.mult)));
    rows.extend(right.rows.iter().map(|r| (r.tuple.clone(), r.mult)));
    Relation::from_rows(left.schema.clone(), rows)
}

/// Bag difference with monus semantics: `(R − S)(t) = max(0, R(t) − S(t))`.
/// This is the `RA` difference under which AU-DBs remain closed (\[23\]).
pub fn difference(left: &Relation, right: &Relation) -> Relation {
    assert_eq!(
        left.schema.arity(),
        right.schema.arity(),
        "difference arity mismatch"
    );
    let mut counts: HashMap<&Tuple, u64> = HashMap::new();
    for r in &right.rows {
        *counts.entry(&r.tuple).or_insert(0) += r.mult;
    }
    let normalized = left.clone().normalize();
    let rows = normalized
        .rows
        .into_iter()
        .filter_map(|row| {
            let sub = counts.get(&row.tuple).copied().unwrap_or(0);
            let m = row.mult.saturating_sub(sub);
            (m > 0).then_some((row.tuple, m))
        })
        .collect::<Vec<_>>();
    Relation::from_rows(left.schema.clone(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn rel(rows: &[(i64, u64)]) -> Relation {
        Relation::from_rows(
            Schema::new(["a"]),
            rows.iter().map(|&(a, m)| (Tuple::from([a]), m)),
        )
    }

    #[test]
    fn union_adds_multiplicities() {
        let u = union(&rel(&[(1, 2)]), &rel(&[(1, 3), (2, 1)])).normalize();
        assert_eq!(u.mult_of(&Tuple::from([1i64])), 5);
        assert_eq!(u.mult_of(&Tuple::from([2i64])), 1);
    }

    #[test]
    fn difference_is_monus() {
        let d = difference(&rel(&[(1, 2), (2, 5)]), &rel(&[(1, 7), (2, 2)]));
        assert_eq!(d.mult_of(&Tuple::from([1i64])), 0);
        assert_eq!(d.mult_of(&Tuple::from([2i64])), 3);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn union_rejects_mismatched_arity() {
        let two = Relation::from_values(Schema::new(["a", "b"]), [[1i64, 2]]);
        union(&rel(&[(1, 1)]), &two);
    }
}
