//! Selection `σ_θ(R)`: keeps a tuple's annotation when `θ(t)` holds,
//! otherwise maps it to 0 (paper Fig. 2).

use crate::expr::Expr;
use crate::relation::Relation;

/// `σ_pred(rel)`.
pub fn select(rel: &Relation, pred: &Expr) -> Relation {
    Relation {
        schema: rel.schema.clone(),
        rows: rel
            .rows
            .iter()
            .filter(|r| r.mult > 0 && pred.holds(&r.tuple))
            .cloned()
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::schema::Schema;

    #[test]
    fn selection_preserves_multiplicity() {
        let r = Relation::from_rows(
            Schema::new(["a"]),
            [
                (crate::tuple::Tuple::from([1i64]), 3),
                (crate::tuple::Tuple::from([2i64]), 5),
            ],
        );
        let s = select(&r, &Expr::col(0).eq(Expr::lit(2)));
        assert_eq!(s.total_mult(), 5);
        assert_eq!(s.rows.len(), 1);
    }

    #[test]
    fn empty_selection() {
        let r = Relation::from_values(Schema::new(["a"]), [[1i64], [2]]);
        let s = select(&r, &Expr::lit(false));
        assert!(s.is_empty());
    }
}
