//! Products and joins. Multiplicities multiply (`⟦R × S⟧(t) = R(t)·S(t)`,
//! paper Fig. 2); a theta-join is a product followed by selection, and the
//! equi-join fast path hashes on key columns.

use crate::expr::Expr;
use crate::relation::Relation;
use crate::tuple::Tuple;
use std::collections::HashMap;

/// Cross product `R × S`.
pub fn product(left: &Relation, right: &Relation) -> Relation {
    let schema = left.schema.concat(&right.schema);
    let mut rows = Vec::with_capacity(left.rows.len() * right.rows.len());
    for l in &left.rows {
        if l.mult == 0 {
            continue;
        }
        for r in &right.rows {
            if r.mult == 0 {
                continue;
            }
            rows.push((l.tuple.concat(&r.tuple), l.mult * r.mult));
        }
    }
    Relation::from_rows(schema, rows)
}

/// Theta-join `R ⋈_θ S` (nested loops; `θ` sees the concatenated tuple).
pub fn join(left: &Relation, right: &Relation, theta: &Expr) -> Relation {
    let schema = left.schema.concat(&right.schema);
    let mut rows = Vec::new();
    for l in &left.rows {
        if l.mult == 0 {
            continue;
        }
        for r in &right.rows {
            if r.mult == 0 {
                continue;
            }
            let t = l.tuple.concat(&r.tuple);
            if theta.holds(&t) {
                rows.push((t, l.mult * r.mult));
            }
        }
    }
    Relation::from_rows(schema, rows)
}

/// Equi-join on `left_keys = right_keys`, hash-partitioned on the build side.
pub fn hash_join(
    left: &Relation,
    right: &Relation,
    left_keys: &[usize],
    right_keys: &[usize],
) -> Relation {
    assert_eq!(left_keys.len(), right_keys.len());
    let schema = left.schema.concat(&right.schema);
    let mut table: HashMap<Tuple, Vec<usize>> = HashMap::new();
    for (i, r) in right.rows.iter().enumerate() {
        if r.mult > 0 {
            table
                .entry(r.tuple.project(right_keys))
                .or_default()
                .push(i);
        }
    }
    let mut rows = Vec::new();
    for l in &left.rows {
        if l.mult == 0 {
            continue;
        }
        if let Some(matches) = table.get(&l.tuple.project(left_keys)) {
            for &i in matches {
                let r = &right.rows[i];
                rows.push((l.tuple.concat(&r.tuple), l.mult * r.mult));
            }
        }
    }
    Relation::from_rows(schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::schema::Schema;

    fn left() -> Relation {
        Relation::from_rows(
            Schema::new(["a"]),
            [(Tuple::from([1i64]), 2), (Tuple::from([2i64]), 1)],
        )
    }

    fn right() -> Relation {
        Relation::from_rows(
            Schema::new(["b"]),
            [(Tuple::from([1i64]), 3), (Tuple::from([9i64]), 1)],
        )
    }

    #[test]
    fn product_multiplies_annotations() {
        let p = product(&left(), &right());
        assert_eq!(p.mult_of(&Tuple::from([1i64, 1])), 6);
        assert_eq!(p.total_mult(), (2 + 1) * (3 + 1));
    }

    #[test]
    fn theta_join_filters() {
        let j = join(&left(), &right(), &Expr::col(0).eq(Expr::col(1)));
        assert_eq!(j.total_mult(), 6);
        assert_eq!(j.rows.len(), 1);
    }

    #[test]
    fn hash_join_matches_theta_join() {
        let a = join(
            &left(),
            &right(),
            &Expr::col(0).cmp(CmpOp::Eq, Expr::col(1)),
        );
        let b = hash_join(&left(), &right(), &[0], &[0]);
        assert!(a.bag_eq(&b));
    }
}
