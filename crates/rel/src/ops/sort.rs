//! The sort operator `sort_{O→τ}(R)` of paper Def. 1 and top-k queries.
//!
//! Sorting *materializes positions as data*: each duplicate of each input
//! tuple is extended with a 0-based position attribute `τ` reflecting the
//! total order `<total_O` (order-by attributes, tie-broken by the remaining
//! schema attributes; duplicates of the same tuple occupy consecutive
//! positions). A top-k query is then just `σ_{τ < k}` over the sorted
//! relation (paper Sec. 4.2).

use crate::ops::project::project_cols;
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;

/// Comparator index list realizing `<total_O`: the order-by attributes
/// extended by every remaining attribute of the schema.
pub fn total_order(arity: usize, order: &[usize]) -> Vec<usize> {
    let mut idxs = order.to_vec();
    idxs.extend((0..arity).filter(|i| !order.contains(i)));
    idxs
}

/// `sort_{O→τ}(R)`: extend each duplicate of each row with its 0-based sort
/// position under `<total_O`. The output has one multiplicity-1 row per
/// duplicate and schema `Sch(R) ∘ (pos_name)`.
pub fn sort_to_pos(rel: &Relation, order: &[usize], pos_name: &str) -> Relation {
    let cmp_idxs = total_order(rel.schema.arity(), order);
    let mut expanded: Vec<(&Tuple, u64)> = Vec::with_capacity(rel.total_mult() as usize);
    for row in &rel.rows {
        for _ in 0..row.mult {
            expanded.push((&row.tuple, 1));
        }
    }
    expanded.sort_by(|a, b| a.0.cmp_on(b.0, &cmp_idxs));

    let schema = rel.schema.with(pos_name);
    let rows = expanded
        .into_iter()
        .enumerate()
        .map(|(pos, (t, m))| (t.with(Value::Int(pos as i64)), m))
        .collect::<Vec<_>>();
    Relation::from_rows(schema, rows)
}

/// Top-k: the first `k` rows of `R` under `<total_O`, *without* the position
/// column (`π_{Sch(R)}(σ_{τ < k}(sort_{O→τ}(R)))`).
pub fn topk(rel: &Relation, order: &[usize], k: u64) -> Relation {
    let sorted = topk_with_pos(rel, order, k);
    let keep: Vec<usize> = (0..rel.schema.arity()).collect();
    project_cols(&sorted, &keep).normalize()
}

/// Top-k retaining the position attribute `τ` (named `"pos"`).
pub fn topk_with_pos(rel: &Relation, order: &[usize], k: u64) -> Relation {
    let mut sorted = sort_to_pos(rel, order, "pos");
    sorted.rows.truncate(k as usize);
    sorted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    /// Paper Example 4: sorting on A; (1,1) has multiplicity 2 and its two
    /// duplicates take positions 0 and 1; (3,15) takes position 2.
    #[test]
    fn example_4_sorting() {
        let r = Relation::from_rows(
            Schema::new(["a", "b"]),
            [(Tuple::from([3i64, 15]), 1), (Tuple::from([1i64, 1]), 2)],
        );
        let s = sort_to_pos(&r, &[0], "pos");
        assert_eq!(s.schema.cols(), &["a", "b", "pos"]);
        let n = s.normalize();
        assert_eq!(n.mult_of(&Tuple::from([1i64, 1, 0])), 1);
        assert_eq!(n.mult_of(&Tuple::from([1i64, 1, 1])), 1);
        assert_eq!(n.mult_of(&Tuple::from([3i64, 15, 2])), 1);
    }

    /// Ties on the order-by attribute are broken by the remaining columns
    /// (`<total_O`), making positions deterministic.
    #[test]
    fn tie_break_by_remaining_attributes() {
        let r = Relation::from_values(Schema::new(["a", "b"]), [[1i64, 9], [1, 2], [0, 5]]);
        let s = sort_to_pos(&r, &[0], "pos");
        let n = s.normalize();
        assert_eq!(n.mult_of(&Tuple::from([0i64, 5, 0])), 1);
        assert_eq!(n.mult_of(&Tuple::from([1i64, 2, 1])), 1);
        assert_eq!(n.mult_of(&Tuple::from([1i64, 9, 2])), 1);
    }

    #[test]
    fn topk_returns_k_rows() {
        let r = Relation::from_values(Schema::new(["a"]), [[5i64], [3], [1], [4]]);
        let t = topk(&r, &[0], 2);
        assert_eq!(t.total_mult(), 2);
        assert_eq!(t.mult_of(&Tuple::from([1i64])), 1);
        assert_eq!(t.mult_of(&Tuple::from([3i64])), 1);
    }

    #[test]
    fn topk_counts_duplicates_against_k() {
        let r = Relation::from_rows(
            Schema::new(["a"]),
            [(Tuple::from([1i64]), 3), (Tuple::from([2i64]), 1)],
        );
        let t = topk(&r, &[0], 2);
        assert_eq!(t.mult_of(&Tuple::from([1i64])), 2);
        assert_eq!(t.mult_of(&Tuple::from([2i64])), 0);
    }

    #[test]
    fn topk_larger_than_relation() {
        let r = Relation::from_values(Schema::new(["a"]), [[2i64], [1]]);
        let t = topk(&r, &[0], 10);
        assert_eq!(t.total_mult(), 2);
    }
}
