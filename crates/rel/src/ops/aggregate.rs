//! Grouping aggregation over bags.
//!
//! Multiplicities participate: a tuple with multiplicity `n` contributes `n`
//! rows to `count` and `n · A` to `sum(A)`. `Null` aggregation inputs are
//! skipped (SQL semantics); a global aggregate over the empty relation
//! yields one row with `count = 0` and `Null` for the other functions.

use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

/// An aggregate function over an attribute (by index); `Count` is `count(*)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    /// `count(*)` — total multiplicity.
    Count,
    /// `sum(A)`.
    Sum(usize),
    /// `min(A)`.
    Min(usize),
    /// `max(A)`.
    Max(usize),
    /// `avg(A)` (always a float).
    Avg(usize),
}

impl AggFunc {
    /// The attribute the function reads, if any.
    pub fn input_col(&self) -> Option<usize> {
        match self {
            AggFunc::Count => None,
            AggFunc::Sum(c) | AggFunc::Min(c) | AggFunc::Max(c) | AggFunc::Avg(c) => Some(*c),
        }
    }
}

/// Streaming accumulator shared by grouping and windowed aggregation.
#[derive(Clone, Debug, Default)]
pub struct Accumulator {
    count: u64,
    int_sum: i128,
    float_sum: f64,
    saw_float: bool,
    nonnull: u64,
    min: Option<Value>,
    max: Option<Value>,
}

impl Accumulator {
    /// Fold in `mult` copies of value `v` (`v` may be `Null`).
    pub fn add(&mut self, v: &Value, mult: u64) {
        self.count += mult;
        match v {
            Value::Null => {}
            Value::Int(i) => {
                self.nonnull += mult;
                self.int_sum += *i as i128 * mult as i128;
                self.update_minmax(v);
            }
            Value::Float(f) => {
                self.nonnull += mult;
                self.saw_float = true;
                self.float_sum += f * mult as f64;
                self.update_minmax(v);
            }
            other => {
                self.nonnull += mult;
                self.update_minmax(other);
            }
        }
    }

    fn update_minmax(&mut self, v: &Value) {
        match &self.min {
            Some(m) if m <= v => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if m >= v => {}
            _ => self.max = Some(v.clone()),
        }
    }

    /// Finish for the given aggregate function.
    pub fn finish(&self, f: AggFunc) -> Value {
        match f {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum(_) => {
                if self.nonnull == 0 {
                    Value::Null
                } else if self.saw_float {
                    Value::Float(self.float_sum + self.int_sum as f64)
                } else if let Ok(v) = i64::try_from(self.int_sum) {
                    Value::Int(v)
                } else {
                    Value::Float(self.int_sum as f64)
                }
            }
            AggFunc::Min(_) => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max(_) => self.max.clone().unwrap_or(Value::Null),
            AggFunc::Avg(_) => {
                if self.nonnull == 0 {
                    Value::Null
                } else {
                    let total = self.float_sum + self.int_sum as f64;
                    Value::Float(total / self.nonnull as f64)
                }
            }
        }
    }
}

/// `γ_{group; aggs}(rel)`: group by the listed columns and compute each
/// aggregate. Output schema: group columns followed by the aggregate names.
pub fn aggregate(rel: &Relation, group: &[usize], aggs: &[(AggFunc, &str)]) -> Relation {
    let mut schema_cols: Vec<String> = group
        .iter()
        .map(|&i| rel.schema.cols()[i].clone())
        .collect();
    schema_cols.extend(aggs.iter().map(|(_, n)| n.to_string()));
    let schema = Schema::new(schema_cols);

    // Group keys in first-seen order for reproducible output.
    let mut order: Vec<Tuple> = Vec::new();
    let mut groups: HashMap<Tuple, Vec<Accumulator>> = HashMap::new();
    for row in &rel.rows {
        if row.mult == 0 {
            continue;
        }
        let key = row.tuple.project(group);
        let accs = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            vec![Accumulator::default(); aggs.len()]
        });
        for (acc, (f, _)) in accs.iter_mut().zip(aggs) {
            match f.input_col() {
                Some(c) => acc.add(row.tuple.get(c), row.mult),
                None => acc.add(&Value::Null, row.mult),
            }
        }
    }

    // A global aggregate over an empty input still returns one row.
    if groups.is_empty() && group.is_empty() {
        let accs = vec![Accumulator::default(); aggs.len()];
        let vals = aggs.iter().zip(&accs).map(|((f, _), a)| a.finish(*f));
        return Relation::from_rows(schema, [(Tuple::new(vals), 1)]);
    }

    let rows = order.into_iter().map(|key| {
        let accs = &groups[&key];
        let mut vals = key.0.clone();
        vals.extend(aggs.iter().zip(accs).map(|((f, _), a)| a.finish(*f)));
        (Tuple(vals), 1)
    });
    Relation::from_rows(schema, rows.collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> Relation {
        // (g, v) with multiplicities.
        Relation::from_rows(
            Schema::new(["g", "v"]),
            [
                (Tuple::from([1i64, 10]), 2),
                (Tuple::from([1i64, 5]), 1),
                (Tuple::from([2i64, 7]), 1),
            ],
        )
    }

    #[test]
    fn grouped_sum_count() {
        let out = aggregate(
            &rel(),
            &[0],
            &[(AggFunc::Sum(1), "s"), (AggFunc::Count, "c")],
        );
        let n = out.clone().normalize();
        assert_eq!(n.mult_of(&Tuple::from([1i64, 25, 3])), 1);
        assert_eq!(n.mult_of(&Tuple::from([2i64, 7, 1])), 1);
    }

    #[test]
    fn min_max_avg() {
        let out = aggregate(
            &rel(),
            &[],
            &[
                (AggFunc::Min(1), "mn"),
                (AggFunc::Max(1), "mx"),
                (AggFunc::Avg(1), "av"),
            ],
        );
        assert_eq!(out.rows.len(), 1);
        let t = &out.rows[0].tuple;
        assert_eq!(t.get(0), &Value::Int(5));
        assert_eq!(t.get(1), &Value::Int(10));
        // (10*2 + 5 + 7) / 4 = 8.0
        assert_eq!(t.get(2), &Value::Float(8.0));
    }

    #[test]
    fn global_aggregate_on_empty_relation() {
        let empty = Relation::empty(Schema::new(["g", "v"]));
        let out = aggregate(
            &empty,
            &[],
            &[(AggFunc::Count, "c"), (AggFunc::Sum(1), "s")],
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].tuple.get(0), &Value::Int(0));
        assert!(out.rows[0].tuple.get(1).is_null());
    }

    #[test]
    fn grouped_aggregate_on_empty_relation_is_empty() {
        let empty = Relation::empty(Schema::new(["g", "v"]));
        let out = aggregate(&empty, &[0], &[(AggFunc::Count, "c")]);
        assert!(out.is_empty());
    }

    #[test]
    fn nulls_skipped_by_sum_counted_by_count() {
        let r = Relation::from_rows(
            Schema::new(["g", "v"]),
            [
                (Tuple::new([Value::Int(1), Value::Null]), 2),
                (Tuple::from([1i64, 4]), 1),
            ],
        );
        let out = aggregate(&r, &[0], &[(AggFunc::Sum(1), "s"), (AggFunc::Count, "c")]);
        assert_eq!(out.rows[0].tuple.get(1), &Value::Int(4));
        assert_eq!(out.rows[0].tuple.get(2), &Value::Int(3));
    }
}
