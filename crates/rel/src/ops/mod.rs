//! Relational algebra operators over ℕ-relations.
//!
//! Each operator is a standalone function following the K-relation semantics
//! of paper Fig. 2 (`RA+`), plus aggregation, the sort-to-position operator
//! of Def. 1 and the row-based windowed aggregation operator of Fig. 3.

pub mod aggregate;
pub mod join;
pub mod project;
pub mod select;
pub mod sort;
pub mod union;
pub mod window;
pub mod window_range;
