//! Generalized projection `π_A(R)`: maps each tuple through a list of
//! expressions; equal results accumulate multiplicity (paper Fig. 2).

use crate::expr::Expr;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;

/// `π_{exprs}(rel)` with named output columns. The result is *not*
/// normalized; call [`Relation::normalize`] if a canonical bag is needed
/// (semantically equivalent either way).
pub fn project(rel: &Relation, exprs: &[(Expr, &str)]) -> Relation {
    let schema = Schema::new(exprs.iter().map(|(_, n)| n.to_string()));
    let rows = rel
        .rows
        .iter()
        .filter(|r| r.mult > 0)
        .map(|r| {
            let vals = exprs.iter().map(|(e, _)| e.eval(&r.tuple));
            (Tuple::new(vals), r.mult)
        })
        .collect::<Vec<_>>();
    Relation::from_rows(schema, rows)
}

/// Projection onto existing columns by index (common fast path).
pub fn project_cols(rel: &Relation, idxs: &[usize]) -> Relation {
    let schema = Schema::new(idxs.iter().map(|&i| rel.schema.cols()[i].clone()));
    let rows = rel
        .rows
        .iter()
        .filter(|r| r.mult > 0)
        .map(|r| (r.tuple.project(idxs), r.mult))
        .collect::<Vec<_>>();
    Relation::from_rows(schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    #[test]
    fn projection_accumulates_multiplicity() {
        let r = Relation::from_values(Schema::new(["a", "b"]), [[1i64, 10], [1, 20], [2, 30]]);
        let p = project(&r, &[(Expr::col(0), "a")]).normalize();
        assert_eq!(p.mult_of(&Tuple::from([1i64])), 2);
        assert_eq!(p.mult_of(&Tuple::from([2i64])), 1);
    }

    #[test]
    fn computed_projection() {
        let r = Relation::from_values(Schema::new(["a"]), [[3i64]]);
        let p = project(&r, &[(Expr::col(0).mul(Expr::lit(2)), "twice")]);
        assert_eq!(p.rows[0].tuple, Tuple::from([6i64]));
        assert_eq!(p.schema.cols(), &["twice"]);
    }

    #[test]
    fn project_cols_by_index() {
        let r = Relation::from_values(Schema::new(["a", "b", "c"]), [[1i64, 2, 3]]);
        let p = project_cols(&r, &[2, 0]);
        assert_eq!(p.schema.cols(), &["c", "a"]);
        assert_eq!(p.rows[0].tuple, Tuple::from([3i64, 1]));
    }
}
