//! Minimal CSV import/export for relations (no external dependencies).
//!
//! Good enough for loading benchmark datasets and dumping results: RFC-4180
//! quoting on write; on read, unquoted fields are typed by inference
//! (integer → float → string; empty → NULL), quoted fields are strings.

use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Parse one CSV line into fields (handles quotes and embedded commas).
fn split_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    let mut was_quoted = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    quoted = false;
                }
            }
            '"' if cur.is_empty() && !was_quoted => {
                quoted = true;
                was_quoted = true;
            }
            ',' if !quoted => {
                fields.push(finish(&mut cur, &mut was_quoted));
            }
            c => cur.push(c),
        }
    }
    fields.push(finish(&mut cur, &mut was_quoted));
    return fields;

    fn finish(cur: &mut String, was_quoted: &mut bool) -> String {
        let s = std::mem::take(cur);
        let s = if *was_quoted {
            format!("\u{0}{s}") // NUL marker: force string typing
        } else {
            s
        };
        *was_quoted = false;
        s
    }
}

fn parse_value(field: &str) -> Value {
    if let Some(stripped) = field.strip_prefix('\u{0}') {
        return Value::str(stripped);
    }
    let t = field.trim();
    if t.is_empty() {
        return Value::Null;
    }
    if let Ok(i) = t.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = t.parse::<f64>() {
        return Value::Float(f);
    }
    match t {
        "true" | "TRUE" => Value::Bool(true),
        "false" | "FALSE" => Value::Bool(false),
        _ => Value::str(t),
    }
}

/// Read a relation from CSV. The first line is the header (schema); every
/// data row gets multiplicity 1.
pub fn read_csv(reader: impl Read) -> io::Result<Relation> {
    read_csv_lines(reader).map(|(rel, _)| rel)
}

/// Like [`read_csv`], also returning the 1-based file line number of every
/// data row (blank lines are skipped, so a row's index and its source line
/// diverge — error reporting wants the latter). Ragged rows are rejected
/// with a line-spanned error naming the field count mismatch.
pub fn read_csv_lines(reader: impl Read) -> io::Result<(Relation, Vec<usize>)> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty csv"))??;
    let cols = split_line(&header)
        .into_iter()
        .map(|c| c.trim_start_matches('\u{0}').to_string())
        .collect::<Vec<_>>();
    let schema = Schema::new(cols);
    let mut rel = Relation::empty(schema.clone());
    let mut row_lines = Vec::new();
    for (li, line) in lines.enumerate() {
        let line = line?;
        let lineno = li + 2; // 1-based; line 1 is the header.
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_line(&line);
        if fields.len() != schema.arity() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "line {lineno}: ragged row — {} fields (cols 1\u{2013}{}), header has {}",
                    fields.len(),
                    fields.len(),
                    schema.arity()
                ),
            ));
        }
        rel.push(Tuple::new(fields.iter().map(|f| parse_value(f))), 1);
        row_lines.push(lineno);
    }
    Ok((rel, row_lines))
}

fn write_field(out: &mut impl Write, v: &Value) -> io::Result<()> {
    match v {
        Value::Null => Ok(()),
        Value::Str(s) => {
            if s.contains([',', '"', '\n']) {
                write!(out, "\"{}\"", s.replace('"', "\"\""))
            } else {
                write!(out, "{s}")
            }
        }
        other => write!(out, "{other}"),
    }
}

/// Write a relation as CSV (duplicates expanded; header included).
pub fn write_csv(rel: &Relation, mut out: impl Write) -> io::Result<()> {
    writeln!(out, "{}", rel.schema.cols().join(","))?;
    for row in &rel.rows {
        for _ in 0..row.mult {
            for (i, v) in row.tuple.0.iter().enumerate() {
                if i > 0 {
                    write!(out, ",")?;
                }
                write_field(&mut out, v)?;
            }
            writeln!(out)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let rel = Relation::from_rows(
            Schema::new(["id", "name", "score"]),
            [
                (
                    Tuple::new([Value::Int(1), Value::str("ada"), Value::Float(9.5)]),
                    1,
                ),
                (
                    Tuple::new([Value::Int(2), Value::str("grace, phd"), Value::Null]),
                    2,
                ),
            ],
        );
        let mut buf = Vec::new();
        write_csv(&rel, &mut buf).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert!(back.bag_eq(&rel), "{back}");
    }

    #[test]
    fn type_inference() {
        let csv = "a,b,c,d\n1,2.5,hello,\n-3,0,\"42\",true\n";
        let rel = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(rel.rows[0].tuple.get(0), &Value::Int(1));
        assert_eq!(rel.rows[0].tuple.get(1), &Value::Float(2.5));
        assert_eq!(rel.rows[0].tuple.get(2), &Value::str("hello"));
        assert!(rel.rows[0].tuple.get(3).is_null());
        // Quoted numerals stay strings.
        assert_eq!(rel.rows[1].tuple.get(2), &Value::str("42"));
        assert_eq!(rel.rows[1].tuple.get(3), &Value::Bool(true));
    }

    #[test]
    fn quoting_with_commas_and_quotes() {
        let rel = Relation::from_rows(
            Schema::new(["s"]),
            [(Tuple::new([Value::str("he said \"hi, there\"")]), 1)],
        );
        let mut buf = Vec::new();
        write_csv(&rel, &mut buf).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert!(back.bag_eq(&rel));
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = read_csv("a,b\n1\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
