//! Tuples: fixed-arity vectors of [`Value`]s.

use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;

/// A tuple over the universal domain `D^n`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(pub Vec<Value>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(vals: impl IntoIterator<Item = Value>) -> Self {
        Tuple(vals.into_iter().collect())
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Value at attribute index `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// Project onto the given attribute indices (`π_A t`).
    pub fn project(&self, idxs: &[usize]) -> Tuple {
        let mut vals = Vec::with_capacity(idxs.len());
        vals.extend(idxs.iter().map(|&i| self.0[i].clone()));
        Tuple(vals)
    }

    /// Concatenate with another tuple (`t ∘ t'`).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut vals = Vec::with_capacity(self.0.len() + other.0.len());
        vals.extend_from_slice(&self.0);
        vals.extend_from_slice(&other.0);
        Tuple(vals)
    }

    /// Extend with one more value. Pre-sized: `clone()` + `push` would
    /// reallocate on every call (clone capacity equals length).
    pub fn with(&self, v: Value) -> Tuple {
        let mut vals = Vec::with_capacity(self.0.len() + 1);
        vals.extend_from_slice(&self.0);
        vals.push(v);
        Tuple(vals)
    }

    /// Lexicographic comparison restricted to the given attribute indices.
    /// This is `<_O` of paper Sec. 4 when `idxs` lists the order-by
    /// attributes; callers realize `<total_O` by appending the remaining
    /// schema attributes to `idxs`.
    pub fn cmp_on(&self, other: &Tuple, idxs: &[usize]) -> Ordering {
        for &i in idxs {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl<V: Into<Value>, const N: usize> From<[V; N]> for Tuple {
    fn from(vals: [V; N]) -> Self {
        Tuple(vals.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Value::Int(v)))
    }

    #[test]
    fn project_and_concat() {
        let a = t(&[1, 2, 3]);
        assert_eq!(a.project(&[2, 0]), t(&[3, 1]));
        assert_eq!(a.concat(&t(&[9])), t(&[1, 2, 3, 9]));
        assert_eq!(a.with(Value::Int(7)), t(&[1, 2, 3, 7]));
    }

    #[test]
    fn cmp_on_subset_is_lexicographic() {
        let a = t(&[1, 5, 0]);
        let b = t(&[1, 3, 9]);
        assert_eq!(a.cmp_on(&b, &[0]), Ordering::Equal);
        assert_eq!(a.cmp_on(&b, &[0, 1]), Ordering::Greater);
        assert_eq!(a.cmp_on(&b, &[2, 1]), Ordering::Less);
    }

    #[test]
    fn from_array_sugar() {
        let a: Tuple = [1i64, 2].into();
        assert_eq!(a, t(&[1, 2]));
    }
}
