//! ℕ-relations: bags of tuples with explicit multiplicities.
//!
//! An ℕ-relation is a function from tuples to natural numbers with finite
//! support (paper Sec. 3). We store the support sparsely as `(tuple, mult)`
//! rows; [`Relation::normalize`] merges equal tuples by summing their
//! multiplicities, which is the canonical form used for bag equality.

use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// One row of the sparse encoding: a tuple plus its ℕ annotation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// The tuple.
    pub tuple: Tuple,
    /// Its multiplicity `R(t) ∈ ℕ`; rows with multiplicity 0 are dropped by
    /// [`Relation::normalize`].
    pub mult: u64,
}

/// A bag relation (ℕ-relation) with a schema.
#[derive(Clone, Debug)]
pub struct Relation {
    /// Attribute names.
    pub schema: Schema,
    /// Sparse support. Not necessarily normalized: the same tuple may appear
    /// in several rows.
    pub rows: Vec<Row>,
}

impl Relation {
    /// Empty relation over the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Build a relation from `(tuple, multiplicity)` pairs.
    pub fn from_rows(schema: Schema, rows: impl IntoIterator<Item = (Tuple, u64)>) -> Self {
        let rows = rows
            .into_iter()
            .map(|(tuple, mult)| Row { tuple, mult })
            .collect();
        Relation { schema, rows }
    }

    /// Build a relation of multiplicity-1 tuples from rows of values.
    pub fn from_values<V, const N: usize>(
        schema: Schema,
        rows: impl IntoIterator<Item = [V; N]>,
    ) -> Self
    where
        V: Into<Value>,
    {
        assert_eq!(schema.arity(), N, "schema arity does not match row width");
        Relation::from_rows(schema, rows.into_iter().map(|r| (Tuple::from(r), 1)))
    }

    /// Append one row.
    pub fn push(&mut self, tuple: Tuple, mult: u64) {
        debug_assert_eq!(tuple.arity(), self.schema.arity());
        self.rows.push(Row { tuple, mult });
    }

    /// Number of stored rows (not counting multiplicities).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff there are no stored rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total multiplicity `Σ_t R(t)` — the bag cardinality.
    pub fn total_mult(&self) -> u64 {
        self.rows.iter().map(|r| r.mult).sum()
    }

    /// The multiplicity `R(t)` of a specific tuple.
    pub fn mult_of(&self, t: &Tuple) -> u64 {
        self.rows
            .iter()
            .filter(|r| &r.tuple == t)
            .map(|r| r.mult)
            .sum()
    }

    /// Canonical form: merge duplicate tuples, drop multiplicity-0 rows and
    /// sort by tuple value. After `normalize`, bag equality is `==` on rows.
    pub fn normalize(mut self) -> Self {
        let mut map: HashMap<Tuple, u64> = HashMap::with_capacity(self.rows.len());
        for row in self.rows.drain(..) {
            if row.mult > 0 {
                *map.entry(row.tuple).or_insert(0) += row.mult;
            }
        }
        let mut rows: Vec<Row> = map
            .into_iter()
            .map(|(tuple, mult)| Row { tuple, mult })
            .collect();
        rows.sort_by(|a, b| a.tuple.cmp(&b.tuple));
        Relation {
            schema: self.schema,
            rows,
        }
    }

    /// Bag equality: same schema arity and same tuple → multiplicity map.
    pub fn bag_eq(&self, other: &Relation) -> bool {
        if self.schema.arity() != other.schema.arity() {
            return false;
        }
        let a = self.clone().normalize();
        let b = other.clone().normalize();
        a.rows == b.rows
    }

    /// Iterate `(tuple, mult)` with every duplicate expanded to its own
    /// unit-multiplicity tuple (the `ROW(R)` explosion of paper Fig. 3 keyed
    /// by the duplicate index `i`).
    pub fn iter_expanded(&self) -> impl Iterator<Item = (&Tuple, u64)> + '_ {
        self.rows
            .iter()
            .flat_map(|r| (0..r.mult).map(move |i| (&r.tuple, i)))
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [{} rows]", self.schema, self.rows.len())?;
        for row in &self.rows {
            writeln!(f, "  {} ×{}", row.tuple, row.mult)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(rows: &[(i64, i64, u64)]) -> Relation {
        Relation::from_rows(
            Schema::new(["a", "b"]),
            rows.iter().map(|&(a, b, m)| (Tuple::from([a, b]), m)),
        )
    }

    #[test]
    fn normalize_merges_and_drops_zero() {
        let r = rel(&[(1, 2, 1), (1, 2, 2), (3, 4, 0)]).normalize();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].mult, 3);
        assert_eq!(r.total_mult(), 3);
    }

    #[test]
    fn bag_eq_ignores_row_ordering_and_splitting() {
        let a = rel(&[(1, 2, 3), (5, 6, 1)]);
        let b = rel(&[(5, 6, 1), (1, 2, 1), (1, 2, 2)]);
        assert!(a.bag_eq(&b));
        assert!(!a.bag_eq(&rel(&[(1, 2, 2), (5, 6, 1)])));
    }

    #[test]
    fn mult_of_sums_duplicates() {
        let r = rel(&[(1, 2, 1), (1, 2, 4)]);
        assert_eq!(r.mult_of(&Tuple::from([1i64, 2])), 5);
        assert_eq!(r.mult_of(&Tuple::from([9i64, 9])), 0);
    }

    #[test]
    fn expansion_enumerates_duplicates() {
        let r = rel(&[(1, 1, 2), (2, 2, 1)]);
        let expanded: Vec<_> = r.iter_expanded().collect();
        assert_eq!(expanded.len(), 3);
        assert_eq!(expanded[0].1, 0);
        assert_eq!(expanded[1].1, 1);
    }
}
