//! The `ℕ³` multiplicity semiring annotating AU-DB tuples (paper Sec. 3.2).
//!
//! A triple `(k↓, k_sg, k↑)` encodes a lower bound on a tuple's certain
//! multiplicity, its multiplicity in the selected-guess world, and an upper
//! bound on its possible multiplicity. Addition and multiplication act
//! component-wise, making `ℕ³` a commutative semiring; the AU-DB query
//! semantics of \[23, 24\] lift `RA+` through these operations exactly as
//! Fig. 2 lifts it through ℕ.

use crate::range_value::TruthRange;
use std::fmt;
use std::ops::{Add, Mul};

/// A multiplicity triple `(k↓, k_sg, k↑)` with `k↓ ≤ k_sg ≤ k↑`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Mult3 {
    /// Guaranteed (certain) multiplicity.
    pub lb: u64,
    /// Multiplicity in the selected-guess world.
    pub sg: u64,
    /// Largest possible multiplicity.
    pub ub: u64,
}

impl Mult3 {
    /// The semiring zero `0_ℕ³ = (0,0,0)` — the tuple certainly absent.
    pub const ZERO: Mult3 = Mult3 {
        lb: 0,
        sg: 0,
        ub: 0,
    };

    /// The semiring one `1_ℕ³ = (1,1,1)` — the tuple certainly present once.
    pub const ONE: Mult3 = Mult3 {
        lb: 1,
        sg: 1,
        ub: 1,
    };

    /// Build a triple, checking `lb ≤ sg ≤ ub`.
    pub fn new(lb: u64, sg: u64, ub: u64) -> Self {
        assert!(
            lb <= sg && sg <= ub,
            "multiplicity invariant: ({lb},{sg},{ub})"
        );
        Mult3 { lb, sg, ub }
    }

    /// A certain multiplicity `(n, n, n)`.
    pub fn certain(n: u64) -> Self {
        Mult3 {
            lb: n,
            sg: n,
            ub: n,
        }
    }

    /// True iff the tuple is certainly absent.
    pub fn is_zero(&self) -> bool {
        self.ub == 0
    }

    /// Does a deterministic multiplicity fall inside the triple?
    pub fn bounds(&self, n: u64) -> bool {
        self.lb <= n && n <= self.ub
    }

    /// Filter by a selection condition's truth triple (\[24\] selection
    /// semantics): the certain multiplicity survives only if the condition
    /// certainly holds, the possible multiplicity only if it possibly holds.
    pub fn filter(&self, cond: TruthRange) -> Mult3 {
        Mult3 {
            lb: if cond.lb { self.lb } else { 0 },
            sg: if cond.sg { self.sg } else { 0 },
            ub: if cond.ub { self.ub } else { 0 },
        }
    }
}

impl Add for Mult3 {
    type Output = Mult3;
    fn add(self, rhs: Mult3) -> Mult3 {
        Mult3 {
            lb: self.lb + rhs.lb,
            sg: self.sg + rhs.sg,
            ub: self.ub + rhs.ub,
        }
    }
}

impl Mul for Mult3 {
    type Output = Mult3;
    fn mul(self, rhs: Mult3) -> Mult3 {
        Mult3 {
            lb: self.lb * rhs.lb,
            sg: self.sg * rhs.sg,
            ub: self.ub * rhs.ub,
        }
    }
}

impl fmt::Display for Mult3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.lb, self.sg, self.ub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semiring_laws_smoke() {
        let a = Mult3::new(1, 2, 3);
        let b = Mult3::new(0, 1, 4);
        let c = Mult3::new(2, 2, 2);
        assert_eq!(a + b, b + a);
        assert_eq!((a + b) + c, a + (b + c));
        assert_eq!(a * b, b * a);
        assert_eq!(a * (b + c), a * b + a * c);
        assert_eq!(a + Mult3::ZERO, a);
        assert_eq!(a * Mult3::ONE, a);
        assert_eq!(a * Mult3::ZERO, Mult3::ZERO);
    }

    #[test]
    fn filter_by_truth() {
        let m = Mult3::new(1, 2, 3);
        let t = TruthRange {
            lb: false,
            sg: true,
            ub: true,
        };
        assert_eq!(m.filter(t), Mult3::new(0, 2, 3));
        assert_eq!(m.filter(TruthRange::FALSE), Mult3::ZERO);
        assert_eq!(m.filter(TruthRange::TRUE), m);
    }

    #[test]
    #[should_panic(expected = "multiplicity invariant")]
    fn invariant_checked() {
        Mult3::new(3, 2, 1);
    }
}
