//! Memcmp-comparable sort keys: order-preserving byte encoding of values.
//!
//! The native one-pass algorithms (`audb-native`) and `normalize()` used to
//! compare order-by projections of corner tuples by materializing fresh
//! [`Tuple`]s — one heap `Vec<Value>` allocation *per comparison* inside
//! sorts and heap sifts. A [`SortKey`] instead encodes a projection of a
//! corner of an [`AuTuple`] into a single byte string whose plain `memcmp`
//! (`&[u8]` ordering) equals the lexicographic [`Value::cmp`] order of the
//! projected values. Keys are built **once per row**, and every subsequent
//! comparison is a branch-free byte compare with zero allocation.
//!
//! ## Encoding
//!
//! Each value is encoded self-delimitingly (the scheme is prefix-free, so
//! concatenation preserves lexicographic tuple order):
//!
//! | value | bytes |
//! |---|---|
//! | `Null` | `00` |
//! | `Bool(false)` / `Bool(true)` | `08` / `09` |
//! | numeric (non-NaN `Int`/`Float`) | `10` ∘ mono(f64) ∘ residual |
//! | `Float(NaN)` (any payload) | `18` |
//! | `Str(s)` | `20` ∘ escape(s) ∘ `00 00` |
//!
//! * **mono(f64)** is the standard monotone bijection from (non-NaN,
//!   `-0.0`-normalized) doubles to big-endian `u64`: flip all bits for
//!   negatives, flip the sign bit for positives.
//! * **residual** breaks ties *within* a class of numbers sharing the same
//!   double approximation `d` (an `i64` beyond 2⁵³ and the double it rounds
//!   to, or two such `i64`s): the exact integer value, sign-flipped
//!   big-endian. Values whose tie class is a singleton (fractional or
//!   out-of-`i64`-range doubles) use the neutral residual `0x8000…`,
//!   mirroring the saturating-cast comparison in `Value::cmp` exactly.
//! * **escape(s)** maps interior `00` bytes to `00 FF`, so the `00 00`
//!   terminator sorts below any continuation — shorter strings order
//!   before their extensions, as in `str` ordering.
//!
//! Consistency with `Value::cmp` (including cross-type int–float numeric
//! comparison and the NaN / `-0.0` equivalences) is pinned by property
//! tests in `tests/sortkey_props.rs`.

use crate::tuple::AuTuple;
use audb_rel::{Tuple, Value};
use std::cmp::Ordering;

/// Which corner of the hypercube to project.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Corner {
    /// The lower-bound corner `t↓`.
    Lb,
    /// The selected-guess point `t_sg`.
    Sg,
    /// The upper-bound corner `t↑`.
    Ub,
}

/// An order-preserving byte encoding of a value sequence; `Ord` on the raw
/// bytes equals lexicographic [`Value::cmp`] on the encoded values.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SortKey(Vec<u8>);

impl SortKey {
    /// Encode the values of `t` at `idxs`, in order.
    pub fn of_tuple(t: &Tuple, idxs: &[usize]) -> SortKey {
        let mut out = Vec::with_capacity(idxs.len() * 17);
        for &i in idxs {
            encode_value(t.get(i), &mut out);
        }
        SortKey(out)
    }

    /// Encode one corner of `t` projected on `idxs` — without materializing
    /// the corner tuple.
    pub fn of_corner(t: &AuTuple, corner: Corner, idxs: &[usize]) -> SortKey {
        let mut out = Vec::with_capacity(idxs.len() * 17);
        for &i in idxs {
            let r = &t.0[i];
            let v = match corner {
                Corner::Lb => &r.lb,
                Corner::Sg => &r.sg,
                Corner::Ub => &r.ub,
            };
            encode_value(v, &mut out);
        }
        SortKey(out)
    }

    /// The canonical whole-row key used by `normalize()`: all three corners
    /// over every attribute, `lb` first, then `ub`, then `sg` (the historic
    /// normalize order).
    pub fn of_row(t: &AuTuple) -> SortKey {
        let mut out = Vec::with_capacity(t.0.len() * 3 * 17);
        for r in &t.0 {
            encode_value(&r.lb, &mut out);
        }
        for r in &t.0 {
            encode_value(&r.ub, &mut out);
        }
        for r in &t.0 {
            encode_value(&r.sg, &mut out);
        }
        SortKey(out)
    }

    /// The canonical whole-row keys of **every** row of a columnar
    /// relation, encoded straight from the column slices in corner-major
    /// sweeps (each bound vector is walked contiguously; no per-row tuple
    /// is ever materialized). Typed lanes encode monomorphically — `i64`
    /// and `f64` lanes never construct a `Value`, and dictionary lanes
    /// encode each distinct string **once per pool** and then copy bytes
    /// per row. Key `i` equals `SortKey::of_row(&cols.tuple(i))` byte for
    /// byte (Int→F64 lane admission is key-exact: an integer stored in an
    /// `f64` lane has the same mono and residual bytes as its `Int` form).
    pub fn of_columns(cols: &crate::columns::AuColumns) -> Vec<SortKey> {
        let n = cols.len();
        let mut bufs: Vec<Vec<u8>> = (0..n)
            .map(|_| Vec::with_capacity(cols.arity() * 3 * 17))
            .collect();
        for corner in [Corner::Lb, Corner::Ub, Corner::Sg] {
            for c in 0..cols.arity() {
                encode_slice(cols.col(c).corner(corner), &mut bufs);
            }
        }
        bufs.into_iter().map(SortKey).collect()
    }

    /// Encode a single value.
    pub fn of_value(v: &Value) -> SortKey {
        let mut out = Vec::with_capacity(17);
        encode_value(v, &mut out);
        SortKey(out)
    }

    /// The raw key bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Byte-wise comparison (what `Ord` does, spelled out for call sites
    /// that hold `&SortKey`s from different containers).
    #[inline]
    pub fn cmp_bytes(&self, other: &SortKey) -> Ordering {
        self.0.cmp(&other.0)
    }
}

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x08;
const TAG_TRUE: u8 = 0x09;
const TAG_NUM: u8 = 0x10;
const TAG_NAN: u8 = 0x18;
const TAG_STR: u8 = 0x20;

/// Append the order-preserving encoding of `v` to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Int(i) => encode_i64(*i, out),
        Value::Float(f) => encode_f64(*f, out),
        Value::Str(s) => encode_str(s, out),
    }
}

/// The `Int` arm of [`encode_value`], monomorphic.
#[inline]
fn encode_i64(i: i64, out: &mut Vec<u8>) {
    out.push(TAG_NUM);
    out.extend_from_slice(&mono_f64(i as f64).to_be_bytes());
    out.extend_from_slice(&flip_i64(i).to_be_bytes());
}

/// The `Float` arm of [`encode_value`], monomorphic.
#[inline]
fn encode_f64(f: f64, out: &mut Vec<u8>) {
    if f.is_nan() {
        out.push(TAG_NAN);
    } else {
        out.push(TAG_NUM);
        out.extend_from_slice(&mono_f64(f).to_be_bytes());
        out.extend_from_slice(&float_residual(f).to_be_bytes());
    }
}

/// The `Str` arm of [`encode_value`], monomorphic.
#[inline]
fn encode_str(s: &str, out: &mut Vec<u8>) {
    out.push(TAG_STR);
    for &b in s.as_bytes() {
        out.push(b);
        if b == 0 {
            out.push(0xFF);
        }
    }
    out.extend_from_slice(&[0, 0]);
}

/// Append one column corner's encoding to every row buffer: a monomorphic
/// sweep per physical layout. Dictionary lanes pre-encode each distinct
/// string once and append bytes by code.
fn encode_slice(slice: crate::physical::PhysSlice<'_>, bufs: &mut [Vec<u8>]) {
    use crate::physical::PhysSlice;
    match slice {
        PhysSlice::I64(lane) => {
            for (buf, &i) in bufs.iter_mut().zip(lane) {
                encode_i64(i, buf);
            }
        }
        PhysSlice::F64(lane) => {
            for (buf, &f) in bufs.iter_mut().zip(lane) {
                encode_f64(f, buf);
            }
        }
        PhysSlice::Str { codes, pool } => {
            let encoded: Vec<Vec<u8>> = (0..pool.len())
                .map(|c| {
                    let mut b = Vec::new();
                    encode_str(pool.get(c as u32), &mut b);
                    b
                })
                .collect();
            for (buf, &code) in bufs.iter_mut().zip(codes) {
                buf.extend_from_slice(&encoded[code as usize]);
            }
        }
        PhysSlice::Generic(vals) => {
            for (buf, v) in bufs.iter_mut().zip(vals) {
                encode_value(v, buf);
            }
        }
    }
}

/// Monotone map from non-NaN doubles to `u64`: `a < b ⇔ mono(a) < mono(b)`
/// under numeric comparison, with `-0.0` normalized to `0.0`.
fn mono_f64(f: f64) -> u64 {
    let f = if f == 0.0 { 0.0 } else { f }; // collapse -0.0
    let bits = f.to_bits();
    if bits & (1 << 63) != 0 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Sign-flip an `i64` so unsigned byte order equals signed order.
fn flip_i64(i: i64) -> u64 {
    (i as u64) ^ (1 << 63)
}

/// Tie-break residual for a non-NaN float: numbers sharing its double
/// approximation are compared by exact integer value, with the same
/// integrality/range test (and saturating cast) `Value::cmp` uses.
fn float_residual(f: f64) -> u64 {
    if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
        flip_i64(f as i64)
    } else {
        // Fractional or out-of-range doubles share their tie class with no
        // integer; any constant works, the sign-flipped zero is neutral.
        1 << 63
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range_value::RangeValue;

    fn key(v: Value) -> SortKey {
        SortKey::of_value(&v)
    }

    #[test]
    fn key_order_matches_value_order_on_fixtures() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Float(f64::NEG_INFINITY),
            Value::Int(i64::MIN),
            Value::Float(-2.5),
            Value::Int(0),
            Value::Float(0.5),
            Value::Int(1),
            Value::Float(1e300),
            Value::Float(f64::INFINITY),
            Value::Float(f64::NAN),
            Value::str(""),
            Value::str("a"),
            Value::str("ab"),
            Value::str("b"),
        ];
        for a in &vals {
            for b in &vals {
                assert_eq!(
                    key(a.clone()).cmp(&key(b.clone())),
                    a.cmp(b),
                    "{a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn numeric_equivalences_collapse() {
        assert_eq!(key(Value::Int(7)), key(Value::Float(7.0)));
        assert_eq!(key(Value::Float(-0.0)), key(Value::Float(0.0)));
        assert_eq!(key(Value::Float(-0.0)), key(Value::Int(0)));
        assert_eq!(key(Value::Float(f64::NAN)), key(Value::Float(-f64::NAN)));
    }

    #[test]
    fn big_integers_keep_exact_order() {
        // 2^53 + 1 is not representable as f64; the residual must resolve.
        let a = Value::Int((1 << 53) + 1);
        let b = Value::Float((1u64 << 53) as f64);
        assert_eq!(key(a.clone()).cmp(&key(b.clone())), a.cmp(&b));
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Greater);
        let c = Value::Int(i64::MAX);
        let d = Value::Int(i64::MAX - 1);
        assert_eq!(key(c.clone()).cmp(&key(d.clone())), c.cmp(&d));
    }

    #[test]
    fn string_embedded_nuls_and_prefixes() {
        let cases = [
            Value::str("a"),
            Value::str("a\0"),
            Value::str("a\0b"),
            Value::str("a\u{1}"),
            Value::str("aa"),
        ];
        for a in &cases {
            for b in &cases {
                assert_eq!(
                    key(a.clone()).cmp(&key(b.clone())),
                    a.cmp(b),
                    "{a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn concatenation_preserves_tuple_order() {
        let tuples = [
            Tuple::new([Value::Int(1), Value::str("z")]),
            Tuple::new([Value::Int(1), Value::str("za")]),
            Tuple::new([Value::Int(2), Value::Null]),
            Tuple::new([Value::Float(1.5), Value::Bool(true)]),
        ];
        let idxs = [0usize, 1];
        for a in &tuples {
            for b in &tuples {
                assert_eq!(
                    SortKey::of_tuple(a, &idxs).cmp(&SortKey::of_tuple(b, &idxs)),
                    a.cmp(b),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn corner_keys_equal_materialized_corner_keys() {
        let t = AuTuple::new([
            RangeValue::new(1, 2, 3),
            RangeValue::certain(Value::str("x")),
        ]);
        let idxs = [0usize, 1];
        assert_eq!(
            SortKey::of_corner(&t, Corner::Lb, &idxs),
            SortKey::of_tuple(&t.lb_tuple(), &idxs)
        );
        assert_eq!(
            SortKey::of_corner(&t, Corner::Sg, &idxs),
            SortKey::of_tuple(&t.sg_tuple(), &idxs)
        );
        assert_eq!(
            SortKey::of_corner(&t, Corner::Ub, &idxs),
            SortKey::of_tuple(&t.ub_tuple(), &idxs)
        );
    }
}
