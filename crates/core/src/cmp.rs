//! Uncertain tuple comparison `⟦t <_O t'⟧` (paper Sec. 5).
//!
//! Sorting AU-DB tuples requires knowing, for a pair of hypercube tuples,
//! whether one *certainly*, *possibly*, or *in the selected-guess world*
//! precedes the other under the lexicographic order on the order-by
//! attributes (extended by the remaining schema attributes for the
//! deterministic tie-break `<total_O` of Sec. 4).
//!
//! Two semantics are provided:
//!
//! * [`CmpSemantics::Syntactic`] — the literal per-attribute recursion of
//!   Sec. 5 (`∃i: ∀j<i: ⟦t.A_j = t'.A_j⟧ ∧ ⟦t.A_i < t'.A_i⟧`, evaluated at
//!   each bound). This is sound but not tight: certainty of a lexicographic
//!   comparison that flows *through a possible tie* is not derivable (e.g.
//!   `([1/1/2], 2) < ([2/3/3], 15)` is certain — if the first attributes
//!   tie at 2, the second attribute decides — but no single attribute
//!   position witnesses it syntactically).
//! * [`CmpSemantics::IntervalLex`] (default) — the exact semantics for
//!   independent per-attribute ranges: because lexicographic order is
//!   monotone under component-wise dominance,
//!   `certainly(t <lex t') ⟺ ub(t) <lex lb(t')` and
//!   `possibly (t <lex t') ⟺ lb(t) <lex ub(t')`.
//!   This reproduces the paper's worked Example 6 exactly.
//!
//! Soundness relation (property-tested): `Syntactic.certain ⇒
//! IntervalLex.certain` and `IntervalLex.possible ⇒ Syntactic.possible`, so
//! bounds derived from `Syntactic` are always looser but still correct.

use crate::range_value::TruthRange;
use crate::tuple::AuTuple;
use std::cmp::Ordering;

/// Which comparison semantics to use for uncertain order predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CmpSemantics {
    /// Exact interval-lexicographic comparison (default).
    #[default]
    IntervalLex,
    /// The paper's per-attribute triple recursion (sound, looser).
    Syntactic,
}

/// Evaluate `⟦a <_O b⟧` on the attribute index list `idxs` (callers pass the
/// `<total_O` extension — order-by attributes followed by the rest).
pub fn tuple_lt(a: &AuTuple, b: &AuTuple, idxs: &[usize], sem: CmpSemantics) -> TruthRange {
    let sg = a.cmp_sg_on(b, idxs) == Ordering::Less;
    match sem {
        CmpSemantics::IntervalLex => TruthRange {
            lb: a.cmp_ub_vs_lb_on(b, idxs) == Ordering::Less,
            sg,
            ub: a.cmp_lb_vs_ub_on(b, idxs) == Ordering::Less,
        },
        CmpSemantics::Syntactic => TruthRange {
            lb: syntactic_lt(a, b, idxs, Bound::Certain),
            sg,
            ub: syntactic_lt(a, b, idxs, Bound::Possible),
        },
    }
}

#[derive(Clone, Copy)]
enum Bound {
    Certain,
    Possible,
}

/// `∃i: ∀j<i: eq(a_j, b_j) ∧ lt(a_i, b_i)` at the given bound.
fn syntactic_lt(a: &AuTuple, b: &AuTuple, idxs: &[usize], bound: Bound) -> bool {
    for (k, &i) in idxs.iter().enumerate() {
        let prefix_eq = idxs[..k].iter().all(|&j| {
            let e = a.get(j).eq_range(b.get(j));
            match bound {
                Bound::Certain => e.lb,
                Bound::Possible => e.ub,
            }
        });
        if !prefix_eq {
            return false;
        }
        let lt = a.get(i).lt(b.get(i));
        let lt_here = match bound {
            Bound::Certain => lt.lb,
            Bound::Possible => lt.ub,
        };
        if lt_here {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range_value::RangeValue;

    fn rv(lb: i64, sg: i64, ub: i64) -> RangeValue {
        RangeValue::new(lb, sg, ub)
    }

    fn t(vals: Vec<RangeValue>) -> AuTuple {
        AuTuple::new(vals)
    }

    /// Paper Sec. 5 example: t1 = ([1/1/3], a), t2 = ([2/2/2], b) on (A,B):
    /// ⟦t1 <_{A,B} t2⟧ = [⊥/⊤/⊤] under both semantics.
    #[test]
    fn paper_running_comparison() {
        let t1 = t(vec![rv(1, 1, 3), RangeValue::certain("a")]);
        let t2 = t(vec![rv(2, 2, 2), RangeValue::certain("b")]);
        for sem in [CmpSemantics::IntervalLex, CmpSemantics::Syntactic] {
            let r = tuple_lt(&t1, &t2, &[0, 1], sem);
            assert!(!r.lb && r.sg && r.ub, "{sem:?}: {r:?}");
        }
    }

    /// Example 6's tie-through case: ([1/1/2], 2) certainly precedes
    /// ([2/3/3], 15) under interval-lex (needed for pos↓(t2) = 2), while the
    /// syntactic recursion cannot certify it.
    #[test]
    fn interval_lex_is_tighter_through_possible_ties() {
        let t3 = t(vec![rv(1, 1, 2), RangeValue::certain(2i64)]);
        let t2 = t(vec![rv(2, 3, 3), RangeValue::certain(15i64)]);
        let exact = tuple_lt(&t3, &t2, &[0, 1], CmpSemantics::IntervalLex);
        assert!(exact.lb, "interval-lex certifies the certain precedence");
        let syn = tuple_lt(&t3, &t2, &[0, 1], CmpSemantics::Syntactic);
        assert!(!syn.lb, "syntactic recursion cannot");
        assert!(syn.ub && exact.ub);
    }

    /// Syntactic possible can be a (sound) over-approximation of the exact
    /// possible: a possible tie at attribute 1 lets it look at attribute 2
    /// even when no world realizes the tie-then-less pattern.
    #[test]
    fn syntactic_possible_over_approximates() {
        // a = ([5/5/5], [10/10/10]) vs b = ([0/0/5], [0/0/0]):
        // exact: a < b impossible (a1=5 ≥ b1 always; tie only at 5 and then
        // 10 < 0 fails). syntactic possible: possible-eq on attr 1 (overlap)
        // ∧ possible-lt on attr 2 = 10 < 0 = false; attr1 possible-lt:
        // 5 < 5 = false → also false here. Use a sharper instance:
        let a = t(vec![rv(0, 2, 5), rv(10, 10, 10)]);
        let b = t(vec![rv(0, 1, 5), rv(0, 0, 0)]);
        // exact possible: lb(a)=(0,10) <lex ub(b)=(5,0)? 0<5 → yes.
        let exact = tuple_lt(&a, &b, &[0, 1], CmpSemantics::IntervalLex);
        let syn = tuple_lt(&a, &b, &[0, 1], CmpSemantics::Syntactic);
        assert!(exact.ub && syn.ub);
        // And in general every exact-possible must be syntactic-possible.
    }

    #[test]
    fn identical_uncertain_tuples_possibly_precede_each_other() {
        let a = t(vec![rv(1, 2, 3)]);
        let r = tuple_lt(&a, &a, &[0], CmpSemantics::IntervalLex);
        assert!(!r.lb && !r.sg && r.ub);
    }

    #[test]
    fn certain_tuples_reduce_to_deterministic_order() {
        let a = t(vec![RangeValue::certain(1i64), RangeValue::certain(5i64)]);
        let b = t(vec![RangeValue::certain(1i64), RangeValue::certain(7i64)]);
        for sem in [CmpSemantics::IntervalLex, CmpSemantics::Syntactic] {
            let r = tuple_lt(&a, &b, &[0, 1], sem);
            assert!(r.lb && r.sg && r.ub);
            let r = tuple_lt(&b, &a, &[0, 1], sem);
            assert!(!r.lb && !r.sg && !r.ub);
        }
    }
}
