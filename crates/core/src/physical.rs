//! Typed physical column storage: the layer below [`crate::columns`].
//!
//! A bound vector of an [`crate::AuColumn`] used to be a `Vec<Value>` —
//! every cell paying the enum tag + padding (16 bytes for an `i64`) and
//! every kernel dispatching on the variant per cell. A [`PhysVec`] stores
//! the same logical value sequence in one of four *physical* layouts,
//! chosen at load/columnarize time:
//!
//! * [`PhysVec::I64`] — all cells are `Value::Int`: one flat `Vec<i64>`
//!   (8 bytes/cell, branch-free comparisons the autovectorizer can chew
//!   on);
//! * [`PhysVec::F64`] — all cells are `Value::Float`: one `Vec<f64>`
//!   (mixed int/float columns deliberately stay `Generic` — rewriting an
//!   `Int` as a double would silently change *arithmetic* over it, since
//!   the generic path adds `i64`s exactly while `f64` sums round past
//!   2⁵³; the csv loader may still choose `F64` for mixed numeric
//!   *text*, where it owns the load boundary and can reject
//!   non-representable integers);
//! * [`PhysVec::Str`] — all cells are strings: dictionary encoding, a
//!   flat `Vec<u32>` of codes into an interned [`StrPool`] (4 bytes/cell
//!   plus each distinct string once);
//! * [`PhysVec::Generic`] — anything else (nulls, booleans, mixed types):
//!   the historical `Vec<Value>`, kept as the always-correct fallback and
//!   as the parity oracle for the monomorphic kernels.
//!
//! Physical typing is an *encoding*, never a semantic change: `value(i)`
//! rebuilds exactly the `Value` that went in (property-pinned in
//! `tests/typed_columns.rs`), and every operation demotes to `Generic`
//! rather than lose information (a mismatched push, an append of unlike
//! layouts). [`CertBitmap`] is the per-row certainty companion of a
//! ranged column: bit `i` set iff `lb ≡ sg ≡ ub` at row `i`, so equality
//! kernels answer "is this cell a point?" without touching the lanes.

use audb_rel::Value;
use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Integers in `(-2⁵³, 2⁵³)` are exactly representable as `f64`, so a
/// loader that stores one in an [`PhysVec::F64`] lane preserves the total
/// value order (and the sort-key encoding) bit for bit. Used by the csv
/// loader's column-type inference; [`PhysVec::from_values`] itself never
/// rewrites an `Int` (see the module docs).
pub fn int_fits_f64(i: i64) -> bool {
    const LIM: i64 = 1 << 53;
    -LIM < i && i < LIM
}

/// The physical layout of one bound vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PhysType {
    /// Flat `i64` lanes.
    I64,
    /// Flat `f64` lanes.
    F64,
    /// Dictionary-encoded strings.
    Str,
    /// `Vec<Value>` fallback.
    Generic,
}

impl fmt::Display for PhysType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysType::I64 => write!(f, "i64"),
            PhysType::F64 => write!(f, "f64"),
            PhysType::Str => write!(f, "str"),
            PhysType::Generic => write!(f, "generic"),
        }
    }
}

/// An interned string dictionary: every distinct string stored once, rows
/// reference it by `u32` code. Codes are assigned in first-appearance
/// order, so equal pools built from the same sequence are identical.
#[derive(Clone, Debug, Default)]
pub struct StrPool {
    strs: Vec<Arc<str>>,
    index: HashMap<Arc<str>, u32>,
}

impl StrPool {
    /// Empty pool.
    pub fn new() -> StrPool {
        StrPool::default()
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strs.len()
    }

    /// True iff no string is interned.
    pub fn is_empty(&self) -> bool {
        self.strs.is_empty()
    }

    /// The code of `s`, interning it on first appearance.
    pub fn intern(&mut self, s: &Arc<str>) -> u32 {
        if let Some(&c) = self.index.get(s.as_ref()) {
            return c;
        }
        // lint: allow(no-panic-hot-path) -- a >4B-string dictionary exceeds the u32 code space by design; overflow here is unrepresentable data, not a recoverable state
        let c = u32::try_from(self.strs.len()).expect("string dictionary overflow");
        self.strs.push(s.clone());
        self.index.insert(s.clone(), c);
        c
    }

    /// The string behind `code`.
    pub fn get(&self, code: u32) -> &str {
        &self.strs[code as usize]
    }

    /// The interned `Arc` behind `code` (clones are reference bumps).
    pub fn arc(&self, code: u32) -> &Arc<str> {
        &self.strs[code as usize]
    }

    /// Measured heap footprint: the string payloads (each distinct string
    /// once), the `Arc` pointer table, and the intern index.
    pub fn heap_bytes(&self) -> usize {
        self.strs.capacity() * std::mem::size_of::<Arc<str>>()
            + self.strs.iter().map(|s| s.len()).sum::<usize>()
            + self.index.capacity() * (std::mem::size_of::<(Arc<str>, u32)>() + 8)
    }
}

impl PartialEq for StrPool {
    fn eq(&self, other: &Self) -> bool {
        self.strs == other.strs
    }
}

/// Per-row certainty bits of a ranged column: bit `i` set iff row `i`'s
/// range is a single point (`lb ≡ sg ≡ ub`). Maintained by construction
/// everywhere a ranged column is built, so kernels (and the storage
/// summary) never re-derive it from the lanes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CertBitmap {
    bits: Vec<u64>,
    len: usize,
}

impl CertBitmap {
    /// Empty bitmap.
    pub fn new() -> CertBitmap {
        CertBitmap::default()
    }

    /// An all-certain bitmap of `n` rows (a just-promoted column: every
    /// existing row was a point).
    pub fn all_certain(n: usize) -> CertBitmap {
        let mut bits = vec![!0u64; n.div_ceil(64)];
        if let Some(last) = bits.last_mut() {
            let tail = n % 64;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        CertBitmap { bits, len: n }
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no rows are covered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one row's certainty bit.
    pub fn push(&mut self, certain: bool) {
        let (w, b) = (self.len / 64, self.len % 64);
        if b == 0 {
            self.bits.push(0);
        }
        if certain {
            self.bits[w] |= 1u64 << b;
        }
        self.len += 1;
    }

    /// Row `i`'s certainty bit.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of certain rows.
    pub fn count_certain(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The bits at `idxs`, in order (the gather step of a selection).
    pub fn gather(&self, idxs: &[usize]) -> CertBitmap {
        let mut out = CertBitmap::new();
        out.bits.reserve(idxs.len().div_ceil(64));
        for &i in idxs {
            out.push(self.get(i));
        }
        out
    }

    /// Append every bit of `other`.
    pub fn append(&mut self, other: &CertBitmap) {
        for i in 0..other.len {
            self.push(other.get(i));
        }
    }

    /// Measured heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.bits.capacity() * 8
    }
}

/// One bound vector in its chosen physical layout. See the module docs
/// for the four layouts and the demotion rules.
#[derive(Clone, Debug)]
pub enum PhysVec {
    /// All-integer lanes.
    I64(Vec<i64>),
    /// Numeric lanes with floats (plus exactly-representable integers).
    F64(Vec<f64>),
    /// Dictionary-encoded strings.
    Str {
        /// Per-row codes into `pool`.
        codes: Vec<u32>,
        /// The interned dictionary.
        pool: StrPool,
    },
    /// The `Vec<Value>` fallback.
    Generic(Vec<Value>),
}

impl Default for PhysVec {
    fn default() -> Self {
        PhysVec::Generic(Vec::new())
    }
}

impl PhysVec {
    /// Empty, untyped (the first push decides the layout).
    pub fn new() -> PhysVec {
        PhysVec::default()
    }

    /// Empty with row capacity reserved.
    pub fn with_capacity(n: usize) -> PhysVec {
        PhysVec::Generic(Vec::with_capacity(n))
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        match self {
            PhysVec::I64(v) => v.len(),
            PhysVec::F64(v) => v.len(),
            PhysVec::Str { codes, .. } => codes.len(),
            PhysVec::Generic(v) => v.len(),
        }
    }

    /// True iff no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The physical layout tag.
    pub fn phys_type(&self) -> PhysType {
        match self {
            PhysVec::I64(_) => PhysType::I64,
            PhysVec::F64(_) => PhysType::F64,
            PhysVec::Str { .. } => PhysType::Str,
            PhysVec::Generic(_) => PhysType::Generic,
        }
    }

    /// The logical value at `i`, rebuilt exactly as stored (`Int`s stay
    /// `Int`s in `I64` lanes; `F64` lanes return `Float` — admission
    /// guarantees the logical value is unchanged under the total order).
    pub fn value(&self, i: usize) -> Value {
        match self {
            PhysVec::I64(v) => Value::Int(v[i]),
            PhysVec::F64(v) => Value::Float(v[i]),
            PhysVec::Str { codes, pool } => Value::Str(pool.arc(codes[i]).clone()),
            PhysVec::Generic(v) => v[i].clone(),
        }
    }

    /// Borrowed view of the whole vector.
    pub fn slice(&self) -> PhysSlice<'_> {
        match self {
            PhysVec::I64(v) => PhysSlice::I64(v),
            PhysVec::F64(v) => PhysSlice::F64(v),
            PhysVec::Str { codes, pool } => PhysSlice::Str { codes, pool },
            PhysVec::Generic(v) => PhysSlice::Generic(v),
        }
    }

    /// Choose a layout for `vals` (the columnarize-time inference):
    /// all-`Int` → `I64`; all-`Float` → `F64`; all-`Str` → dictionary;
    /// anything else — nulls, booleans, mixed classes (including mixed
    /// int/float, see the module docs) — stays `Generic`. The chosen
    /// layout stores every value *exactly* as it came in.
    pub fn from_values(vals: Vec<Value>) -> PhysVec {
        if vals.is_empty() {
            return PhysVec::Generic(vals);
        }
        let mut all_int = true;
        let mut all_float = true;
        let mut all_str = true;
        for v in &vals {
            match v {
                Value::Int(_) => {
                    all_str = false;
                    all_float = false;
                }
                Value::Float(_) => {
                    all_str = false;
                    all_int = false;
                }
                Value::Str(_) => {
                    all_int = false;
                    all_float = false;
                }
                _ => return PhysVec::Generic(vals),
            }
        }
        if all_int {
            // lint: allow(no-panic-hot-path) -- the layout scan above proved every value is Int
            PhysVec::I64(vals.iter().map(|v| v.as_i64().unwrap()).collect())
        } else if all_float {
            // lint: allow(no-panic-hot-path) -- the layout scan above proved every value is Float
            PhysVec::F64(vals.iter().map(|v| v.as_f64().unwrap()).collect())
        } else if all_str {
            let mut pool = StrPool::new();
            let codes = vals
                .iter()
                .map(|v| match v {
                    Value::Str(s) => pool.intern(s),
                    _ => unreachable!("all_str scanned"),
                })
                .collect();
            PhysVec::Str { codes, pool }
        } else {
            PhysVec::Generic(vals)
        }
    }

    /// Re-run layout inference on a `Generic` vector in place (the
    /// columnarize-time compaction step: a column that collected mixed
    /// pushes but ended up homogeneous gets its typed layout back).
    pub fn compact(&mut self) {
        if let PhysVec::Generic(v) = self {
            if !v.is_empty() {
                *self = PhysVec::from_values(std::mem::take(v));
            }
        }
    }

    /// Append one value, keeping the layout when it matches and demoting
    /// to `Generic` when it does not. An empty vector adopts the value's
    /// layout.
    pub fn push_value(&mut self, v: &Value) {
        if self.is_empty() {
            let cap = match self {
                PhysVec::Generic(g) => g.capacity(),
                _ => 0,
            };
            *self = match v {
                Value::Int(_) => PhysVec::I64(Vec::with_capacity(cap)),
                Value::Float(_) => PhysVec::F64(Vec::with_capacity(cap)),
                Value::Str(_) => PhysVec::Str {
                    codes: Vec::with_capacity(cap),
                    pool: StrPool::new(),
                },
                _ => PhysVec::Generic(Vec::with_capacity(cap)),
            };
        }
        match (&mut *self, v) {
            (PhysVec::I64(lanes), Value::Int(i)) => lanes.push(*i),
            (PhysVec::F64(lanes), Value::Float(f)) => lanes.push(*f),
            (PhysVec::Str { codes, pool }, Value::Str(s)) => codes.push(pool.intern(s)),
            (PhysVec::Generic(vals), v) => vals.push(v.clone()),
            _ => {
                self.demote();
                match self {
                    PhysVec::Generic(vals) => vals.push(v.clone()),
                    _ => unreachable!("demote() produces Generic"),
                }
            }
        }
    }

    /// Rewrite in place as the `Generic` layout (same logical values).
    pub fn demote(&mut self) {
        *self = PhysVec::Generic(self.to_values());
    }

    /// The same logical sequence in the `Generic` layout (the parity
    /// oracle the typed kernels are benchmarked and property-tested
    /// against).
    pub fn to_generic(&self) -> PhysVec {
        PhysVec::Generic(self.to_values())
    }

    /// Materialize every value (used by demotion and the row boundary).
    pub fn to_values(&self) -> Vec<Value> {
        (0..self.len()).map(|i| self.value(i)).collect()
    }

    /// Copy the values at `idxs` into a fresh vector of the same layout —
    /// primitive lanes are copied without touching a `Value`; dictionary
    /// gathers copy codes and share the pool via `Arc` bumps.
    pub fn gather(&self, idxs: &[usize]) -> PhysVec {
        match self {
            PhysVec::I64(v) => PhysVec::I64(idxs.iter().map(|&i| v[i]).collect()),
            PhysVec::F64(v) => PhysVec::F64(idxs.iter().map(|&i| v[i]).collect()),
            PhysVec::Str { codes, pool } => PhysVec::Str {
                codes: idxs.iter().map(|&i| codes[i]).collect(),
                pool: pool.clone(),
            },
            PhysVec::Generic(v) => PhysVec::Generic(idxs.iter().map(|&i| v[i].clone()).collect()),
        }
    }

    /// Move every value of `other` to the end of `self`. Like layouts
    /// extend lane-wise (dictionary appends re-intern the other pool's
    /// codes); unlike layouts demote to `Generic` first.
    pub fn append(&mut self, other: PhysVec) {
        if self.is_empty() {
            *self = other;
            return;
        }
        if other.is_empty() {
            return;
        }
        match (&mut *self, other) {
            (PhysVec::I64(a), PhysVec::I64(b)) => a.extend(b),
            (PhysVec::F64(a), PhysVec::F64(b)) => a.extend(b),
            (
                PhysVec::Str { codes, pool },
                PhysVec::Str {
                    codes: bc,
                    pool: bp,
                },
            ) => codes.extend(bc.iter().map(|&c| pool.intern(bp.arc(c)))),
            (PhysVec::Generic(a), PhysVec::Generic(b)) => a.extend(b),
            (_, other) => {
                self.demote();
                let mut vals = other.to_values();
                match self {
                    PhysVec::Generic(a) => a.append(&mut vals),
                    _ => unreachable!("demote() produces Generic"),
                }
            }
        }
    }

    /// Measured heap footprint in bytes: lane capacities (8 B/row for
    /// primitives, 4 B/row codes + the pool once for dictionaries) plus
    /// string payloads — the quantity the `bytes_per_row` bench column
    /// reports.
    pub fn heap_bytes(&self) -> usize {
        match self {
            PhysVec::I64(v) => v.capacity() * 8,
            PhysVec::F64(v) => v.capacity() * 8,
            PhysVec::Str { codes, pool } => codes.capacity() * 4 + pool.heap_bytes(),
            PhysVec::Generic(v) => {
                v.capacity() * std::mem::size_of::<Value>()
                    + v.iter().map(value_heap_bytes).sum::<usize>()
            }
        }
    }
}

impl PartialEq for PhysVec {
    /// Logical equality: the same value sequence, regardless of layout
    /// (an `I64` lane equals the `Generic` vector holding the same ints).
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && (0..self.len()).all(|i| self.value(i) == other.value(i))
    }
}

/// Bytes a value owns outside its inline representation.
pub(crate) fn value_heap_bytes(v: &Value) -> usize {
    match v {
        Value::Str(s) => s.len(),
        _ => 0,
    }
}

/// A borrowed view of (a contiguous range of) one bound vector, in its
/// physical layout — what [`crate::AuBatch::corner`] hands the kernels.
#[derive(Clone, Copy, Debug)]
pub enum PhysSlice<'a> {
    /// Integer lanes.
    I64(&'a [i64]),
    /// Float lanes.
    F64(&'a [f64]),
    /// Dictionary codes plus the pool they index.
    Str {
        /// Per-row codes.
        codes: &'a [u32],
        /// The dictionary the codes index.
        pool: &'a StrPool,
    },
    /// Fallback values.
    Generic(&'a [Value]),
}

impl<'a> PhysSlice<'a> {
    /// Number of rows in view.
    pub fn len(&self) -> usize {
        match self {
            PhysSlice::I64(v) => v.len(),
            PhysSlice::F64(v) => v.len(),
            PhysSlice::Str { codes, .. } => codes.len(),
            PhysSlice::Generic(v) => v.len(),
        }
    }

    /// True iff the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The physical layout tag.
    pub fn phys_type(&self) -> PhysType {
        match self {
            PhysSlice::I64(_) => PhysType::I64,
            PhysSlice::F64(_) => PhysType::F64,
            PhysSlice::Str { .. } => PhysType::Str,
            PhysSlice::Generic(_) => PhysType::Generic,
        }
    }

    /// The logical value at `i` (owned; an `Arc` bump for strings).
    pub fn value(&self, i: usize) -> Value {
        match self {
            PhysSlice::I64(v) => Value::Int(v[i]),
            PhysSlice::F64(v) => Value::Float(v[i]),
            PhysSlice::Str { codes, pool } => Value::Str(pool.arc(codes[i]).clone()),
            PhysSlice::Generic(v) => v[i].clone(),
        }
    }

    /// The sub-view over `start..start + len`.
    pub fn subslice(&self, start: usize, len: usize) -> PhysSlice<'a> {
        match self {
            PhysSlice::I64(v) => PhysSlice::I64(&v[start..start + len]),
            PhysSlice::F64(v) => PhysSlice::F64(&v[start..start + len]),
            PhysSlice::Str { codes, pool } => PhysSlice::Str {
                codes: &codes[start..start + len],
                pool,
            },
            PhysSlice::Generic(v) => PhysSlice::Generic(&v[start..start + len]),
        }
    }

    /// The view as `Value`s: zero-copy for the `Generic` layout, an owned
    /// materialization otherwise (the generic-fallback boundary of the
    /// expression kernels).
    pub fn to_values(&self) -> Cow<'a, [Value]> {
        match self {
            PhysSlice::Generic(v) => Cow::Borrowed(v),
            other => Cow::Owned((0..other.len()).map(|i| other.value(i)).collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_picks_typed_layouts() {
        let ints = PhysVec::from_values(vec![Value::Int(1), Value::Int(-2)]);
        assert_eq!(ints.phys_type(), PhysType::I64);
        let floats = PhysVec::from_values(vec![Value::Float(0.5), Value::Float(-1.0)]);
        assert_eq!(floats.phys_type(), PhysType::F64);
        // Mixed int/float stays Generic: conversion never rewrites an Int
        // as a double (exact i64 arithmetic must survive the layout).
        let mixed_num = PhysVec::from_values(vec![Value::Int(1), Value::Float(2.5)]);
        assert_eq!(mixed_num.phys_type(), PhysType::Generic);
        let strs = PhysVec::from_values(vec![Value::str("a"), Value::str("a"), Value::str("b")]);
        assert_eq!(strs.phys_type(), PhysType::Str);
        match &strs {
            PhysVec::Str { codes, pool } => {
                assert_eq!(codes, &[0, 0, 1]);
                assert_eq!(pool.len(), 2);
            }
            _ => unreachable!(),
        }
        let mixed = PhysVec::from_values(vec![Value::Int(1), Value::str("a")]);
        assert_eq!(mixed.phys_type(), PhysType::Generic);
        let nullable = PhysVec::from_values(vec![Value::Int(1), Value::Null]);
        assert_eq!(nullable.phys_type(), PhysType::Generic);
        // Huge integers are no obstacle to the all-int layout.
        let big = (1i64 << 53) + 1;
        let v = PhysVec::from_values(vec![Value::Int(big), Value::Int(0)]);
        assert_eq!(v.phys_type(), PhysType::I64);
        assert_eq!(v.value(0), Value::Int(big));
    }

    #[test]
    fn values_roundtrip_through_every_layout() {
        for vals in [
            vec![Value::Int(3), Value::Int(-1)],
            vec![Value::Float(0.5), Value::Float(2.0)],
            vec![Value::str("x"), Value::str(""), Value::str("x")],
            vec![Value::Null, Value::Bool(true), Value::Int(1)],
        ] {
            let pv = PhysVec::from_values(vals.clone());
            assert_eq!(pv.len(), vals.len());
            for (i, v) in vals.iter().enumerate() {
                assert_eq!(&pv.value(i), v, "{vals:?} @ {i}");
            }
            assert_eq!(pv, pv.to_generic());
            // Gather keeps the layout and the values.
            let g = pv.gather(&[vals.len() - 1, 0]);
            assert_eq!(g.phys_type(), pv.phys_type());
            assert_eq!(g.value(0), vals[vals.len() - 1]);
            assert_eq!(g.value(1), vals[0]);
        }
    }

    #[test]
    fn push_types_then_demotes_on_mismatch() {
        let mut v = PhysVec::with_capacity(4);
        v.push_value(&Value::Int(1));
        assert_eq!(v.phys_type(), PhysType::I64);
        v.push_value(&Value::Int(2));
        // A float does not fit the i64 lanes: the vector demotes, values
        // intact.
        v.push_value(&Value::Float(0.5));
        assert_eq!(v.phys_type(), PhysType::Generic);
        assert_eq!(
            v.to_values(),
            vec![Value::Int(1), Value::Int(2), Value::Float(0.5)]
        );
        // Mixed numeric stays Generic even through compaction (exactness
        // over typing); a homogeneous Generic vector re-types.
        v.compact();
        assert_eq!(v.phys_type(), PhysType::Generic);
        let mut f = PhysVec::Generic(vec![Value::Float(1.5), Value::Float(2.5)]);
        f.compact();
        assert_eq!(f.phys_type(), PhysType::F64);
        f.push_value(&Value::Float(7.0));
        assert_eq!(f.value(2), Value::Float(7.0));
    }

    #[test]
    fn append_reinterns_and_demotes() {
        let mut a = PhysVec::from_values(vec![Value::str("x"), Value::str("y")]);
        let b = PhysVec::from_values(vec![Value::str("y"), Value::str("z")]);
        a.append(b);
        match &a {
            PhysVec::Str { codes, pool } => {
                assert_eq!(codes, &[0, 1, 1, 2]);
                assert_eq!(pool.len(), 3);
            }
            _ => panic!("dictionary append stays dictionary"),
        }
        let mut a = PhysVec::from_values(vec![Value::Int(1)]);
        a.append(PhysVec::from_values(vec![Value::str("s")]));
        assert_eq!(a.phys_type(), PhysType::Generic);
        assert_eq!(a.to_values(), vec![Value::Int(1), Value::str("s")]);
        // Appending into an empty vector adopts the incoming layout.
        let mut e = PhysVec::new();
        e.append(PhysVec::from_values(vec![Value::Int(9)]));
        assert_eq!(e.phys_type(), PhysType::I64);
    }

    #[test]
    fn bitmap_push_get_gather_append() {
        let mut bm = CertBitmap::new();
        for i in 0..130 {
            bm.push(i % 3 == 0);
        }
        assert_eq!(bm.len(), 130);
        for i in 0..130 {
            assert_eq!(bm.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(bm.count_certain(), (0..130).filter(|i| i % 3 == 0).count());
        let g = bm.gather(&[0, 1, 129]);
        assert_eq!((g.get(0), g.get(1), g.get(2)), (true, false, true));
        let mut all = CertBitmap::all_certain(70);
        assert_eq!(all.count_certain(), 70);
        all.append(&g);
        assert_eq!(all.len(), 73);
        assert!(!all.get(71));
        assert_eq!(CertBitmap::all_certain(64).count_certain(), 64);
        assert_eq!(CertBitmap::all_certain(0).len(), 0);
    }

    #[test]
    fn typed_lanes_are_smaller_than_generic() {
        let ints = PhysVec::from_values((0..100).map(Value::Int).collect());
        assert!(ints.heap_bytes() < ints.to_generic().heap_bytes());
        let strs = PhysVec::from_values((0..100).map(|i| Value::str(["a", "b"][i % 2])).collect());
        assert!(strs.heap_bytes() < strs.to_generic().heap_bytes());
    }
}
