//! Column statistics and zone maps: the bound-aware summaries behind the
//! engine's cost-based planning and batch pruning.
//!
//! AU-DB columns already carry `[lb, ub]` bounds per cell, so min/max
//! statistics fall out of the columnar layout for free: a column's
//! *bound box* is the minimum of its lb lane and the maximum of its ub
//! lane, and every deterministic world's value lies inside it. Statistics
//! are kept at two granularities:
//!
//! * **Column level** ([`ColumnStats`]): bound box, certain fraction,
//!   null count and a linear-counting distinct estimate over the
//!   selected-guess lane — the inputs to selectivity estimation and
//!   cost-based mode choice.
//! * **Zone level** ([`ZoneMap`], one per [`ZONE_ROWS`]-row block): bound
//!   box and certain count per zone, aligned with the executor's batch
//!   chunking so a fused select stage can skip whole batches.
//!
//! ## The zone pruning rule
//!
//! [`zone_truth`] evaluates a predicate over a zone's bound boxes instead
//! of its rows, returning a sound three-valued verdict:
//!
//! * [`ZoneVerdict::AllFalse`] — for **every** row in the zone the truth
//!   triple's upper bound is `false` (the predicate is not even possibly
//!   true), so a selection drops every row: the batch can be skipped.
//! * [`ZoneVerdict::AllTrue`] — for every row the triple is certainly
//!   `TRUE`, so the selection's multiplicity filter is the identity: the
//!   predicate evaluation can be short-circuited (the certainty bitmap is
//!   untouched — no value is rewritten).
//! * [`ZoneVerdict::Mixed`] — no conclusion; evaluate normally.
//!
//! Soundness leans on the same bound-preservation argument as
//! [`crate::RangeExpr::eval`]: a comparison `a < b` is certainly true for
//! every row when `max(a.ub) < min(b.lb)` over the zone, and certainly
//! not-even-possibly true when `min(a.lb) ≥ max(b.ub)`; connectives
//! combine verdicts by Kleene logic. Anything the interval analysis
//! cannot bound (multiplication, string/float arithmetic, predicates
//! used as values) degrades to `Mixed`, never to a wrong verdict —
//! property-pinned against per-row [`crate::RangeExpr::truth`] in this
//! module's tests and in `tests/pipeline_equivalence.rs`.

use crate::columns::AuColumns;
use crate::expr::RangeExpr;
use crate::relation::AuRelation;
use crate::sortkey::Corner;
use audb_rel::{CmpOp, Value};
use std::hash::{Hash, Hasher};

/// Rows per statistics zone. Matches the executor's default batch size so
/// batch `i` at the default size is exactly zone `i`; other batch sizes
/// consult every overlapping zone.
pub const ZONE_ROWS: usize = 1024;

/// Bit width of the linear-counting distinct sketch (64 × u64).
const SKETCH_BITS: usize = 4096;

/// Per-zone summary of one column: the bound box and certain count of one
/// contiguous [`ZONE_ROWS`]-row block.
#[derive(Clone, Debug, PartialEq)]
pub struct ZoneMap {
    /// Rows in the zone (only the last zone may be short).
    pub rows: usize,
    /// Minimum of the lb lane over the zone.
    pub min_lb: Value,
    /// Maximum of the ub lane over the zone.
    pub max_ub: Value,
    /// Rows whose cell is a point (`lb ≡ sg ≡ ub`).
    pub certain: usize,
}

/// One column's statistics block: whole-column aggregates plus the
/// per-zone maps.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnStats {
    /// Total rows (equals the table's row count).
    pub rows: usize,
    /// Rows whose cell is a point.
    pub certain: usize,
    /// Rows whose selected-guess value is `NULL`.
    pub nulls: usize,
    /// Linear-counting estimate of distinct selected-guess values
    /// (capped at `rows`).
    pub distinct_estimate: usize,
    /// Minimum of the lb lane (`None` for an empty column).
    pub min_lb: Option<Value>,
    /// Maximum of the ub lane (`None` for an empty column).
    pub max_ub: Option<Value>,
    /// One [`ZoneMap`] per [`ZONE_ROWS`]-row block, in row order.
    pub zones: Vec<ZoneMap>,
}

impl ColumnStats {
    /// Fraction of rows whose cell is a point, in `[0, 1]` (1.0 for an
    /// empty column: there is no uncertain cell).
    pub fn certain_fraction(&self) -> f64 {
        if self.rows == 0 {
            1.0
        } else {
            self.certain as f64 / self.rows as f64
        }
    }

    /// True iff every cell is a point.
    pub fn all_certain(&self) -> bool {
        self.certain == self.rows
    }
}

/// A table's statistics: one [`ColumnStats`] block per attribute, all
/// sharing the same zone partition.
#[derive(Clone, Debug, PartialEq)]
pub struct TableStats {
    /// Stored row count (pre-normalization, like the relation itself).
    pub rows: usize,
    /// Per-attribute statistics, in schema order.
    pub cols: Vec<ColumnStats>,
}

/// Streaming builder for one column: all aggregates in one sweep.
struct ColBuilder {
    rows: usize,
    certain: usize,
    nulls: usize,
    min_lb: Option<Value>,
    max_ub: Option<Value>,
    sketch: [u64; SKETCH_BITS / 64],
    zones: Vec<ZoneMap>,
    zone_rows: usize,
    zone_certain: usize,
    zone_min: Option<Value>,
    zone_max: Option<Value>,
}

impl ColBuilder {
    fn new() -> ColBuilder {
        ColBuilder {
            rows: 0,
            certain: 0,
            nulls: 0,
            min_lb: None,
            max_ub: None,
            sketch: [0u64; SKETCH_BITS / 64],
            zones: Vec::new(),
            zone_rows: 0,
            zone_certain: 0,
            zone_min: None,
            zone_max: None,
        }
    }

    fn push(&mut self, lb: &Value, sg: &Value, ub: &Value, is_certain: bool) {
        self.rows += 1;
        if is_certain {
            self.certain += 1;
            self.zone_certain += 1;
        }
        if matches!(sg, Value::Null) {
            self.nulls += 1;
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        sg.hash(&mut h);
        let bit = (h.finish() as usize) % SKETCH_BITS;
        self.sketch[bit / 64] |= 1u64 << (bit % 64);
        min_into(&mut self.min_lb, lb);
        max_into(&mut self.max_ub, ub);
        min_into(&mut self.zone_min, lb);
        max_into(&mut self.zone_max, ub);
        self.zone_rows += 1;
        if self.zone_rows == ZONE_ROWS {
            self.close_zone();
        }
    }

    fn close_zone(&mut self) {
        if self.zone_rows == 0 {
            return;
        }
        self.zones.push(ZoneMap {
            rows: self.zone_rows,
            min_lb: self.zone_min.take().unwrap_or(Value::Null),
            max_ub: self.zone_max.take().unwrap_or(Value::Null),
            certain: self.zone_certain,
        });
        self.zone_rows = 0;
        self.zone_certain = 0;
    }

    fn finish(mut self) -> ColumnStats {
        self.close_zone();
        // Linear counting: m ln(m / empty), exact when no bit collides.
        let ones: u32 = self.sketch.iter().map(|w| w.count_ones()).sum();
        let m = SKETCH_BITS as f64;
        let empty = m - ones as f64;
        let distinct = if self.rows == 0 {
            0
        } else if empty < 1.0 {
            self.rows
        } else {
            ((m * (m / empty).ln()).round() as usize)
                .max(ones as usize)
                .min(self.rows)
        };
        ColumnStats {
            rows: self.rows,
            certain: self.certain,
            nulls: self.nulls,
            distinct_estimate: distinct,
            min_lb: self.min_lb,
            max_ub: self.max_ub,
            zones: self.zones,
        }
    }
}

fn min_into(slot: &mut Option<Value>, v: &Value) {
    match slot {
        Some(cur) if &*cur <= v => {}
        _ => *slot = Some(v.clone()),
    }
}

fn max_into(slot: &mut Option<Value>, v: &Value) {
    match slot {
        Some(cur) if &*cur >= v => {}
        _ => *slot = Some(v.clone()),
    }
}

impl TableStats {
    /// Compute statistics from a columnar relation: one contiguous sweep
    /// per bound lane (certain columns read one lane for all three
    /// corners).
    pub fn of_columns(cols: &AuColumns) -> TableStats {
        let n = cols.len();
        let mut out = Vec::with_capacity(cols.arity());
        for c in 0..cols.arity() {
            let col = cols.col(c);
            let lb = col.corner(Corner::Lb);
            let sg = col.corner(Corner::Sg);
            let ub = col.corner(Corner::Ub);
            let mut b = ColBuilder::new();
            for i in 0..n {
                b.push(&lb.value(i), &sg.value(i), &ub.value(i), col.certain_at(i));
            }
            out.push(b.finish());
        }
        TableStats { rows: n, cols: out }
    }

    /// Compute statistics from a row relation in one row sweep — no
    /// transposition. Produces exactly what [`TableStats::of_columns`]
    /// produces for the columnarized relation (property-pinned below).
    pub fn of_relation(rel: &AuRelation) -> TableStats {
        let rows = rel.rows();
        let mut builders: Vec<ColBuilder> =
            (0..rel.schema.arity()).map(|_| ColBuilder::new()).collect();
        for row in rows {
            for (b, rv) in builders.iter_mut().zip(&row.tuple.0) {
                b.push(&rv.lb, &rv.sg, &rv.ub, rv.is_certain());
            }
        }
        TableStats {
            rows: rows.len(),
            cols: builders.into_iter().map(ColBuilder::finish).collect(),
        }
    }

    /// Number of zones ([`ZONE_ROWS`]-row blocks) the table spans.
    pub fn zone_count(&self) -> usize {
        self.rows.div_ceil(ZONE_ROWS)
    }

    /// Rows in zone `z` (only the last zone may be short).
    pub fn zone_rows(&self, z: usize) -> usize {
        let start = z * ZONE_ROWS;
        ZONE_ROWS.min(self.rows.saturating_sub(start))
    }
}

/// Sound three-valued zone-level verdict of a predicate (see the module
/// docs for the pruning rule each variant licenses).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ZoneVerdict {
    /// Every row's truth triple is `FALSE` — a selection drops the zone.
    AllFalse,
    /// No conclusion; evaluate per row.
    Mixed,
    /// Every row's truth triple is `TRUE` — a selection keeps the zone
    /// with unchanged multiplicities.
    AllTrue,
}

impl ZoneVerdict {
    /// Kleene conjunction.
    fn and(self, other: ZoneVerdict) -> ZoneVerdict {
        use ZoneVerdict::*;
        match (self, other) {
            (AllFalse, _) | (_, AllFalse) => AllFalse,
            (AllTrue, AllTrue) => AllTrue,
            _ => Mixed,
        }
    }

    /// Kleene disjunction.
    fn or(self, other: ZoneVerdict) -> ZoneVerdict {
        use ZoneVerdict::*;
        match (self, other) {
            (AllTrue, _) | (_, AllTrue) => AllTrue,
            (AllFalse, AllFalse) => AllFalse,
            _ => Mixed,
        }
    }

    /// Negation (swaps the definite verdicts).
    fn not(self) -> ZoneVerdict {
        match self {
            ZoneVerdict::AllFalse => ZoneVerdict::AllTrue,
            ZoneVerdict::AllTrue => ZoneVerdict::AllFalse,
            ZoneVerdict::Mixed => ZoneVerdict::Mixed,
        }
    }
}

/// A conservative interval enclosing every bound of an expression's value
/// over every row of one zone.
struct ZoneBox {
    lo: Value,
    hi: Value,
}

/// Interval of a value expression over one zone, `None` when the analysis
/// cannot bound it (which degrades the verdict to `Mixed`, never to a
/// wrong answer). Arithmetic stays integer-only and checked: overflow in
/// `Value` semantics promotes to float mid-expression, which would break
/// endpoint monotonicity, so it bails instead.
fn zone_box(e: &RangeExpr, stats: &TableStats, z: usize) -> Option<ZoneBox> {
    match e {
        RangeExpr::Col(i) => {
            let zone = stats.cols.get(*i)?.zones.get(z)?;
            Some(ZoneBox {
                lo: zone.min_lb.clone(),
                hi: zone.max_ub.clone(),
            })
        }
        RangeExpr::Lit(v) => Some(ZoneBox {
            lo: v.lb.clone(),
            hi: v.ub.clone(),
        }),
        RangeExpr::Add(a, b) => {
            let (a, b) = (zone_box(a, stats, z)?, zone_box(b, stats, z)?);
            Some(ZoneBox {
                lo: int_add(&a.lo, &b.lo)?,
                hi: int_add(&a.hi, &b.hi)?,
            })
        }
        RangeExpr::Sub(a, b) => {
            let (a, b) = (zone_box(a, stats, z)?, zone_box(b, stats, z)?);
            Some(ZoneBox {
                lo: int_sub(&a.lo, &b.hi)?,
                hi: int_sub(&a.hi, &b.lo)?,
            })
        }
        RangeExpr::Neg(a) => {
            let a = zone_box(a, stats, z)?;
            Some(ZoneBox {
                lo: int_neg(&a.hi)?,
                hi: int_neg(&a.lo)?,
            })
        }
        // Multiplication mixes signs (four-corner extrema) and predicates
        // evaluate to boolean ranges; neither is worth bounding here.
        _ => None,
    }
}

fn int_add(a: &Value, b: &Value) -> Option<Value> {
    match (a, b) {
        (Value::Int(a), Value::Int(b)) => a.checked_add(*b).map(Value::Int),
        _ => None,
    }
}

fn int_sub(a: &Value, b: &Value) -> Option<Value> {
    match (a, b) {
        (Value::Int(a), Value::Int(b)) => a.checked_sub(*b).map(Value::Int),
        _ => None,
    }
}

fn int_neg(a: &Value) -> Option<Value> {
    match a {
        Value::Int(a) => a.checked_neg().map(Value::Int),
        _ => None,
    }
}

/// Evaluate a predicate over zone `z`'s bound boxes. Sound for every row
/// of the zone (see the module docs); anything unbounded is `Mixed`.
pub fn zone_truth(pred: &RangeExpr, stats: &TableStats, z: usize) -> ZoneVerdict {
    match pred {
        RangeExpr::Cmp(op, a, b) => {
            let (Some(a), Some(b)) = (zone_box(a, stats, z), zone_box(b, stats, z)) else {
                return ZoneVerdict::Mixed;
            };
            cmp_verdict(*op, &a, &b)
        }
        RangeExpr::And(a, b) => zone_truth(a, stats, z).and(zone_truth(b, stats, z)),
        RangeExpr::Or(a, b) => zone_truth(a, stats, z).or(zone_truth(b, stats, z)),
        RangeExpr::Not(a) => zone_truth(a, stats, z).not(),
        _ => ZoneVerdict::Mixed,
    }
}

/// Verdict of one comparison over two zone boxes, mirroring the per-row
/// truth semantics ([`crate::RangeValue::lt`] and friends) over the same
/// total `Value` order.
fn cmp_verdict(op: CmpOp, a: &ZoneBox, b: &ZoneBox) -> ZoneVerdict {
    match op {
        CmpOp::Lt => lt_verdict(a, b, true),
        CmpOp::Le => lt_verdict(a, b, false),
        CmpOp::Gt => lt_verdict(b, a, true),
        CmpOp::Ge => lt_verdict(b, a, false),
        CmpOp::Eq => eq_verdict(a, b),
        CmpOp::Ne => eq_verdict(a, b).not(),
    }
}

/// `a < b` (`strict`) or `a ≤ b`: certainly true for every row when even
/// the largest possible left value beats the smallest possible right one;
/// certainly impossible when even the smallest left never does.
fn lt_verdict(a: &ZoneBox, b: &ZoneBox, strict: bool) -> ZoneVerdict {
    let all_true = if strict { a.hi < b.lo } else { a.hi <= b.lo };
    let all_false = if strict { a.lo >= b.hi } else { a.lo > b.hi };
    if all_true {
        ZoneVerdict::AllTrue
    } else if all_false {
        ZoneVerdict::AllFalse
    } else {
        ZoneVerdict::Mixed
    }
}

/// `a = b`: impossible when the boxes are disjoint; certain only when both
/// boxes collapse to the same single point (then every row is that exact
/// certain value).
fn eq_verdict(a: &ZoneBox, b: &ZoneBox) -> ZoneVerdict {
    if a.hi < b.lo || b.hi < a.lo {
        ZoneVerdict::AllFalse
    } else if a.lo == a.hi && b.lo == b.hi && a.lo == b.lo {
        ZoneVerdict::AllTrue
    } else {
        ZoneVerdict::Mixed
    }
}

/// Verdict for a contiguous row range `[start, start + len)` (an executor
/// batch): the combination of every overlapping zone — definite only when
/// every zone agrees.
pub fn range_verdict(
    pred: &RangeExpr,
    stats: &TableStats,
    start: usize,
    len: usize,
) -> ZoneVerdict {
    if len == 0 || stats.rows == 0 {
        return ZoneVerdict::Mixed;
    }
    let z0 = start / ZONE_ROWS;
    let z1 = (start + len - 1) / ZONE_ROWS;
    let mut verdict = zone_truth(pred, stats, z0);
    for z in (z0 + 1)..=z1 {
        if verdict == ZoneVerdict::Mixed {
            return verdict;
        }
        let next = zone_truth(pred, stats, z);
        if next != verdict {
            return ZoneVerdict::Mixed;
        }
        verdict = next;
    }
    verdict
}

/// Estimated fraction of rows a selection keeps, from zone verdicts:
/// definite zones count fully or not at all, mixed zones count half.
/// `1.0` when there are no statistics to consult (empty table).
pub fn estimate_selectivity(pred: &RangeExpr, stats: &TableStats) -> f64 {
    if stats.rows == 0 {
        return 1.0;
    }
    let mut kept = 0.0f64;
    for z in 0..stats.zone_count() {
        let rows = stats.zone_rows(z) as f64;
        kept += match zone_truth(pred, stats, z) {
            ZoneVerdict::AllTrue => rows,
            ZoneVerdict::Mixed => rows / 2.0,
            ZoneVerdict::AllFalse => 0.0,
        };
    }
    kept / stats.rows as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mult::Mult3;
    use crate::range_value::RangeValue;
    use crate::tuple::AuTuple;
    use audb_rel::Schema;

    fn rel(rows: &[(i64, i64, i64)]) -> AuRelation {
        AuRelation::from_rows(
            Schema::new(["a", "b"]),
            rows.iter().map(|&(lb, sg, ub)| {
                (
                    AuTuple::new([RangeValue::new(lb, sg, ub), RangeValue::certain(sg)]),
                    Mult3::ONE,
                )
            }),
        )
    }

    #[test]
    fn of_relation_matches_of_columns() {
        let r = rel(&[(1, 2, 3), (4, 4, 4), (0, 1, 9), (7, 7, 7)]);
        let a = TableStats::of_relation(&r);
        let b = TableStats::of_columns(&r.to_columns());
        assert_eq!(a, b);
        assert_eq!(a.rows, 4);
        assert_eq!(a.cols[0].certain, 2);
        assert_eq!(a.cols[0].min_lb, Some(Value::Int(0)));
        assert_eq!(a.cols[0].max_ub, Some(Value::Int(9)));
        assert!(a.cols[1].all_certain());
        assert_eq!(a.cols[1].nulls, 0);
        // Four distinct certain b values; linear counting is exact here.
        assert_eq!(a.cols[1].distinct_estimate, 4);
        assert_eq!(a.cols[0].zones.len(), 1);
        assert_eq!(a.cols[0].zones[0].rows, 4);
    }

    #[test]
    fn zones_partition_at_zone_rows() {
        let rows: Vec<(i64, i64, i64)> = (0..(ZONE_ROWS as i64 + 5)).map(|i| (i, i, i)).collect();
        let s = TableStats::of_relation(&rel(&rows));
        assert_eq!(s.zone_count(), 2);
        assert_eq!(s.cols[0].zones[0].rows, ZONE_ROWS);
        assert_eq!(s.cols[0].zones[1].rows, 5);
        assert_eq!(s.cols[0].zones[1].min_lb, Value::Int(ZONE_ROWS as i64));
        assert_eq!(s.zone_rows(1), 5);
    }

    /// The soundness property: a definite zone verdict must agree with
    /// the per-row truth of every row in the zone.
    #[test]
    fn zone_verdicts_are_sound_against_per_row_truth() {
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let rows: Vec<(i64, i64, i64)> = (0..60)
            .map(|_| {
                let sg = (step() % 40) as i64;
                let d1 = (step() % 4) as i64;
                let d2 = (step() % 4) as i64;
                (sg - d1, sg, sg + d2)
            })
            .collect();
        let r = rel(&rows);
        let s = TableStats::of_relation(&r);
        let preds = [
            RangeExpr::col(0).lt(RangeExpr::lit(-5)),
            RangeExpr::col(0).le(RangeExpr::lit(20)),
            RangeExpr::col(0).lt(RangeExpr::lit(1000)),
            RangeExpr::col(0).eq(RangeExpr::lit(7)),
            RangeExpr::col(0).cmp(CmpOp::Ge, RangeExpr::lit(0)),
            RangeExpr::col(0)
                .le(RangeExpr::lit(10))
                .and(RangeExpr::col(1).lt(RangeExpr::lit(50))),
            RangeExpr::Not(Box::new(RangeExpr::col(0).lt(RangeExpr::lit(-1)))),
            RangeExpr::Add(Box::new(RangeExpr::col(0)), Box::new(RangeExpr::lit(5)))
                .le(RangeExpr::lit(3)),
        ];
        for pred in &preds {
            let verdict = zone_truth(pred, &s, 0);
            for row in r.rows() {
                let t = pred.truth(&row.tuple);
                match verdict {
                    ZoneVerdict::AllFalse => assert!(!t.ub, "{pred:?} claimed AllFalse"),
                    ZoneVerdict::AllTrue => assert!(t.lb, "{pred:?} claimed AllTrue"),
                    ZoneVerdict::Mixed => {}
                }
            }
        }
    }

    #[test]
    fn definite_verdicts_fire_on_clustered_data() {
        // Clustered (sorted) key: faraway zones prune.
        let rows: Vec<(i64, i64, i64)> = (0..(2 * ZONE_ROWS as i64)).map(|i| (i, i, i)).collect();
        let s = TableStats::of_relation(&rel(&rows));
        let pred = RangeExpr::col(0).lt(RangeExpr::lit(10));
        assert_eq!(zone_truth(&pred, &s, 1), ZoneVerdict::AllFalse);
        assert_eq!(zone_truth(&pred, &s, 0), ZoneVerdict::Mixed);
        let all = RangeExpr::col(0).lt(RangeExpr::lit(3 * ZONE_ROWS as i64));
        assert_eq!(zone_truth(&all, &s, 0), ZoneVerdict::AllTrue);
        assert_eq!(zone_truth(&all, &s, 1), ZoneVerdict::AllTrue);
        // A batch spanning both zones is definite only when they agree.
        assert_eq!(
            range_verdict(&pred, &s, ZONE_ROWS - 2, 4),
            ZoneVerdict::Mixed
        );
        assert_eq!(
            range_verdict(&all, &s, ZONE_ROWS - 2, 4),
            ZoneVerdict::AllTrue
        );
        let sel = estimate_selectivity(&pred, &s);
        assert!(
            sel <= 0.5,
            "clustered pred keeps at most the mixed zone: {sel}"
        );
        assert_eq!(estimate_selectivity(&all, &s), 1.0);
    }

    #[test]
    fn uncertain_cells_widen_the_box_and_block_false_positives() {
        let r = rel(&[(0, 5, 9), (2, 3, 4)]);
        let s = TableStats::of_relation(&r);
        // Possibly-true for row 0 (lb 0 < 2): must not claim AllFalse.
        let pred = RangeExpr::col(0).lt(RangeExpr::lit(2));
        assert_eq!(zone_truth(&pred, &s, 0), ZoneVerdict::Mixed);
        // Not even possibly below -1.
        let never = RangeExpr::col(0).lt(RangeExpr::lit(-1));
        assert_eq!(zone_truth(&never, &s, 0), ZoneVerdict::AllFalse);
    }

    #[test]
    fn nulls_and_distinct_are_counted() {
        let r = AuRelation::from_rows(
            Schema::new(["v"]),
            [
                (AuTuple::new([RangeValue::certain(Value::Null)]), Mult3::ONE),
                (AuTuple::new([RangeValue::certain(1i64)]), Mult3::ONE),
                (AuTuple::new([RangeValue::certain(1i64)]), Mult3::ONE),
            ],
        );
        let s = TableStats::of_relation(&r);
        assert_eq!(s.cols[0].nulls, 1);
        assert_eq!(s.cols[0].distinct_estimate, 2);
        // Null sorts before everything, so it is the lb min.
        assert_eq!(s.cols[0].min_lb, Some(Value::Null));
    }
}
