//! The relational encoding of AU-DBs (paper Sec. 3.2 / Sec. 7): every
//! range-annotated attribute `A` becomes three columns `A↓, A_sg, A↑` and
//! three extra columns `#↓, #_sg, #↑` carry the multiplicity triple. The
//! SQL-rewrite method (`audb-rewrite`) executes entirely over this encoding.

use crate::mult::Mult3;
use crate::range_value::RangeValue;
use crate::relation::AuRelation;
use crate::tuple::AuTuple;
use audb_rel::{Relation, Schema, Tuple, Value};

/// Column names of the flat encoding of `schema`.
pub fn encoded_schema(schema: &Schema) -> Schema {
    let mut cols: Vec<String> = Vec::with_capacity(schema.arity() * 3 + 3);
    for c in schema.cols() {
        cols.push(format!("{c}__lb"));
        cols.push(format!("{c}__sg"));
        cols.push(format!("{c}__ub"));
    }
    cols.push("__mult_lb".into());
    cols.push("__mult_sg".into());
    cols.push("__mult_ub".into());
    Schema::new(cols)
}

/// Index of the lower-bound column of attribute `i` in the encoding.
pub fn lb_col(i: usize) -> usize {
    3 * i
}
/// Index of the selected-guess column of attribute `i`.
pub fn sg_col(i: usize) -> usize {
    3 * i + 1
}
/// Index of the upper-bound column of attribute `i`.
pub fn ub_col(i: usize) -> usize {
    3 * i + 2
}
/// Indices of the three multiplicity columns for an AU arity `n`.
pub fn mult_cols(arity: usize) -> (usize, usize, usize) {
    (3 * arity, 3 * arity + 1, 3 * arity + 2)
}

/// Encode an AU relation as a flat deterministic relation (one row per AU
/// row, deterministic multiplicity 1; the triple lives in data columns).
pub fn encode(rel: &AuRelation) -> Relation {
    let schema = encoded_schema(&rel.schema);
    let rows = rel
        .rows()
        .iter()
        .map(|row| {
            let mut vals: Vec<Value> = Vec::with_capacity(schema.arity());
            for r in &row.tuple.0 {
                vals.push(r.lb.clone());
                vals.push(r.sg.clone());
                vals.push(r.ub.clone());
            }
            vals.push(Value::Int(row.mult.lb as i64));
            vals.push(Value::Int(row.mult.sg as i64));
            vals.push(Value::Int(row.mult.ub as i64));
            (Tuple(vals), 1)
        })
        .collect::<Vec<_>>();
    Relation::from_rows(schema, rows)
}

/// Decode a flat encoding back into an AU relation with the given attribute
/// names.
pub fn decode(flat: &Relation, schema: &Schema) -> AuRelation {
    let n = schema.arity();
    assert_eq!(
        flat.schema.arity(),
        3 * n + 3,
        "flat relation is not an encoding of {schema}"
    );
    let rows = flat
        .rows
        .iter()
        .filter(|r| r.mult > 0)
        .flat_map(|r| std::iter::repeat_n(r, r.mult as usize).take(1))
        .map(|r| {
            let vals = (0..n).map(|i| {
                RangeValue::new(
                    r.tuple.get(lb_col(i)).clone(),
                    r.tuple.get(sg_col(i)).clone(),
                    r.tuple.get(ub_col(i)).clone(),
                )
            });
            let (ml, ms, mu) = mult_cols(n);
            let mult = Mult3::new(
                r.tuple.get(ml).as_i64().unwrap_or(0).max(0) as u64,
                r.tuple.get(ms).as_i64().unwrap_or(0).max(0) as u64,
                r.tuple.get(mu).as_i64().unwrap_or(0).max(0) as u64,
            );
            (AuTuple::new(vals), mult)
        })
        .collect::<Vec<_>>();
    AuRelation::from_rows(schema.clone(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let rel = AuRelation::from_rows(
            Schema::new(["a", "b"]),
            [
                (
                    AuTuple::new([RangeValue::new(1, 2, 3), RangeValue::certain("x")]),
                    Mult3::new(1, 1, 2),
                ),
                (
                    AuTuple::new([RangeValue::certain(9i64), RangeValue::certain("y")]),
                    Mult3::new(0, 0, 1),
                ),
            ],
        );
        let flat = encode(&rel);
        assert_eq!(flat.schema.arity(), 9);
        let back = decode(&flat, &rel.schema);
        assert!(back.bag_eq(&rel));
    }

    #[test]
    fn encoded_column_layout() {
        let s = Schema::new(["a", "b"]);
        let enc = encoded_schema(&s);
        assert_eq!(enc.cols()[lb_col(0)], "a__lb");
        assert_eq!(enc.cols()[ub_col(1)], "b__ub");
        let (ml, _, mu) = mult_cols(2);
        assert_eq!(enc.cols()[ml], "__mult_lb");
        assert_eq!(enc.cols()[mu], "__mult_ub");
    }
}
