//! Bounds on a tuple's sort position (paper Sec. 5, Equations (1)–(3)).
//!
//! The lowest possible position of the first duplicate of `t` is the total
//! certain multiplicity of tuples that *certainly* precede it; the greatest
//! possible position is the total possible multiplicity of tuples that
//! *possibly* precede it; the selected-guess position counts selected-guess
//! multiplicities of selected-guess predecessors. The `i`-th duplicate adds
//! `i` to all three (Def. 2). The sums range over tuples *other than* `t`
//! itself — duplicate self-interleaving is entirely captured by `i`
//! (paper Example 6 confirms self-exclusion).

use crate::cmp::{tuple_lt, CmpSemantics};
use crate::relation::AuRelation;

/// Position bounds `(pos↓, pos_sg, pos↑)` of duplicate 0 of each row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PosBounds {
    /// Lowest possible position.
    pub lb: u64,
    /// Position in the selected-guess world.
    pub sg: u64,
    /// Greatest possible position.
    pub ub: u64,
}

impl PosBounds {
    /// Bounds of the `i`-th duplicate: all components shift by `i`.
    pub fn shift(self, i: u64) -> PosBounds {
        PosBounds {
            lb: self.lb + i,
            sg: self.sg + i,
            ub: self.ub + i,
        }
    }
}

/// Compute Equations (1)–(3) for duplicate 0 of row `target` by scanning the
/// whole relation — the quadratic reference used by the Def. 2 sort operator
/// and by tests that validate the one-pass native algorithm.
///
/// `total_idxs` must already realize `<total_O` (order-by attributes extended
/// by the remaining schema attributes).
pub fn pos_bounds(
    rel: &AuRelation,
    total_idxs: &[usize],
    target: usize,
    sem: CmpSemantics,
) -> PosBounds {
    let t = &rel.rows()[target].tuple;
    let (mut lb, mut sg, mut ub) = (0u64, 0u64, 0u64);
    for (j, row) in rel.rows().iter().enumerate() {
        if j == target {
            continue;
        }
        let r = tuple_lt(&row.tuple, t, total_idxs, sem);
        if r.lb {
            lb += row.mult.lb;
        }
        if r.sg {
            sg += row.mult.sg;
        }
        if r.ub {
            ub += row.mult.ub;
        }
    }
    // ⟦t' < t⟧↓ ⇒ ⟦t' < t⟧sg ⇒ ⟦t' < t⟧↑ and mult.lb ≤ mult.sg ≤ mult.ub,
    // so the bounds are ordered by construction.
    debug_assert!(lb <= sg && sg <= ub);
    PosBounds { lb, sg, ub }
}

/// All rows' duplicate-0 position bounds (still O(n²); convenience for the
/// reference operators).
pub fn all_pos_bounds(rel: &AuRelation, total_idxs: &[usize], sem: CmpSemantics) -> Vec<PosBounds> {
    (0..rel.rows().len())
        .map(|i| pos_bounds(rel, total_idxs, i, sem))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mult::Mult3;
    use crate::range_value::RangeValue;
    use crate::tuple::AuTuple;
    use audb_rel::Schema;

    fn rv(lb: i64, sg: i64, ub: i64) -> RangeValue {
        RangeValue::new(lb, sg, ub)
    }

    /// Paper Example 6 input; expected duplicate-0 bounds:
    /// t1 = (1, [1/1/3])  ×(1,1,2) → pos [0/0/1]
    /// t2 = ([2/3/3], 15) ×(0,1,1) → pos [2/2/3]
    /// t3 = ([1/1/2], 2)  ×(1,1,1) → pos [0/1/2]
    fn example6() -> AuRelation {
        AuRelation::from_rows(
            Schema::new(["a", "b"]),
            [
                (
                    AuTuple::new([RangeValue::certain(1i64), rv(1, 1, 3)]),
                    Mult3::new(1, 1, 2),
                ),
                (
                    AuTuple::new([rv(2, 3, 3), RangeValue::certain(15i64)]),
                    Mult3::new(0, 1, 1),
                ),
                (
                    AuTuple::new([rv(1, 1, 2), RangeValue::certain(2i64)]),
                    Mult3::new(1, 1, 1),
                ),
            ],
        )
    }

    #[test]
    fn example_6_position_bounds_interval_lex() {
        let rel = example6();
        let idxs = [0usize, 1];
        let p1 = pos_bounds(&rel, &idxs, 0, CmpSemantics::IntervalLex);
        assert_eq!(
            p1,
            PosBounds {
                lb: 0,
                sg: 0,
                ub: 1
            }
        );
        let p2 = pos_bounds(&rel, &idxs, 1, CmpSemantics::IntervalLex);
        assert_eq!(
            p2,
            PosBounds {
                lb: 2,
                sg: 2,
                ub: 3
            }
        );
        let p3 = pos_bounds(&rel, &idxs, 2, CmpSemantics::IntervalLex);
        assert_eq!(
            p3,
            PosBounds {
                lb: 0,
                sg: 1,
                ub: 2
            }
        );
    }

    #[test]
    fn syntactic_bounds_are_looser_but_contain_exact() {
        let rel = example6();
        let idxs = [0usize, 1];
        for i in 0..rel.rows().len() {
            let exact = pos_bounds(&rel, &idxs, i, CmpSemantics::IntervalLex);
            let syn = pos_bounds(&rel, &idxs, i, CmpSemantics::Syntactic);
            assert!(syn.lb <= exact.lb, "row {i}");
            assert!(syn.ub >= exact.ub, "row {i}");
            assert_eq!(syn.sg, exact.sg, "row {i}");
        }
    }

    #[test]
    fn duplicate_shift() {
        let p = PosBounds {
            lb: 1,
            sg: 2,
            ub: 4,
        };
        assert_eq!(
            p.shift(3),
            PosBounds {
                lb: 4,
                sg: 5,
                ub: 7
            }
        );
    }
}
